// Flat tuple storage: the batched-slab normalization sweep and the batched
// incremental-closure kernel against their per-tuple (legacy) counterparts.
//
// Normalization dominates the Appendix-A workloads; its inner loop closes
// one DBM per candidate combination.  The batched sweep lays all candidate
// matrices of a chunk out in one arena slab (entry-major, so each
// Floyd-Warshall update is a stride-1 pass over every system) and closes
// them together.  The BM_Normalize_Batch_* pair measures the end-to-end
// effect (the batch also eliminates the per-candidate tuple/DBM
// construction, which is where most of the win is); BM_Conjoin_Chunked_*
// isolates the closure strategy alone on pre-built systems, where the
// per-system scatter into the slab can outweigh lane vectorization for
// tiny matrices -- the floors guard both sides of that tradeoff.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "bench_util.h"
#include "core/dbm.h"
#include "core/dbm_batch.h"
#include "core/normalize.h"
#include "util/arena.h"

namespace {

using itdb::Arena;
using itdb::ArenaScope;
using itdb::AtomicConstraint;
using itdb::Dbm;
using itdb::Status;
using itdb::DbmSlab;
using itdb::GeneralizedRelation;
using itdb::NormalizeOptions;
using itdb::bench::MakeMixedPeriodRelation;

void RunNormalize(benchmark::State& state, const GeneralizedRelation& r,
                  bool batch) {
  NormalizeOptions options;
  options.max_split_product = std::int64_t{1} << 24;
  options.batch = batch;
  std::int64_t produced = 0;
  for (auto _ : state) {
    produced = 0;
    for (const auto& t : r.tuples()) {
      auto n = itdb::NormalizeTuple(t, options);
      if (n.ok()) produced += static_cast<std::int64_t>(n.value().size());
      benchmark::DoNotOptimize(n);
    }
  }
  state.counters["normal_form_tuples"] =
      benchmark::Counter(static_cast<double>(produced));
  state.counters["batch"] = benchmark::Counter(batch ? 1.0 : 0.0);
}

void BM_Normalize_Batch_DivisorChain(benchmark::State& state) {
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {2, 4, 8}),
               /*batch=*/true);
}
BENCHMARK(BM_Normalize_Batch_DivisorChain);

void BM_Normalize_Batch_Coprime(benchmark::State& state) {
  // Periods {7, 11, 13}: lcm 1001 candidates per tuple -- the blow-up case
  // where slab batching pays the most.
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {7, 11, 13}),
               /*batch=*/true);
}
BENCHMARK(BM_Normalize_Batch_Coprime);

void BM_Normalize_Batch_Off_Coprime(benchmark::State& state) {
  // Legacy per-tuple comparator on the same workload; the ratio against
  // BM_Normalize_Batch_Coprime is the layout speedup.
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {7, 11, 13}),
               /*batch=*/false);
}
BENCHMARK(BM_Normalize_Batch_Off_Coprime);

/// Deterministic closed feasible bases for the incremental-closure kernels.
std::vector<Dbm> MakeClosedBases(int num_vars, std::int64_t count) {
  std::mt19937_64 rng(20260807);
  std::uniform_int_distribution<int> var_pick(-1, num_vars - 1);
  std::uniform_int_distribution<std::int64_t> bound_pick(-40, 40);
  std::vector<Dbm> bases;
  bases.reserve(static_cast<std::size_t>(count));
  while (static_cast<std::int64_t>(bases.size()) < count) {
    Dbm d(num_vars);
    for (int c = 0; c < 2 * num_vars; ++c) {
      int lhs = var_pick(rng);
      int rhs = var_pick(rng);
      if (lhs == rhs) continue;
      d.AddAtomic({lhs, rhs, bound_pick(rng)});
    }
    if (!d.Close().ok() || !d.feasible()) continue;
    bases.push_back(std::move(d));
  }
  return bases;
}

/// A small constraint addition conjoined onto every base.
Dbm MakeAddition(int num_vars) {
  Dbm add(num_vars);
  add.AddAtomic({0, 2, 7});
  add.AddAtomic({3, -1, 25});
  return add;
}

void BM_Conjoin_Chunked_Scalar(benchmark::State& state) {
  // Per-tuple baseline: conjoin the addition onto each closed base and
  // re-close with the scalar Floyd-Warshall (what the legacy hull /
  // conjunction path pays per candidate system).
  const std::int64_t count = state.range(0);
  const int num_vars = 4;
  const std::vector<Dbm> bases = MakeClosedBases(num_vars, count);
  const Dbm addition = MakeAddition(num_vars);
  for (auto _ : state) {
    for (const Dbm& base : bases) {
      Dbm m = Dbm::Conjoin(base, addition);
      Status st = m.Close();
      benchmark::DoNotOptimize(st);
      benchmark::DoNotOptimize(m);
    }
  }
  state.counters["systems"] = benchmark::Counter(static_cast<double>(count));
}
BENCHMARK(BM_Conjoin_Chunked_Scalar)->Arg(256)->Arg(1024);

void BM_Conjoin_Chunked_Batch(benchmark::State& state) {
  // Batched closure on the same workload: the conjoined systems go into
  // one entry-major arena slab and CloseAll runs each Floyd-Warshall
  // update as a stride-1 pass across the whole chunk (the columnar hull /
  // batched-normalization strategy).  Conjoin and slab-load costs are
  // included, matching the scalar loop.  On small dense systems the
  // scattered slab load dominates, so this is expected to trail the scalar
  // loop -- the production batch paths win by also skipping per-candidate
  // construction, which BM_Normalize_Batch_* measures end to end.
  const std::int64_t count = state.range(0);
  const int num_vars = 4;
  const std::vector<Dbm> bases = MakeClosedBases(num_vars, count);
  const Dbm addition = MakeAddition(num_vars);
  Arena arena;
  for (auto _ : state) {
    ArenaScope scope(arena);
    DbmSlab slab(&arena, num_vars, count);
    for (std::int64_t t = 0; t < count; ++t) {
      slab.Load(t, Dbm::Conjoin(bases[static_cast<std::size_t>(t)], addition));
    }
    bool* feasible = arena.AllocateArray<bool>(count);
    bool* overflow = arena.AllocateArray<bool>(count);
    slab.CloseAll(feasible, overflow);
    benchmark::DoNotOptimize(feasible);
    benchmark::DoNotOptimize(overflow);
  }
  state.counters["systems"] = benchmark::Counter(static_cast<double>(count));
}
BENCHMARK(BM_Conjoin_Chunked_Batch)->Arg(256)->Arg(1024);

}  // namespace

ITDB_BENCHMARK_MAIN();
