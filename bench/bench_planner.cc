// The two perf levers this module family adds on top of the evaluator:
// cost-based join ordering and the versioned cross-query result cache.
//
// The planner pair evaluates one adversarially *written* 3-relation AND
// chain -- two large relations that share no variable first, the selective
// bridge last -- with cost_plan off (written order: a Big x Wide cross
// product materializes before Link prunes it) and on (the planner seeds the
// chain with Link, so no cross product ever exists).  Same query, same
// bit-identical answer; the gap is pure join ordering.
//
// The cache pair pushes the same statement through the session layer with
// and without an attached ResultCache: cold pays parse + plan + eval +
// render every iteration, warm pays parse + fingerprint + one map lookup
// and re-serves the rendered bytes.  CI pins both gaps as ratio floors in
// bench_floors.json.

#include <benchmark/benchmark.h>

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "bench_util.h"
#include "core/stats.h"
#include "query/eval.h"
#include "server/result_cache.h"
#include "server/session.h"
#include "server/shared_database.h"
#include "storage/database.h"

namespace {

using itdb::Database;
using itdb::GeneralizedRelation;
using itdb::Result;
using itdb::StatsCache;
using itdb::server::ResultCache;
using itdb::server::Session;
using itdb::server::SessionOptions;
using itdb::server::SharedDatabase;

// Big and Wide carry 150 singleton tuples each and share no variable in the
// benchmark query; Link is a 4-tuple bridge.  Written order forces the
// 150 x 150 cross product before Link can prune it.
constexpr int kFanout = 150;

constexpr const char* kChain = "Big(t) AND Wide(u) AND Link(t, u)";
constexpr const char* kChainStatement = "query Big(t) AND Wide(u) AND Link(t, u)";

Database MakeAdversarialCatalog() {
  std::ostringstream text;
  text << "relation Big(T: time) {";
  for (int i = 0; i < kFanout; ++i) text << " [" << 10 * i << "];";
  text << " }\n";
  text << "relation Wide(T: time) {";
  for (int i = 0; i < kFanout; ++i) text << " [" << 7 * i + 3 << "];";
  text << " }\n";
  text << "relation Link(A: time, B: time) {"
          " [0, 3]; [10, 10]; [30, 17]; [50, 24]; }\n";
  Result<Database> db = Database::FromText(text.str());
  if (!db.ok()) std::abort();
  return std::move(db).value();
}

void RunChain(benchmark::State& state, bool cost_plan) {
  Database db = MakeAdversarialCatalog();
  StatsCache stats_cache;
  itdb::query::QueryOptions options;
  options.cost_plan = cost_plan;
  options.stats_cache = &stats_cache;
  std::size_t tuples = 0;
  for (auto _ : state) {
    Result<GeneralizedRelation> result =
        itdb::query::EvalQueryString(db, kChain, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().message().c_str());
      return;
    }
    tuples = result.value().tuples().size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["tuples"] =
      benchmark::Counter(static_cast<double>(tuples));
}

void BM_Planner_AdversarialChain_Written(benchmark::State& state) {
  RunChain(state, /*cost_plan=*/false);
}
BENCHMARK(BM_Planner_AdversarialChain_Written)
    ->Unit(benchmark::kMicrosecond);

void BM_Planner_AdversarialChain_Planned(benchmark::State& state) {
  RunChain(state, /*cost_plan=*/true);
}
BENCHMARK(BM_Planner_AdversarialChain_Planned)
    ->Unit(benchmark::kMicrosecond);

// --- Result-cache round trips -------------------------------------------

void BM_ResultCache_ColdRoundTrip(benchmark::State& state) {
  Database db = MakeAdversarialCatalog();
  SharedDatabase shared(&db);
  Session session(&shared, SessionOptions{});
  for (auto _ : state) {
    std::ostringstream out;
    itdb::Status s = session.Execute(kChainStatement, out);
    if (!s.ok()) {
      state.SkipWithError(s.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ResultCache_ColdRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_ResultCache_WarmRoundTrip(benchmark::State& state) {
  Database db = MakeAdversarialCatalog();
  SharedDatabase shared(&db);
  ResultCache cache(std::size_t{1} << 24);
  SessionOptions options;
  options.result_cache = &cache;
  Session session(&shared, options);
  // Prime the cache so every timed iteration is a warm hit.
  {
    std::ostringstream out;
    itdb::Status s = session.Execute(kChainStatement, out);
    if (!s.ok()) {
      state.SkipWithError(s.message().c_str());
      return;
    }
  }
  for (auto _ : state) {
    std::ostringstream out;
    itdb::Status s = session.Execute(kChainStatement, out);
    if (!s.ok()) {
      state.SkipWithError(s.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  ResultCache::Stats stats = cache.stats();
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(stats.hits));
}
BENCHMARK(BM_ResultCache_WarmRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

ITDB_BENCHMARK_MAIN();
