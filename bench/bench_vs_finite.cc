// The introduction's claim: "using methods that can handle infinite time
// can lead to a more compact and tractable representation."
//
// The same periodic workload is handled twice: symbolically (generalized
// relations, constant size, horizon-free) and by materializing an explicit
// finite relation over a growing horizon.  Both representation size and
// operation cost are reported.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"
#include "finite/finite_relation.h"

namespace {

using itdb::FiniteRelation;
using itdb::GeneralizedRelation;
using itdb::Schema;

// Daily backup windows + 6-hourly sync instants, as in the examples.
GeneralizedRelation Workload() {
  GeneralizedRelation r(Schema::Temporal(2));
  {
    itdb::GeneralizedTuple t(
        {itdb::Lrp::Make(120, 1440), itdb::Lrp::Make(165, 1440)});
    t.mutable_constraints().AddDifferenceEquality(0, 1, -45);
    benchmark::DoNotOptimize(r.AddTuple(std::move(t)));
  }
  {
    itdb::GeneralizedTuple t(
        {itdb::Lrp::Make(60, 360), itdb::Lrp::Make(75, 360)});
    t.mutable_constraints().AddDifferenceEquality(0, 1, -15);
    benchmark::DoNotOptimize(r.AddTuple(std::move(t)));
  }
  return r;
}

void BM_Materialize_VsHorizon(benchmark::State& state) {
  const std::int64_t days = state.range(0);
  GeneralizedRelation r = Workload();
  std::int64_t rows = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    FiniteRelation f = FiniteRelation::Materialize(r, 0, days * 1440);
    rows = f.size();
    bytes = f.ApproxBytes();
    benchmark::DoNotOptimize(f);
  }
  state.counters["rows"] = benchmark::Counter(static_cast<double>(rows));
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(bytes));
  state.SetComplexityN(days);
}
BENCHMARK(BM_Materialize_VsHorizon)
    ->RangeMultiplier(4)
    ->Range(1, 1024)
    ->Complexity(benchmark::oN);

void BM_GeneralizedIntersect_HorizonFree(benchmark::State& state) {
  // Intersecting the workload with a shifted copy of itself: constant cost,
  // independent of any horizon (there is none).  Threads come from the
  // ITDB_THREADS / hardware default; the counter records what was used.
  GeneralizedRelation a = Workload();
  auto shifted = itdb::ShiftTemporalColumn(a, 0, 15);
  GeneralizedRelation b = std::move(shifted).value();
  itdb::AlgebraOptions options;
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  itdb::bench::RecordParallelCounters(state, options);
}
BENCHMARK(BM_GeneralizedIntersect_HorizonFree);

void BM_FiniteIntersect_VsHorizon(benchmark::State& state) {
  const std::int64_t days = state.range(0);
  GeneralizedRelation g = Workload();
  FiniteRelation a = FiniteRelation::Materialize(g, 0, days * 1440);
  FiniteRelation b = a;
  for (auto _ : state) {
    auto r = FiniteRelation::Intersect(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(days);
}
BENCHMARK(BM_FiniteIntersect_VsHorizon)
    ->RangeMultiplier(4)
    ->Range(1, 1024)
    ->Complexity(benchmark::oN);

void BM_GeneralizedMembership(benchmark::State& state) {
  // Membership at an arbitrarily distant instant: O(1) arithmetic.
  GeneralizedRelation r = Workload();
  std::int64_t day = 1000000;
  for (auto _ : state) {
    bool in = r.Contains({{120 + day * 1440, 165 + day * 1440}, {}});
    benchmark::DoNotOptimize(in);
  }
}
BENCHMARK(BM_GeneralizedMembership);

}  // namespace

BENCHMARK_MAIN();
