// Table 2, row "Emptiness of a relation" (Theorem 3.5): fixed-schema O(N),
// general O(m^3 N).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"

namespace {

using itdb::GeneralizedRelation;
using itdb::bench::MakeNormalizedRelation;

// Build a relation whose tuples are all lattice-empty, so emptiness has to
// scan every tuple (worst case for Theorem 3.5).
GeneralizedRelation AllEmptyRelation(int n, int m) {
  GeneralizedRelation base = MakeNormalizedRelation(1, n, m, 8);
  GeneralizedRelation out(base.schema());
  for (itdb::GeneralizedTuple t : base.tuples()) {
    // Force an unsatisfiable residue equation: X0 = X1 + delta where delta
    // is incompatible with the residues modulo 8.
    if (m >= 2) {
      std::int64_t delta =
          t.lrp(0).offset() - t.lrp(1).offset() + 1;  // Off by one: no hit.
      itdb::Dbm c(m);
      c.AddDifferenceEquality(0, 1, delta);
      t.set_constraints(std::move(c));
    } else {
      itdb::Dbm c(m);
      c.AddUpperBound(0, 0);
      c.AddLowerBound(0, 1);
      t.set_constraints(std::move(c));
    }
    benchmark::DoNotOptimize(out.AddTuple(std::move(t)));
  }
  return out;
}

void BM_Emptiness_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation r = AllEmptyRelation(n, 2);
  for (auto _ : state) {
    auto e = itdb::IsEmpty(r);
    benchmark::DoNotOptimize(e);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Emptiness_VsN)->RangeMultiplier(2)->Range(64, 4096)->Complexity(
    benchmark::oN);

void BM_Emptiness_VsArity(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  GeneralizedRelation r = AllEmptyRelation(256, m);
  for (auto _ : state) {
    auto e = itdb::IsEmpty(r);
    benchmark::DoNotOptimize(e);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Emptiness_VsArity)->DenseRange(2, 8)->Complexity(
    benchmark::oNCubed);

void BM_Emptiness_NonEmptyEarlyOut(benchmark::State& state) {
  // A nonempty relation exits at the first feasible tuple, independent of N.
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation r = MakeNormalizedRelation(1, n, 2, 8,
                                                 /*max_constraints=*/0);
  for (auto _ : state) {
    auto e = itdb::IsEmpty(r);
    benchmark::DoNotOptimize(e);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Emptiness_NonEmptyEarlyOut)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::o1);

}  // namespace

BENCHMARK_MAIN();
