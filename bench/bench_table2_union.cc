// Table 2, row "Union": fixed-schema O(N), general O(m^2 N).
//
// The benchmark sweeps the tuple count N at fixed arity (expect linear
// growth) and the arity m at fixed N (expect ~quadratic in m through the
// constraint-matrix copying).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"

namespace {

using itdb::GeneralizedRelation;
using itdb::bench::MakeNormalizedRelation;

void BM_Union_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b = MakeNormalizedRelation(2, n, 2, 12);
  for (auto _ : state) {
    auto r = itdb::Union(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Union_VsN)->RangeMultiplier(2)->Range(64, 8192)->Complexity(
    benchmark::oN);

void BM_Union_VsArity(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, 512, m, 12);
  GeneralizedRelation b = MakeNormalizedRelation(2, 512, m, 12);
  for (auto _ : state) {
    auto r = itdb::Union(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Union_VsArity)->DenseRange(1, 8)->Complexity(
    benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
