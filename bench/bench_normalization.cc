// Appendix A.1 / Section 3.8: the cost and blow-up of normalization.
//
// A tuple with periods k_1..k_m splits into prod(k/k_i) normal-form tuples
// where k = lcm(k_i).  Closely related periods (divisor chains) keep the
// blow-up tame; unrelated (coprime) periods are "the unfavorable situation"
// the paper expects to be the exception.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/normalize.h"
#include "core/normalize_cache.h"

namespace {

using itdb::GeneralizedRelation;
using itdb::NormalizeCache;
using itdb::NormalizeOptions;
using itdb::bench::MakeMixedPeriodRelation;

void RunNormalize(benchmark::State& state, const GeneralizedRelation& r) {
  NormalizeOptions options;
  options.max_split_product = std::int64_t{1} << 24;
  std::int64_t produced = 0;
  for (auto _ : state) {
    produced = 0;
    for (const auto& t : r.tuples()) {
      auto n = itdb::NormalizeTuple(t, options);
      if (n.ok()) produced += static_cast<std::int64_t>(n.value().size());
      benchmark::DoNotOptimize(n);
    }
  }
  state.counters["normal_form_tuples"] =
      benchmark::Counter(static_cast<double>(produced));
}

void BM_Normalize_DivisorChain(benchmark::State& state) {
  // Periods {2, 4, 8}: lcm 8, splits of at most 4 per column.
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {2, 4, 8}));
}
BENCHMARK(BM_Normalize_DivisorChain);

void BM_Normalize_SharedFactor(benchmark::State& state) {
  // Periods {6, 10, 15}: lcm 30.
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {6, 10, 15}));
}
BENCHMARK(BM_Normalize_SharedFactor);

void BM_Normalize_Coprime(benchmark::State& state) {
  // Periods {7, 11, 13}: lcm 1001 -- the worst case k = prod(k_i).
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {7, 11, 13}));
}
BENCHMARK(BM_Normalize_Coprime);

void BM_Normalize_VsArity(benchmark::State& state) {
  // Blow-up is multiplicative per column: exponential in the arity.
  const int m = static_cast<int>(state.range(0));
  RunNormalize(state, MakeMixedPeriodRelation(3, 16, m, {3, 4}));
  state.SetComplexityN(m);
}
BENCHMARK(BM_Normalize_VsArity)->DenseRange(1, 6)->Complexity();

void BM_Normalize_AlreadyNormal(benchmark::State& state) {
  // Normal-form input: normalization degenerates to a feasibility sweep.
  RunNormalize(state, MakeMixedPeriodRelation(3, 64, 2, {12}));
}
BENCHMARK(BM_Normalize_AlreadyNormal);

void BM_Normalize_VsThreads(benchmark::State& state) {
  // Thread-pool scaling of the cross-product feasibility sweep on the
  // coprime worst case (k = 1001, ~1001 combinations per tuple).
  GeneralizedRelation r = MakeMixedPeriodRelation(3, 16, 2, {7, 11, 13});
  NormalizeOptions options;
  options.max_split_product = std::int64_t{1} << 24;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (const auto& t : r.tuples()) {
      auto n = itdb::NormalizeTuple(t, options);
      benchmark::DoNotOptimize(n);
    }
  }
  state.counters["threads"] = benchmark::Counter(
      static_cast<double>(itdb::ResolveThreads(options.threads)));
}
BENCHMARK(BM_Normalize_VsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Normalize_MemoCache(benchmark::State& state) {
  // Repeated normalization of one relation through the memo-cache: after
  // the first sweep every tuple is a hit, so steady-state iterations
  // measure key construction + survivor materialization only.
  GeneralizedRelation r = MakeMixedPeriodRelation(3, 64, 2, {7, 11, 13});
  NormalizeOptions options;
  options.max_split_product = std::int64_t{1} << 24;
  NormalizeCache cache;
  for (auto _ : state) {
    for (const auto& t : r.tuples()) {
      auto n = itdb::CachedNormalizeTuple(&cache, t, options);
      benchmark::DoNotOptimize(n);
    }
  }
  NormalizeCache::Stats stats = cache.stats();
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(stats.hits));
  state.counters["cache_misses"] =
      benchmark::Counter(static_cast<double>(stats.misses));
  state.counters["cache_entries"] =
      benchmark::Counter(static_cast<double>(stats.entries));
}
BENCHMARK(BM_Normalize_MemoCache);

}  // namespace

ITDB_BENCHMARK_MAIN();
