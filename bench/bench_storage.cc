// The durability path: what the storage layer costs at rest and in motion.
//
// BM_Storage_ColdLoad_* times bringing a saved catalog back into memory --
// the text path re-lexes and re-parses every constraint, the binary path
// mmaps and memcpy's column arrays -- over the same 20-relation catalog.
// The floors file pins the gap (binary must stay >= 5x faster): the whole
// point of the mmap-able format is that restart cost stops scaling with
// parser speed.  BM_Storage_WalAppend measures the per-mutation logging
// tax a durable session pays over an in-memory one (bytes/sec reported),
// and BM_Storage_Recovery measures replaying a WAL tail of `records`
// mutations into a fresh engine -- the startup cost after a crash, which
// checkpointing exists to bound.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "storage/binary/binary_format.h"
#include "storage/database.h"
#include "storage/wal/storage_engine.h"
#include "storage/wal/wal.h"

namespace {

using itdb::Database;
using itdb::GeneralizedRelation;
using itdb::Result;
using itdb::bench::MakeNormalizedRelation;
using itdb::storage::LoadDatabaseFile;
using itdb::storage::SaveDatabaseFile;
using itdb::storage::StorageEngine;
using itdb::storage::StorageEngineOptions;

// 20 relations x 200 tuples of arity 2 with up to 4 constraints each, plus
// an int and a low-cardinality string data attribute per tuple (the shape
// dictionary encoding exists for): big enough that load cost is dominated
// by tuple decoding, small enough to iterate.
Database MakeCatalog() {
  static const char* kTags[] = {"alpha", "beta", "gamma", "delta",
                                "epsilon", "zeta", "eta", "theta"};
  Database db;
  for (int r = 0; r < 20; ++r) {
    GeneralizedRelation temporal = MakeNormalizedRelation(
        /*seed=*/static_cast<std::uint32_t>(1000 + r), /*num_tuples=*/200,
        /*arity=*/2, /*period=*/60, /*max_constraints=*/4);
    GeneralizedRelation rel(itdb::Schema(temporal.schema().temporal_names(),
                                         {"Count", "Tag"},
                                         {itdb::DataType::kInt,
                                          itdb::DataType::kString}));
    int row = 0;
    for (const itdb::GeneralizedTuple& t : temporal.tuples()) {
      itdb::GeneralizedTuple widened(
          t.temporal(), {itdb::Value(static_cast<std::int64_t>(row * 7 + r)),
                         itdb::Value(kTags[(row + r) % 8])});
      widened.set_constraints(t.constraints());
      if (!rel.AddTuple(std::move(widened)).ok()) std::abort();
      ++row;
    }
    db.Put("R" + std::to_string(r), std::move(rel));
  }
  return db;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void BM_Storage_ColdLoad_Text(benchmark::State& state) {
  Database db = MakeCatalog();
  std::string path = TempPath("bench_storage_cold.itdb");
  {
    std::ofstream file(path);
    file << db.ToText();
  }
  std::uint64_t bytes = std::filesystem::file_size(path);
  for (auto _ : state) {
    std::ifstream file(path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    Result<Database> loaded = Database::FromText(buffer.str());
    if (!loaded.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_Storage_ColdLoad_Text);

void BM_Storage_ColdLoad_Binary(benchmark::State& state) {
  Database db = MakeCatalog();
  std::string path = TempPath("bench_storage_cold.itdbb");
  if (!SaveDatabaseFile(db, path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  std::uint64_t bytes = std::filesystem::file_size(path);
  for (auto _ : state) {
    Result<Database> loaded = LoadDatabaseFile(path);
    if (!loaded.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_Storage_ColdLoad_Binary);

void BM_Storage_WalAppend(benchmark::State& state) {
  std::string dir = TempPath("bench_storage_wal");
  std::filesystem::remove_all(dir);
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db);
  if (!engine.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  GeneralizedRelation a = MakeNormalizedRelation(7, 50, 2, 60);
  GeneralizedRelation b = MakeNormalizedRelation(8, 50, 2, 60);
  bool flip = false;
  for (auto _ : state) {
    itdb::Status s = (*engine)->ApplyPut(db, "R", flip ? a : b);
    flip = !flip;
    if (!s.ok()) state.SkipWithError("put failed");
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>((*engine)->stats().wal_bytes));
  state.counters["wal_records"] = benchmark::Counter(
      static_cast<double>((*engine)->stats().wal_records));
}
BENCHMARK(BM_Storage_WalAppend);

void BM_Storage_Recovery(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  std::string dir = TempPath("bench_storage_recovery_" +
                             std::to_string(records));
  std::filesystem::remove_all(dir);
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db);
    if (!engine.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    for (int i = 0; i < records; ++i) {
      GeneralizedRelation rel = MakeNormalizedRelation(
          static_cast<std::uint32_t>(i), 50, 2, 60);
      if (!(*engine)->ApplyPut(db, "R" + std::to_string(i % 8), std::move(rel))
               .ok()) {
        state.SkipWithError("put failed");
        return;
      }
    }
  }
  for (auto _ : state) {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db);
    if (!engine.ok() || (*engine)->stats().replayed_records !=
                            static_cast<std::uint64_t>(records)) {
      state.SkipWithError("recovery failed");
    }
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_Storage_Recovery)->Arg(16)->Arg(128);

}  // namespace

ITDB_BENCHMARK_MAIN();
