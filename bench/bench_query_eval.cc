// Theorem 4.1: with the query fixed, evaluating yes/no queries is PTIME in
// the database size (data complexity).  The bench holds three queries of
// increasing logical depth fixed and sweeps the number of tuples.

#include <string>

#include <benchmark/benchmark.h>

#include "query/eval.h"
#include "storage/database.h"

namespace {

using itdb::Database;
using itdb::GeneralizedRelation;
using itdb::Schema;

// N activity tuples with period 32, interval length 2, spread offsets.
Database MakeDb(int n) {
  GeneralizedRelation r(Schema({"S", "E"}, {"Who"}, {itdb::DataType::kString}));
  for (int i = 0; i < n; ++i) {
    std::int64_t offset = (i * 7) % 30;
    itdb::GeneralizedTuple t(
        {itdb::Lrp::Make(offset, 32), itdb::Lrp::Make(offset + 2, 32)},
        {itdb::Value("w" + std::to_string(i % 4))});
    t.mutable_constraints().AddDifferenceEquality(0, 1, -2);
    benchmark::DoNotOptimize(r.AddTuple(std::move(t)));
  }
  Database db;
  db.Put("Busy", std::move(r));
  return db;
}

void RunQuery(benchmark::State& state, const std::string& text) {
  const int n = static_cast<int>(state.range(0));
  Database db = MakeDb(n);
  itdb::query::QueryOptions options;
  options.algebra.max_tuples = std::int64_t{1} << 26;
  options.algebra.max_complement_universe = std::int64_t{1} << 26;
  for (auto _ : state) {
    auto r = itdb::query::EvalBooleanQueryString(db, text, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}

// Existential conjunctive query (join + projection).
void BM_Query_ExistentialJoin(benchmark::State& state) {
  RunQuery(state,
           "EXISTS t . EXISTS s1 . EXISTS e1 . EXISTS s2 . EXISTS e2 . "
           "EXISTS w1 . EXISTS w2 . "
           "Busy(s1, e1, w1) AND Busy(s2, e2, w2) AND "
           "s1 <= t AND t <= e1 AND s2 <= t AND t <= e2 AND NOT w1 = w2");
}
BENCHMARK(BM_Query_ExistentialJoin)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

// One negation (complement over a one-column relation).
void BM_Query_SingleNegation(benchmark::State& state) {
  RunQuery(state,
           "EXISTS t . 0 <= t AND t <= 1000000 AND "
           "NOT (EXISTS s . EXISTS e . EXISTS w . "
           "Busy(s, e, w) AND s <= t AND t <= e)");
}
BENCHMARK(BM_Query_SingleNegation)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

// Universal quantification (two complements).
void BM_Query_Universal(benchmark::State& state) {
  RunQuery(state,
           "FORALL t . EXISTS s . EXISTS e . EXISTS w . "
           "Busy(s, e, w) AND s <= t AND t <= e");
}
BENCHMARK(BM_Query_Universal)->RangeMultiplier(2)->Range(4, 128)->Complexity();

}  // namespace

BENCHMARK_MAIN();
