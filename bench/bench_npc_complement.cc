// Theorem 3.6: nonemptiness-of-complement is NP-complete.
//
// The bench runs the 3-SAT -> complement reduction pipeline on random
// instances and reports
//   * scaling with the number of variables (= temporal arity of the
//     reduction relation): exponential, as the theorem predicts;
//   * agreement and relative cost against the DPLL baseline;
//   * scaling with the number of clauses at fixed arity (the fixed-schema
//     polynomial direction).

#include <benchmark/benchmark.h>

#include "core/algebra.h"
#include "sat/reduction.h"
#include "sat/solver.h"

namespace {

using itdb::AlgebraOptions;
using itdb::sat::CnfFormula;
using itdb::sat::RandomThreeSat;

AlgebraOptions BigBudget() {
  AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  options.max_complement_universe = std::int64_t{1} << 26;
  return options;
}

void BM_ComplementSat_VsVars(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  // Clause/variable ratio ~4.2: near the 3-SAT phase transition.
  CnfFormula f = RandomThreeSat(42, vars, vars * 42 / 10);
  AlgebraOptions options = BigBudget();
  std::int64_t complement_tuples = 0;
  for (auto _ : state) {
    auto r = itdb::sat::SolveViaComplement(f, options);
    if (r.ok()) complement_tuples = r.value().complement_tuples;
    benchmark::DoNotOptimize(r);
  }
  state.counters["complement_tuples"] =
      benchmark::Counter(static_cast<double>(complement_tuples));
  state.SetComplexityN(vars);
}
BENCHMARK(BM_ComplementSat_VsVars)->DenseRange(4, 12)->Complexity();

void BM_Dpll_VsVars(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  CnfFormula f = RandomThreeSat(42, vars, vars * 42 / 10);
  for (auto _ : state) {
    auto r = itdb::sat::SolveDpll(f);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_Dpll_VsVars)->DenseRange(4, 12)->Complexity();

void BM_ComplementSat_VsClauses(benchmark::State& state) {
  const int clauses = static_cast<int>(state.range(0));
  CnfFormula f = RandomThreeSat(7, 8, clauses);
  AlgebraOptions options = BigBudget();
  for (auto _ : state) {
    auto r = itdb::sat::SolveViaComplement(f, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(clauses);
}
BENCHMARK(BM_ComplementSat_VsClauses)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
