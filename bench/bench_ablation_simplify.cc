// Ablation: the redundancy-elimination pass the paper leaves open
// ("one would also attempt to eliminate the redundancies...", Section 3.1).
//
// A chain of unions and subtractions accumulates subsumed and empty tuples;
// running Simplify between steps trades per-step cost against smaller
// intermediates.  The bench measures a fixed pipeline with the pass on and
// off, reporting both time and final tuple counts.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"
#include "core/simplify.h"

namespace {

using itdb::AlgebraOptions;
using itdb::GeneralizedRelation;
using itdb::bench::MakeNormalizedRelation;

// Union of shifted copies followed by repeated subtraction: produces many
// overlapping and empty tuples.
itdb::Result<GeneralizedRelation> Pipeline(const AlgebraOptions& options,
                                           int rounds) {
  GeneralizedRelation acc = MakeNormalizedRelation(1, 32, 2, 6);
  for (int i = 0; i < rounds; ++i) {
    GeneralizedRelation other =
        MakeNormalizedRelation(static_cast<std::uint32_t>(i + 2), 16, 2, 6);
    ITDB_ASSIGN_OR_RETURN(acc, itdb::Union(acc, other, options));
    GeneralizedRelation minus =
        MakeNormalizedRelation(static_cast<std::uint32_t>(100 + i), 4, 2, 6);
    ITDB_ASSIGN_OR_RETURN(acc, itdb::Subtract(acc, minus, options));
  }
  return acc;
}

void BM_Pipeline_NoSimplify(benchmark::State& state) {
  AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  options.simplify = false;
  std::int64_t tuples = 0;
  for (auto _ : state) {
    auto r = Pipeline(options, static_cast<int>(state.range(0)));
    if (r.ok()) tuples = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["final_tuples"] =
      benchmark::Counter(static_cast<double>(tuples));
}
BENCHMARK(BM_Pipeline_NoSimplify)->DenseRange(1, 4);

void BM_Pipeline_WithSimplify(benchmark::State& state) {
  AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  options.simplify = true;
  std::int64_t tuples = 0;
  for (auto _ : state) {
    auto r = Pipeline(options, static_cast<int>(state.range(0)));
    if (r.ok()) tuples = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["final_tuples"] =
      benchmark::Counter(static_cast<double>(tuples));
}
BENCHMARK(BM_Pipeline_WithSimplify)->DenseRange(1, 4);

void BM_SimplifyPass_Alone(benchmark::State& state) {
  AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  auto built = Pipeline(options, 3);
  if (!built.ok()) {
    state.SkipWithError("pipeline failed");
    return;
  }
  GeneralizedRelation r = std::move(built).value();
  std::int64_t before = r.size();
  std::int64_t after = 0;
  for (auto _ : state) {
    auto s = itdb::Simplify(r);
    if (s.ok()) after = s.value().size();
    benchmark::DoNotOptimize(s);
  }
  state.counters["tuples_before"] =
      benchmark::Counter(static_cast<double>(before));
  state.counters["tuples_after"] =
      benchmark::Counter(static_cast<double>(after));
}
BENCHMARK(BM_SimplifyPass_Alone);

}  // namespace

BENCHMARK_MAIN();
