// Tables 2 and 3, rows "Negation" / "Subtraction": polynomial in N under the
// fixed-schema measure, EXPTIME under the general measure.
//
// * Negation vs N at fixed arity: polynomial (the Appendix A.6 incremental
//   DNF with reduction keeps intermediate results within the
//   (N+1)^{m(m+1)} bound).
// * Negation vs arity at fixed N: the k^m residue universe makes the cost
//   exponential in m -- the separation the paper's Table 3 records.
// * Subtraction vs N: fixed-schema polynomial.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"

namespace {

using itdb::AlgebraOptions;
using itdb::GeneralizedRelation;
using itdb::bench::MakeNormalizedRelation;

AlgebraOptions BigBudget() {
  AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  options.max_complement_universe = std::int64_t{1} << 26;
  return options;
}

void BM_Negation_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation r = MakeNormalizedRelation(1, n, 2, 6);
  AlgebraOptions options = BigBudget();
  std::int64_t out_tuples = 0;
  for (auto _ : state) {
    auto c = itdb::Complement(r, options);
    if (c.ok()) out_tuples = c.value().size();
    benchmark::DoNotOptimize(c);
  }
  state.counters["complement_tuples"] =
      benchmark::Counter(static_cast<double>(out_tuples));
  state.SetComplexityN(n);
}
BENCHMARK(BM_Negation_VsN)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_Negation_VsArity(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  // Period 4: the universe has 4^m residue vectors -- exponential in m.
  GeneralizedRelation r = MakeNormalizedRelation(1, 16, m, 4);
  AlgebraOptions options = BigBudget();
  std::int64_t out_tuples = 0;
  for (auto _ : state) {
    auto c = itdb::Complement(r, options);
    if (c.ok()) out_tuples = c.value().size();
    benchmark::DoNotOptimize(c);
  }
  state.counters["complement_tuples"] =
      benchmark::Counter(static_cast<double>(out_tuples));
  state.SetComplexityN(m);
}
BENCHMARK(BM_Negation_VsArity)->DenseRange(1, 8)->Complexity();

void BM_Subtraction_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, n, 2, 6);
  // Subtrahend of fixed size: the fixed-schema polynomial case.
  GeneralizedRelation b = MakeNormalizedRelation(2, 8, 2, 6);
  AlgebraOptions options = BigBudget();
  for (auto _ : state) {
    auto d = itdb::Subtract(a, b, options);
    benchmark::DoNotOptimize(d);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Subtraction_VsN)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_Subtraction_VsSubtrahend(benchmark::State& state) {
  // Growing the subtrahend multiplies the result by up to m(m+1) per
  // subtracted tuple before reduction; the reduction keeps it polynomial.
  const int n2 = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, 32, 2, 6);
  GeneralizedRelation b = MakeNormalizedRelation(2, n2, 2, 6);
  AlgebraOptions options = BigBudget();
  std::int64_t out_tuples = 0;
  for (auto _ : state) {
    auto d = itdb::Subtract(a, b, options);
    if (d.ok()) out_tuples = d.value().size();
    benchmark::DoNotOptimize(d);
  }
  state.counters["difference_tuples"] =
      benchmark::Counter(static_cast<double>(out_tuples));
  state.SetComplexityN(n2);
}
BENCHMARK(BM_Subtraction_VsSubtrahend)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
