// Extension bench: residue coalescing (core/coalesce.h), the inverse of
// Lemma 3.1.  Complements enumerate the k^m residue universe (Appendix
// A.6), so their outputs are full of mergeable families; this bench
// measures the pass's cost and compression on complement outputs of
// growing period.

#include <benchmark/benchmark.h>

#include "core/algebra.h"
#include "core/coalesce.h"

namespace {

using itdb::GeneralizedRelation;

// The complement of a sparse periodic set: one residue out of k occupied.
GeneralizedRelation SparseComplement(std::int64_t k) {
  GeneralizedRelation r(itdb::Schema::Temporal(1));
  benchmark::DoNotOptimize(
      r.AddTuple(itdb::GeneralizedTuple({itdb::Lrp::Make(3 % k, k)})));
  itdb::AlgebraOptions options;
  options.max_complement_universe = std::int64_t{1} << 26;
  auto c = itdb::Complement(r, options);
  return std::move(c).value();
}

void BM_Coalesce_ComplementOutput(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  GeneralizedRelation comp = SparseComplement(k);
  std::int64_t before = comp.size();
  std::int64_t after = 0;
  for (auto _ : state) {
    auto packed = itdb::CoalesceResidues(comp);
    if (packed.ok()) after = packed.value().size();
    benchmark::DoNotOptimize(packed);
  }
  state.counters["tuples_before"] =
      benchmark::Counter(static_cast<double>(before));
  state.counters["tuples_after"] =
      benchmark::Counter(static_cast<double>(after));
  state.SetComplexityN(k);
}
BENCHMARK(BM_Coalesce_ComplementOutput)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_Coalesce_TwoColumnGrid(benchmark::State& state) {
  // A full k x k residue grid minus one cell: collapses massively.
  const std::int64_t k = state.range(0);
  GeneralizedRelation r(itdb::Schema::Temporal(2));
  for (std::int64_t a = 0; a < k; ++a) {
    for (std::int64_t b = 0; b < k; ++b) {
      if (a == 0 && b == 0) continue;
      benchmark::DoNotOptimize(r.AddTuple(itdb::GeneralizedTuple(
          {itdb::Lrp::Make(a, k), itdb::Lrp::Make(b, k)})));
    }
  }
  std::int64_t after = 0;
  for (auto _ : state) {
    auto packed = itdb::CoalesceResidues(r);
    if (packed.ok()) after = packed.value().size();
    benchmark::DoNotOptimize(packed);
  }
  state.counters["tuples_before"] =
      benchmark::Counter(static_cast<double>(r.size()));
  state.counters["tuples_after"] =
      benchmark::Counter(static_cast<double>(after));
}
BENCHMARK(BM_Coalesce_TwoColumnGrid)->Arg(4)->Arg(8)->Arg(12);

void BM_Coalesce_NoOpOnIncompressible(benchmark::State& state) {
  // Disjoint odd periods: nothing merges; measures pure scan overhead.
  GeneralizedRelation r(itdb::Schema::Temporal(1));
  for (std::int64_t k : {3, 5, 7, 11, 13}) {
    benchmark::DoNotOptimize(
        r.AddTuple(itdb::GeneralizedTuple({itdb::Lrp::Make(1, k)})));
  }
  for (auto _ : state) {
    auto packed = itdb::CoalesceResidues(r);
    benchmark::DoNotOptimize(packed);
  }
}
BENCHMARK(BM_Coalesce_NoOpOnIncompressible);

}  // namespace

BENCHMARK_MAIN();
