// Section 3.2.1: intersecting two lrps costs O(ln k) via the extended
// Euclid algorithm -- logarithmic in the magnitude of the periods.

#include <benchmark/benchmark.h>

#include "core/lrp.h"
#include "util/numeric.h"

namespace {

using itdb::Lrp;

void BM_LrpIntersect_VsPeriod(benchmark::State& state) {
  // Consecutive Fibonacci-like periods are the worst case for Euclid.
  const std::int64_t k = state.range(0);
  Lrp a = Lrp::Make(1, k);
  Lrp b = Lrp::Make(0, k + 1);  // gcd(k, k+1) = 1: maximal iteration count.
  for (auto _ : state) {
    auto r = Lrp::Intersect(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_LrpIntersect_VsPeriod)
    ->RangeMultiplier(8)
    ->Range(8, std::int64_t{1} << 30)
    ->Complexity(benchmark::oLogN);

void BM_LrpSubtract(benchmark::State& state) {
  const std::int64_t ratio = state.range(0);
  Lrp a = Lrp::Make(1, 4);
  Lrp b = Lrp::Make(1, 4 * ratio);  // b inside a: ratio-1 residue classes.
  for (auto _ : state) {
    auto r = Lrp::Subtract(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(ratio);
}
BENCHMARK(BM_LrpSubtract)->RangeMultiplier(4)->Range(2, 512)->Complexity(
    benchmark::oN);

void BM_ExtGcd(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  for (auto _ : state) {
    auto r = itdb::ExtGcd(k, k + 1);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_ExtGcd)
    ->RangeMultiplier(64)
    ->Range(8, std::int64_t{1} << 40)
    ->Complexity(benchmark::oLogN);

}  // namespace

BENCHMARK_MAIN();
