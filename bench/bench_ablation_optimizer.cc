// Ablation: the miniscoping query optimizer (query/optimize.h).
//
// Negation compiles to the Appendix A.6 complement whose cost is
// exponential in the operand's column count, so quantifier scope directly
// controls evaluation cost.  The bench evaluates the same queries with the
// optimizer on and off.

#include <string>

#include <benchmark/benchmark.h>

#include "query/eval.h"
#include "storage/database.h"

namespace {

using itdb::Database;

Database RobotsDb() {
  auto db = Database::FromText(R"(
    relation Perform(T1: time, T2: time, Robot: string, Task: string) {
      [8n, 6+8n | "r1", "task2"] : T1 = T2 - 6;
      [7+8n, 7+8n | "r2", "task1"] : T1 = T2;
    }
  )");
  return std::move(db).value();
}

// Example 4.1 exactly as printed in the paper: the universal block scopes
// over the whole implication.
constexpr const char* kExample41 = R"(
  EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
    FORALL t3 . FORALL t4 . FORALL z .
      (Perform(t1, t2, x, "task2") AND t1 <= t3 <= t4 <= t2
         AND t1 + 5 <= t2)
      -> NOT Perform(t3, t4, y, z)
)";

// A smaller universally quantified query with one movable conjunct.
constexpr const char* kSmallUniversal = R"(
  FORALL t3 . FORALL z .
    (Perform(0, 6, "r1", "task2") AND 0 <= t3 AND t3 <= 6)
    -> NOT Perform(t3, t3, "r2", z)
)";

void RunCase(benchmark::State& state, const char* text, bool optimize) {
  Database db = RobotsDb();
  itdb::query::QueryOptions options;
  options.optimize = optimize;
  options.algebra.max_tuples = std::int64_t{1} << 26;
  options.algebra.max_complement_universe = std::int64_t{1} << 26;
  for (auto _ : state) {
    auto r = itdb::query::EvalBooleanQueryString(db, text, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
}

void BM_Example41_Optimized(benchmark::State& state) {
  RunCase(state, kExample41, /*optimize=*/true);
}
BENCHMARK(BM_Example41_Optimized)->Unit(benchmark::kMillisecond);

void BM_Example41_Naive(benchmark::State& state) {
  RunCase(state, kExample41, /*optimize=*/false);
}
BENCHMARK(BM_Example41_Naive)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);  // Deliberately naive: one iteration is plenty.

void BM_SmallUniversal_Optimized(benchmark::State& state) {
  RunCase(state, kSmallUniversal, /*optimize=*/true);
}
BENCHMARK(BM_SmallUniversal_Optimized)->Unit(benchmark::kMillisecond);

void BM_SmallUniversal_Naive(benchmark::State& state) {
  RunCase(state, kSmallUniversal, /*optimize=*/false);
}
BENCHMARK(BM_SmallUniversal_Naive)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
