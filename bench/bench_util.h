// Deterministic workload generators shared by the benchmark binaries.
//
// Appendix A of the paper analyses operations on *normalized* databases:
// every lrp in a relation has the same period k.  MakeNormalizedRelation
// generates exactly that shape; offsets and constraints are pseudo-random
// but reproducible, so run-to-run timings are comparable.

#ifndef ITDB_BENCH_BENCH_UTIL_H_
#define ITDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "core/algebra.h"
#include "core/index.h"
#include "core/relation.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace itdb {
namespace bench {

/// Shared benchmark main with two conveniences on top of the stock
/// google-benchmark flags: `--json <path>` (or `--json=<path>`) is rewritten
/// into `--benchmark_out=<path> --benchmark_out_format=json`, so CI can ask
/// every harness for a machine-readable report with a uniform flag; and
/// `--trace-json <path>` (or `=`) installs a process-global span tracer for
/// the run and writes a chrome://tracing-compatible JSON trace on exit.
/// Tracing records the algebra-kernel spans (obs/trace.h); results and
/// timings below the tracer's per-span overhead are unaffected.
inline int BenchMain(int argc, char** argv) {
  std::vector<std::string> args;
  std::string trace_path;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.push_back("--benchmark_out_format=json");
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.push_back(std::string("--benchmark_out=") + (arg + 7));
      args.push_back("--benchmark_out_format=json");
    } else if (std::strcmp(arg, "--trace-json") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(arg, "--trace-json=", 13) == 0) {
      trace_path = arg + 13;
    } else {
      args.push_back(arg);
    }
  }
  obs::Tracer tracer;
  if (!trace_path.empty()) obs::InstallGlobalTracer(&tracer);
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    obs::InstallGlobalTracer(nullptr);
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    trace_file << tracer.ToChromeTraceJson();
  }
  return 0;
}

#define ITDB_BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                            \
    return ::itdb::bench::BenchMain(argc, argv);               \
  }                                                            \
  static_assert(true, "require a trailing semicolon")

/// Records the parallel-execution configuration of a run as benchmark
/// counters: "threads" is the resolved worker count (after the ITDB_THREADS
/// / hardware default), "cache" flags an attached normalization memo-cache,
/// and "cache_hits"/"cache_misses" report its hit statistics.
inline void RecordParallelCounters(benchmark::State& state,
                                   const AlgebraOptions& options) {
  state.counters["threads"] = benchmark::Counter(
      static_cast<double>(ResolveThreads(options.threads)));
  state.counters["cache"] = benchmark::Counter(
      options.normalize_cache != nullptr ? 1.0 : 0.0);
  if (options.normalize_cache != nullptr) {
    NormalizeCache::Stats stats = options.normalize_cache->stats();
    state.counters["cache_hits"] =
        benchmark::Counter(static_cast<double>(stats.hits));
    state.counters["cache_misses"] =
        benchmark::Counter(static_cast<double>(stats.misses));
  }
}

/// A relation with `num_tuples` tuples over `arity` temporal columns, every
/// lrp of period `period` (the normalized shape of Appendix A), random
/// offsets, and up to `max_constraints` random difference/bound constraints
/// per tuple.
inline GeneralizedRelation MakeNormalizedRelation(std::uint32_t seed,
                                                  int num_tuples, int arity,
                                                  std::int64_t period,
                                                  int max_constraints = 2) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> offset_pick(0, period - 1);
  std::uniform_int_distribution<std::int64_t> bound_pick(-4 * period,
                                                         4 * period);
  std::uniform_int_distribution<int> count_pick(0, max_constraints);
  std::uniform_int_distribution<int> col_pick(0, arity - 1);
  std::uniform_int_distribution<int> kind_pick(0, 2);
  GeneralizedRelation r(Schema::Temporal(arity));
  for (int t = 0; t < num_tuples; ++t) {
    std::vector<Lrp> lrps;
    lrps.reserve(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng), period));
    }
    GeneralizedTuple tuple(std::move(lrps));
    int n = count_pick(rng);
    for (int c = 0; c < n; ++c) {
      int i = col_pick(rng);
      std::int64_t b = bound_pick(rng);
      switch (kind_pick(rng)) {
        case 0:
          tuple.mutable_constraints().AddUpperBound(i, b);
          break;
        case 1:
          tuple.mutable_constraints().AddLowerBound(i, -b);
          break;
        default: {
          if (arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % arity;
          tuple.mutable_constraints().AddDifferenceUpperBound(i, j, b);
          break;
        }
      }
    }
    Status s = r.AddTuple(std::move(tuple));
    (void)s;  // Arity matches by construction.
  }
  return r;
}

/// Reports the indexed-kernel statistics of a run as benchmark counters.
/// `pairs_total` is the raw |a| x |b| product the naive kernels scan,
/// `pairs_candidate` the pairs that survived the hash partition, and the
/// `pruned_*` counters the candidates discarded by the O(1) temporal
/// prefilters before any DBM work.
inline void RecordKernelCounters(benchmark::State& state,
                                 const KernelCounters& counters) {
  auto put = [&state](const char* name,
                      const std::atomic<std::int64_t>& value) {
    state.counters[name] = benchmark::Counter(
        static_cast<double>(value.load(std::memory_order_relaxed)));
  };
  put("pairs_total", counters.pairs_total);
  put("pairs_candidate", counters.pairs_candidate);
  put("pruned_residue", counters.pairs_pruned_residue);
  put("pruned_hull", counters.pairs_pruned_hull);
  put("closures_incremental", counters.closures_incremental);
  put("closures_full", counters.closures_full);
  put("tuples_subsumed", counters.tuples_subsumed);
}

/// Like MakeNormalizedRelation but with one integer data attribute "K"
/// drawn uniformly from [0, key_range).  With key_range >> num_tuples the
/// expected number of key-matching pairs in a self-or-sibling join is far
/// below the raw product -- the selective workload the hash-partitioned
/// kernels are built for.
inline GeneralizedRelation MakeKeyedRelation(std::uint32_t seed,
                                             int num_tuples, int arity,
                                             std::int64_t period,
                                             std::int64_t key_range,
                                             int max_constraints = 2) {
  GeneralizedRelation base =
      MakeNormalizedRelation(seed, num_tuples, arity, period, max_constraints);
  // Re-derive key values from an independent stream so changing the
  // constraint generator never reshuffles keys.
  std::mt19937 rng(seed ^ 0x9e3779b9u);
  std::uniform_int_distribution<std::int64_t> key_pick(0, key_range - 1);
  std::vector<std::string> temporal_names;
  for (int i = 0; i < arity; ++i) {
    temporal_names.push_back("T" + std::to_string(i + 1));
  }
  GeneralizedRelation r(Schema(std::move(temporal_names), {"K"},
                               {DataType::kInt}));
  for (const GeneralizedTuple& t : base.tuples()) {
    GeneralizedTuple keyed(
        std::vector<Lrp>(t.temporal()),
        std::vector<Value>{Value(key_pick(rng))});
    keyed.set_constraints(t.constraints());
    Status s = r.AddTuple(std::move(keyed));
    (void)s;  // Arity matches by construction.
  }
  return r;
}

/// A relation whose tuples mix the given periods (NOT normalized), for the
/// normalization benchmarks.
inline GeneralizedRelation MakeMixedPeriodRelation(
    std::uint32_t seed, int num_tuples, int arity,
    const std::vector<std::int64_t>& periods) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> period_pick(0,
                                                         periods.size() - 1);
  std::uniform_int_distribution<std::int64_t> offset_pick(-50, 50);
  GeneralizedRelation r(Schema::Temporal(arity));
  for (int t = 0; t < num_tuples; ++t) {
    std::vector<Lrp> lrps;
    lrps.reserve(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng), periods[period_pick(rng)]));
    }
    Status s = r.AddTuple(GeneralizedTuple(std::move(lrps)));
    (void)s;
  }
  return r;
}

}  // namespace bench
}  // namespace itdb

#endif  // ITDB_BENCH_BENCH_UTIL_H_
