// Deterministic workload generators shared by the benchmark binaries.
//
// Appendix A of the paper analyses operations on *normalized* databases:
// every lrp in a relation has the same period k.  MakeNormalizedRelation
// generates exactly that shape; offsets and constraints are pseudo-random
// but reproducible, so run-to-run timings are comparable.

#ifndef ITDB_BENCH_BENCH_UTIL_H_
#define ITDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/algebra.h"
#include "core/relation.h"
#include "util/thread_pool.h"

namespace itdb {
namespace bench {

/// Records the parallel-execution configuration of a run as benchmark
/// counters: "threads" is the resolved worker count (after the ITDB_THREADS
/// / hardware default), "cache" flags an attached normalization memo-cache,
/// and "cache_hits"/"cache_misses" report its hit statistics.
inline void RecordParallelCounters(benchmark::State& state,
                                   const AlgebraOptions& options) {
  state.counters["threads"] = benchmark::Counter(
      static_cast<double>(ResolveThreads(options.threads)));
  state.counters["cache"] = benchmark::Counter(
      options.normalize_cache != nullptr ? 1.0 : 0.0);
  if (options.normalize_cache != nullptr) {
    NormalizeCache::Stats stats = options.normalize_cache->stats();
    state.counters["cache_hits"] =
        benchmark::Counter(static_cast<double>(stats.hits));
    state.counters["cache_misses"] =
        benchmark::Counter(static_cast<double>(stats.misses));
  }
}

/// A relation with `num_tuples` tuples over `arity` temporal columns, every
/// lrp of period `period` (the normalized shape of Appendix A), random
/// offsets, and up to `max_constraints` random difference/bound constraints
/// per tuple.
inline GeneralizedRelation MakeNormalizedRelation(std::uint32_t seed,
                                                  int num_tuples, int arity,
                                                  std::int64_t period,
                                                  int max_constraints = 2) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> offset_pick(0, period - 1);
  std::uniform_int_distribution<std::int64_t> bound_pick(-4 * period,
                                                         4 * period);
  std::uniform_int_distribution<int> count_pick(0, max_constraints);
  std::uniform_int_distribution<int> col_pick(0, arity - 1);
  std::uniform_int_distribution<int> kind_pick(0, 2);
  GeneralizedRelation r(Schema::Temporal(arity));
  for (int t = 0; t < num_tuples; ++t) {
    std::vector<Lrp> lrps;
    lrps.reserve(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng), period));
    }
    GeneralizedTuple tuple(std::move(lrps));
    int n = count_pick(rng);
    for (int c = 0; c < n; ++c) {
      int i = col_pick(rng);
      std::int64_t b = bound_pick(rng);
      switch (kind_pick(rng)) {
        case 0:
          tuple.mutable_constraints().AddUpperBound(i, b);
          break;
        case 1:
          tuple.mutable_constraints().AddLowerBound(i, -b);
          break;
        default: {
          if (arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % arity;
          tuple.mutable_constraints().AddDifferenceUpperBound(i, j, b);
          break;
        }
      }
    }
    Status s = r.AddTuple(std::move(tuple));
    (void)s;  // Arity matches by construction.
  }
  return r;
}

/// A relation whose tuples mix the given periods (NOT normalized), for the
/// normalization benchmarks.
inline GeneralizedRelation MakeMixedPeriodRelation(
    std::uint32_t seed, int num_tuples, int arity,
    const std::vector<std::int64_t>& periods) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> period_pick(0,
                                                         periods.size() - 1);
  std::uniform_int_distribution<std::int64_t> offset_pick(-50, 50);
  GeneralizedRelation r(Schema::Temporal(arity));
  for (int t = 0; t < num_tuples; ++t) {
    std::vector<Lrp> lrps;
    lrps.reserve(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng), periods[period_pick(rng)]));
    }
    Status s = r.AddTuple(GeneralizedTuple(std::move(lrps)));
    (void)s;
  }
  return r;
}

}  // namespace bench
}  // namespace itdb

#endif  // ITDB_BENCH_BENCH_UTIL_H_
