// The query-service path: what a statement costs once it leaves the
// evaluator and has to travel through the session layer (parse -> dispatch
// -> eval -> render) and the socket server (frame -> admission -> pump ->
// frame back).
//
// The catalog and queries are deliberately cheap -- a handful of lrp tuples
// with small periods -- so the timings isolate the service overhead the
// server adds, not the algebra underneath.  BM_Session_* measures the
// in-process layer the shell and server share; BM_Server_UnixRoundTrip adds
// the wire (one persistent Unix-domain connection, one frame per
// iteration); BM_Server_ConcurrentClients adds contention (8 clients firing
// the identical query at once, where the plan batcher coalesces followers
// onto the leader's evaluation -- the `coalesced` counter reports how often
// that happened).

#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"
#include "server/shared_database.h"
#include "storage/database.h"

namespace {

using itdb::Database;
using itdb::Result;
using itdb::server::ResponseDecoder;
using itdb::server::ResponseFrame;
using itdb::server::ResponseStatus;
using itdb::server::Server;
using itdb::server::ServerOptions;
using itdb::server::Session;
using itdb::server::SharedDatabase;

// Service visits at 13 mod 30 intersect audits; windows never do (odd vs
// even phases) -- cheap queries with a non-trivial answer.
constexpr const char* kCatalog = R"(
relation Service(T: time) {
  [3+10n] : T >= 3;
}
relation Window(T: time) {
  [4n];
}
relation Audit(T: time) {
  [1+6n];
}
)";

constexpr const char* kAsk = "ask EXISTS t . Service(t) AND Audit(t)";

Database MakeCatalog() {
  Result<Database> db = Database::FromText(kCatalog);
  if (!db.ok()) std::abort();
  return std::move(db).value();
}

// --- In-process session layer -------------------------------------------

void BM_Session_AskRoundTrip(benchmark::State& state) {
  Database db = MakeCatalog();
  SharedDatabase shared(&db);
  Session session(&shared);
  for (auto _ : state) {
    std::ostringstream out;
    itdb::Status s = session.Execute(kAsk, out);
    if (!s.ok()) state.SkipWithError(std::string(s.message()).c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["queries"] =
      benchmark::Counter(static_cast<double>(session.stats().queries));
}
BENCHMARK(BM_Session_AskRoundTrip);

void BM_Session_QueryRender(benchmark::State& state) {
  Database db = MakeCatalog();
  SharedDatabase shared(&db);
  Session session(&shared);
  for (auto _ : state) {
    std::ostringstream out;
    itdb::Status s = session.Execute("query Service(t) AND t <= 200", out);
    if (!s.ok()) state.SkipWithError(std::string(s.message()).c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Session_QueryRender);

// --- Over the wire -------------------------------------------------------

// A blocking client: one connection, one request/response at a time.
class BenchClient {
 public:
  explicit BenchClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) std::abort();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      std::abort();
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  BenchClient(const BenchClient&) = delete;
  BenchClient& operator=(const BenchClient&) = delete;

  ResponseFrame RoundTrip(const std::string& statement) {
    std::string request = statement + "\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
      ssize_t n = ::send(fd_, request.data() + sent, request.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) std::abort();
      sent += static_cast<std::size_t>(n);
    }
    char buf[4096];
    while (true) {
      Result<std::optional<ResponseFrame>> frame = decoder_.Next();
      if (!frame.ok()) std::abort();
      if (frame.value().has_value()) return *std::move(frame).value();
      ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) std::abort();
      decoder_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  ResponseDecoder decoder_;
};

std::string BenchSocketPath() {
  static std::atomic<int> serial{0};
  return "/tmp/itdb_bench_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(serial.fetch_add(1)) + ".sock";
}

void BM_Server_UnixRoundTrip(benchmark::State& state) {
  Database db = MakeCatalog();
  ServerOptions options;
  options.unix_path = BenchSocketPath();
  Server server(&db, options);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  {
    BenchClient client(options.unix_path);
    for (auto _ : state) {
      ResponseFrame frame = client.RoundTrip(kAsk);
      if (frame.status != ResponseStatus::kOk) {
        state.SkipWithError(frame.payload.c_str());
        break;
      }
      benchmark::DoNotOptimize(frame);
    }
  }
  server.Stop();
  state.counters["requests"] =
      benchmark::Counter(static_cast<double>(server.requests_total()));
}
BENCHMARK(BM_Server_UnixRoundTrip);

// Eight clients fire the identical query simultaneously, once per
// iteration: the admission queue sees a burst and the plan batcher turns
// duplicate concurrent evaluations into followers of one leader.  Thread
// start/join overhead is part of each iteration (identical every round, and
// dwarfed by the eight round trips it fences).
void BM_Server_ConcurrentClients(benchmark::State& state) {
  const int kClients = static_cast<int>(state.range(0));
  Database db = MakeCatalog();
  ServerOptions options;
  options.unix_path = BenchSocketPath();
  Server server(&db, options);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  {
    std::vector<std::unique_ptr<BenchClient>> clients;
    clients.reserve(static_cast<std::size_t>(kClients));
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<BenchClient>(options.unix_path));
    }
    std::atomic<bool> failed{false};
    for (auto _ : state) {
      std::vector<std::thread> threads;
      threads.reserve(clients.size());
      for (auto& client : clients) {
        threads.emplace_back([&client, &failed] {
          ResponseFrame frame = client->RoundTrip(
              "query Service(t) AND Audit(t) AND t <= 600");
          if (frame.status != ResponseStatus::kOk) failed.store(true);
        });
      }
      for (std::thread& t : threads) t.join();
      if (failed.load()) {
        state.SkipWithError("request failed");
        break;
      }
    }
    state.counters["coalesced"] = benchmark::Counter(
        static_cast<double>(server.batcher().stats().coalesced));
    state.counters["batch_leads"] = benchmark::Counter(
        static_cast<double>(server.batcher().stats().leads));
  }
  server.Stop();
}
BENCHMARK(BM_Server_ConcurrentClients)->Arg(8)->UseRealTime();

}  // namespace

ITDB_BENCHMARK_MAIN();
