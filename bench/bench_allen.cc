// Extension bench: Allen interval joins over generalized relations.
// AllenJoin is cross product + constant many selections, so it inherits the
// O(N^2) fixed-schema bound of Table 2's cross-product row.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "interval/allen.h"

namespace {

using itdb::AllenRelation;
using itdb::GeneralizedRelation;

GeneralizedRelation Intervals(std::uint32_t seed, int n, const char* s,
                              const char* e) {
  GeneralizedRelation base =
      itdb::bench::MakeNormalizedRelation(seed, n, 2, 16, 0);
  GeneralizedRelation out(itdb::Schema({s, e}, {}, {}));
  for (itdb::GeneralizedTuple t : base.tuples()) {
    // Make each tuple a genuine interval family: E = S + (1..4).
    std::int64_t len = 1 + (t.lrp(0).offset() % 4);
    std::vector<itdb::Lrp> lrps = {
        t.lrp(0), itdb::Lrp::Make(t.lrp(0).offset() + len, 16)};
    itdb::GeneralizedTuple iv(std::move(lrps));
    iv.mutable_constraints().AddDifferenceEquality(0, 1, -len);
    benchmark::DoNotOptimize(out.AddTuple(std::move(iv)));
  }
  return out;
}

void BM_AllenJoin_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = Intervals(1, n, "S", "E");
  GeneralizedRelation b = Intervals(2, n, "BS", "BE");
  itdb::AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  for (auto _ : state) {
    auto j = itdb::AllenJoin(a, b, AllenRelation::kOverlaps, options);
    benchmark::DoNotOptimize(j);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AllenJoin_VsN)->RangeMultiplier(2)->Range(16, 256)->Complexity(
    benchmark::oNSquared);

void BM_AllenJoin_AllRelations(benchmark::State& state) {
  GeneralizedRelation a = Intervals(1, 32, "S", "E");
  GeneralizedRelation b = Intervals(2, 32, "BS", "BE");
  itdb::AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  for (auto _ : state) {
    for (AllenRelation rel : itdb::kAllAllenRelations) {
      auto j = itdb::AllenJoin(a, b, rel, options);
      benchmark::DoNotOptimize(j);
    }
  }
}
BENCHMARK(BM_AllenJoin_AllRelations);

}  // namespace

BENCHMARK_MAIN();
