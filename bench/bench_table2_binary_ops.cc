// Table 2, rows "Cross-product", "Intersection", "Join": fixed-schema
// O(N^2), general O(m^2 N^2).
//
// Also demonstrates the paper's density remark for intersection (Appendix
// A.3): with uniformly distributed residues, only ~N^2/k^m tuple pairs have
// a nonempty intersection, so larger periods make intersection cheaper at
// equal N.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"

namespace {

using itdb::AlgebraOptions;
using itdb::GeneralizedRelation;
using itdb::KernelCounters;
using itdb::bench::MakeKeyedRelation;
using itdb::bench::MakeNormalizedRelation;

AlgebraOptions BigBudget() {
  AlgebraOptions options;
  options.max_tuples = std::int64_t{1} << 26;
  return options;
}

/// The Table-2 complexity rows measure the paper's naive O(m^2 N^2) pair
/// scan; pin the indexed kernels off so the asymptotics stay the paper's.
AlgebraOptions NaiveBigBudget() {
  AlgebraOptions options = BigBudget();
  options.use_index = false;
  return options;
}

void BM_Intersect_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b = MakeNormalizedRelation(2, n, 2, 12);
  AlgebraOptions options = NaiveBigBudget();
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Intersect_VsN)->RangeMultiplier(2)->Range(32, 1024)->Complexity(
    benchmark::oNSquared);

void BM_Intersect_DensityEffect(benchmark::State& state) {
  // Same N, growing period k: the number of surviving tuples falls as
  // N^2 / k^m (uniform residues).
  const std::int64_t k = state.range(0);
  GeneralizedRelation a = MakeNormalizedRelation(1, 256, 2, k);
  GeneralizedRelation b = MakeNormalizedRelation(2, 256, 2, k);
  AlgebraOptions options = NaiveBigBudget();
  std::int64_t result_tuples = 0;
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    if (r.ok()) result_tuples = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_tuples"] =
      benchmark::Counter(static_cast<double>(result_tuples));
}
BENCHMARK(BM_Intersect_DensityEffect)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(
    32);

void BM_CrossProduct_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a0 = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b0 = MakeNormalizedRelation(2, n, 2, 12);
  GeneralizedRelation a =
      itdb::Rename(a0, {{"T1", "A1"}, {"T2", "A2"}}).value();
  GeneralizedRelation b =
      itdb::Rename(b0, {{"T1", "B1"}, {"T2", "B2"}}).value();
  AlgebraOptions options = NaiveBigBudget();
  for (auto _ : state) {
    auto r = itdb::CrossProduct(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CrossProduct_VsN)->RangeMultiplier(2)->Range(32, 512)->Complexity(
    benchmark::oNSquared);

void BM_Join_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a0 = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b0 = MakeNormalizedRelation(2, n, 2, 12);
  // Share one attribute: natural join on "T".
  GeneralizedRelation a = itdb::Rename(a0, {{"T1", "T"}, {"T2", "A"}}).value();
  GeneralizedRelation b = itdb::Rename(b0, {{"T1", "T"}, {"T2", "B"}}).value();
  AlgebraOptions options = NaiveBigBudget();
  for (auto _ : state) {
    auto r = itdb::Join(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Join_VsN)->RangeMultiplier(2)->Range(32, 1024)->Complexity(
    benchmark::oNSquared);

void BM_Intersect_IndexedVsN(benchmark::State& state) {
  // Ablation: the Appendix A.3 hash join on free extensions (opt-in,
  // use_intersection_index).  Same inputs as BM_Intersect_VsN; expect the
  // N^2 pair scan to collapse toward the output size.
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b = MakeNormalizedRelation(2, n, 2, 12);
  AlgebraOptions options = BigBudget();
  options.use_intersection_index = true;
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Intersect_IndexedVsN)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity();

void BM_Intersect_VsArity(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeNormalizedRelation(1, 128, m, 12);
  GeneralizedRelation b = MakeNormalizedRelation(2, 128, m, 12);
  AlgebraOptions options = NaiveBigBudget();
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Intersect_VsArity)->DenseRange(1, 8)->Complexity(
    benchmark::oNSquared);

void BM_Intersect_VsThreads(benchmark::State& state) {
  // Thread-pool scaling of the N^2 pair scan at fixed N.  The result is
  // bit-identical at every thread count; only wall time should move.
  const int n = 512;
  GeneralizedRelation a = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b = MakeNormalizedRelation(2, n, 2, 12);
  AlgebraOptions options = BigBudget();
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  itdb::bench::RecordParallelCounters(state, options);
}
BENCHMARK(BM_Intersect_VsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Join_VsThreads(benchmark::State& state) {
  const int n = 512;
  GeneralizedRelation a0 = MakeNormalizedRelation(1, n, 2, 12);
  GeneralizedRelation b0 = MakeNormalizedRelation(2, n, 2, 12);
  GeneralizedRelation a = itdb::Rename(a0, {{"T1", "T"}, {"T2", "A"}}).value();
  GeneralizedRelation b = itdb::Rename(b0, {{"T1", "T"}, {"T2", "B"}}).value();
  AlgebraOptions options = BigBudget();
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = itdb::Join(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  itdb::bench::RecordParallelCounters(state, options);
}
BENCHMARK(BM_Join_VsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- Selective-join workload: the indexed-kernel headline case. ----
//
// Both operands carry an integer key "K" spread over [0, 4N), so the
// expected number of key-matching pairs is ~N/4 out of the N^2 raw product.
// The naive kernel scans all N^2 pairs; the hash-partitioned kernel visits
// only the matching buckets and prunes the survivors with the residue/hull
// prefilters before any DBM closure.

GeneralizedRelation SelectiveOperand(std::uint32_t seed, int n,
                                     const char* t1, const char* t2) {
  GeneralizedRelation r =
      MakeKeyedRelation(seed, n, 2, 12, std::int64_t{4} * n);
  return itdb::Rename(r, {{"T1", t1}, {"T2", t2}}).value();
}

void BM_Join_Selective_Naive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = SelectiveOperand(1, n, "T", "A");
  GeneralizedRelation b = SelectiveOperand(2, n, "T", "B");
  AlgebraOptions options = NaiveBigBudget();
  for (auto _ : state) {
    auto r = itdb::Join(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Join_Selective_Naive)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Complexity(benchmark::oNSquared);

void BM_Join_Selective_Indexed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = SelectiveOperand(1, n, "T", "A");
  GeneralizedRelation b = SelectiveOperand(2, n, "T", "B");
  AlgebraOptions options = BigBudget();
  KernelCounters counters;
  options.counters = &counters;
  for (auto _ : state) {
    counters.Reset();
    auto r = itdb::Join(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
  itdb::bench::RecordKernelCounters(state, counters);
}
BENCHMARK(BM_Join_Selective_Indexed)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Complexity();

void BM_Intersect_Selective_Naive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeKeyedRelation(1, n, 2, 12, std::int64_t{4} * n);
  GeneralizedRelation b = MakeKeyedRelation(2, n, 2, 12, std::int64_t{4} * n);
  AlgebraOptions options = NaiveBigBudget();
  for (auto _ : state) {
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Intersect_Selective_Naive)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Complexity(benchmark::oNSquared);

void BM_Intersect_Selective_Indexed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = MakeKeyedRelation(1, n, 2, 12, std::int64_t{4} * n);
  GeneralizedRelation b = MakeKeyedRelation(2, n, 2, 12, std::int64_t{4} * n);
  AlgebraOptions options = BigBudget();
  KernelCounters counters;
  options.counters = &counters;
  for (auto _ : state) {
    counters.Reset();
    auto r = itdb::Intersect(a, b, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
  itdb::bench::RecordKernelCounters(state, counters);
}
BENCHMARK(BM_Intersect_Selective_Indexed)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Complexity();

}  // namespace

ITDB_BENCHMARK_MAIN();
