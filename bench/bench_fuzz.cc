// Throughput of the fuzzing subsystem: complete cases per second (generate
// + all three oracles), and the cost split of its two expensive pieces,
// case generation and the finite-baseline differential evaluation.  The
// cases/sec rate is what sizes the CI fuzz-smoke budget.

#include <benchmark/benchmark.h>

#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace {

using namespace itdb::fuzz;  // NOLINT(google-build-using-namespace)

void BM_Fuzz_CompleteCases(benchmark::State& state) {
  FuzzConfig config;
  config.cases = static_cast<int>(state.range(0));
  config.seed = 1;
  std::int64_t cases = 0;
  for (auto _ : state) {
    FuzzReport report = RunFuzz(config);
    benchmark::DoNotOptimize(report);
    cases += report.cases;
  }
  state.counters["cases_per_sec"] = benchmark::Counter(
      static_cast<double>(cases), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fuzz_CompleteCases)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_Fuzz_GenerateCase(benchmark::State& state) {
  DatabaseConfig db_cfg;
  ExprConfig expr_cfg;
  std::uint32_t seed = 0;
  for (auto _ : state) {
    itdb::Database db = MakeRandomDatabase(seed, db_cfg);
    ExprPtr e = MakeRandomExpr(seed, db, expr_cfg);
    benchmark::DoNotOptimize(e);
    ++seed;
  }
}
BENCHMARK(BM_Fuzz_GenerateCase);

void BM_Fuzz_FiniteBaseline(benchmark::State& state) {
  const std::int64_t outer = state.range(0);
  DatabaseConfig db_cfg;
  ExprConfig expr_cfg;
  std::uint32_t seed = 0;
  for (auto _ : state) {
    itdb::Database db = MakeRandomDatabase(seed, db_cfg);
    ExprPtr e = MakeRandomExpr(seed, db, expr_cfg);
    auto fin = EvalExprFinite(e, db, -outer, outer, 200000);
    benchmark::DoNotOptimize(fin);
    ++seed;
  }
  state.SetComplexityN(outer);
}
BENCHMARK(BM_Fuzz_FiniteBaseline)->Arg(28)->Arg(56)->Arg(112)->Complexity();

}  // namespace

BENCHMARK_MAIN();
