// Table 2, row "Projection": fixed-schema O(N), general O(m^2 N); and the
// Appendix A.4 remark that a non-normalized database pays an extra k^m
// normalization factor.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algebra.h"

namespace {

using itdb::AlgebraOptions;
using itdb::GeneralizedRelation;
using itdb::bench::MakeMixedPeriodRelation;
using itdb::bench::MakeNormalizedRelation;

void BM_Projection_VsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GeneralizedRelation r = MakeNormalizedRelation(1, n, 2, 12);
  for (auto _ : state) {
    auto p = itdb::Project(r, {"T1"});
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Projection_VsN)->RangeMultiplier(2)->Range(64, 4096)->Complexity(
    benchmark::oN);

void BM_Projection_VsArity(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  GeneralizedRelation r = MakeNormalizedRelation(1, 256, m, 12);
  for (auto _ : state) {
    auto p = itdb::Project(r, {"T1"});
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Projection_VsArity)->DenseRange(2, 8)->Complexity(
    benchmark::oNSquared);

void BM_Projection_Normalized(benchmark::State& state) {
  // Baseline: the input is already normalized (all periods 12).
  GeneralizedRelation r = MakeMixedPeriodRelation(7, 256, 2, {12});
  for (auto _ : state) {
    auto p = itdb::Project(r, {"T1"});
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Projection_Normalized);

void BM_Projection_MixedPeriods(benchmark::State& state) {
  // Same tuple count, but periods {3, 4} force a normalization to lcm 12
  // with up to (12/3)*(12/4) = 12 split tuples each: the k^m multiplier.
  GeneralizedRelation r = MakeMixedPeriodRelation(7, 256, 2, {3, 4});
  for (auto _ : state) {
    auto p = itdb::Project(r, {"T1"});
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Projection_MixedPeriods);

void BM_Projection_CoprimePeriods(benchmark::State& state) {
  // Coprime periods {5, 7, 9} push the lcm to 315: the unfavorable case the
  // paper warns about in Section 3.8.
  GeneralizedRelation r = MakeMixedPeriodRelation(7, 256, 2, {5, 7, 9});
  for (auto _ : state) {
    auto p = itdb::Project(r, {"T1"});
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Projection_CoprimePeriods);

// ---- Ablation: partial normalization (Section 3.4, last paragraph). ----
// Three columns; T3 is dropped and constraint-connected to nothing, while
// T1/T2 have large coprime periods.  Partial normalization skips their
// k^m split entirely.

GeneralizedRelation DisconnectedDropRelation() {
  // Periods {14, 6, 4}: full normalization to lcm 84 splits every tuple
  // into 6*14*21 = 1764 pieces; the dropped T3 is constraint-connected to
  // nothing, so partial normalization touches only its period-4 column.
  GeneralizedRelation r(itdb::Schema({"T1", "T2", "T3"}, {}, {}));
  for (int i = 0; i < 16; ++i) {
    itdb::GeneralizedTuple t({itdb::Lrp::Make(i, 14), itdb::Lrp::Make(i, 6),
                              itdb::Lrp::Make(i, 4)});
    t.mutable_constraints().AddDifferenceUpperBound(0, 1, i % 7);
    t.mutable_constraints().AddUpperBound(2, 100);
    benchmark::DoNotOptimize(r.AddTuple(std::move(t)));
  }
  return r;
}

void RunProjectionAblation(benchmark::State& state, bool partial) {
  GeneralizedRelation r = DisconnectedDropRelation();
  itdb::AlgebraOptions options;
  options.partial_normalization = partial;
  options.normalize.max_split_product = std::int64_t{1} << 24;
  options.max_tuples = std::int64_t{1} << 26;
  std::int64_t out_tuples = 0;
  for (auto _ : state) {
    auto p = itdb::Project(r, {"T1", "T2"}, options);
    if (!p.ok()) {
      state.SkipWithError(p.status().ToString().c_str());
      return;
    }
    out_tuples = p.value().size();
    benchmark::DoNotOptimize(p);
  }
  state.counters["result_tuples"] =
      benchmark::Counter(static_cast<double>(out_tuples));
}

void BM_Projection_PartialNormalization(benchmark::State& state) {
  RunProjectionAblation(state, /*partial=*/true);
}
BENCHMARK(BM_Projection_PartialNormalization);

void BM_Projection_FullNormalization(benchmark::State& state) {
  RunProjectionAblation(state, /*partial=*/false);
}
BENCHMARK(BM_Projection_FullNormalization);

}  // namespace

BENCHMARK_MAIN();
