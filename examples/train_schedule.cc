// Example 2.4 of the paper: the Liege -> Brussels train schedule, and why
// intervals (temporal arity 2) beat point-based unary predicates.
//
// Every hour there is a slow train leaving at xx:02 arriving xx+1:20 and an
// express leaving at xx:46 arriving xx+1:50.  With two unary predicates
// "Leaving" and "Arriving" one can wrongly conclude there is a train
// leaving at xx:46 and arriving at xx:50.  The interval representation
// keeps departure and arrival tied together.

#include <cstdlib>
#include <iostream>

#include "query/eval.h"
#include "storage/database.h"

namespace {

template <typename T>
T OrDie(itdb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

std::string Clock(std::int64_t minutes) {
  std::int64_t h = ((minutes / 60) % 24 + 24) % 24;
  std::int64_t m = ((minutes % 60) + 60) % 60;
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld", static_cast<long long>(h),
                static_cast<long long>(m));
  return buf;
}

}  // namespace

int main() {
  using namespace itdb;
  using namespace itdb::query;

  // Minutes since midnight; one_hour = 60.  The paper's final, correct
  // representation: two generalized tuples of temporal arity 2.
  Database db = OrDie(Database::FromText(R"(
    relation Train(Leave: time, Arrive: time) {
      [2+60n, 80+60n]   : Leave = Arrive - 78;   # slow:    xx:02 -> xx+1:20
      [46+60n, 110+60n] : Leave = Arrive - 64;   # express: xx:46 -> xx+1:50
    }
  )"));

  std::cout << "Morning trains (05:00 - 09:00):\n";
  GeneralizedRelation trains = OrDie(db.Get("Train"));
  for (const ConcreteRow& row : trains.Enumerate(5 * 60, 9 * 60)) {
    std::cout << "  leave " << Clock(row.temporal[0]) << "  arrive "
              << Clock(row.temporal[1]) << "\n";
  }

  // The anomaly the paper warns about: with unary Leaving/Arriving
  // predicates one could infer a 4-minute phantom train :46 -> :50.
  bool phantom =
      OrDie(EvalBooleanQueryString(db, "EXISTS t . Train(t, t + 4)"));
  std::cout << "\nPhantom 4-minute train exists: " << (phantom ? "YES (bug!)"
                                                               : "no")
            << "\n";

  // Correct facts survive:
  std::cout << "Train 07:02 -> 08:20 exists: "
            << (OrDie(EvalBooleanQueryString(db, "Train(422, 500)")) ? "yes"
                                                                     : "no")
            << "\n";

  // During 46..80 of every hour two trains are en route simultaneously --
  // unambiguous with intervals:
  bool overlap = OrDie(EvalBooleanQueryString(
      db,
      "EXISTS l1 . EXISTS a1 . EXISTS l2 . EXISTS a2 . "
      "Train(l1, a1) AND Train(l2, a2) AND l1 < l2 AND l2 < a1"));
  std::cout << "Two trains sometimes travel at once: "
            << (overlap ? "yes" : "no") << "\n";

  // And the schedule repeats forever: pick any far-future departure.
  bool far = OrDie(
      EvalBooleanQueryString(db, "EXISTS a . Train(600002, a)"));  // xx:02
  std::cout << "A train departs at minute 600002 (day 416, 16:02): "
            << (far ? "yes" : "no") << "\n";
  bool never = OrDie(
      EvalBooleanQueryString(db, "EXISTS a . Train(600022, a)"));  // xx:22
  std::cout << "A train departs at minute 600022 (16:22): "
            << (never ? "yes" : "no") << "\n";
  return 0;
}
