// Theorems 2.1 / 2.2: defining integer sets in Presburger arithmetic and
// compiling them to generalized relations (unary: restricted constraints;
// binary: general constraints).

#include <cstdlib>
#include <iostream>

#include "presburger/to_relation.h"

namespace {

template <typename T>
T OrDie(itdb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace itdb;
  using namespace itdb::presburger;

  // ---- Unary (Theorem 2.1): "v is even, positive, and not a multiple of 3"
  FormulaPtr even = Formula::UnaryCong(1, 0, 2, 0);
  FormulaPtr positive = Formula::UnaryCmp(1, 0, Cmp::kGt, 0);
  FormulaPtr mult3 = Formula::UnaryCong(1, 0, 3, 0);
  FormulaPtr unary =
      Formula::And(Formula::And(even, positive), Formula::Not(mult3));
  std::cout << "Formula: " << unary->ToString() << "\n";

  GeneralizedRelation r = OrDie(UnaryToRelation(unary));
  std::cout << "As a generalized relation (restricted constraints):\n"
            << r.ToString();
  std::cout << "First members:";
  for (const ConcreteRow& row : r.Enumerate(0, 30)) {
    std::cout << " " << row.temporal[0];
  }
  std::cout << "\n\n";

  // ---- Binary (Theorem 2.2): "2*v0 = 3*v1 + 1, with v0 ===_4 v1"
  FormulaPtr line = Formula::BinaryCmp(2, 0, Cmp::kEq, 3, 1, 1);
  FormulaPtr cong = Formula::BinaryCong(1, 0, 4, 1, 1, 0);
  FormulaPtr binary = Formula::And(line, cong);
  std::cout << "Formula: " << binary->ToString() << "\n";

  GeneralRelation g = OrDie(BinaryToGeneralRelation(binary));
  std::cout << "As a general-constraint relation:\n" << g.ToString();
  std::cout << "Members with |v| <= 40:";
  for (const std::vector<std::int64_t>& p : g.Enumerate(-40, 40)) {
    std::cout << " (" << p[0] << "," << p[1] << ")";
  }
  std::cout << "\n\n";

  // ---- Negation round trip: the unary complement really is the complement.
  GeneralizedRelation comp = OrDie(UnaryToRelation(Formula::Not(unary)));
  std::cout << "Complement members in [0, 12]:";
  for (const ConcreteRow& row : comp.Enumerate(0, 12)) {
    std::cout << " " << row.temporal[0];
  }
  std::cout << "\n";
  return 0;
}
