// "Model-checking is essentially a form of query evaluation on a special
// type of database" (Section 1 of the paper).  This example verifies
// temporal-logic properties of a periodic system -- a polling controller --
// directly on its infinite timeline.
//
// The controller polls a sensor every 12 ticks, raises alerts on some polls
// and services every alert at the next maintenance slot (every 6 ticks,
// offset 2).

#include <cstdlib>
#include <iostream>

#include "core/coalesce.h"
#include "storage/database.h"
#include "tl/ltl.h"

namespace {

template <typename T>
T OrDie(itdb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace itdb;
  using F = tl::TlFormula;

  Database db = OrDie(Database::FromText(R"(
    relation poll(T: time)    { [12n]; }
    relation alert(T: time)   { [24n]; }        # every second poll alerts
    relation service(T: time) { [2+6n]; }       # maintenance slots
  )"));

  struct NamedSpec {
    const char* description;
    tl::TlPtr formula;
  };
  const NamedSpec specs[] = {
      {"polls happen infinitely often",
       F::Always(F::Eventually(F::Prop("poll")))},
      {"every alert coincides with a poll",
       F::Always(F::Implies(F::Prop("alert"), F::Prop("poll")))},
      {"every alert is serviced within 4 ticks",
       F::Always(F::Implies(F::Prop("alert"),
                            F::EventuallyWithin(F::Prop("service"), 0, 4)))},
      {"every alert is serviced within 1 tick",
       F::Always(F::Implies(F::Prop("alert"),
                            F::EventuallyWithin(F::Prop("service"), 0, 1)))},
      {"alerts never happen twice within 12 ticks",
       F::Always(F::Implies(
           F::Prop("alert"),
           F::Not(F::EventuallyWithin(F::Prop("alert"), 1, 12))))},
      {"the system is eventually always quiet (no more alerts)",
       F::Eventually(F::Always(F::Not(F::Prop("alert"))))},
  };
  std::cout << "Checking specifications over the infinite timeline:\n";
  for (const NamedSpec& spec : specs) {
    bool holds = OrDie(tl::HoldsEverywhere(db, spec.formula));
    std::cout << "  [" << (holds ? "PASS" : "FAIL") << "] "
              << spec.description << "\n        " << spec.formula->ToString()
              << "\n";
  }

  // For a failing spec, the satisfaction set of the negation is a
  // counterexample description -- every violating instant, forever.
  tl::TlPtr tight = F::Implies(
      F::Prop("alert"), F::EventuallyWithin(F::Prop("service"), 0, 1));
  GeneralizedRelation violations =
      OrDie(tl::SatisfactionSet(db, F::Not(tight)));
  GeneralizedRelation packed = OrDie(CoalesceResidues(violations));
  std::cout << "\nViolations of the 1-tick service bound (symbolic):\n"
            << packed.ToString();
  std::cout << "First few violating instants:";
  for (const ConcreteRow& row : packed.Enumerate(0, 80)) {
    std::cout << " " << row.temporal[0];
  }
  std::cout << "\n";

  // Until: "after an alert, polls keep arriving until service happens".
  bool until_spec = OrDie(tl::HoldsEverywhere(
      db, F::Implies(F::Prop("alert"),
                     F::Until(F::Eventually(F::Prop("poll")),
                              F::Prop("service")))));
  std::cout << "\nUntil-style spec holds: " << (until_spec ? "yes" : "no")
            << "\n";
  return 0;
}
