// Scheduling with infinite horizons: finding conflict-free maintenance
// windows against recurring workloads -- the compactness argument of the
// paper's introduction made concrete.  The same problem is solved twice:
// once on generalized relations (closed-form, horizon-free) and once by
// materializing a finite horizon, to show what the symbolic representation
// buys.

#include <cstdlib>
#include <iostream>

#include "core/algebra.h"
#include "finite/finite_relation.h"
#include "query/eval.h"
#include "storage/database.h"

namespace {

template <typename T>
T OrDie(itdb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace itdb;
  using namespace itdb::query;

  // Minutes, day = 1440.  Recurring workloads forever:
  Database db = OrDie(Database::FromText(R"(
    relation Busy(S: time, E: time, Job: string) {
      [120+1440n, 165+1440n | "backup"]  : S = E - 45;
      [600+1440n, 630+1440n | "reports"] : S = E - 30;
      [60+360n, 75+360n     | "sync"]    : S = E - 15;   # every 6 hours
    }
  )"));

  // A 60-minute maintenance window starting at instant t is clean when no
  // job runs at any point of [t, t+60].
  const char* kClean =
      "NOT (EXISTS s . EXISTS e . EXISTS j . "
      "Busy(s, e, j) AND s <= t + 60 AND t <= e)";

  GeneralizedRelation clean = OrDie(EvalQueryString(db, kClean));
  std::cout << "Clean 60-minute window starts, as a generalized relation: "
            << clean.size() << " symbolic tuples describing an infinite set."
            << "\nFirst few tuples:\n";
  for (int i = 0; i < 5 && i < clean.size(); ++i) {
    std::cout << "  " << clean.tuples()[static_cast<std::size_t>(i)].ToString()
              << "\n";
  }

  std::vector<ConcreteRow> day1_rows = clean.Enumerate(0, 1439);
  std::cout << "Day-1 clean starts: " << day1_rows.size()
            << " candidates, first at minute "
            << (day1_rows.empty() ? -1 : day1_rows.front().temporal[0]) << "\n";

  // The infinite representation answers horizon-free questions directly:
  bool forever = OrDie(EvalBooleanQueryString(
      db, std::string("EXISTS t . t >= 1000000 AND ") + kClean));
  std::cout << "A clean window exists beyond minute 1,000,000: "
            << (forever ? "yes" : "no") << "\n";

  // Versus materialization: a 30-day horizon already needs thousands of
  // explicit rows for what three symbolic tuples describe forever.
  GeneralizedRelation busy = OrDie(db.Get("Busy"));
  FiniteRelation materialized =
      FiniteRelation::Materialize(busy, 0, 30 * 1440);
  std::cout << "\nMaterialized horizon comparison:\n";
  std::cout << "  symbolic tuples: " << busy.size() << "\n";
  std::cout << "  explicit rows over 30 days: " << materialized.size()
            << " (" << materialized.ApproxBytes() << " bytes), and any "
            << "question past the horizon is unanswerable\n";
  return 0;
}
