// Table 1 + Example 4.1 of the paper: the activities of factory robots,
// represented as an infinite interval relation and queried with the
// two-sorted first-order language.

#include <cstdlib>
#include <iostream>

#include "core/algebra.h"
#include "query/eval.h"
#include "storage/database.h"

namespace {

template <typename T>
T OrDie(itdb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace itdb;
  using namespace itdb::query;

  // Table 1, extended with the task attribute used by Example 4.1.
  Database db = OrDie(Database::FromText(R"(
    relation Perform(From: time, To: time, Robot: string, Task: string) {
      [2+2n, 4+2n   | "robot1", "task1"] : From = To - 2 && From >= -1;
      [6+10n, 7+10n | "robot2", "task1"] : From = To - 1 && From >= 10;
      [10n, 3+10n   | "robot2", "task2"] : From = To - 3;
    }
  )"));
  std::cout << "Perform relation:\n"
            << OrDie(db.Get("Perform")).ToString() << "\n";

  // Who is working at instant 16?
  GeneralizedRelation working_at_16 = OrDie(EvalQueryString(
      db, "EXISTS s . EXISTS e . Perform(s, e, w, k) AND s <= 16 AND "
          "16 <= e"));
  // Result columns are sorted by variable name: k (task) then w (robot).
  std::cout << "Robot/task pairs active at t = 16:\n";
  for (const GeneralizedTuple& t : working_at_16.tuples()) {
    std::cout << "  " << t.value(1).ToString() << " doing "
              << t.value(0).ToString() << "\n";
  }

  // Is robot2 ever doing two things at once?
  bool doubled = OrDie(EvalBooleanQueryString(
      db,
      "EXISTS s1 . EXISTS e1 . EXISTS s2 . EXISTS e2 . "
      "EXISTS k1 . EXISTS k2 . "
      "Perform(s1, e1, \"robot2\", k1) AND Perform(s2, e2, \"robot2\", k2) "
      "AND NOT k1 = k2 AND s1 <= s2 AND s2 <= e1"));
  std::cout << "\nrobot2 ever overlaps two tasks: " << (doubled ? "yes" : "no")
            << "\n";

  // When is the factory fully idle?  (An instant covered by no activity.)
  GeneralizedRelation idle = OrDie(EvalQueryString(
      db, "NOT (EXISTS s . EXISTS e . EXISTS w . EXISTS k . "
          "Perform(s, e, w, k) AND s <= t AND t <= e) AND 0 <= t AND "
          "t <= 30"));
  std::cout << "Idle instants in [0, 30]:";
  std::vector<ConcreteRow> idle_rows = idle.Enumerate(0, 30);
  for (const ConcreteRow& row : idle_rows) {
    std::cout << " " << row.temporal[0];
  }
  if (idle_rows.empty()) std::cout << " (none: robot1 covers all of t >= 0)";
  std::cout << "\n";

  // Example 4.1, exactly as in the paper: robots x, y such that IF x
  // performs task2 over an interval of length >= 5 THEN y performs nothing
  // during any part of it.  Here task2 intervals have length 3, so the
  // antecedent is unsatisfiable and the implication holds vacuously.
  bool example41 = OrDie(EvalBooleanQueryString(db, R"(
      EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
        (Perform(t1, t2, x, "task2") AND t1 + 5 <= t2) ->
        (FORALL t3 . FORALL t4 .
          (t1 <= t3 AND t3 <= t4 AND t4 <= t2) ->
          (FORALL z . NOT Perform(t3, t4, y, z)))
  )"));
  std::cout << "Example 4.1 sentence holds: " << (example41 ? "yes" : "no")
            << "  (vacuously: no task2 interval reaches length 5)\n";

  // The non-vacuous strengthening: such an interval actually EXISTS and is
  // undisturbed.  False on this database.
  bool strengthened = OrDie(EvalBooleanQueryString(db, R"(
      EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
        Perform(t1, t2, x, "task2") AND t1 + 5 <= t2 AND
        (FORALL t3 . FORALL t4 .
          (t1 <= t3 AND t3 <= t4 AND t4 <= t2) ->
          (FORALL z . NOT Perform(t3, t4, y, z)))
  )"));
  std::cout << "Non-vacuous variant holds: " << (strengthened ? "yes" : "no")
            << "\n";
  return 0;
}
