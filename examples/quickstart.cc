// Quickstart: define an infinite temporal relation, run algebra operations
// and first-order queries on it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "core/algebra.h"
#include "query/eval.h"
#include "storage/database.h"

namespace {

// Aborts with a message on error -- fine for an example.
template <typename T>
T OrDie(itdb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace itdb;
  using namespace itdb::query;

  // 1. Relations with infinitely many rows are written with linear
  //    repeating points (c + k*n) and restricted constraints.  "Backups run
  //    every night at minute 120 and take 45 minutes, forever":
  Database db = OrDie(Database::FromText(R"(
    relation Backup(Start: time, End: time) {
      [120+1440n, 165+1440n] : Start = End - 45;
    }
    relation Report(T: time) {
      [150+720n] : T >= 150;   # every 12h starting at minute 150
    }
  )"));

  GeneralizedRelation backup = OrDie(db.Get("Backup"));
  std::cout << "Backup relation (one generalized tuple, infinitely many "
               "rows):\n"
            << backup.ToString() << "\n";

  // 2. Concrete membership is exact, no enumeration needed.
  std::cout << "Backup on day 3 (start 4440): "
            << (backup.Contains({{4440, 4485}, {}}) ? "yes" : "no") << "\n";

  // 3. Relational algebra stays closed on the infinite representation.
  //    Which report instants fall inside a backup window?
  GeneralizedRelation clash = OrDie(EvalQueryString(
      db, "Report(t) AND EXISTS s . EXISTS e . "
          "Backup(s, e) AND s <= t AND t <= e"));
  std::cout << "\nReports inside backup windows (symbolic answer):\n"
            << clash.ToString();
  bool any = !OrDie(IsEmpty(clash));
  std::cout << "Any clash at all: " << (any ? "yes" : "no") << "\n";

  // 4. Yes/no queries over the full (infinite) timeline, Theorem 4.1 style.
  bool always_quiet = OrDie(EvalBooleanQueryString(
      db, "FORALL t . Report(t) -> NOT (EXISTS s . EXISTS e . "
          "Backup(s, e) AND s <= t AND t <= e)"));
  std::cout << "No report ever collides with a backup: "
            << (always_quiet ? "yes" : "no")
            << "  (the 150-minute report lands inside the nightly backup)\n";

  // 5. A finite window of the infinite extension, for inspection.
  std::cout << "\nFirst backup windows (minute 0..5000):\n";
  for (const ConcreteRow& row : backup.Enumerate(0, 5000)) {
    std::cout << "  " << row.ToString() << "\n";
  }
  return 0;
}
