// Interactive shell over an itdb database.
//
//   ./itdb_shell [file.itdb ...]              # preload files, then REPL
//   ./itdb_shell --data-dir DIR [--fsync]     # durable catalog: recover,
//                                             # WAL-log mutations, and
//                                             # enable checkpoint / as of /
//                                             # history
//
// Pipe a script to run non-interactively:
//   echo 'ask EXISTS t . Backup(t, t + 45)' | ./itdb_shell db.itdb

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "shell/shell.h"
#include "storage/wal/storage_engine.h"

int main(int argc, char** argv) {
  std::string data_dir;
  itdb::storage::StorageEngineOptions storage_options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--fsync") {
      storage_options.fsync = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "usage: itdb_shell [--data-dir DIR] [--fsync]"
                   " [file.itdb ...]\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  itdb::Database db;
  std::unique_ptr<itdb::storage::StorageEngine> engine;
  if (!data_dir.empty()) {
    itdb::Result<std::unique_ptr<itdb::storage::StorageEngine>> opened =
        itdb::storage::StorageEngine::Open(data_dir, &db, storage_options);
    if (!opened.ok()) {
      std::cerr << "error: " << data_dir << ": " << opened.status() << "\n";
      return 1;
    }
    engine = std::move(opened).value();
  }

  for (const std::string& path : files) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    itdb::Result<itdb::Database> loaded =
        itdb::Database::FromText(buffer.str());
    if (!loaded.ok()) {
      std::cerr << "error: " << path << ": " << loaded.status() << "\n";
      return 1;
    }
    for (const std::string& name : loaded.value().Names()) {
      if (engine != nullptr && db.Has(name)) continue;  // Recovered state wins.
      itdb::Status s =
          engine != nullptr
              ? engine->ApplyAdd(db, name, loaded.value().Get(name).value())
              : db.Add(name, loaded.value().Get(name).value());
      if (!s.ok()) {
        std::cerr << "error: " << s << "\n";
        return 1;
      }
    }
  }

  itdb::ShellOptions options;
  options.prompt = isatty(STDIN_FILENO) != 0;
  options.session.engine = engine.get();
  itdb::Status status = itdb::RunShell(std::cin, std::cout, db, options);
  return status.ok() ? 0 : 1;
}
