// Interactive shell over an itdb database.
//
//   ./itdb_shell [file.itdb ...]     # preload relation files, then REPL
//
// Pipe a script to run non-interactively:
//   echo 'ask EXISTS t . Backup(t, t + 45)' | ./itdb_shell db.itdb

#include <fstream>
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "shell/shell.h"

int main(int argc, char** argv) {
  itdb::Database db;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::cerr << "error: cannot open " << argv[i] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    itdb::Result<itdb::Database> loaded =
        itdb::Database::FromText(buffer.str());
    if (!loaded.ok()) {
      std::cerr << "error: " << argv[i] << ": " << loaded.status() << "\n";
      return 1;
    }
    for (const std::string& name : loaded.value().Names()) {
      itdb::Status s = db.Add(name, loaded.value().Get(name).value());
      if (!s.ok()) {
        std::cerr << "error: " << s << "\n";
        return 1;
      }
    }
  }
  itdb::ShellOptions options;
  options.prompt = isatty(STDIN_FILENO) != 0;
  itdb::Status status = itdb::RunShell(std::cin, std::cout, db, options);
  return status.ok() ? 0 : 1;
}
