#!/usr/bin/env python3
"""Repository invariant linter, wired into ctest and CI.

Checks, over src/ (and where noted, tests/):

  1. own-header-first: a src/**/foo.cc with a sibling foo.h must include
     "its/dir/foo.h" as its FIRST #include (keeps headers self-contained).
  2. no naked new/delete outside src/util/: ownership lives behind
     standard containers and smart pointers.  `= delete` (deleted
     functions) is fine; a deliberate exception carries `lint:allow` on
     the same line.
  3. every src/**/*.cc appears in its directory's CMakeLists.txt: a file
     that builds in no target is dead code that still rots.
  4. no std::cout/std::cerr in library code: src/ outside src/shell/ must
     report through Status/diagnostics, not the process streams (the
     shell, tools/, bench/ and tests are exempt).
  5. every A0xx diagnostic code referenced anywhere in src/ has a row in
     DESIGN.md's diagnostic table (`| A0xx | severity | summary |`): an
     undocumented code is invisible to users reading `check` output.
  6. every metrics counter/histogram name is registered (written) from a
     single src/ file: the obs registry silently merges same-named metrics,
     so a copy-pasted name in another subsystem corrupts both counters.
     Read-only GetCounter(...)->value() sites are exempt; a name may also
     not be used as both a counter and a histogram.

Exit status 0 = clean, 1 = findings (printed one per line), 2 = misuse.
"""

import argparse
import re
import sys
from pathlib import Path

ALLOW = "lint:allow"

NEW_RE = re.compile(r"\bnew\b\s*(\(|[A-Za-z_<:])")
DELETE_RE = re.compile(r"\bdelete\b(\[\])?\s*[A-Za-z_(*]")
COUT_RE = re.compile(r"std::c(out|err)\b")


def strip_comments_and_strings(line: str) -> str:
    """Good enough for linting: drops // comments and "..." contents."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return line.split("//", 1)[0]


def first_include(path: Path) -> str | None:
    for raw in path.read_text().splitlines():
        m = re.match(r'\s*#include\s+([<"][^">]+[">])', raw)
        if m:
            return m.group(1)
    return None


def check_own_header_first(src: Path, findings: list[str]) -> None:
    for cc in sorted(src.rglob("*.cc")):
        header = cc.with_suffix(".h")
        if not header.exists():
            continue
        want = f'"{header.relative_to(src).as_posix()}"'
        got = first_include(cc)
        if got != want:
            findings.append(
                f"{cc}: first #include is {got or 'missing'}, "
                f"expected its own header {want}"
            )


def check_no_naked_new_delete(src: Path, findings: list[str]) -> None:
    for cc in sorted(list(src.rglob("*.cc")) + list(src.rglob("*.h"))):
        if src / "util" in cc.parents:
            continue
        for lineno, raw in enumerate(cc.read_text().splitlines(), 1):
            if ALLOW in raw:
                continue
            line = strip_comments_and_strings(raw)
            if "= delete" in line:
                line = line.replace("= delete", "")
            if NEW_RE.search(line) or DELETE_RE.search(line):
                findings.append(
                    f"{cc}:{lineno}: naked new/delete outside src/util/ "
                    f"(use containers or smart pointers): {raw.strip()}"
                )


def check_cmake_lists_complete(src: Path, findings: list[str]) -> None:
    for cc in sorted(src.rglob("*.cc")):
        cmake = cc.parent / "CMakeLists.txt"
        if not cmake.exists():
            findings.append(f"{cc}: no CMakeLists.txt in {cc.parent}")
            continue
        if cc.name not in cmake.read_text():
            findings.append(f"{cc}: not listed in {cmake}")


def check_no_cout(src: Path, findings: list[str]) -> None:
    for cc in sorted(list(src.rglob("*.cc")) + list(src.rglob("*.h"))):
        if src / "shell" in cc.parents:
            continue
        for lineno, raw in enumerate(cc.read_text().splitlines(), 1):
            if ALLOW in raw:
                continue
            if COUT_RE.search(strip_comments_and_strings(raw)):
                findings.append(
                    f"{cc}:{lineno}: std::cout/std::cerr in library code "
                    f"(report via Status or diagnostics): {raw.strip()}"
                )


DIAG_CODE_RE = re.compile(r"\bA0\d{2}\b")
DIAG_TABLE_ROW_RE = re.compile(r"^\|\s*(A0\d{2})\s*\|")
COUNTER_WRITE_RE = re.compile(r'AddGlobalCounter\(\s*"([^"]+)"')
COUNTER_GET_RE = re.compile(r'GetCounter\(\s*"([^"]+)"\s*\)')
HISTOGRAM_GET_RE = re.compile(r'GetHistogram\(\s*"([^"]+)"\s*\)')


def check_diag_codes_documented(
    root: Path, src: Path, findings: list[str]
) -> None:
    design = root / "DESIGN.md"
    documented: set[str] = set()
    if design.exists():
        for line in design.read_text().splitlines():
            m = DIAG_TABLE_ROW_RE.match(line.strip())
            if m:
                documented.add(m.group(1))
    referenced: dict[str, str] = {}  # code -> first reference site
    for cc in sorted(list(src.rglob("*.cc")) + list(src.rglob("*.h"))):
        for lineno, raw in enumerate(cc.read_text().splitlines(), 1):
            for code in DIAG_CODE_RE.findall(raw):
                referenced.setdefault(code, f"{cc}:{lineno}")
    for code in sorted(set(referenced) - documented):
        findings.append(
            f"{referenced[code]}: diagnostic code {code} is not in "
            f"DESIGN.md's diagnostic table"
        )


def check_metric_names_unique(src: Path, findings: list[str]) -> None:
    counter_writers: dict[str, set[Path]] = {}
    histogram_writers: dict[str, set[Path]] = {}
    for cc in sorted(list(src.rglob("*.cc")) + list(src.rglob("*.h"))):
        text = cc.read_text()
        for name in COUNTER_WRITE_RE.findall(text):
            counter_writers.setdefault(name, set()).add(cc)
        for m in COUNTER_GET_RE.finditer(text):
            # GetCounter("x")->value() is a read (e.g. a status report
            # rendering another subsystem's counter); only mutation
            # registers ownership.  The accessor may start on the next
            # line, so look at the text following the call.
            if text[m.end():].lstrip().startswith("->value()"):
                continue
            counter_writers.setdefault(m.group(1), set()).add(cc)
        for name in HISTOGRAM_GET_RE.findall(text):
            histogram_writers.setdefault(name, set()).add(cc)
    for name, files in sorted(counter_writers.items()):
        if len(files) > 1:
            where = ", ".join(str(f) for f in sorted(files))
            findings.append(
                f"metrics counter \"{name}\" is written from multiple "
                f"files ({where}): one subsystem must own each name"
            )
        if name in histogram_writers:
            findings.append(
                f"metrics name \"{name}\" is used as both a counter and "
                f"a histogram"
            )
    for name, files in sorted(histogram_writers.items()):
        if len(files) > 1:
            where = ", ".join(str(f) for f in sorted(files))
            findings.append(
                f"metrics histogram \"{name}\" is written from multiple "
                f"files ({where}): one subsystem must own each name"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args()
    src = args.root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        return 2

    findings: list[str] = []
    check_own_header_first(src, findings)
    check_no_naked_new_delete(src, findings)
    check_cmake_lists_complete(src, findings)
    check_no_cout(src, findings)
    check_diag_codes_documented(args.root, src, findings)
    check_metric_names_unique(src, findings)

    for finding in findings:
        print(finding)
    print(f"lint_invariants: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
