#!/usr/bin/env python3
"""CI gate: run `itdb_shell check` over annotated .itdb files.

Scans the given directories for *.itdb files carrying annotations:

    # check: <query>
    # expect: A003
    # expect: A009

Each `# check:` line is fed to the shell's `check` command with the file's
relations preloaded.  The diagnostics must mention every code from the
`# expect:` lines that follow it; a check with no expectations must come
back `check: ok`.  Files without annotations are skipped.

Usage: check_queries.py --shell PATH DIR [DIR ...]
Exit status 0 = all gates pass, 1 = findings, 2 = misuse.
"""

import argparse
import subprocess
import sys
from pathlib import Path


def parse_annotations(path: Path):
    """Yields (query, [expected codes], line number) per `# check:` line."""
    checks = []
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if line.startswith("# check:"):
            checks.append((line[len("# check:"):].strip(), [], lineno))
        elif line.startswith("# expect:"):
            if not checks:
                raise ValueError(
                    f"{path}:{lineno}: '# expect:' before any '# check:'")
            for code in line[len("# expect:"):].split(","):
                checks[-1][1].append(code.strip())
    return checks


def run_checks(shell: Path, path: Path, checks):
    script = "".join(f"check {query}\n" for query, _, _ in checks)
    proc = subprocess.run(
        [str(shell), str(path)], input=script, capture_output=True,
        text=True, timeout=120)
    if proc.returncode != 0:
        return [f"{path}: shell exited {proc.returncode}: "
                f"{proc.stderr.strip() or proc.stdout.strip()}"]
    # The shell ends every check with one summary line "check: ...".
    segments = []
    current: list[str] = []
    for line in proc.stdout.splitlines():
        current.append(line)
        if line.startswith("check:"):
            segments.append("\n".join(current))
            current = []
    failures = []
    if len(segments) != len(checks):
        return [f"{path}: expected {len(checks)} check summaries, "
                f"got {len(segments)}:\n{proc.stdout}"]
    for (query, expects, lineno), segment in zip(checks, segments):
        if expects:
            for code in expects:
                if f"[{code}]" not in segment:
                    failures.append(
                        f"{path}:{lineno}: `{query}` did not report {code}:"
                        f"\n{segment}")
        elif not segment.endswith("check: ok"):
            failures.append(
                f"{path}:{lineno}: `{query}` expected a clean check:"
                f"\n{segment}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shell", type=Path, required=True,
                        help="path to the itdb_shell binary")
    parser.add_argument("dirs", nargs="+", type=Path)
    args = parser.parse_args()
    if not args.shell.exists():
        print(f"error: no shell at {args.shell}", file=sys.stderr)
        return 2

    files = 0
    queries = 0
    failures: list[str] = []
    for directory in args.dirs:
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
        for path in sorted(directory.rglob("*.itdb")):
            checks = parse_annotations(path)
            if not checks:
                continue
            files += 1
            queries += len(checks)
            failures.extend(run_checks(args.shell, path, checks))

    for failure in failures:
        print(failure)
    print(f"check_queries: {queries} query(ies) over {files} file(s), "
          f"{len(failures)} failure(s)")
    if files == 0:
        print("error: no annotated .itdb files found", file=sys.stderr)
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
