#!/usr/bin/env python3
"""Crash-recovery harness for itdb_serve's durable catalog.

The experiment, per iteration:

1. CONTROL: run a server with --data-dir on a fresh directory, feed it a
   fixed schedule of catalog mutations (with interleaved checkpoints), and
   record a deterministic PROBE -- list / show / history / as-of output --
   after every version, plus the cumulative WAL byte stream length from
   `status` (storage.wal_appended_bytes).

2. CRASH: repeat on a fresh directory with ITDB_CRASH_AT=R for a random
   R in [0, total_wal_bytes), so the WAL write syscall tears the stream at
   byte R and the process _exit(42)s mid-append.  The client counts how
   many mutations were acknowledged before the connection died.

3. RECOVER: restart the server on the crashed directory.  Recovery must
   land exactly on the acknowledged prefix (durable_version == acked
   mutations -- a torn record is never half-applied), and the recovered
   probe must be BYTE-IDENTICAL to the control probe at that version.

4. CONTINUE: apply the remaining schedule to the recovered server; after
   every step the probe must again match the control probe byte for byte,
   and the final states must agree.

Usage:
    crash_harness.py --serve build/tools/itdb_serve [--iterations 50]
                     [--seed 7] [--keep-dirs DIR]

Exit status: 0 when every iteration recovers consistently, 1 on any
mismatch (the failing iteration's data dir is preserved under --keep-dirs
when given, for post-mortem), 2 on usage problems.
"""

import argparse
import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from itdb_client import Client  # noqa: E402

# The mutation schedule: every entry bumps the engine version by exactly
# one.  Relations R, S, W cycle through define / coalesce / drop /
# redefine so the history carries closed epochs, survivor rows, and
# re-creations -- the shapes recovery has to rebuild exactly.
MUTATIONS = [
    "define relation R(T: time) { [2n]; }",
    "define relation S(T: time) { [3+10n] : T >= 3; }",
    "drop R",
    "define relation R(T: time) { [5+10n]; [8+10n] : T <= 60; }",
    "define relation W(A: time, B: time) { [1+6n, 4+6n] : A <= B; }",
    "coalesce R",
    "drop S",
    "define relation S(T: time) { [4n]; }",
    "drop W",
    "define relation W(A: time) { [9+12n]; }",
]

# Checkpoints run after these (1-based) versions: one mid-schedule on a
# growing catalog, one after a drop so the snapshot carries closed epochs.
CHECKPOINT_AFTER = {4, 8}

PROBE = [
    "list",
    "show R",
    "show S",
    "show W",
    "history R",
    "history S",
    "history W",
    "as of 3",
    "as of 5 R",
]


class Harness:
    def __init__(self, serve, keep_dirs=None):
        self.serve = serve
        self.keep_dirs = keep_dirs
        self.tmp = tempfile.mkdtemp(prefix="itdb-crash-")

    def cleanup(self):
        shutil.rmtree(self.tmp, ignore_errors=True)

    def start_server(self, data_dir, sock, env_extra=None):
        # A crashed server leaves its socket file behind; remove it so the
        # bind-wait below observes the NEW server's socket, not the corpse.
        if os.path.exists(sock):
            os.unlink(sock)
        env = dict(os.environ)
        if env_extra:
            env.update(env_extra)
        proc = subprocess.Popen(
            [self.serve, "--unix", sock, "--data-dir", data_dir],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)
        for _ in range(200):
            if os.path.exists(sock):
                break
            if proc.poll() is not None:
                raise RuntimeError("server exited at startup: %s"
                                   % proc.returncode)
            time.sleep(0.02)
        else:
            proc.kill()
            raise RuntimeError("server never bound %s" % sock)
        return proc

    def stop_server(self, proc):
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    @staticmethod
    def probe(client):
        """The deterministic catalog fingerprint: status + payload of every
        probe statement (errors included -- `history R` before R exists
        must fail identically in control and recovery)."""
        parts = []
        for statement in PROBE:
            frame = client.request(statement)
            parts.append("%s>> %s %s" % (statement, frame.status,
                                         frame.payload))
        return "\n".join(parts)

    @staticmethod
    def status_fields(client):
        fields = {}
        for line in client.request("status").payload.splitlines():
            key, _, value = line.partition(" ")
            fields[key] = value
        return fields

    def run_control(self):
        """Returns (probes_by_version, total_wal_bytes)."""
        data_dir = os.path.join(self.tmp, "control")
        shutil.rmtree(data_dir, ignore_errors=True)
        sock = os.path.join(self.tmp, "control.sock")
        proc = self.start_server(data_dir, sock)
        try:
            client = Client.connect_unix(sock)
            probes = [self.probe(client)]
            for version, mutation in enumerate(MUTATIONS, start=1):
                frame = client.request(mutation)
                if frame.status != "ok":
                    raise RuntimeError("control mutation %d failed: %s"
                                       % (version, frame.payload))
                if version in CHECKPOINT_AFTER:
                    frame = client.request("checkpoint")
                    if frame.status != "ok":
                        raise RuntimeError("control checkpoint failed: %s"
                                           % frame.payload)
                probes.append(self.probe(client))
            fields = self.status_fields(client)
            if fields.get("durable_version") != str(len(MUTATIONS)):
                raise RuntimeError("control ended at version %s"
                                   % fields.get("durable_version"))
            total = int(fields["wal_appended_bytes"])
            client.close()
            return probes, total
        finally:
            self.stop_server(proc)

    def run_crash_iteration(self, iteration, crash_at, probes):
        data_dir = os.path.join(self.tmp, "crash-%d" % iteration)
        shutil.rmtree(data_dir, ignore_errors=True)
        sock = os.path.join(self.tmp, "crash-%d.sock" % iteration)

        # Phase 1: feed the schedule into a doomed server.
        proc = self.start_server(data_dir, sock,
                                 {"ITDB_CRASH_AT": str(crash_at)})
        acked = 0
        crashed = False
        client = Client.connect_unix(sock)
        try:
            for version, mutation in enumerate(MUTATIONS, start=1):
                frame = client.request(mutation)
                if frame.status != "ok":
                    raise RuntimeError("mutation %d rejected: %s"
                                       % (version, frame.payload))
                acked = version
                if version in CHECKPOINT_AFTER:
                    client.request("checkpoint")
        except (ConnectionError, BrokenPipeError, OSError, ValueError):
            crashed = True
        finally:
            client.close()
        if not crashed:
            raise RuntimeError("ITDB_CRASH_AT=%d never fired" % crash_at)
        proc.wait(timeout=30)
        if proc.returncode != 42:
            raise RuntimeError("expected fault-injection exit 42, got %s"
                               % proc.returncode)

        # Phase 2: recover and check the prefix is exactly the acked one.
        proc = self.start_server(data_dir, sock)
        try:
            client = Client.connect_unix(sock)
            fields = self.status_fields(client)
            recovered = int(fields["durable_version"])
            if recovered != acked:
                raise RuntimeError(
                    "recovered to version %d but %d mutations were "
                    "acknowledged" % (recovered, acked))
            got = self.probe(client)
            if got != probes[recovered]:
                raise RuntimeError(
                    "recovered probe at version %d diverges from control:\n"
                    "--- control ---\n%s\n--- recovered ---\n%s"
                    % (recovered, probes[recovered], got))

            # Phase 3: finish the schedule; every step must re-converge.
            for version in range(recovered + 1, len(MUTATIONS) + 1):
                frame = client.request(MUTATIONS[version - 1])
                if frame.status != "ok":
                    raise RuntimeError("post-recovery mutation %d failed: %s"
                                       % (version, frame.payload))
                if version in CHECKPOINT_AFTER:
                    client.request("checkpoint")
                got = self.probe(client)
                if got != probes[version]:
                    raise RuntimeError(
                        "post-recovery probe at version %d diverges:\n"
                        "--- control ---\n%s\n--- got ---\n%s"
                        % (version, probes[version], got))
            client.close()
        finally:
            self.stop_server(proc)
        shutil.rmtree(data_dir, ignore_errors=True)
        return acked

    def preserve(self, iteration):
        if not self.keep_dirs:
            return
        os.makedirs(self.keep_dirs, exist_ok=True)
        src = os.path.join(self.tmp, "crash-%d" % iteration)
        if os.path.isdir(src):
            shutil.copytree(
                src, os.path.join(self.keep_dirs, "crash-%d" % iteration),
                dirs_exist_ok=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--serve", required=True,
                        help="path to the itdb_serve binary")
    parser.add_argument("--iterations", type=int, default=50,
                        help="number of randomized crash points")
    parser.add_argument("--seed", type=int, default=None,
                        help="crash-point RNG seed (default: random)")
    parser.add_argument("--keep-dirs", default=None,
                        help="preserve failing data dirs under this path")
    args = parser.parse_args()
    if not os.path.exists(args.serve):
        print("no such binary: %s" % args.serve, file=sys.stderr)
        return 2

    seed = args.seed if args.seed is not None else random.randrange(1 << 32)
    rng = random.Random(seed)
    harness = Harness(args.serve, keep_dirs=args.keep_dirs)
    try:
        probes, total = harness.run_control()
        print("control: %d mutations, %d WAL bytes, seed %d"
              % (len(MUTATIONS), total, seed))
        for i in range(args.iterations):
            crash_at = rng.randrange(total)
            try:
                acked = harness.run_crash_iteration(i, crash_at, probes)
            except Exception as e:  # noqa: BLE001 -- report and preserve.
                harness.preserve(i)
                print("FAIL iteration %d (ITDB_CRASH_AT=%d, seed %d): %s"
                      % (i, crash_at, seed, e), file=sys.stderr)
                return 1
            print("iteration %d: crash at byte %d -> recovered version %d, "
                  "reconverged" % (i, crash_at, acked))
        print("OK: %d/%d iterations recovered bit-identically"
              % (args.iterations, args.iterations))
        return 0
    finally:
        harness.cleanup()


if __name__ == "__main__":
    sys.exit(main())
