#!/usr/bin/env python3
"""Compare google-benchmark JSON reports against checked-in floors.

Usage:
    check_bench_floor.py --floors bench/bench_floors.json REPORT.json...

Each floor entry names a benchmark (exactly as it appears in the report's
"name" field) and its reference wall time in nanoseconds.  The check fails
when a measured real_time exceeds factor * floor -- a wide margin, so only
genuine regressions (an accidentally quadratic fast path, a lost prefilter)
trip it, not machine noise.  A floor entry missing from every report also
fails: silently dropping a benchmark must not silently drop its guard.

Two further guards:

  * Stale-floor WARN: a measurement beating its floor by more than 10x
    means the floor no longer describes the code (an optimization landed
    without re-baselining) and the 5x failure margin has quietly become a
    50x one.  Warns rather than fails -- going faster is not a regression
    -- but the floor should be re-baselined.
  * Ratios: the optional "ratios" section pins *relative* gaps (e.g. the
    cost-planned join order vs the written order, a warm cache hit vs a
    cold evaluation).  Each entry fails when time(slower) / time(faster)
    drops below min_ratio -- absolute floors cannot catch the two sides
    drifting together.
"""

import argparse
import json
import sys


def load_report_times(paths):
    """name -> real_time in ns, across all reports (later files win)."""
    times = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        for b in report.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if scale is None:
                sys.exit(f"{path}: unknown time_unit {unit!r}")
            name = b["name"]
            # BigO/RMS rows repeat the name with a suffix and carry no
            # real_time comparable to a floor.
            if name.endswith("_BigO") or name.endswith("_RMS"):
                continue
            times[name] = float(b["real_time"]) * scale
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floors", required=True)
    parser.add_argument("reports", nargs="+")
    args = parser.parse_args()

    with open(args.floors) as f:
        config = json.load(f)
    factor = float(config["factor"])
    floors = config["floors_ns"]

    times = load_report_times(args.reports)
    failures = []
    warnings = []
    for name, floor in sorted(floors.items()):
        measured = times.get(name)
        if measured is None:
            failures.append(f"{name}: not found in any report")
            continue
        limit = factor * floor
        # measured/floor: <1.0 means faster than the reference baseline,
        # >factor trips the gate.  Printed for every benchmark so perf
        # drift is visible long before it becomes a failure.
        ratio = measured / floor if floor > 0 else float("inf")
        verdict = "ok"
        if measured > limit:
            verdict = "FAIL"
        elif measured * 10 < floor:
            verdict = "WARN"
        print(f"{verdict:>4}  {name}: {measured / 1e6:.3f} ms "
              f"(floor {floor / 1e6:.3f} ms, limit {limit / 1e6:.3f} ms, "
              f"ratio {ratio:.2f}x)")
        if verdict == "FAIL":
            failures.append(
                f"{name}: {measured / 1e6:.3f} ms exceeds "
                f"{factor}x floor {floor / 1e6:.3f} ms")
        elif verdict == "WARN":
            warnings.append(
                f"{name}: {measured / 1e6:.3f} ms beats its floor "
                f"{floor / 1e6:.3f} ms by >10x -- stale floor, "
                f"re-baseline it")

    for entry in config.get("ratios", []):
        slower, faster = entry["slower"], entry["faster"]
        min_ratio = float(entry["min_ratio"])
        t_slow, t_fast = times.get(slower), times.get(faster)
        if t_slow is None or t_fast is None:
            missing = slower if t_slow is None else faster
            failures.append(f"ratio {slower} / {faster}: "
                            f"{missing} not found in any report")
            continue
        ratio = t_slow / t_fast if t_fast > 0 else float("inf")
        verdict = "FAIL" if ratio < min_ratio else "ok"
        print(f"{verdict:>4}  ratio {slower} / {faster}: {ratio:.1f}x "
              f"(min {min_ratio}x)")
        if ratio < min_ratio:
            failures.append(
                f"ratio {slower} / {faster}: {ratio:.1f}x below "
                f"required {min_ratio}x")

    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    if failures:
        print()
        for f in failures:
            print(f"regression: {f}", file=sys.stderr)
        return 1
    ratios = config.get("ratios", [])
    print(f"\nall {len(floors)} floors hold (factor {factor}x)"
          + (f", all {len(ratios)} ratios hold" if ratios else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
