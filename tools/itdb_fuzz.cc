// Metamorphic + differential fuzzer for the generalized algebra.
//
//   ./itdb_fuzz --cases 2000 --seed 1          # fuzz, exit 1 on failure
//   ./itdb_fuzz --replay repro.itdb            # re-run a saved repro
//   ./itdb_fuzz --inject-bug join-drop-constraint --out /tmp/repros
//
// On failure, each minimized case is written as a replayable dump
// (<out>/repro-<seed>.itdb, default ".") and printed to stderr.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fuzz/fuzzer.h"
#include "fuzz/query_oracle.h"
#include "obs/trace.h"

namespace {

constexpr const char* kUsage = R"(usage: itdb_fuzz [options]
  --cases N          number of random cases to run (default 1000)
  --seed S           master seed; every failure reports its own sub-seed
                     (default 1)
  --threads N        "N" of the 1-vs-N determinism matrix (default: hardware)
  --inner W          differential comparison window [-W, W] (default 4)
  --outer W          finite-baseline materialization window (default 28)
  --max-failures N   stop after N failures (default 5)
  --query-cases N    additionally fuzz the query static analyzer: N random
                     queries through the bit-identity (analyze on/off x
                     1/N threads) and proven-empty oracles (default 0 = off)
  --no-shrink        report failures unminimized
  --inject-bug NAME  corrupt the engine on purpose; the fuzzer must catch it
                     (none, join-drop-constraint, union-drop-tuple,
                      shift-off-by-one)
  --replay FILE      re-run the oracles on a saved repro dump, then exit
  --out DIR          directory for repro dumps (default ".")
  --trace-json FILE  record spans (one per case + algebra kernels) and write
                     a chrome://tracing-compatible JSON trace to FILE
  --verbose          per-failure detail on stderr
)";

std::uint64_t ParseU64(const std::string& s) {
  return std::stoull(s);
}

int Usage() {
  std::cerr << kUsage;
  return 2;
}

int Replay(const std::string& path, const itdb::fuzz::OracleOptions& oracle) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "error: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  itdb::Result<itdb::fuzz::CaseOutcome> outcome =
      itdb::fuzz::ReplayRepro(buffer.str(), oracle);
  if (!outcome.ok()) {
    std::cerr << path << ": " << outcome.status() << "\n";
    return 2;
  }
  if (outcome->skipped) {
    std::cout << path << ": skipped (" << outcome->skip_reason << ")\n";
    return 0;
  }
  if (outcome->failure) {
    std::cerr << path << ": FAIL [" << outcome->failure->oracle;
    if (!outcome->failure->rule.empty()) {
      std::cerr << " / " << outcome->failure->rule;
    }
    std::cerr << "] " << outcome->failure->detail << "\n";
    return 1;
  }
  std::cout << path << ": ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  itdb::fuzz::FuzzConfig config;
  itdb::fuzz::QueryFuzzConfig query_config;
  query_config.cases = 0;
  std::string replay_path;
  std::string out_dir = ".";
  std::string trace_path;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    try {
      if (arg == "--cases") {
        const char* v = next();
        if (!v) return Usage();
        config.cases = std::stoi(v);
      } else if (arg == "--seed") {
        const char* v = next();
        if (!v) return Usage();
        config.seed = ParseU64(v);
      } else if (arg == "--threads") {
        const char* v = next();
        if (!v) return Usage();
        config.oracle.threads = std::stoi(v);
      } else if (arg == "--inner") {
        const char* v = next();
        if (!v) return Usage();
        config.oracle.inner_window = std::stoll(v);
      } else if (arg == "--outer") {
        const char* v = next();
        if (!v) return Usage();
        config.oracle.outer_window = std::stoll(v);
      } else if (arg == "--max-failures") {
        const char* v = next();
        if (!v) return Usage();
        config.max_failures = std::stoi(v);
      } else if (arg == "--query-cases") {
        const char* v = next();
        if (!v) return Usage();
        query_config.cases = std::stoi(v);
      } else if (arg == "--no-shrink") {
        config.shrink = false;
      } else if (arg == "--inject-bug") {
        const char* v = next();
        if (!v) return Usage();
        itdb::Result<itdb::fuzz::InjectedBug> bug =
            itdb::fuzz::ParseInjectedBug(v);
        if (!bug.ok()) {
          std::cerr << "error: " << bug.status() << "\n";
          return 2;
        }
        config.oracle.bug = *bug;
      } else if (arg == "--replay") {
        const char* v = next();
        if (!v) return Usage();
        replay_path = v;
      } else if (arg == "--out") {
        const char* v = next();
        if (!v) return Usage();
        out_dir = v;
      } else if (arg == "--trace-json") {
        const char* v = next();
        if (!v) return Usage();
        trace_path = v;
      } else if (arg == "--verbose") {
        verbose = true;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else {
        std::cerr << "error: unknown option " << arg << "\n";
        return Usage();
      }
    } catch (const std::exception&) {
      std::cerr << "error: bad value for " << arg << "\n";
      return 2;
    }
  }

  // Installed globally (not just wired into config.tracer) so the algebra
  // kernels a case exercises record spans too, nested under the case span.
  itdb::obs::Tracer tracer;
  if (!trace_path.empty()) {
    itdb::obs::InstallGlobalTracer(&tracer);
    config.tracer = &tracer;
  }

  if (!replay_path.empty()) return Replay(replay_path, config.oracle);

  itdb::fuzz::FuzzReport report = itdb::fuzz::RunFuzz(config);
  std::cout << "seed " << config.seed << ": " << report.Summary() << "\n";

  bool query_ok = true;
  if (query_config.cases > 0) {
    query_config.seed = config.seed;
    query_config.max_failures = config.max_failures;
    query_config.oracle.threads = config.oracle.threads;
    itdb::fuzz::QueryFuzzReport query_report =
        itdb::fuzz::RunQueryFuzz(query_config);
    std::cout << "seed " << config.seed << ": " << query_report.Summary()
              << "\n";
    for (const itdb::fuzz::QueryFuzzFailure& fail : query_report.failures) {
      std::cerr << "FAIL [query] seed " << fail.case_seed << ": "
                << fail.description << "\n  query: " << fail.query
                << "\n  shrunk: " << fail.shrunk_query << "\n";
      // Standalone repro: the database text plus both queries, replayable
      // by loading the database in the shell and re-issuing the query.
      std::string path = out_dir + "/query-repro-" +
                         std::to_string(fail.case_seed) + ".txt";
      std::ofstream file(path);
      if (file) {
        file << "# query fuzz failure, seed " << fail.case_seed << "\n"
             << "# failure: " << fail.description << "\n"
             << "# query: " << fail.query << "\n"
             << "# shrunk query: " << fail.shrunk_query << "\n"
             << "# shrunk failure: " << fail.shrunk_description << "\n"
             << fail.database;
        std::cerr << "  repro -> " << path << "\n";
      } else {
        std::cerr << "  (cannot write " << path << ")\n";
      }
    }
    query_ok = query_report.ok();
  }

  if (!trace_path.empty()) {
    itdb::obs::InstallGlobalTracer(nullptr);
    std::ofstream trace_file(trace_path);
    if (trace_file) {
      trace_file << tracer.ToChromeTraceJson();
      std::cout << "trace: " << tracer.size() << " span(s) -> " << trace_path
                << (tracer.dropped() > 0
                        ? " (" + std::to_string(tracer.dropped()) +
                              " dropped at the span cap)"
                        : "")
                << "\n";
    } else {
      std::cerr << "error: cannot write " << trace_path << "\n";
    }
  }

  for (const itdb::fuzz::FuzzFailure& fail : report.failures) {
    std::string dump = itdb::fuzz::FormatRepro(fail.repro, fail.failure,
                                               fail.case_seed);
    std::string path =
        out_dir + "/repro-" + std::to_string(fail.case_seed) + ".itdb";
    std::ofstream file(path);
    if (file) {
      file << dump;
      std::cerr << "FAIL [" << fail.failure.oracle << "] seed "
                << fail.case_seed << " -> " << path << "\n";
    } else {
      std::cerr << "FAIL [" << fail.failure.oracle << "] seed "
                << fail.case_seed << " (cannot write " << path << ")\n";
    }
    if (verbose) {
      std::cerr << "  detail: " << fail.failure.detail << "\n"
                << "  shrink: " << fail.shrink_stats.accepted
                << " reductions in " << fail.shrink_stats.attempts
                << " attempts\n"
                << dump;
    }
  }
  return report.ok() && query_ok ? 0 : 1;
}
