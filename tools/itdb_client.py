#!/usr/bin/env python3
"""Sample client for the itdb query service (tools/itdb_serve).

Speaks the wire protocol of src/server/protocol.h: statements go out as
newline-delimited lines in the shell grammar; each complete statement is
answered by exactly one length-prefixed frame

    b"itdb " + status + b" " + nbytes + b"\n" + payload

with status one of ok / error / retry / bye.  `retry` means admission
control shed the request; it is retriable verbatim and this client backs
off and resends (--retries bounds the attempts).

Usage:
    itdb_client.py --unix /tmp/itdb.sock 'ask EXISTS t . R(t)'
    itdb_client.py --port 7411 --file script.itdb
    echo 'status' | itdb_client.py --port 7411 -

Exit status: 0 if every statement got `ok` (or `bye`), 1 on any error
response, 2 on usage / connection problems.
"""

import argparse
import socket
import sys
import time


class Frame:
    def __init__(self, status, payload):
        self.status = status
        self.payload = payload


class Client:
    """A blocking protocol client over one socket."""

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    @classmethod
    def connect_unix(cls, path):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(path)
        return cls(sock)

    @classmethod
    def connect_tcp(cls, port, host="127.0.0.1"):
        return cls(socket.create_connection((host, port)))

    def close(self):
        self.sock.close()

    def _read_more(self):
        chunk = self.sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self.buffer += chunk

    def read_frame(self):
        """Reads one response frame (the state machine of ResponseDecoder)."""
        while b"\n" not in self.buffer:
            self._read_more()
        header, rest = self.buffer.split(b"\n", 1)
        parts = header.decode("utf-8", "replace").split(" ")
        if len(parts) != 3 or parts[0] != "itdb" or not parts[2].isdigit():
            raise ValueError("malformed frame header: %r" % header)
        status, nbytes = parts[1], int(parts[2])
        while len(rest) < nbytes:
            self._read_more()
            header2, rest = self.buffer.split(b"\n", 1)
            assert header2 == header
        payload = rest[:nbytes]
        self.buffer = rest[nbytes:]
        return Frame(status, payload.decode("utf-8", "replace"))

    def send_lines(self, statement):
        """Sends one statement (multi-line define blocks included)."""
        self.sock.sendall(statement.encode("utf-8") + b"\n")

    def request(self, statement, retries=5, backoff_s=0.05):
        """Sends a statement; on `retry` backs off and resends."""
        attempt = 0
        while True:
            self.send_lines(statement)
            frame = self.read_frame()
            if frame.status != "retry" or attempt >= retries:
                return frame
            time.sleep(backoff_s * (2 ** attempt))
            attempt += 1


def iter_statements(lines):
    """Groups raw lines into statements by the server's assembly rule:
    `define` statements continue until braces balance."""
    pending = []
    balance = 0
    for line in lines:
        line = line.rstrip("\n")
        if not pending:
            stripped = line.split("#", 1)[0]
            if not stripped.strip():
                continue
            balance = stripped.count("{") - stripped.count("}")
            if stripped.split()[0] == "define" and balance > 0:
                pending = [stripped]
                continue
            yield stripped
        else:
            pending.append(line)
            balance += line.count("{") - line.count("}")
            if balance <= 0:
                yield "\n".join(pending)
                pending = []
    if pending:
        yield "\n".join(pending)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--unix", metavar="PATH", help="Unix socket path")
    target.add_argument("--port", type=int, help="TCP port on 127.0.0.1")
    parser.add_argument("--file", help="read statements from a script file")
    parser.add_argument("--retries", type=int, default=5,
                        help="resend budget for shed (`retry`) responses")
    parser.add_argument("statements", nargs="*",
                        help="statements to run ('-' = read stdin)")
    args = parser.parse_args()

    lines = []
    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            lines.extend(f.readlines())
    for statement in args.statements:
        if statement == "-":
            lines.extend(sys.stdin.readlines())
        else:
            lines.extend(statement.splitlines())
    if not lines:
        print("nothing to send (pass statements, --file, or '-')",
              file=sys.stderr)
        return 2

    try:
        if args.unix:
            client = Client.connect_unix(args.unix)
        else:
            client = Client.connect_tcp(args.port)
    except OSError as e:
        print("connection failed: %s" % e, file=sys.stderr)
        return 2

    failed = False
    try:
        for statement in iter_statements(lines):
            frame = client.request(statement, retries=args.retries)
            sys.stdout.write(frame.payload)
            if frame.status == "bye":
                break
            if frame.status != "ok":
                failed = True
    finally:
        client.close()
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
