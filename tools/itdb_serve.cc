// The itdb query service daemon.
//
//   ./itdb_serve --unix /tmp/itdb.sock db.itdb           # Unix socket
//   ./itdb_serve --port 7411 db.itdb                     # loopback TCP
//   ./itdb_serve --port 0 db.itdb                        # ephemeral port
//   ./itdb_serve --port 0 --data-dir /var/itdb           # durable catalog
//
// Preloads the given relation files, then serves the shell grammar over the
// wire protocol (src/server/protocol.h) until SIGINT / SIGTERM.  A sample
// client lives at tools/itdb_client.py.
//
// Options:
//   --unix PATH         listen on a Unix-domain socket at PATH
//   --port N            listen on 127.0.0.1:N (0 = ephemeral; the chosen
//                       port is printed on startup)
//   --max-pending N     admission bound: requests held at once (default 64)
//   --deadline-ms N     per-query wall-clock budget (default: unlimited)
//   --cost-aware        stricter budgets for statically heavy queries
//                       (A010 NP-regime complement / A012 period blowup)
//   --cache-bytes N     byte budget of the versioned cross-query result
//                       cache (default 16 MiB; 0 disables caching)
//   --read-only         reject catalog mutation and server-side file writes
//   --data-dir DIR      durable catalog: recover from DIR's snapshot + WAL
//                       on startup, WAL-log every mutation, and enable the
//                       checkpoint / `as of` / history verbs
//   --fsync             fsync the WAL after every mutation (power-loss
//                       durability; default is process-crash durability)
//   --checkpoint-every N  automatic checkpoint after N WAL records
//
// Preloaded files are seeded into the durable catalog on first boot;
// relations recovered from --data-dir win over same-named file contents on
// later boots, so restarting with the same command line is idempotent.
//
// Startup prints one line per bound endpoint:
//   itdb_serve listening on unix:/tmp/itdb.sock
//   itdb_serve listening on tcp:127.0.0.1:7411

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <semaphore.h>
#include <sstream>
#include <string>
#include <vector>

#include "server/server.h"
#include "storage/database.h"
#include "storage/wal/storage_engine.h"

namespace {

// Signal flow: the handler posts a semaphore (async-signal-safe); main
// blocks on it and runs the orderly Server::Stop.
sem_t g_stop_sem;

void HandleSignal(int) { sem_post(&g_stop_sem); }

int Usage() {
  std::cerr << "usage: itdb_serve (--unix PATH | --port N) [--max-pending N]"
               " [--deadline-ms N] [--cost-aware] [--cache-bytes N]"
               " [--read-only] [--data-dir DIR] [--fsync]"
               " [--checkpoint-every N] [file.itdb ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  itdb::server::ServerOptions options;
  itdb::storage::StorageEngineOptions storage_options;
  std::string data_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--unix" && i + 1 < argc) {
      options.unix_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--max-pending" && i + 1 < argc) {
      options.admission.max_pending = std::atoll(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.session.deadline_ms = std::atoll(argv[++i]);
    } else if (arg == "--cost-aware") {
      options.session.cost_aware_budgets = true;
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      options.result_cache_bytes =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--read-only") {
      options.session.read_only = true;
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--fsync") {
      storage_options.fsync = true;
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      storage_options.auto_checkpoint_records =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (options.unix_path.empty() && options.port < 0) return Usage();

  itdb::Database db;
  std::unique_ptr<itdb::storage::StorageEngine> engine;
  if (!data_dir.empty()) {
    itdb::Result<std::unique_ptr<itdb::storage::StorageEngine>> opened =
        itdb::storage::StorageEngine::Open(data_dir, &db, storage_options);
    if (!opened.ok()) {
      std::cerr << "error: " << data_dir << ": " << opened.status() << "\n";
      return 1;
    }
    engine = std::move(opened).value();
    options.session.engine = engine.get();
    std::cout << "itdb_serve recovered version " << engine->version()
              << " from " << data_dir << "\n";
  }

  for (const std::string& path : files) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    itdb::Result<itdb::Database> loaded =
        itdb::Database::FromText(buffer.str());
    if (!loaded.ok()) {
      std::cerr << "error: " << path << ": " << loaded.status() << "\n";
      return 1;
    }
    for (const std::string& name : loaded.value().Names()) {
      if (engine != nullptr && db.Has(name)) continue;  // Recovered state wins.
      itdb::Status s =
          engine != nullptr
              ? engine->ApplyAdd(db, name, loaded.value().Get(name).value())
              : db.Add(name, loaded.value().Get(name).value());
      if (!s.ok()) {
        std::cerr << "error: " << s << "\n";
        return 1;
      }
    }
  }

  itdb::server::Server server(&db, options);
  itdb::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::cout << "itdb_serve listening on unix:" << options.unix_path
              << std::endl;
  } else {
    std::cout << "itdb_serve listening on tcp:127.0.0.1:" << server.port()
              << std::endl;
  }

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
  }
  std::cout << "itdb_serve shutting down\n";
  server.Stop();
  return 0;
}
