#include "presburger/formula.h"

#include <algorithm>
#include <cassert>

#include "util/numeric.h"

namespace itdb {
namespace presburger {

// The factories construct nodes through a mutable alias before returning the
// shared const pointer.
struct FormulaBuilder : Formula {
  using Formula::Formula;
  Kind& kind() { return kind_; }
  FormulaPtr& left() { return left_; }
  FormulaPtr& right() { return right_; }
  std::int64_t& k1() { return k1_; }
  int& v1() { return v1_; }
  std::int64_t& k2() { return k2_; }
  int& v2() { return v2_; }
  std::int64_t& c() { return c_; }
  std::int64_t& mod() { return mod_; }
  Cmp& cmp() { return cmp_; }
};

namespace {

std::shared_ptr<FormulaBuilder> NewNode(Formula::Kind kind) {
  auto node = std::make_shared<FormulaBuilder>();
  node->kind() = kind;
  return node;
}

}  // namespace

FormulaPtr Formula::True() { return NewNode(Kind::kTrue); }

FormulaPtr Formula::False() { return NewNode(Kind::kFalse); }

FormulaPtr Formula::UnaryCmp(std::int64_t k1, int var, Cmp cmp,
                             std::int64_t c) {
  auto node = NewNode(Kind::kCmp);
  node->k1() = k1;
  node->v1() = var;
  node->k2() = 0;
  node->v2() = -1;
  node->cmp() = cmp;
  node->c() = c;
  return node;
}

FormulaPtr Formula::UnaryCong(std::int64_t k1, int var, std::int64_t mod,
                              std::int64_t c) {
  assert(mod > 0);
  auto node = NewNode(Kind::kCong);
  node->k1() = k1;
  node->v1() = var;
  node->k2() = 0;
  node->v2() = -1;
  node->mod() = mod;
  node->c() = c;
  return node;
}

FormulaPtr Formula::BinaryCmp(std::int64_t k1, int v1, Cmp cmp, std::int64_t k2,
                              int v2, std::int64_t c) {
  assert(v1 != v2);
  auto node = NewNode(Kind::kCmp);
  node->k1() = k1;
  node->v1() = v1;
  node->k2() = k2;
  node->v2() = v2;
  node->cmp() = cmp;
  node->c() = c;
  return node;
}

FormulaPtr Formula::BinaryCong(std::int64_t k1, int v1, std::int64_t mod,
                               std::int64_t k2, int v2, std::int64_t c) {
  assert(mod > 0);
  assert(v1 != v2);
  auto node = NewNode(Kind::kCong);
  node->k1() = k1;
  node->v1() = v1;
  node->k2() = k2;
  node->v2() = v2;
  node->mod() = mod;
  node->c() = c;
  return node;
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  auto node = NewNode(Kind::kAnd);
  node->left() = std::move(a);
  node->right() = std::move(b);
  return node;
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  auto node = NewNode(Kind::kOr);
  node->left() = std::move(a);
  node->right() = std::move(b);
  return node;
}

FormulaPtr Formula::Not(FormulaPtr a) {
  auto node = NewNode(Kind::kNot);
  node->left() = std::move(a);
  return node;
}

bool Formula::Evaluate(const std::vector<std::int64_t>& assignment) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kCmp: {
      __int128 lhs = static_cast<__int128>(k1_) *
                     assignment[static_cast<std::size_t>(v1_)];
      __int128 rhs = c_;
      if (v2_ >= 0) {
        rhs += static_cast<__int128>(k2_) *
               assignment[static_cast<std::size_t>(v2_)];
      }
      switch (cmp_) {
        case Cmp::kEq:
          return lhs == rhs;
        case Cmp::kLt:
          return lhs < rhs;
        case Cmp::kGt:
          return lhs > rhs;
      }
      return false;
    }
    case Kind::kCong: {
      __int128 lhs = static_cast<__int128>(k1_) *
                     assignment[static_cast<std::size_t>(v1_)];
      __int128 rhs = c_;
      if (v2_ >= 0) {
        rhs += static_cast<__int128>(k2_) *
               assignment[static_cast<std::size_t>(v2_)];
      }
      __int128 diff = lhs - rhs;
      __int128 m = mod_;
      __int128 r = diff % m;
      return r == 0;
    }
    case Kind::kAnd:
      return left_->Evaluate(assignment) && right_->Evaluate(assignment);
    case Kind::kOr:
      return left_->Evaluate(assignment) || right_->Evaluate(assignment);
    case Kind::kNot:
      return !left_->Evaluate(assignment);
  }
  return false;
}

int Formula::MaxVar() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return -1;
    case Kind::kCmp:
    case Kind::kCong:
      return std::max(v1_, v2_);
    case Kind::kAnd:
    case Kind::kOr:
      return std::max(left_->MaxVar(), right_->MaxVar());
    case Kind::kNot:
      return left_->MaxVar();
  }
  return -1;
}

FormulaPtr Formula::NegateAtom(const Formula& atom) {
  if (atom.kind_ == Kind::kCmp) {
    // not(=) -> (<) or (>);  not(<) -> (=) or (>);  not(>) -> (=) or (<).
    auto make = [&atom](Cmp cmp) {
      return atom.is_unary_atom()
                 ? UnaryCmp(atom.k1_, atom.v1_, cmp, atom.c_)
                 : BinaryCmp(atom.k1_, atom.v1_, cmp, atom.k2_, atom.v2_,
                             atom.c_);
    };
    switch (atom.cmp_) {
      case Cmp::kEq:
        return Or(make(Cmp::kLt), make(Cmp::kGt));
      case Cmp::kLt:
        return Or(make(Cmp::kEq), make(Cmp::kGt));
      case Cmp::kGt:
        return Or(make(Cmp::kEq), make(Cmp::kLt));
    }
  }
  assert(atom.kind_ == Kind::kCong);
  // not(x ===_m c) == OR over r in 1..m-1 of (x ===_m c + r).
  FormulaPtr out;
  for (std::int64_t r = 1; r < atom.mod_; ++r) {
    FormulaPtr alt =
        atom.is_unary_atom()
            ? UnaryCong(atom.k1_, atom.v1_, atom.mod_, atom.c_ + r)
            : BinaryCong(atom.k1_, atom.v1_, atom.mod_, atom.k2_, atom.v2_,
                         atom.c_ + r);
    out = out == nullptr ? alt : Or(std::move(out), std::move(alt));
  }
  return out == nullptr ? False() : out;  // mod == 1: congruence is `true`.
}

FormulaPtr Formula::NnfImpl(const FormulaPtr& f, bool negate) {
  switch (f->kind_) {
    case Kind::kTrue:
      return negate ? False() : f;
    case Kind::kFalse:
      return negate ? True() : f;
    case Kind::kCmp:
    case Kind::kCong:
      return negate ? NegateAtom(*f) : f;
    case Kind::kAnd: {
      FormulaPtr l = NnfImpl(f->left_, negate);
      FormulaPtr r = NnfImpl(f->right_, negate);
      return negate ? Or(std::move(l), std::move(r))
                    : And(std::move(l), std::move(r));
    }
    case Kind::kOr: {
      FormulaPtr l = NnfImpl(f->left_, negate);
      FormulaPtr r = NnfImpl(f->right_, negate);
      return negate ? And(std::move(l), std::move(r))
                    : Or(std::move(l), std::move(r));
    }
    case Kind::kNot:
      return NnfImpl(f->left_, !negate);
  }
  return f;
}

FormulaPtr NegationNormalForm(const FormulaPtr& f) {
  return Formula::NnfImpl(f, false);
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kCmp:
    case Kind::kCong: {
      std::string lhs = std::to_string(k1_) + "*v" + std::to_string(v1_);
      std::string rhs;
      if (v2_ >= 0) {
        rhs = std::to_string(k2_) + "*v" + std::to_string(v2_);
        if (c_ != 0) rhs += (c_ > 0 ? "+" : "") + std::to_string(c_);
      } else {
        rhs = std::to_string(c_);
      }
      if (kind_ == Kind::kCong) {
        return lhs + " ===_" + std::to_string(mod_) + " " + rhs;
      }
      const char* op = cmp_ == Cmp::kEq ? " = " : (cmp_ == Cmp::kLt ? " < " : " > ");
      return lhs + op + rhs;
    }
    case Kind::kAnd:
      return "(" + left_->ToString() + " && " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " || " + right_->ToString() + ")";
    case Kind::kNot:
      return "!(" + left_->ToString() + ")";
  }
  return "?";
}

}  // namespace presburger
}  // namespace itdb
