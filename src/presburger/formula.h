// Presburger arithmetic formulas (Section 2.2 of the paper).
//
// The paper characterizes the expressiveness of generalized relations
// against Presburger arithmetic: boolean combinations of the basic formulas
//
//   unary  (Theorem 2.1):  k1*v  {=,<,>}  c        k1*v ===_{k2} c
//   binary (Theorem 2.2):  k1*v1 {=,<,>}  k2*v2+c  k1*v1 ===_{k3} k2*v2+c
//
// This module provides the formula AST, a direct evaluator over integer
// assignments (the ground truth for the translation tests), negation-normal
// form, and printing.  The constructive translations of Theorems 2.1/2.2
// live in to_relation.h.

#ifndef ITDB_PRESBURGER_FORMULA_H_
#define ITDB_PRESBURGER_FORMULA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace itdb {
namespace presburger {

/// Comparison in a basic formula.
enum class Cmp {
  kEq,
  kLt,
  kGt,
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// An immutable Presburger formula tree.  Variables are identified by
/// indices >= 0 (Theorem 2.1 uses variable 0; Theorem 2.2 variables 0, 1).
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kCmp,   // k1*v1 cmp k2*v2 + c   (unary when k2 == 0 / v2 unused)
    kCong,  // k1*v1 ===_{mod} k2*v2 + c
    kAnd,
    kOr,
    kNot,
  };

  // ---- Factories ----
  static FormulaPtr True();
  static FormulaPtr False();
  /// k1 * v(var) cmp c.
  static FormulaPtr UnaryCmp(std::int64_t k1, int var, Cmp cmp, std::int64_t c);
  /// k1 * v(var) ===_{mod} c  (mod > 0).
  static FormulaPtr UnaryCong(std::int64_t k1, int var, std::int64_t mod,
                              std::int64_t c);
  /// k1 * v(v1) cmp k2 * v(v2) + c.
  static FormulaPtr BinaryCmp(std::int64_t k1, int v1, Cmp cmp, std::int64_t k2,
                              int v2, std::int64_t c);
  /// k1 * v(v1) ===_{mod} k2 * v(v2) + c  (mod > 0).
  static FormulaPtr BinaryCong(std::int64_t k1, int v1, std::int64_t mod,
                               std::int64_t k2, int v2, std::int64_t c);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Not(FormulaPtr a);

  Kind kind() const { return kind_; }
  const FormulaPtr& left() const { return left_; }
  const FormulaPtr& right() const { return right_; }

  // Atom accessors (valid for kCmp / kCong).
  std::int64_t k1() const { return k1_; }
  int v1() const { return v1_; }
  std::int64_t k2() const { return k2_; }
  int v2() const { return v2_; }          // -1 when unary
  std::int64_t c() const { return c_; }
  std::int64_t mod() const { return mod_; }  // kCong only
  Cmp cmp() const { return cmp_; }           // kCmp only
  bool is_unary_atom() const { return v2_ < 0; }

  /// Ground-truth evaluation: assignment[i] is the value of variable i.
  bool Evaluate(const std::vector<std::int64_t>& assignment) const;

  /// Largest variable index mentioned, or -1 for closed formulas.
  int MaxVar() const;

  std::string ToString() const;

 protected:
  Formula() = default;

 private:
  friend FormulaPtr NegationNormalForm(const FormulaPtr& f);
  friend struct FormulaBuilder;

  Kind kind_ = Kind::kTrue;
  FormulaPtr left_;
  FormulaPtr right_;
  std::int64_t k1_ = 0;
  int v1_ = -1;
  std::int64_t k2_ = 0;
  int v2_ = -1;
  std::int64_t c_ = 0;
  std::int64_t mod_ = 0;
  Cmp cmp_ = Cmp::kEq;

  static FormulaPtr NnfImpl(const FormulaPtr& f, bool negate);
  static FormulaPtr NegateAtom(const Formula& atom);
};

/// Negation-normal form: negations pushed to (and absorbed into) atoms.
/// The result contains no kNot nodes; negated atoms are expanded into
/// disjunctions of positive atoms (e.g. not(=) -> (<) or (>), and a negated
/// congruence becomes the disjunction over the other residues modulo `mod`).
FormulaPtr NegationNormalForm(const FormulaPtr& f);

}  // namespace presburger
}  // namespace itdb

#endif  // ITDB_PRESBURGER_FORMULA_H_
