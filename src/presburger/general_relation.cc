#include "presburger/general_relation.h"

#include <algorithm>

namespace itdb {
namespace presburger {

bool GeneralConstraint::SatisfiedBy(const std::vector<std::int64_t>& x) const {
  __int128 lhs =
      static_cast<__int128>(kl) * x[static_cast<std::size_t>(li)];
  __int128 rhs = c;
  if (ri >= 0) {
    rhs += static_cast<__int128>(kr) * x[static_cast<std::size_t>(ri)];
  }
  return lhs <= rhs;
}

std::string GeneralConstraint::ToString() const {
  std::string out =
      std::to_string(kl) + "*X" + std::to_string(li) + " <= ";
  if (ri >= 0) {
    out += std::to_string(kr) + "*X" + std::to_string(ri);
    if (c != 0) out += (c > 0 ? "+" : "") + std::to_string(c);
  } else {
    out += std::to_string(c);
  }
  return out;
}

bool GeneralTuple::ContainsTemporal(const std::vector<std::int64_t>& x) const {
  if (static_cast<int>(x.size()) != arity()) return false;
  for (int i = 0; i < arity(); ++i) {
    if (!lrp(i).Contains(x[static_cast<std::size_t>(i)])) return false;
  }
  for (const GeneralConstraint& c : constraints_) {
    if (!c.SatisfiedBy(x)) return false;
  }
  return true;
}

std::vector<std::vector<std::int64_t>> GeneralTuple::EnumerateTemporal(
    std::int64_t lo, std::int64_t hi) const {
  std::vector<std::vector<std::int64_t>> out;
  int m = arity();
  std::vector<std::vector<std::int64_t>> columns;
  for (int i = 0; i < m; ++i) {
    columns.push_back(lrp(i).ElementsInRange(lo, hi));
    if (columns.back().empty()) return out;
  }
  if (m == 0) {
    out.push_back({});
    return out;
  }
  std::vector<std::int64_t> point(static_cast<std::size_t>(m));
  std::vector<std::size_t> idx(static_cast<std::size_t>(m), 0);
  while (true) {
    for (int i = 0; i < m; ++i) {
      point[static_cast<std::size_t>(i)] =
          columns[static_cast<std::size_t>(i)][idx[static_cast<std::size_t>(i)]];
    }
    bool ok = true;
    for (const GeneralConstraint& c : constraints_) {
      if (!c.SatisfiedBy(point)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(point);
    int d = m - 1;
    while (d >= 0) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++idx[ud] < columns[ud].size()) break;
      idx[ud] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return out;
}

Result<std::optional<GeneralTuple>> GeneralTuple::Intersect(
    const GeneralTuple& a, const GeneralTuple& b) {
  using MaybeTuple = std::optional<GeneralTuple>;
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument(
        "general tuple intersection requires equal arities");
  }
  std::vector<Lrp> lrps;
  lrps.reserve(a.temporal_.size());
  for (int i = 0; i < a.arity(); ++i) {
    ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> inter,
                          Lrp::Intersect(a.lrp(i), b.lrp(i)));
    if (!inter.has_value()) return MaybeTuple(std::nullopt);
    lrps.push_back(*inter);
  }
  std::vector<GeneralConstraint> constraints = a.constraints_;
  constraints.insert(constraints.end(), b.constraints_.begin(),
                     b.constraints_.end());
  return MaybeTuple(GeneralTuple(std::move(lrps), std::move(constraints)));
}

std::string GeneralTuple::ToString() const {
  std::string out = "[";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += lrp(i).ToString();
  }
  out += "]";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    out += i == 0 ? " " : " && ";
    out += constraints_[i].ToString();
  }
  return out;
}

Status GeneralRelation::AddTuple(GeneralTuple t) {
  if (t.arity() != arity_) {
    return Status::InvalidArgument("general tuple arity mismatch");
  }
  tuples_.push_back(std::move(t));
  return Status::Ok();
}

bool GeneralRelation::Contains(const std::vector<std::int64_t>& x) const {
  for (const GeneralTuple& t : tuples_) {
    if (t.ContainsTemporal(x)) return true;
  }
  return false;
}

std::vector<std::vector<std::int64_t>> GeneralRelation::Enumerate(
    std::int64_t lo, std::int64_t hi) const {
  std::vector<std::vector<std::int64_t>> out;
  for (const GeneralTuple& t : tuples_) {
    std::vector<std::vector<std::int64_t>> points = t.EnumerateTemporal(lo, hi);
    out.insert(out.end(), points.begin(), points.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<GeneralRelation> GeneralRelation::Union(const GeneralRelation& a,
                                               const GeneralRelation& b) {
  if (a.arity_ != b.arity_) {
    return Status::InvalidArgument("general relation arity mismatch");
  }
  GeneralRelation out(a.arity_);
  out.tuples_ = a.tuples_;
  out.tuples_.insert(out.tuples_.end(), b.tuples_.begin(), b.tuples_.end());
  return out;
}

Result<GeneralRelation> GeneralRelation::Intersect(const GeneralRelation& a,
                                                   const GeneralRelation& b) {
  if (a.arity_ != b.arity_) {
    return Status::InvalidArgument("general relation arity mismatch");
  }
  GeneralRelation out(a.arity_);
  for (const GeneralTuple& ta : a.tuples_) {
    for (const GeneralTuple& tb : b.tuples_) {
      ITDB_ASSIGN_OR_RETURN(std::optional<GeneralTuple> t,
                            GeneralTuple::Intersect(ta, tb));
      if (t.has_value()) ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(*t)));
    }
  }
  return out;
}

std::string GeneralRelation::ToString() const {
  std::string out;
  for (const GeneralTuple& t : tuples_) {
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

}  // namespace presburger
}  // namespace itdb
