#include "presburger/to_relation.h"

#include <string>
#include <utility>

#include "util/numeric.h"

namespace itdb {
namespace presburger {

namespace {

// Residue unions in the binary congruence construction are capped: the
// paper's proof materializes `mod` tuples.
constexpr std::int64_t kMaxCongruenceResidues = 1 << 12;

GeneralizedRelation EmptyUnary() {
  return GeneralizedRelation(Schema::Temporal(1));
}

Result<GeneralizedRelation> UniverseUnary() {
  GeneralizedRelation r(Schema::Temporal(1));
  ITDB_RETURN_IF_ERROR(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 1)})));
  return r;
}

/// Translates one unary basic formula (Theorem 2.1's case analysis).
Result<GeneralizedRelation> UnaryAtomToRelation(const Formula& atom) {
  const std::int64_t k1 = atom.k1();
  const std::int64_t c = atom.c();
  if (atom.kind() == Formula::Kind::kCong) {
    ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> sol,
                          SolveUnaryCongruence(k1, atom.mod(), c));
    if (!sol.has_value()) return EmptyUnary();
    GeneralizedRelation r(Schema::Temporal(1));
    ITDB_RETURN_IF_ERROR(r.AddTuple(GeneralizedTuple({*sol})));
    return r;
  }
  // Comparison atom.
  if (k1 == 0) {
    // Ground: 0 cmp c.
    bool truth = atom.cmp() == Cmp::kEq   ? c == 0
                 : atom.cmp() == Cmp::kLt ? 0 < c
                                          : 0 > c;
    return truth ? UniverseUnary() : Result<GeneralizedRelation>(EmptyUnary());
  }
  switch (atom.cmp()) {
    case Cmp::kEq: {
      // k1 * v = c: a single point when k1 | c.
      if (c % k1 != 0) return EmptyUnary();
      GeneralizedRelation r(Schema::Temporal(1));
      ITDB_RETURN_IF_ERROR(
          r.AddTuple(GeneralizedTuple({Lrp::Singleton(c / k1)})));
      return r;
    }
    case Cmp::kLt: {
      // k1 * v <= c - 1:  v <= floor((c-1)/k1) when k1 > 0, else
      // v >= ceil((c-1)/k1).
      GeneralizedRelation r(Schema::Temporal(1));
      GeneralizedTuple t({Lrp::Make(0, 1)});
      if (k1 > 0) {
        t.mutable_constraints().AddUpperBound(0, FloorDiv(c - 1, k1));
      } else {
        t.mutable_constraints().AddLowerBound(0, CeilDiv(c - 1, k1));
      }
      ITDB_RETURN_IF_ERROR(r.AddTuple(std::move(t)));
      return r;
    }
    case Cmp::kGt: {
      // k1 * v >= c + 1.
      GeneralizedRelation r(Schema::Temporal(1));
      GeneralizedTuple t({Lrp::Make(0, 1)});
      if (k1 > 0) {
        t.mutable_constraints().AddLowerBound(0, CeilDiv(c + 1, k1));
      } else {
        t.mutable_constraints().AddUpperBound(0, FloorDiv(c + 1, k1));
      }
      ITDB_RETURN_IF_ERROR(r.AddTuple(std::move(t)));
      return r;
    }
  }
  return Status::InvalidArgument("unreachable comparison kind");
}

GeneralRelation EmptyBinary() { return GeneralRelation(2); }

Result<GeneralRelation> UniverseBinary() {
  GeneralRelation r(2);
  ITDB_RETURN_IF_ERROR(
      r.AddTuple(GeneralTuple({Lrp::Make(0, 1), Lrp::Make(0, 1)})));
  return r;
}

/// Translates one (possibly unary) atom inside a binary formula into an
/// arity-2 general relation.  Pre: the formula is in NNF (atoms positive).
Result<GeneralRelation> BinaryAtomToRelation(const Formula& atom) {
  if (atom.kind() == Formula::Kind::kCong) {
    if (atom.is_unary_atom()) {
      ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> sol,
                            SolveUnaryCongruence(atom.k1(), atom.mod(),
                                                 atom.c()));
      if (!sol.has_value()) return EmptyBinary();
      GeneralRelation r(2);
      std::vector<Lrp> lrps = {Lrp::Make(0, 1), Lrp::Make(0, 1)};
      lrps[static_cast<std::size_t>(atom.v1())] = *sol;
      ITDB_RETURN_IF_ERROR(r.AddTuple(GeneralTuple(std::move(lrps))));
      return r;
    }
    // k1*v1 ===_m k2*v2 + c: fix the residue r2 of v2 modulo m; then
    // k1*v1 ===_m c + k2*r2, a unary congruence for v1.  The union over the
    // m residues is the paper's finite construction.
    const std::int64_t m = atom.mod();
    if (m > kMaxCongruenceResidues) {
      return Status::ResourceExhausted(
          "binary congruence modulus " + std::to_string(m) +
          " exceeds the residue budget");
    }
    GeneralRelation out(2);
    for (std::int64_t r2 = 0; r2 < m; ++r2) {
      ITDB_ASSIGN_OR_RETURN(std::int64_t k2r2, CheckedMul(atom.k2(), r2));
      ITDB_ASSIGN_OR_RETURN(std::int64_t rhs, CheckedAdd(atom.c(), k2r2));
      ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> sol,
                            SolveUnaryCongruence(atom.k1(), m, rhs));
      if (!sol.has_value()) continue;
      std::vector<Lrp> lrps(2, Lrp::Make(0, 1));
      lrps[static_cast<std::size_t>(atom.v1())] = *sol;
      lrps[static_cast<std::size_t>(atom.v2())] = Lrp::Make(r2, m);
      ITDB_RETURN_IF_ERROR(out.AddTuple(GeneralTuple(std::move(lrps))));
    }
    return out;
  }
  // Comparison: one free tuple with general constraint(s), exactly as in the
  // paper's Theorem 2.2 item 1.
  GeneralTuple t({Lrp::Make(0, 1), Lrp::Make(0, 1)});
  const std::int64_t k1 = atom.k1();
  const std::int64_t k2 = atom.is_unary_atom() ? 0 : atom.k2();
  const int v1 = atom.v1();
  const int v2 = atom.is_unary_atom() ? -1 : atom.v2();
  const std::int64_t c = atom.c();
  switch (atom.cmp()) {
    case Cmp::kEq:
      t.AddConstraint(GeneralConstraint{k1, v1, k2, v2, c});
      // And the reverse direction: k2*v2 + c <= k1*v1, i.e.
      // k2*v2 <= k1*v1 - c.
      if (v2 >= 0) {
        ITDB_ASSIGN_OR_RETURN(std::int64_t neg_c, CheckedSub(0, c));
        t.AddConstraint(GeneralConstraint{k2, v2, k1, v1, neg_c});
      } else {
        // Unary equality k1*v1 = c: add c <= k1*v1 as -k1*v1 <= -c.
        ITDB_ASSIGN_OR_RETURN(std::int64_t neg_k1, CheckedSub(0, k1));
        ITDB_ASSIGN_OR_RETURN(std::int64_t neg_c, CheckedSub(0, c));
        t.AddConstraint(GeneralConstraint{neg_k1, v1, 0, -1, neg_c});
      }
      break;
    case Cmp::kLt: {
      ITDB_ASSIGN_OR_RETURN(std::int64_t bound, CheckedSub(c, 1));
      t.AddConstraint(GeneralConstraint{k1, v1, k2, v2, bound});
      break;
    }
    case Cmp::kGt: {
      // k1*v1 >= k2*v2 + c + 1  <=>  k2*v2 <= k1*v1 - c - 1.
      ITDB_ASSIGN_OR_RETURN(std::int64_t neg, CheckedSub(0, c));
      ITDB_ASSIGN_OR_RETURN(std::int64_t bound, CheckedSub(neg, 1));
      if (v2 >= 0) {
        t.AddConstraint(GeneralConstraint{k2, v2, k1, v1, bound});
      } else {
        ITDB_ASSIGN_OR_RETURN(std::int64_t neg_k1, CheckedSub(0, k1));
        t.AddConstraint(GeneralConstraint{neg_k1, v1, 0, -1, bound});
      }
      break;
    }
  }
  GeneralRelation r(2);
  ITDB_RETURN_IF_ERROR(r.AddTuple(std::move(t)));
  return r;
}

Result<GeneralRelation> BinaryNnfToRelation(const FormulaPtr& f) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return UniverseBinary();
    case Formula::Kind::kFalse:
      return EmptyBinary();
    case Formula::Kind::kCmp:
    case Formula::Kind::kCong:
      return BinaryAtomToRelation(*f);
    case Formula::Kind::kAnd: {
      ITDB_ASSIGN_OR_RETURN(GeneralRelation l, BinaryNnfToRelation(f->left()));
      ITDB_ASSIGN_OR_RETURN(GeneralRelation r, BinaryNnfToRelation(f->right()));
      return GeneralRelation::Intersect(l, r);
    }
    case Formula::Kind::kOr: {
      ITDB_ASSIGN_OR_RETURN(GeneralRelation l, BinaryNnfToRelation(f->left()));
      ITDB_ASSIGN_OR_RETURN(GeneralRelation r, BinaryNnfToRelation(f->right()));
      return GeneralRelation::Union(l, r);
    }
    case Formula::Kind::kNot:
      return Status::InvalidArgument(
          "BinaryNnfToRelation: formula not in negation normal form");
  }
  return Status::InvalidArgument("unreachable formula kind");
}

}  // namespace

Result<std::optional<Lrp>> SolveUnaryCongruence(std::int64_t k1,
                                                std::int64_t mod,
                                                std::int64_t c) {
  using MaybeLrp = std::optional<Lrp>;
  if (mod == 0) {
    // Exact equality k1 * v == c.
    if (k1 == 0) {
      if (c == 0) return MaybeLrp(Lrp::Make(0, 1));  // All of Z.
      return MaybeLrp(std::nullopt);
    }
    if (c % k1 != 0) return MaybeLrp(std::nullopt);
    return MaybeLrp(Lrp::Singleton(c / k1));
  }
  if (mod < 0) {
    return Status::InvalidArgument("congruence modulus must be non-negative");
  }
  std::int64_t a = FloorMod(k1, mod);
  std::int64_t rhs = FloorMod(c, mod);
  if (a == 0) {
    // 0 === rhs (mod m): all v or none.
    if (rhs == 0) return MaybeLrp(Lrp::Make(0, 1));
    return MaybeLrp(std::nullopt);
  }
  std::int64_t g = Gcd(a, mod);
  if (rhs % g != 0) return MaybeLrp(std::nullopt);
  std::int64_t m_red = mod / g;
  if (m_red == 1) return MaybeLrp(Lrp::Make(0, 1));
  ITDB_ASSIGN_OR_RETURN(std::int64_t inv, ModInverse(a / g, m_red));
  ITDB_ASSIGN_OR_RETURN(std::int64_t prod,
                        CheckedMul(FloorMod(rhs / g, m_red), inv));
  return MaybeLrp(Lrp::Make(FloorMod(prod, m_red), m_red));
}

Result<GeneralizedRelation> UnaryToRelation(const FormulaPtr& f,
                                            const AlgebraOptions& options) {
  if (f->MaxVar() > 0) {
    return Status::InvalidArgument(
        "UnaryToRelation: formula mentions variables beyond v0");
  }
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return UniverseUnary();
    case Formula::Kind::kFalse:
      return EmptyUnary();
    case Formula::Kind::kCmp:
    case Formula::Kind::kCong:
      return UnaryAtomToRelation(*f);
    case Formula::Kind::kAnd: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation l,
                            UnaryToRelation(f->left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r,
                            UnaryToRelation(f->right(), options));
      return Intersect(l, r, options);
    }
    case Formula::Kind::kOr: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation l,
                            UnaryToRelation(f->left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r,
                            UnaryToRelation(f->right(), options));
      return Union(l, r, options);
    }
    case Formula::Kind::kNot: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation inner,
                            UnaryToRelation(f->left(), options));
      return Complement(inner, options);
    }
  }
  return Status::InvalidArgument("unreachable formula kind");
}

Result<GeneralRelation> BinaryToGeneralRelation(const FormulaPtr& f) {
  if (f->MaxVar() > 1) {
    return Status::InvalidArgument(
        "BinaryToGeneralRelation: formula mentions variables beyond v0, v1");
  }
  return BinaryNnfToRelation(NegationNormalForm(f));
}

}  // namespace presburger
}  // namespace itdb
