// Constructive expressiveness translations (Theorems 2.1 and 2.2).
//
// Theorem 2.1: a unary predicate is *weak lrp definable* (restricted
// constraints) iff Presburger definable.  UnaryToRelation implements the
// "if" direction constructively: each basic formula maps to a one-column
// generalized tuple, and boolean structure maps to the relational algebra
// of Section 3 (union / intersection / complement).
//
// Theorem 2.2: a binary predicate is *lrp definable* (general constraints)
// iff Presburger definable.  BinaryToGeneralRelation implements the "if"
// direction: comparisons become single free tuples carrying one general
// constraint; congruences become the finite residue-class union of the
// paper's proof; negation is eliminated up front by negation normal form
// (possible because the basic atoms are closed under negation).

#ifndef ITDB_PRESBURGER_TO_RELATION_H_
#define ITDB_PRESBURGER_TO_RELATION_H_

#include <cstdint>
#include <optional>

#include "core/algebra.h"
#include "core/relation.h"
#include "presburger/formula.h"
#include "presburger/general_relation.h"
#include "util/status.h"

namespace itdb {
namespace presburger {

/// Solves  k1 * v ===_{mod} c  for v.  Returns the solution lrp, nullopt if
/// there is none.  mod == 0 is interpreted as exact equality k1 * v == c.
Result<std::optional<Lrp>> SolveUnaryCongruence(std::int64_t k1,
                                                std::int64_t mod,
                                                std::int64_t c);

/// Theorem 2.1: translates a formula whose only free variable is v0 into an
/// equivalent generalized relation of temporal arity 1 with restricted
/// constraints.  Handles full boolean structure including negation (via the
/// Section 3 complement).
Result<GeneralizedRelation> UnaryToRelation(const FormulaPtr& f,
                                            const AlgebraOptions& options = {});

/// Theorem 2.2: translates a formula over free variables v0, v1 into an
/// equivalent general-constraint relation of arity 2.  Negation is handled
/// by negation normal form.
Result<GeneralRelation> BinaryToGeneralRelation(const FormulaPtr& f);

}  // namespace presburger
}  // namespace itdb

#endif  // ITDB_PRESBURGER_TO_RELATION_H_
