// Generalized relations with *general* (non-unit-coefficient) constraints.
//
// Theorem 2.2 of the paper shows binary Presburger predicates are "lrp
// definable" using general constraints -- arbitrary linear inequalities
// between at most two temporal attributes (k1*Xi <= k2*Xj + c).  Such
// constraints are strictly more expressive than the restricted ones the
// relational algebra of Section 3 operates on (the paper restricts to the
// latter precisely because projection needs them), so this representation
// lives in the presburger module and supports only what the expressiveness
// study needs: union, intersection, membership, and bounded enumeration.

#ifndef ITDB_PRESBURGER_GENERAL_RELATION_H_
#define ITDB_PRESBURGER_GENERAL_RELATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/lrp.h"
#include "util/status.h"

namespace itdb {
namespace presburger {

/// A general linear constraint between at most two temporal attributes:
///   kl * X(li)  <=  kr * X(ri) + c,
/// with ri == -1 meaning there is no right-hand variable (kl*X(li) <= c).
struct GeneralConstraint {
  std::int64_t kl = 1;
  int li = 0;
  std::int64_t kr = 0;
  int ri = -1;
  std::int64_t c = 0;

  bool SatisfiedBy(const std::vector<std::int64_t>& x) const;
  std::string ToString() const;

  friend bool operator==(const GeneralConstraint& a,
                         const GeneralConstraint& b) = default;
};

/// A tuple of lrps constrained by general constraints.  Purely temporal
/// (the paper's expressiveness study concerns temporal predicates only).
class GeneralTuple {
 public:
  explicit GeneralTuple(std::vector<Lrp> temporal)
      : temporal_(std::move(temporal)) {}
  GeneralTuple(std::vector<Lrp> temporal,
               std::vector<GeneralConstraint> constraints)
      : temporal_(std::move(temporal)), constraints_(std::move(constraints)) {}

  int arity() const { return static_cast<int>(temporal_.size()); }
  const std::vector<Lrp>& temporal() const { return temporal_; }
  const Lrp& lrp(int i) const { return temporal_[static_cast<std::size_t>(i)]; }
  const std::vector<GeneralConstraint>& constraints() const {
    return constraints_;
  }
  void AddConstraint(GeneralConstraint c) {
    constraints_.push_back(std::move(c));
  }

  bool ContainsTemporal(const std::vector<std::int64_t>& x) const;
  std::vector<std::vector<std::int64_t>> EnumerateTemporal(
      std::int64_t lo, std::int64_t hi) const;

  /// Componentwise lrp intersection + union of constraint sets (the same
  /// construction as Section 3.2.2, which does not depend on constraints
  /// being restricted).
  static Result<std::optional<GeneralTuple>> Intersect(const GeneralTuple& a,
                                                       const GeneralTuple& b);

  std::string ToString() const;

 private:
  std::vector<Lrp> temporal_;
  std::vector<GeneralConstraint> constraints_;
};

/// A finite set of general tuples of one arity.
class GeneralRelation {
 public:
  explicit GeneralRelation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  const std::vector<GeneralTuple>& tuples() const { return tuples_; }
  int size() const { return static_cast<int>(tuples_.size()); }

  Status AddTuple(GeneralTuple t);

  bool Contains(const std::vector<std::int64_t>& x) const;
  /// Sorted, deduplicated points with all coordinates in [lo, hi].
  std::vector<std::vector<std::int64_t>> Enumerate(std::int64_t lo,
                                                   std::int64_t hi) const;

  static Result<GeneralRelation> Union(const GeneralRelation& a,
                                       const GeneralRelation& b);
  static Result<GeneralRelation> Intersect(const GeneralRelation& a,
                                           const GeneralRelation& b);

  std::string ToString() const;

 private:
  int arity_;
  std::vector<GeneralTuple> tuples_;
};

}  // namespace presburger
}  // namespace itdb

#endif  // ITDB_PRESBURGER_GENERAL_RELATION_H_
