// Relational algebra on generalized relations (Section 3 of the paper).
//
// All operations are closed on generalized relations with restricted
// constraints; the implementations follow the paper's constructions:
//   * union:            tuple-set merge (3.1)
//   * intersection:     pairwise lrp intersection + conjoined constraints (3.2)
//   * subtraction:      t1 - t2 = (t1 - t2*) U (not(t2) ^ t1) (3.3, Fig. 1)
//   * projection:       normalize, eliminate in n-space, rebuild (3.4)
//   * selection:        constraint insertion (3.5)
//   * cross product:    tuple concatenation (3.6)
//   * join:             intersection on shared attributes (3.7)
//   * complement:       residue-universe enumeration + incremental DNF of
//                       negated constraints with reduction (A.6)
//   * emptiness:        normal-form feasibility (Theorem 3.5).

#ifndef ITDB_CORE_ALGEBRA_H_
#define ITDB_CORE_ALGEBRA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/normalize.h"
#include "core/normalize_cache.h"
#include "core/relation.h"
#include "util/status.h"

namespace itdb {

struct KernelCounters;  // core/index.h

namespace obs {
class Tracer;  // obs/trace.h
}  // namespace obs

/// Comparison operators for selection conditions.
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// A selection condition on temporal attributes:
///   X(lhs) op X(rhs) + c        (rhs >= 0)
///   X(lhs) op c                 (rhs == kZeroVar).
/// kNe splits tuples in two (the paper's disjunction-splitting rule).
struct TemporalCondition {
  int lhs = 0;
  int rhs = kZeroVar;
  CmpOp op = CmpOp::kEq;
  std::int64_t c = 0;
};

/// Budgets and switches for algebra operations.
struct AlgebraOptions {
  NormalizeOptions normalize;
  /// Hard cap on the number of tuples any intermediate or final relation may
  /// reach (subtraction chains and complements can explode; see Appendix A).
  std::int64_t max_tuples = std::int64_t{1} << 22;
  /// Cap on the k^m residue universe enumerated by Complement.
  std::int64_t max_complement_universe = std::int64_t{1} << 20;
  /// Run the redundancy-elimination pass (simplify.h) on results.  The paper
  /// leaves redundancy elimination open (Section 3.1); this is our extension.
  bool simplify = false;
  /// Run residue coalescing (coalesce.h) on complement results, collapsing
  /// the enumerated residue universe back into coarse lrps.
  bool coalesce = false;
  /// Intersection fast path exploiting Appendix A.3's observation that
  /// only tuple pairs with equal free extensions intersect: when both
  /// relations are normalized to one uniform period, hash-join on the
  /// residue vectors instead of considering all N^2 pairs.  Off by default
  /// so the Table 2 benchmarks measure the paper's algorithm.
  bool use_intersection_index = false;
  /// Partial normalization for projection (the optimization suggested at
  /// the end of Section 3.4): only the columns constraint-connected to the
  /// eliminated ones are normalized; unrelated columns pass through
  /// untouched, avoiding their share of the k^m split.
  bool partial_normalization = true;
  /// Worker threads for the per-tuple / per-tuple-pair kernels of
  /// Intersect, Join, Subtract, Complement, and Coalesce (0 = the
  /// ITDB_THREADS / hardware default, 1 = sequential).  Results are
  /// bit-identical at every thread count: work is partitioned by input
  /// index and merged in input order.  Independent of normalize.threads,
  /// which governs the in-tuple split sweep.
  int threads = 0;
  /// Optional memo-cache for Theorem 3.2 normalization, shared across the
  /// operations of one query / benchmark run (see normalize_cache.h).
  /// Not owned; null disables memoization.  Cached and uncached results
  /// are byte-identical.
  NormalizeCache* normalize_cache = nullptr;
  /// Indexed kernels and DBM fast paths (core/index.h): hash-partition the
  /// inner relation of Join / Intersect / Subtract on shared data-attribute
  /// values, reject candidate pairs with O(1) residue-class and bounding-
  /// interval prefilters, and close conjunctions incrementally in O(n^2) per
  /// atomic instead of the full O(n^3) Floyd-Warshall.  Bit-identical to the
  /// naive paths (the fuzz determinism matrix pins indexed == naive); also
  /// switches CheckBudget in Join / Intersect to charge candidate pairs
  /// rather than the raw a x b product.
  bool use_index = true;
  /// Columnar (SoA) execution for the indexed Join / Intersect kernels
  /// (core/columnar.h): probe every outer row once up front, regroup only
  /// the *touched* inner rows into arena-backed column arrays, and close
  /// their constraint systems in one batched Floyd-Warshall slab
  /// (core/dbm_batch.h) instead of one scalar closure per row.  false = the
  /// legacy per-tuple hoisting that materializes hulls for every inner row.
  /// Results are bit-identical either way; the fuzz determinism matrix pins
  /// this with a layout axis.
  bool use_columnar = true;
  /// Optional instrumentation for the indexed kernels (pairs pruned per
  /// prefilter, incremental vs full closures, tuples subsumed).  Not owned;
  /// null disables counting.
  KernelCounters* counters = nullptr;
  /// Optional span tracer (obs/trace.h): every algebra operation opens one
  /// span recording wall/CPU time and input sizes.  Not owned; null falls
  /// back to the process-global tracer (obs::InstallGlobalTracer), and when
  /// that is also unset tracing is disabled at the cost of one null check.
  /// Tracing is an observer only: results are bit-identical with it on or
  /// off (pinned by the query-layer determinism test).
  obs::Tracer* tracer = nullptr;
};

/// r1 U r2.  Schemas must match.
Result<GeneralizedRelation> Union(const GeneralizedRelation& a,
                                  const GeneralizedRelation& b,
                                  const AlgebraOptions& options = {});

/// r1 ^ r2 (Section 3.2.2): pairwise tuple intersections.
Result<GeneralizedRelation> Intersect(const GeneralizedRelation& a,
                                      const GeneralizedRelation& b,
                                      const AlgebraOptions& options = {});

/// r1 - r2 (Section 3.3).
Result<GeneralizedRelation> Subtract(const GeneralizedRelation& a,
                                     const GeneralizedRelation& b,
                                     const AlgebraOptions& options = {});

/// Complement of a purely temporal relation with respect to Z^m
/// (Appendix A.6).  Fails with kInvalidArgument when r has data attributes
/// (see ComplementWithDataDomains).
Result<GeneralizedRelation> Complement(const GeneralizedRelation& r,
                                       const AlgebraOptions& options = {});

/// Complement of a relation with data attributes, relative to the universe
/// Z^m x (domains[0] x ... x domains[l-1]).  `domains` supplies the finite
/// active domain of every data column.
Result<GeneralizedRelation> ComplementWithDataDomains(
    const GeneralizedRelation& r, const std::vector<std::vector<Value>>& domains,
    const AlgebraOptions& options = {});

/// Projection onto the named attributes, in the given order (temporal
/// attributes first in the output schema, per convention).  Dropped temporal
/// columns are eliminated exactly via normalization (Section 3.4).
Result<GeneralizedRelation> Project(const GeneralizedRelation& r,
                                    const std::vector<std::string>& attrs,
                                    const AlgebraOptions& options = {});

/// Selection on temporal attributes (Section 3.5): adds the constraint to
/// every tuple, splitting on kNe; prunes (real-relaxation) infeasible tuples.
Result<GeneralizedRelation> SelectTemporal(const GeneralizedRelation& r,
                                           const TemporalCondition& cond,
                                           const AlgebraOptions& options = {});

/// Selection on a data attribute compared with a constant.
Result<GeneralizedRelation> SelectData(const GeneralizedRelation& r,
                                       int data_col, CmpOp op,
                                       const Value& value);

/// Selection on equality of two data attributes.
Result<GeneralizedRelation> SelectDataEqColumns(const GeneralizedRelation& r,
                                                int left_col, int right_col);

/// r1 x r2 (Section 3.6).  Attribute names must be disjoint.
Result<GeneralizedRelation> CrossProduct(const GeneralizedRelation& a,
                                         const GeneralizedRelation& b,
                                         const AlgebraOptions& options = {});

/// Natural join (Section 3.7): matches temporal attributes by name
/// (lrp intersection + merged constraints) and data attributes by name
/// (value equality).
Result<GeneralizedRelation> Join(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b,
                                 const AlgebraOptions& options = {});

/// Replaces temporal column `col` by its image under x -> x + delta (the
/// iterated successor function of the query language, Section 4).  Lrps
/// shift their offsets and constraints shift their bounds accordingly.
Result<GeneralizedRelation> ShiftTemporalColumn(const GeneralizedRelation& r,
                                                int col, std::int64_t delta);

/// Renames attributes.  `renames` maps old attribute names (temporal or
/// data) to new ones; resulting names must stay unique per kind.
Result<GeneralizedRelation> Rename(
    const GeneralizedRelation& r,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// Whether the tuple's extension is empty.  Exact over the lattice
/// (normalizes and checks n-space feasibility).
Result<bool> TupleIsEmpty(const GeneralizedTuple& t,
                          const AlgebraOptions& options = {});

/// Theorem 3.5: whether the relation represents no concrete row at all.
Result<bool> IsEmpty(const GeneralizedRelation& r,
                     const AlgebraOptions& options = {});

/// A concrete temporal point of the tuple's extension, if any.  Computed by
/// normalizing and then fixing the n-space variables one at a time inside
/// their (closed) DBM bounds -- the constructive content of Theorem 3.5.
Result<std::optional<std::vector<std::int64_t>>> FindTemporalWitness(
    const GeneralizedTuple& t, const AlgebraOptions& options = {});

/// A concrete row of the relation, if any.
Result<std::optional<ConcreteRow>> FindWitness(
    const GeneralizedRelation& r, const AlgebraOptions& options = {});

/// Whether every concrete row of `a` is a row of `b` (decided symbolically:
/// a - b empty, Theorem 3.5 on the Section 3.3 difference).
Result<bool> Subset(const GeneralizedRelation& a, const GeneralizedRelation& b,
                    const AlgebraOptions& options = {});

/// Whether `a` and `b` represent exactly the same set of concrete rows.
/// Different generalized representations of one set compare equal.
Result<bool> Equivalent(const GeneralizedRelation& a,
                        const GeneralizedRelation& b,
                        const AlgebraOptions& options = {});

}  // namespace itdb

#endif  // ITDB_CORE_ALGEBRA_H_
