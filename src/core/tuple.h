// Generalized tuples (Definition 2.2).
//
// A generalized tuple of temporal arity k and data arity l assigns an lrp to
// each of the k temporal attributes and a concrete value to each of the l
// data attributes, together with a conjunction of restricted constraints on
// the temporal attributes.  It finitely represents the (potentially
// infinite) set of ordinary tuples obtained by picking one point from each
// lrp subject to the constraints.

#ifndef ITDB_CORE_TUPLE_H_
#define ITDB_CORE_TUPLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dbm.h"
#include "core/lrp.h"
#include "core/value.h"
#include "util/status.h"

namespace itdb {

/// One generalized tuple: lrps + data values + restricted constraints.
class GeneralizedTuple {
 public:
  /// A tuple with the given lrps and data values and no constraints.
  GeneralizedTuple(std::vector<Lrp> temporal, std::vector<Value> data)
      : temporal_(std::move(temporal)),
        data_(std::move(data)),
        constraints_(static_cast<int>(temporal_.size())) {}

  /// Purely temporal tuple.
  explicit GeneralizedTuple(std::vector<Lrp> temporal)
      : GeneralizedTuple(std::move(temporal), {}) {}

  int temporal_arity() const { return static_cast<int>(temporal_.size()); }
  int data_arity() const { return static_cast<int>(data_.size()); }

  const std::vector<Lrp>& temporal() const { return temporal_; }
  const Lrp& lrp(int i) const { return temporal_[static_cast<std::size_t>(i)]; }
  const std::vector<Value>& data() const { return data_; }
  const Value& value(int i) const { return data_[static_cast<std::size_t>(i)]; }

  const Dbm& constraints() const { return constraints_; }
  Dbm& mutable_constraints() { return constraints_; }
  void set_constraints(Dbm dbm) { constraints_ = std::move(dbm); }

  /// The free extension t* (Definition 3.1): this tuple with its constraints
  /// dropped.
  GeneralizedTuple FreeExtension() const {
    return GeneralizedTuple(temporal_, data_);
  }

  /// True when the concrete temporal point x (size = temporal arity) lies on
  /// every lrp and satisfies every constraint.  Exact -- no normalization
  /// needed for membership of a concrete point.
  bool ContainsTemporal(const std::vector<std::int64_t>& x) const;

  /// Enumerates all concrete temporal points of this tuple whose coordinates
  /// all lie in [lo, hi].  Ground-truth semantics for tests; exponential in
  /// the arity, intended for small windows.
  std::vector<std::vector<std::int64_t>> EnumerateTemporal(
      std::int64_t lo, std::int64_t hi) const;

  /// Tuple intersection (Section 3.2.2): componentwise lrp intersection plus
  /// the union of both constraint sets.  Empty (nullopt) when any lrp pair is
  /// disjoint, when the data values differ, or when the combined constraints
  /// are infeasible over the lattice-free relaxation.  (Lattice-aware
  /// emptiness is the job of IsEmpty in algebra.h.)
  static Result<std::optional<GeneralizedTuple>> Intersect(
      const GeneralizedTuple& a, const GeneralizedTuple& b);

  /// "[l1, ..., lk] C1 && C2 ; d1, d2" in the paper's table notation.
  std::string ToString() const;

  friend bool operator==(const GeneralizedTuple& a,
                         const GeneralizedTuple& b) = default;

 private:
  std::vector<Lrp> temporal_;
  std::vector<Value> data_;
  Dbm constraints_;
};

std::ostream& operator<<(std::ostream& os, const GeneralizedTuple& t);

}  // namespace itdb

#endif  // ITDB_CORE_TUPLE_H_
