#include "core/dbm.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/metrics.h"

namespace itdb {

namespace {

// Closure-cost counters in the central registry (see DESIGN.md §5).  The
// handles are registry-owned and stable, so each site pays one relaxed
// atomic add after the one-time lookup.
obs::Counter& CloseFullCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("dbm.close_full");
  return *counter;
}

obs::Counter& TightenCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("dbm.tighten_and_close");
  return *counter;
}

obs::Counter& TightenFallbackCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("dbm.tighten_fallback");
  return *counter;
}

// Shorthand for the class constant (see dbm.h).
constexpr std::int64_t kBoundLimit = Dbm::kBoundLimit;

// a + b where either may be kInf; exact otherwise (fits: |a|,|b| <= 2^61).
std::int64_t SatAdd(std::int64_t a, std::int64_t b) {
  if (a == Dbm::kInf || b == Dbm::kInf) return Dbm::kInf;
  return a + b;
}

std::string VarName(int v) { return "X" + std::to_string(v); }

}  // namespace

std::string AtomicConstraint::ToString() const {
  if (lhs == kZeroVar && rhs == kZeroVar) {
    // Degenerate: 0 <= bound.
    return bound >= 0 ? "true" : "false";
  }
  if (rhs == kZeroVar) {
    return VarName(lhs) + " <= " + std::to_string(bound);
  }
  if (lhs == kZeroVar) {
    return VarName(rhs) + " >= " + std::to_string(-bound);
  }
  return VarName(lhs) + " - " + VarName(rhs) + " <= " + std::to_string(bound);
}

Dbm::Dbm(int num_vars) : num_vars_(num_vars) {
  assert(num_vars >= 0);
  std::size_t n = static_cast<std::size_t>(num_vars_) + 1;
  matrix_.assign(n * n, kInf);
  for (std::size_t p = 0; p < n; ++p) matrix_[p * n + p] = 0;
  closed_ = true;  // The unconstrained system is trivially closed.
  feasible_ = true;
}

void Dbm::Tighten(int p, int q, std::int64_t v) {
  if (v < bound_node(p, q)) {
    set_bound_node(p, q, v);
    closed_ = false;
  }
}

void Dbm::AddDifferenceUpperBound(int i, int j, std::int64_t a) {
  assert(i != j && i >= 0 && j >= 0 && i < num_vars_ && j < num_vars_);
  Tighten(i + 1, j + 1, a);
}

void Dbm::AddUpperBound(int i, std::int64_t a) {
  assert(i >= 0 && i < num_vars_);
  Tighten(i + 1, 0, a);
}

void Dbm::AddLowerBound(int i, std::int64_t a) {
  assert(i >= 0 && i < num_vars_);
  Tighten(0, i + 1, -a);
}

void Dbm::AddDifferenceEquality(int i, int j, std::int64_t a) {
  AddDifferenceUpperBound(i, j, a);
  AddDifferenceUpperBound(j, i, -a);
}

void Dbm::AddEquality(int i, std::int64_t a) {
  AddUpperBound(i, a);
  AddLowerBound(i, a);
}

void Dbm::AddAtomic(const AtomicConstraint& c) {
  if (c.lhs == kZeroVar && c.rhs == kZeroVar) {
    if (c.bound < 0) {
      // 0 <= negative: contradiction.  Encode by making any node pair (or,
      // for zero variables, the whole system) infeasible via the zero node.
      // A self-loop cannot be stored (diagonal is 0), so force infeasibility
      // through closure: mark by tightening 0-0 path via a dummy; simplest is
      // to remember via feasible_ after closing.  We instead store an
      // impossible pair when a variable exists, else flag directly.
      if (num_vars_ > 0) {
        Tighten(1, 0, -1);
        Tighten(0, 1, 0);  // X0 <= -1 and X0 >= 0: infeasible.
      } else {
        closed_ = true;
        feasible_ = false;
      }
    }
    return;
  }
  if (c.lhs == kZeroVar) {
    Tighten(0, c.rhs + 1, c.bound);
  } else if (c.rhs == kZeroVar) {
    Tighten(c.lhs + 1, 0, c.bound);
  } else {
    Tighten(c.lhs + 1, c.rhs + 1, c.bound);
  }
}

Status Dbm::Close() {
  if (closed_) return Status::Ok();
  CloseFullCounter().Increment();
  int n = num_vars_ + 1;
  for (int r = 0; r < n; ++r) {
    // Pivot skip: a path p -> r -> q needs a finite (p, r) and a finite
    // (r, q) entry.  When the pivot's row or column is all kInf off the
    // diagonal, no pair exists and the O(n^2) relaxation is a no-op.
    bool row_live = false;
    bool col_live = false;
    for (int i = 0; i < n && !(row_live && col_live); ++i) {
      if (i == r) continue;
      row_live = row_live || bound_node(r, i) != kInf;
      col_live = col_live || bound_node(i, r) != kInf;
    }
    if (!row_live || !col_live) continue;
    for (int p = 0; p < n; ++p) {
      std::int64_t pr = bound_node(p, r);
      if (pr == kInf) continue;
      for (int q = 0; q < n; ++q) {
        std::int64_t rq = bound_node(r, q);
        if (rq == kInf) continue;
        std::int64_t via = SatAdd(pr, rq);
        if (via < bound_node(p, q)) set_bound_node(p, q, via);
      }
    }
  }
  feasible_ = true;
  for (int p = 0; p < n; ++p) {
    if (bound_node(p, p) < 0) {
      feasible_ = false;
      break;
    }
  }
  closed_ = true;
  if (feasible_) {
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < n; ++q) {
        std::int64_t b = bound_node(p, q);
        if (b != kInf && (b > kBoundLimit || b < -kBoundLimit)) {
          return Status::Overflow("DBM bound exceeds safe range during closure");
        }
      }
    }
  }
  return Status::Ok();
}

Dbm::TightenResult Dbm::TightenAndClose(const AtomicConstraint& c) {
  assert(closed_ && feasible_);
  TightenCounter().Increment();
  int p = c.lhs + 1;
  int q = c.rhs + 1;
  std::int64_t w = c.bound;
  if (p == q) {
    // Degenerate self-edge: a non-negative bound is vacuous; a negative one
    // is a contradiction AddAtomic encodes specially -- punt to the caller.
    if (w < 0) {
      TightenFallbackCounter().Increment();
      return TightenResult::kFallbackNeeded;
    }
    return TightenResult::kClosed;
  }
  if (w >= bound_node(p, q)) return TightenResult::kClosed;  // Not tighter.
  // A negative cycle in the new system must use the new edge (the base was
  // feasible), so it exists iff the best old q -> p path plus w is negative.
  std::int64_t qp = bound_node(q, p);
  if (qp != kInf && static_cast<__int128>(qp) + w < 0) {
    Tighten(p, q, w);
    closed_ = true;  // Content is irrelevant once infeasible.
    feasible_ = false;
    return TightenResult::kInfeasible;
  }
  int n = num_vars_ + 1;
  // Any improved shortest path decomposes as i ->* p -> q ->* j over OLD
  // closed distances (using the edge twice cannot help absent a negative
  // cycle).  Snapshot column p and row q so in-place stores cannot feed
  // later reads, then detect-before-mutate so kFallbackNeeded leaves the
  // matrix untouched: an improving value IS the final closed entry, so any
  // such value outside the safe range is exactly what makes Close() report
  // overflow on the full recomputation.
  std::vector<std::int64_t> to_p(static_cast<std::size_t>(n));
  std::vector<std::int64_t> from_q(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    to_p[static_cast<std::size_t>(i)] = bound_node(i, p);
    from_q[static_cast<std::size_t>(i)] = bound_node(q, i);
  }
  for (int i = 0; i < n; ++i) {
    std::int64_t ip = to_p[static_cast<std::size_t>(i)];
    if (ip == kInf) continue;
    for (int j = 0; j < n; ++j) {
      std::int64_t qj = from_q[static_cast<std::size_t>(j)];
      if (qj == kInf) continue;
      __int128 via = static_cast<__int128>(ip) + w + qj;
      if (via < bound_node(i, j) &&
          (via > kBoundLimit || via < -kBoundLimit)) {
        TightenFallbackCounter().Increment();
        return TightenResult::kFallbackNeeded;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    std::int64_t ip = to_p[static_cast<std::size_t>(i)];
    if (ip == kInf) continue;
    for (int j = 0; j < n; ++j) {
      std::int64_t qj = from_q[static_cast<std::size_t>(j)];
      if (qj == kInf) continue;
      __int128 via = static_cast<__int128>(ip) + w + qj;
      if (via < bound_node(i, j)) {
        set_bound_node(i, j, static_cast<std::int64_t>(via));
      }
    }
  }
  closed_ = true;
  feasible_ = true;
  return TightenResult::kClosed;
}

bool Dbm::IsSatisfiedBy(const std::vector<std::int64_t>& x) const {
  assert(static_cast<int>(x.size()) == num_vars_);
  if (closed_ && !feasible_) return false;
  int n = num_vars_ + 1;
  auto value = [&x](int node) -> __int128 {
    return node == 0 ? 0 : static_cast<__int128>(x[node - 1]);
  };
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      std::int64_t b = bound_node(p, q);
      if (b == kInf) continue;
      if (value(p) - value(q) > static_cast<__int128>(b)) return false;
    }
  }
  return true;
}

Dbm Dbm::EliminateVariable(int i) const {
  assert(closed_ && feasible_);
  assert(i >= 0 && i < num_vars_);
  Dbm out(num_vars_ - 1);
  int skip = i + 1;
  int n = num_vars_ + 1;
  for (int p = 0, np = 0; p < n; ++p) {
    if (p == skip) continue;
    for (int q = 0, nq = 0; q < n; ++q) {
      if (q == skip) continue;
      out.set_bound_node(np, nq, bound_node(p, q));
      ++nq;
    }
    ++np;
  }
  // A closed matrix restricted to a node subset is still closed, and it is
  // the exact projection: the path through the removed node is already
  // accounted for by closure.
  out.closed_ = true;
  out.feasible_ = true;
  return out;
}

Dbm Dbm::AppendVariables(int count) const {
  assert(count >= 0);
  Dbm out(num_vars_ + count);
  int n = num_vars_ + 1;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      out.set_bound_node(p, q, bound_node(p, q));
    }
  }
  out.closed_ = false;  // New rows are kInf; closure may propagate nothing,
                        // but infeasibility flags must be recomputed.
  if (closed_ && !feasible_) out.closed_ = false;
  return out;
}

Dbm Dbm::AppendVariablesClosed(int count) const {
  assert(closed_ && feasible_);
  Dbm out = AppendVariables(count);
  out.closed_ = true;
  out.feasible_ = true;
  return out;
}

Dbm Dbm::MapVariables(const std::vector<int>& new_from_old,
                      int new_size) const {
  assert(static_cast<int>(new_from_old.size()) == num_vars_);
  Dbm out(new_size);
  auto node_of = [&new_from_old](int p) {
    return p == 0 ? 0 : new_from_old[p - 1] + 1;
  };
  int n = num_vars_ + 1;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      if (p == q) continue;
      std::int64_t b = bound_node(p, q);
      if (b == kInf) continue;
      out.Tighten(node_of(p), node_of(q), b);
    }
  }
  return out;
}

Dbm Dbm::FromClosedEntries(int num_vars, const std::int64_t* entries) {
  Dbm out(num_vars);
  std::size_t n = static_cast<std::size_t>(num_vars) + 1;
  for (std::size_t idx = 0; idx < n * n; ++idx) out.matrix_[idx] = entries[idx];
  out.closed_ = true;
  out.feasible_ = true;
  return out;
}

Dbm Dbm::FromEntries(int num_vars, const std::int64_t* entries, bool closed,
                     bool feasible) {
  Dbm out(num_vars);
  std::size_t n = static_cast<std::size_t>(num_vars) + 1;
  for (std::size_t idx = 0; idx < n * n; ++idx) out.matrix_[idx] = entries[idx];
  out.closed_ = closed;
  out.feasible_ = feasible;
  return out;
}

Dbm Dbm::Conjoin(const Dbm& a, const Dbm& b) {
  assert(a.num_vars_ == b.num_vars_);
  Dbm out(a.num_vars_);
  std::size_t size = a.matrix_.size();
  for (std::size_t idx = 0; idx < size; ++idx) {
    out.matrix_[idx] = std::min(a.matrix_[idx], b.matrix_[idx]);
  }
  out.closed_ = false;
  return out;
}

std::vector<AtomicConstraint> Dbm::ToAtomics() const {
  std::vector<AtomicConstraint> out;
  int n = num_vars_ + 1;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      if (p == q) continue;
      std::int64_t b = bound_node(p, q);
      if (b == kInf) continue;
      out.push_back(AtomicConstraint{p - 1, q - 1, b});
    }
  }
  return out;
}

std::vector<AtomicConstraint> Dbm::MinimalAtomics() const {
  assert(closed_ && feasible_);
  std::vector<AtomicConstraint> atomics = ToAtomics();
  // Greedy irredundancy: drop an atomic if the remaining ones still entail
  // it.  Quadratic in the (small: <= m(m+1)) number of atomics times a
  // closure; exactness over ties is what the naive "exists intermediate r
  // with equality" shortcut gets wrong, so we test entailment directly.
  std::vector<bool> kept(atomics.size(), true);
  for (std::size_t i = 0; i < atomics.size(); ++i) {
    Dbm trial(num_vars_);
    for (std::size_t j = 0; j < atomics.size(); ++j) {
      if (j == i || !kept[j]) continue;
      trial.AddAtomic(atomics[j]);
    }
    if (!trial.Close().ok()) continue;  // Keep on overflow (conservative).
    int p = atomics[i].lhs + 1;
    int q = atomics[i].rhs + 1;
    if (trial.bound_node(p, q) <= atomics[i].bound) kept[i] = false;
  }
  std::vector<AtomicConstraint> out;
  for (std::size_t i = 0; i < atomics.size(); ++i) {
    if (kept[i]) out.push_back(atomics[i]);
  }
  return out;
}

bool Dbm::Implies(const Dbm& other) const {
  assert(closed_ && feasible_);
  assert(num_vars_ == other.num_vars_);
  int n = num_vars_ + 1;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      std::int64_t b = other.bound_node(p, q);
      if (b == kInf) continue;
      if (bound_node(p, q) > b) return false;
    }
  }
  return true;
}

std::string Dbm::ToString() const {
  std::vector<AtomicConstraint> atomics = MinimalAtomics();
  if (atomics.empty()) return "true";
  std::string out;
  for (std::size_t i = 0; i < atomics.size(); ++i) {
    if (i > 0) out += " && ";
    out += atomics[i].ToString();
  }
  return out;
}

}  // namespace itdb
