#include "core/normalize.h"

#include <string>
#include <utility>

#include "core/dbm_batch.h"
#include "obs/metrics.h"
#include "util/arena.h"
#include "util/numeric.h"
#include "util/thread_pool.h"

namespace itdb {

namespace {

/// Candidates per batched-sweep morsel: enough for full SIMD lanes in the
/// slab closure, small enough that a chunk's scratch stays in L1.
constexpr std::int64_t kNormalizeChunk = 64;

}  // namespace

bool IsNormalForm(const GeneralizedTuple& t, std::int64_t* period) {
  std::int64_t k = 0;
  for (const Lrp& l : t.temporal()) {
    if (l.period() == 0) continue;
    if (k == 0) {
      k = l.period();
    } else if (k != l.period()) {
      return false;
    }
  }
  if (period != nullptr) *period = k == 0 ? 1 : k;
  return true;
}

Result<std::int64_t> CommonPeriod(const GeneralizedTuple& t) {
  std::int64_t k = 1;
  for (const Lrp& l : t.temporal()) {
    if (l.period() == 0) continue;
    ITDB_ASSIGN_OR_RETURN(k, Lcm(k, l.period()));
  }
  return k;
}

Result<std::int64_t> CommonPeriod(const GeneralizedRelation& r) {
  std::int64_t k = 1;
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_ASSIGN_OR_RETURN(std::int64_t kt, CommonPeriod(t));
    ITDB_ASSIGN_OR_RETURN(k, Lcm(k, kt));
  }
  return k;
}

Result<std::vector<GeneralizedTuple>> NormalizeTuple(
    const GeneralizedTuple& t, const NormalizeOptions& options) {
  ITDB_ASSIGN_OR_RETURN(std::int64_t k, CommonPeriod(t));
  return NormalizeTupleToPeriod(t, k, options);
}

Result<std::vector<GeneralizedTuple>> NormalizeTupleToPeriod(
    const GeneralizedTuple& t, std::int64_t period,
    const NormalizeOptions& options) {
  if (period <= 0) {
    return Status::InvalidArgument("normalization period must be positive");
  }
  int m = t.temporal_arity();
  // Split every infinite column to the target period (Lemma 3.1); constant
  // columns contribute the single choice {c}.
  std::vector<std::vector<Lrp>> choices;
  choices.reserve(static_cast<std::size_t>(m));
  __int128 product = 1;
  for (int i = 0; i < m; ++i) {
    const Lrp& l = t.lrp(i);
    if (l.period() == 0) {
      choices.push_back({l});
    } else {
      ITDB_ASSIGN_OR_RETURN(std::vector<Lrp> split, l.SplitToPeriod(period));
      product *= static_cast<__int128>(split.size());
      choices.push_back(std::move(split));
    }
    if (product > static_cast<__int128>(options.max_split_product)) {
      return Status::ResourceExhausted(
          "normalization to period " + std::to_string(period) +
          " would produce more than " +
          std::to_string(options.max_split_product) + " tuples");
    }
  }
  // Cross product of the splits (step 2 of Theorem 3.2); constraints are
  // carried over unchanged in X-space -- the floor-alignment of steps 3..5
  // happens in NSpaceTuple::Build, which we also use to prune infeasible
  // combinations (step 4).  Combinations are enumerated by a linear index
  // decoded in mixed radix with the LAST column least significant, which is
  // exactly the sequential odometer order; feasibility checks are
  // independent per combination, so the sweep fans out over the thread pool
  // with index-ordered merging (byte-identical to the sequential loop).
  const std::int64_t total = static_cast<std::int64_t>(product);
  {
    static obs::Counter* calls =
        obs::MetricsRegistry::Global().GetCounter("normalize.calls");
    static obs::Histogram* split =
        obs::MetricsRegistry::Global().GetHistogram("normalize.split_product");
    calls->Increment();
    split->Record(total);
  }
  if (!options.batch) {
    ParallelOptions parallel{options.threads, /*grain=*/64};
    return ParallelAppend<GeneralizedTuple>(
        total, parallel,
        [&](std::int64_t index, std::vector<GeneralizedTuple>& out) -> Status {
          std::vector<Lrp> lrps(static_cast<std::size_t>(m));
          std::int64_t rest = index;
          for (int i = m - 1; i >= 0; --i) {
            const std::vector<Lrp>& column =
                choices[static_cast<std::size_t>(i)];
            const std::int64_t size = static_cast<std::int64_t>(column.size());
            lrps[static_cast<std::size_t>(i)] =
                column[static_cast<std::size_t>(rest % size)];
            rest /= size;
          }
          GeneralizedTuple candidate(std::move(lrps), t.data());
          candidate.set_constraints(t.constraints());
          ITDB_ASSIGN_OR_RETURN(NSpaceTuple ns, NSpaceTuple::Build(candidate));
          if (ns.feasible()) out.push_back(std::move(candidate));
          return Status::Ok();
        });
  }
  // Batched sweep.  Per candidate, NSpaceTuple::Build (the legacy path)
  // closes a fresh copy of the SAME X-space system, derives the same
  // variable layout, and only then does candidate-specific work (bound
  // translation against the chosen offsets plus one small closure).  Hoist
  // everything candidate-independent out of the loop and run the remaining
  // per-candidate closures on an entry-major slab, one morsel-sized chunk
  // of the cross product at a time.  Decisions, statuses, order, and the
  // surviving tuples are bit-identical to the legacy sweep.
  Dbm x_closed = t.constraints();
  ITDB_RETURN_IF_ERROR(x_closed.Close());
  if (!x_closed.feasible()) return std::vector<GeneralizedTuple>{};
  std::vector<int> var_of_column(static_cast<std::size_t>(m), -1);
  int num_vars = 0;
  for (int i = 0; i < m; ++i) {
    if (t.lrp(i).period() != 0) {
      var_of_column[static_cast<std::size_t>(i)] = num_vars++;
    }
  }
  const std::int64_t k = num_vars > 0 ? period : 1;
  const std::vector<AtomicConstraint> atomics = x_closed.ToAtomics();
  const std::int64_t chunks =
      (total + kNormalizeChunk - 1) / kNormalizeChunk;
  ParallelOptions parallel{options.threads, /*grain=*/1};
  return ParallelAppend<GeneralizedTuple>(
      chunks, parallel,
      [&](std::int64_t chunk, std::vector<GeneralizedTuple>& out) -> Status {
        const std::int64_t lo = chunk * kNormalizeChunk;
        const std::int64_t hi = std::min(total, lo + kNormalizeChunk);
        const std::int64_t cnt = hi - lo;
        Arena& arena = Arena::ThreadLocalScratch();
        ArenaScope scope(arena);
        // Chunk-local candidate state: the chosen split index per column
        // (the odometer digits, column-major) and derived offsets.
        int* digits = arena.AllocateArray<int>(
            static_cast<std::size_t>(m) * static_cast<std::size_t>(cnt));
        std::int64_t* offsets = arena.AllocateArray<std::int64_t>(
            static_cast<std::size_t>(m) * static_cast<std::size_t>(cnt));
        for (std::int64_t c = 0; c < cnt; ++c) {
          std::int64_t rest = lo + c;
          for (int i = m - 1; i >= 0; --i) {
            const std::vector<Lrp>& column =
                choices[static_cast<std::size_t>(i)];
            const std::int64_t size = static_cast<std::int64_t>(column.size());
            const int digit = static_cast<int>(rest % size);
            rest /= size;
            digits[static_cast<std::size_t>(i) * static_cast<std::size_t>(cnt) +
                   static_cast<std::size_t>(c)] = digit;
            offsets[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(cnt) +
                    static_cast<std::size_t>(c)] =
                column[static_cast<std::size_t>(digit)].offset();
          }
        }
        // Translate the hoisted X-space atomics per candidate into the
        // n-space slab, mirroring NSpaceTuple::Build's arithmetic (and its
        // overflow statuses) exactly.  flag_infeasible mirrors the ground /
        // same-variable contradiction flags; translation continues past
        // them, as Build does.
        DbmSlab slab(&arena, num_vars, cnt);
        slab.InitUnconstrained();
        bool* flag_infeasible = arena.AllocateArray<bool>(
            static_cast<std::size_t>(cnt));
        for (std::int64_t c = 0; c < cnt; ++c) {
          flag_infeasible[static_cast<std::size_t>(c)] = false;
        }
        Status deferred = Status::Ok();
        std::int64_t translated = cnt;
        for (std::int64_t c = 0; c < cnt && deferred.ok(); ++c) {
          for (const AtomicConstraint& a : atomics) {
            std::int64_t rhs = a.bound;
            int vp = -1;
            int vq = -1;
            if (a.lhs != kZeroVar) {
              Result<std::int64_t> sub = CheckedSub(
                  rhs, offsets[static_cast<std::size_t>(a.lhs) *
                                   static_cast<std::size_t>(cnt) +
                               static_cast<std::size_t>(c)]);
              if (!sub.ok()) {
                deferred = sub.status();
                translated = c;
                break;
              }
              rhs = *sub;
              vp = var_of_column[static_cast<std::size_t>(a.lhs)];
            }
            if (a.rhs != kZeroVar) {
              Result<std::int64_t> add = CheckedAdd(
                  rhs, offsets[static_cast<std::size_t>(a.rhs) *
                                   static_cast<std::size_t>(cnt) +
                               static_cast<std::size_t>(c)]);
              if (!add.ok()) {
                deferred = add.status();
                translated = c;
                break;
              }
              rhs = *add;
              vq = var_of_column[static_cast<std::size_t>(a.rhs)];
            }
            if (vp >= 0 && vq >= 0) {
              if (vp == vq) {
                if (rhs < 0) flag_infeasible[static_cast<std::size_t>(c)] = true;
                continue;
              }
              slab.AddAtomic(c, vp, vq, FloorDiv(rhs, k));
            } else if (vp >= 0) {
              slab.AddAtomic(c, vp, kZeroVar, FloorDiv(rhs, k));
            } else if (vq >= 0) {
              slab.AddAtomic(c, kZeroVar, vq, FloorDiv(rhs, k));
            } else if (rhs < 0) {
              flag_infeasible[static_cast<std::size_t>(c)] = true;
            }
          }
        }
        bool* feasible = arena.AllocateArray<bool>(
            static_cast<std::size_t>(cnt));
        bool* overflow = arena.AllocateArray<bool>(
            static_cast<std::size_t>(cnt));
        slab.CloseAll(feasible, overflow);
        // The legacy sweep surfaces a candidate's closure overflow before a
        // LATER candidate's translation overflow; replicate that ordering.
        for (std::int64_t c = 0; c < translated; ++c) {
          if (overflow[static_cast<std::size_t>(c)]) {
            return Status::Overflow(
                "DBM bound exceeds safe range during closure");
          }
        }
        if (!deferred.ok()) return deferred;
        std::size_t survivors = 0;
        for (std::int64_t c = 0; c < cnt; ++c) {
          if (feasible[static_cast<std::size_t>(c)] &&
              !flag_infeasible[static_cast<std::size_t>(c)]) {
            ++survivors;
          }
        }
        out.reserve(out.size() + survivors);
        for (std::int64_t c = 0; c < cnt; ++c) {
          if (!feasible[static_cast<std::size_t>(c)] ||
              flag_infeasible[static_cast<std::size_t>(c)]) {
            continue;
          }
          std::vector<Lrp> lrps(static_cast<std::size_t>(m));
          for (int i = 0; i < m; ++i) {
            lrps[static_cast<std::size_t>(i)] =
                choices[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                    digits[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(cnt) +
                           static_cast<std::size_t>(c)])];
          }
          GeneralizedTuple candidate(std::move(lrps), t.data());
          candidate.set_constraints(t.constraints());
          out.push_back(std::move(candidate));
        }
        return Status::Ok();
      });
}

Result<NSpaceTuple> NSpaceTuple::Build(const GeneralizedTuple& t) {
  std::int64_t period = 1;
  if (!IsNormalForm(t, &period)) {
    return Status::InvalidArgument(
        "NSpaceTuple requires a normal-form tuple; got " + t.ToString());
  }
  NSpaceTuple out;
  out.period_ = period;
  int m = t.temporal_arity();
  out.offsets_.resize(static_cast<std::size_t>(m));
  out.var_of_column_.assign(static_cast<std::size_t>(m), -1);
  out.dropped_.assign(static_cast<std::size_t>(m), false);
  int num_vars = 0;
  for (int i = 0; i < m; ++i) {
    const Lrp& l = t.lrp(i);
    out.offsets_[static_cast<std::size_t>(i)] = l.offset();
    if (l.period() != 0) out.var_of_column_[static_cast<std::size_t>(i)] = num_vars++;
  }
  Dbm dbm(num_vars);
  const std::int64_t k = period;
  // Close the X-space system first: a contradiction over the reals (or the
  // degenerate zero-variable contradiction flag) already proves emptiness.
  Dbm x_closed = t.constraints();
  ITDB_RETURN_IF_ERROR(x_closed.Close());
  if (!x_closed.feasible()) {
    out.feasible_ = false;
    out.dbm_ = std::move(dbm);
    return out;
  }
  // Translate every atomic X-space constraint.  Writing X_i = c_i + k*n_i
  // (or the constant c_i), the atomic  X_p - X_q <= a  becomes a difference/
  // unary/ground constraint on the n's with bound floor((a - c_p + c_q)/k):
  // exact over the integers because n_p, n_q are integers.
  for (const AtomicConstraint& c : x_closed.ToAtomics()) {
    std::int64_t rhs = c.bound;
    int vp = -1;
    int vq = -1;
    if (c.lhs != kZeroVar) {
      ITDB_ASSIGN_OR_RETURN(
          rhs, CheckedSub(rhs, out.offsets_[static_cast<std::size_t>(c.lhs)]));
      vp = out.var_of_column_[static_cast<std::size_t>(c.lhs)];
    }
    if (c.rhs != kZeroVar) {
      ITDB_ASSIGN_OR_RETURN(
          rhs, CheckedAdd(rhs, out.offsets_[static_cast<std::size_t>(c.rhs)]));
      vq = out.var_of_column_[static_cast<std::size_t>(c.rhs)];
    }
    if (vp >= 0 && vq >= 0) {
      if (vp == vq) {
        // Same lrp variable on both sides: k*n - k*n <= rhs.
        if (rhs < 0) out.feasible_ = false;
        continue;
      }
      dbm.AddDifferenceUpperBound(vp, vq, FloorDiv(rhs, k));
    } else if (vp >= 0) {
      dbm.AddUpperBound(vp, FloorDiv(rhs, k));
    } else if (vq >= 0) {
      // -k * n_q <= rhs.
      dbm.AddAtomic(AtomicConstraint{kZeroVar, vq, FloorDiv(rhs, k)});
    } else {
      // Ground: 0 <= rhs.
      if (rhs < 0) out.feasible_ = false;
    }
  }
  ITDB_RETURN_IF_ERROR(dbm.Close());
  if (!dbm.feasible()) out.feasible_ = false;
  out.dbm_ = std::move(dbm);
  return out;
}

Status NSpaceTuple::EliminateColumn(int col) {
  if (col < 0 || col >= num_columns() ||
      dropped_[static_cast<std::size_t>(col)]) {
    return Status::InvalidArgument("EliminateColumn: bad column " +
                                   std::to_string(col));
  }
  if (!feasible_) {
    return Status::InvalidArgument(
        "EliminateColumn on an infeasible tuple");
  }
  int var = var_of_column_[static_cast<std::size_t>(col)];
  dropped_[static_cast<std::size_t>(col)] = true;
  if (var < 0) return Status::Ok();  // Constant column: nothing to project.
  dbm_ = dbm_.EliminateVariable(var);
  var_of_column_[static_cast<std::size_t>(col)] = -1;
  for (int& v : var_of_column_) {
    if (v > var) --v;
  }
  return Status::Ok();
}

Result<GeneralizedTuple> NSpaceTuple::Rebuild(const std::vector<int>& columns,
                                              std::vector<Value> data) const {
  if (!feasible_) {
    return Status::InvalidArgument("Rebuild on an infeasible tuple");
  }
  const std::int64_t k = period_;
  std::vector<Lrp> lrps;
  lrps.reserve(columns.size());
  // new_var_pos[v]: position in `columns` of the column owning n-var v.
  std::vector<int> column_of_var(static_cast<std::size_t>(dbm_.num_vars()), -1);
  for (std::size_t pos = 0; pos < columns.size(); ++pos) {
    int col = columns[pos];
    if (col < 0 || col >= num_columns() ||
        dropped_[static_cast<std::size_t>(col)]) {
      return Status::InvalidArgument("Rebuild: bad or dropped column " +
                                     std::to_string(col));
    }
    std::int64_t c = offsets_[static_cast<std::size_t>(col)];
    int var = var_of_column_[static_cast<std::size_t>(col)];
    if (var < 0) {
      lrps.push_back(Lrp::Singleton(c));
    } else {
      lrps.push_back(Lrp::Make(c, k));
      column_of_var[static_cast<std::size_t>(var)] = static_cast<int>(pos);
    }
  }
  GeneralizedTuple out(std::move(lrps), std::move(data));
  // Translate the (minimal) n-space constraints back to X-space:
  //   n_p - n_q <= b   ->   X_p - X_q <= k*b + c_p - c_q
  //   n_p <= b         ->   X_p <= k*b + c_p
  //   -n_q <= b        ->   X_q >= c_q - k*b.
  Dbm x_constraints(static_cast<int>(columns.size()));
  for (const AtomicConstraint& a : dbm_.MinimalAtomics()) {
    // Skip constraints mentioning n-vars whose column is not kept: callers
    // must have eliminated those columns first.
    int pos_l = a.lhs == kZeroVar
                    ? kZeroVar
                    : column_of_var[static_cast<std::size_t>(a.lhs)];
    int pos_r = a.rhs == kZeroVar
                    ? kZeroVar
                    : column_of_var[static_cast<std::size_t>(a.rhs)];
    if ((a.lhs != kZeroVar && pos_l < 0) || (a.rhs != kZeroVar && pos_r < 0)) {
      return Status::InvalidArgument(
          "Rebuild: constraints mention a column not in the keep list; "
          "eliminate it first");
    }
    ITDB_ASSIGN_OR_RETURN(std::int64_t bound, CheckedMul(k, a.bound));
    if (pos_l != kZeroVar) {
      ITDB_ASSIGN_OR_RETURN(
          bound,
          CheckedAdd(bound, offsets_[static_cast<std::size_t>(
                                columns[static_cast<std::size_t>(pos_l)])]));
    }
    if (pos_r != kZeroVar) {
      ITDB_ASSIGN_OR_RETURN(
          bound,
          CheckedSub(bound, offsets_[static_cast<std::size_t>(
                                columns[static_cast<std::size_t>(pos_r)])]));
    }
    x_constraints.AddAtomic(AtomicConstraint{pos_l, pos_r, bound});
  }
  out.set_constraints(std::move(x_constraints));
  return out;
}

Result<GeneralizedTuple> NSpaceTuple::RebuildAll(
    std::vector<Value> data) const {
  std::vector<int> columns;
  for (int i = 0; i < num_columns(); ++i) {
    if (!dropped_[static_cast<std::size_t>(i)]) columns.push_back(i);
  }
  return Rebuild(columns, std::move(data));
}

}  // namespace itdb
