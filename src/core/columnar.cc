#include "core/columnar.h"

#include <cassert>

namespace itdb {

ColumnarRelation::ColumnarRelation(const GeneralizedRelation& r,
                                   const std::vector<std::size_t>& rows,
                                   Arena* arena)
    : count_(static_cast<std::int64_t>(rows.size())),
      arity_(r.schema().temporal_arity()),
      rows_(rows),
      slab_(arena, arity_, count_) {
  const std::size_t cnt = rows.size();
  const std::size_t cols = static_cast<std::size_t>(arity_);
  offsets_ = arena->AllocateArray<std::int64_t>(cols * cnt);
  periods_ = arena->AllocateArray<std::int64_t>(cols * cnt);
  hull_lo_ = arena->AllocateArray<std::int64_t>(cols * cnt);
  hull_hi_ = arena->AllocateArray<std::int64_t>(cols * cnt);
  feasible_ = arena->AllocateArray<bool>(cnt);
  overflow_ = arena->AllocateArray<bool>(cnt);
  for (std::size_t i = 0; i < cnt; ++i) {
    const GeneralizedTuple& t = r.tuples()[rows[i]];
    for (std::size_t c = 0; c < cols; ++c) {
      const Lrp& l = t.lrp(static_cast<int>(c));
      offsets_[c * cnt + i] = l.offset();
      periods_[c * cnt + i] = l.period();
    }
    slab_.Load(static_cast<std::int64_t>(i), t.constraints());
  }
  slab_.CloseAll(feasible_, overflow_);
  // Read the per-column bounding intervals off the zero node's row and
  // column, exactly as TemporalHull::Of does on the scalar closure.
  for (std::size_t i = 0; i < cnt; ++i) {
    if (!usable(static_cast<std::int64_t>(i))) continue;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::int64_t upper =
          slab_.at(static_cast<int>(c) + 1, 0, static_cast<std::int64_t>(i));
      const std::int64_t lower =
          slab_.at(0, static_cast<int>(c) + 1, static_cast<std::int64_t>(i));
      hull_hi_[c * cnt + i] = upper;
      hull_lo_[c * cnt + i] = lower == Dbm::kInf ? -Dbm::kInf : -lower;
    }
  }
}

TemporalHull ColumnarRelation::Hull(std::int64_t i) const {
  TemporalHull out;
  if (close_failed(i)) {
    out.close_failed = true;
    return out;
  }
  if (infeasible(i)) {
    out.infeasible = true;
    return out;
  }
  const std::size_t cnt = static_cast<std::size_t>(count_);
  const std::size_t cols = static_cast<std::size_t>(arity_);
  out.lo.resize(cols);
  out.hi.resize(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    out.lo[c] = hull_lo_[c * cnt + static_cast<std::size_t>(i)];
    out.hi[c] = hull_hi_[c * cnt + static_cast<std::size_t>(i)];
  }
  out.closed = slab_.Extract(i);
  return out;
}

}  // namespace itdb
