#include "core/lrp.h"

#include <limits>
#include <ostream>
#include <string>

#include "util/numeric.h"

namespace itdb {

Lrp Lrp::Make(std::int64_t c, std::int64_t k) {
  Lrp out;
  if (k == 0) {
    out.offset_ = c;
    out.period_ = 0;
    return out;
  }
  std::int64_t period = k < 0 ? -k : k;
  out.period_ = period;
  out.offset_ = FloorMod(c, period);
  return out;
}

bool Lrp::Contains(std::int64_t t) const {
  if (period_ == 0) return t == offset_;
  return FloorMod(t - offset_, period_) == 0;
}

bool Lrp::Includes(const Lrp& other) const {
  if (other.period_ == 0) return Contains(other.offset_);
  if (period_ == 0) return false;  // A singleton cannot include an infinite set.
  // {c2 + k2 n} subset of {c1 + k1 n} iff k1 | k2 and c2 === c1 (mod k1).
  return other.period_ % period_ == 0 &&
         FloorMod(other.offset_ - offset_, period_) == 0;
}

Result<std::optional<Lrp>> Lrp::Intersect(const Lrp& a, const Lrp& b) {
  using MaybeLrp = std::optional<Lrp>;
  if (a.period_ == 0) {
    if (b.Contains(a.offset_)) return MaybeLrp(a);
    return MaybeLrp(std::nullopt);
  }
  if (b.period_ == 0) {
    if (a.Contains(b.offset_)) return MaybeLrp(b);
    return MaybeLrp(std::nullopt);
  }
  // Solve x === a.offset (mod a.period) and x === b.offset (mod b.period).
  // Solutions exist iff gcd(ka, kb) | (b.offset - a.offset); they then form
  // a single residue class modulo lcm(ka, kb) (Section 3.2.1).
  std::int64_t g = Gcd(a.period_, b.period_);
  std::int64_t diff = b.offset_ - a.offset_;  // Canonical offsets: no overflow.
  if (FloorMod(diff, g) != 0) return MaybeLrp(std::nullopt);
  ITDB_ASSIGN_OR_RETURN(std::int64_t l, Lcm(a.period_, b.period_));
  // x = a.offset + a.period * t where t === (diff / g) * inv(ka/g) (mod kb/g).
  std::int64_t ka_g = a.period_ / g;
  std::int64_t kb_g = b.period_ / g;
  ITDB_ASSIGN_OR_RETURN(std::int64_t inv, ModInverse(ka_g, kb_g));
  // All factors are reduced modulo kb_g before multiplying to stay in range;
  // the product of two values < kb_g <= 2^63 can still overflow, so use
  // checked multiplication on the reduced representatives.
  std::int64_t t0 = FloorMod(diff / g, kb_g);
  ITDB_ASSIGN_OR_RETURN(std::int64_t prod, CheckedMul(t0, inv));
  std::int64_t t = FloorMod(prod, kb_g);
  ITDB_ASSIGN_OR_RETURN(std::int64_t shift, CheckedMul(a.period_, t));
  ITDB_ASSIGN_OR_RETURN(std::int64_t x0, CheckedAdd(a.offset_, shift));
  return MaybeLrp(Lrp::Make(x0, l));
}

Result<LrpDifference> Lrp::Subtract(const Lrp& a, const Lrp& b) {
  LrpDifference out;
  ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> inter, Intersect(a, b));
  if (!inter.has_value()) {
    out.parts.push_back(a);  // Disjoint: a - b == a.
    return out;
  }
  const Lrp& i = *inter;
  if (i == a) return out;  // b includes a: empty difference.
  if (a.period_ == 0) {
    // a is a singleton and the intersection is nonempty, so i == a; handled
    // above.  (Defensive: cannot reach here.)
    return out;
  }
  if (i.period_ == 0) {
    // Removing one point from an infinite lrp: not a finite union of lrps.
    out.punctured = LrpDifference::Punctured{a, i.offset_};
    return out;
  }
  // i = c2 + k2 n with a.period | k2 (strictly larger since i != a).  The
  // difference is the union of the other residue classes of period k2 inside
  // a: {c2 + j * k1 + k2 * n | j = 1 .. k2/k1 - 1}   (Section 3.3.1).
  std::int64_t k1 = a.period_;
  std::int64_t k2 = i.period_;
  // The difference has k2/k1 - 1 residue classes; refuse pathological period
  // ratios instead of materializing millions of lrps.
  constexpr std::int64_t kMaxParts = std::int64_t{1} << 20;
  if (k2 / k1 > kMaxParts) {
    return Status::ResourceExhausted(
        "lrp subtraction would produce " + std::to_string(k2 / k1 - 1) +
        " residue classes (periods " + std::to_string(k1) + " and " +
        std::to_string(k2) + ")");
  }
  for (std::int64_t j = 1; j < k2 / k1; ++j) {
    ITDB_ASSIGN_OR_RETURN(std::int64_t jk1, CheckedMul(j, k1));
    ITDB_ASSIGN_OR_RETURN(std::int64_t c, CheckedAdd(i.offset_, jk1));
    out.parts.push_back(Lrp::Make(c, k2));
  }
  return out;
}

Result<std::vector<Lrp>> Lrp::SplitToPeriod(std::int64_t new_period) const {
  if (period_ == 0) {
    return Status::InvalidArgument(
        "SplitToPeriod: cannot split the singleton " + ToString());
  }
  if (new_period <= 0 || new_period % period_ != 0) {
    return Status::InvalidArgument(
        "SplitToPeriod: " + std::to_string(new_period) +
        " is not a positive multiple of " + std::to_string(period_));
  }
  std::vector<Lrp> out;
  out.reserve(static_cast<std::size_t>(new_period / period_));
  for (std::int64_t j = 0; j < new_period / period_; ++j) {
    // offset_ + j * period_ < new_period <= INT64_MAX: no overflow.
    out.push_back(Lrp::Make(offset_ + j * period_, new_period));
  }
  return out;
}

std::optional<std::int64_t> Lrp::FirstAtLeast(std::int64_t t) const {
  if (period_ == 0) {
    if (offset_ >= t) return offset_;
    return std::nullopt;
  }
  // Smallest x === offset (mod period) with x >= t.  Guard against the
  // (mathematically existing) next element not being representable in
  // int64 when t sits within one period of the maximum.
  __int128 diff = static_cast<__int128>(t) - offset_;
  __int128 r = diff % period_;
  if (r < 0) r += period_;
  __int128 x = r == 0 ? static_cast<__int128>(t)
                      : static_cast<__int128>(t) + (period_ - r);
  if (x > std::numeric_limits<std::int64_t>::max()) return std::nullopt;
  return static_cast<std::int64_t>(x);
}

std::vector<std::int64_t> Lrp::ElementsInRange(std::int64_t lo,
                                               std::int64_t hi) const {
  std::vector<std::int64_t> out;
  if (period_ == 0) {
    if (lo <= offset_ && offset_ <= hi) out.push_back(offset_);
    return out;
  }
  std::optional<std::int64_t> first = FirstAtLeast(lo);
  if (!first.has_value()) return out;
  for (std::int64_t x = *first; x <= hi; x += period_) {
    out.push_back(x);
    if (x > hi - period_) break;  // Avoid overflow of x += period_ near max.
  }
  return out;
}

std::string Lrp::ToString() const {
  if (period_ == 0) return std::to_string(offset_);
  return std::to_string(offset_) + "+" + std::to_string(period_) + "n";
}

std::ostream& operator<<(std::ostream& os, const Lrp& lrp) {
  return os << lrp.ToString();
}

}  // namespace itdb
