#include "core/index.h"

#include <cassert>
#include <functional>
#include <string>
#include <utility>
#include <variant>

#include "util/numeric.h"

namespace itdb {

void KernelCounters::Reset() {
  pairs_total.store(0, std::memory_order_relaxed);
  pairs_candidate.store(0, std::memory_order_relaxed);
  pairs_pruned_residue.store(0, std::memory_order_relaxed);
  pairs_pruned_hull.store(0, std::memory_order_relaxed);
  closures_incremental.store(0, std::memory_order_relaxed);
  closures_full.store(0, std::memory_order_relaxed);
  tuples_subsumed.store(0, std::memory_order_relaxed);
}

bool LrpIntersectionEmpty(const Lrp& a, const Lrp& b) {
  // Mirrors Lrp::Intersect's emptiness decisions exactly, in the same order
  // and through the same primitives, so the prefilter and the naive kernel
  // agree on every input -- including any edge cases of Contains / FloorMod.
  if (a.period() == 0) return !b.Contains(a.offset());
  if (b.period() == 0) return !a.Contains(b.offset());
  std::int64_t g = Gcd(a.period(), b.period());
  std::int64_t diff = b.offset() - a.offset();  // Canonical offsets: no
                                                // overflow (both in [0, k)).
  return FloorMod(diff, g) != 0;
}

namespace internal {

namespace {

// Finalizer of splitmix64: a fast, well-mixing permutation of 64-bit ints.
std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t HashOne(const Value& v) {
  if (v.IsInt()) return Mix64(static_cast<std::uint64_t>(v.AsInt()));
  return std::hash<std::string>{}(v.AsString());
}

// Order-dependent combine (boost-style), shared by both key forms so a
// stored vector key and an in-place probe of equal values hash alike.
std::uint64_t Combine(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

std::size_t ValueKeyHash::operator()(const ProbeKey& key) const {
  std::uint64_t h = key.cols->size();
  for (int c : *key.cols) h = Combine(h, HashOne(key.tuple->value(c)));
  return static_cast<std::size_t>(h);
}

}  // namespace internal

bool DataKeyIndex::KeysEqual(const GeneralizedTuple& probe,
                             const std::vector<int>& probe_cols,
                             std::size_t row) const {
  const GeneralizedTuple& stored = rel_->tuples()[row];
  for (std::size_t c = 0; c < key_cols_.size(); ++c) {
    if (probe.value(probe_cols[c]) != stored.value(key_cols_[c])) return false;
  }
  return true;
}

DataKeyIndex::DataKeyIndex(const GeneralizedRelation& r,
                           std::vector<int> key_cols)
    : keyed_(!key_cols.empty()), key_cols_(std::move(key_cols)), rel_(&r) {
  const std::size_t n = r.tuples().size();
  rows_.resize(n);
  if (!keyed_) {
    for (std::size_t i = 0; i < n; ++i) rows_[i] = i;
    group_offsets_ = {0, n};
    return;
  }
  if (n == 0) {
    group_offsets_ = {0};
    return;
  }
  // Power-of-two table at most half full keeps linear-probe chains short.
  std::size_t table_size = 8;
  while (table_size < 2 * n) table_size *= 2;
  table_mask_ = table_size - 1;
  table_hash_.resize(table_size);
  table_group_.assign(table_size, -1);

  // Pass 1: assign each row a group id (first row with an equal key wins),
  // counting group sizes.  group_offsets_ doubles as the counts buffer.
  const internal::ValueKeyHash hasher;
  std::vector<std::uint64_t> row_hash(n);
  std::vector<std::int64_t> group_of(n);
  std::vector<std::size_t> group_first;
  group_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const GeneralizedTuple& t = r.tuples()[i];
    const std::uint64_t h =
        hasher(internal::ProbeKey{&t, &key_cols_});
    row_hash[i] = h;
    std::size_t slot = h & table_mask_;
    std::int64_t g = -1;
    while (table_group_[slot] >= 0) {
      if (table_hash_[slot] == h &&
          KeysEqual(t, key_cols_,
                    group_first[static_cast<std::size_t>(
                        table_group_[slot])])) {
        g = table_group_[slot];
        break;
      }
      slot = (slot + 1) & table_mask_;
    }
    if (g < 0) {
      g = static_cast<std::int64_t>(group_first.size());
      group_first.push_back(i);
      table_group_[slot] = g;
      table_hash_[slot] = h;
    }
    group_of[i] = g;
    ++group_offsets_[static_cast<std::size_t>(g) + 1];
  }
  const std::size_t num_groups = group_first.size();
  group_offsets_.resize(num_groups + 1);
  for (std::size_t g = 0; g < num_groups; ++g) {
    group_offsets_[g + 1] += group_offsets_[g];
  }
  // Pass 2: scatter rows into their group's CSR range.  Visiting rows in
  // ascending order keeps each group's indices ascending -- the naive inner
  // loop's order, which the bit-identity contract requires.
  std::vector<std::size_t> cursor(group_offsets_.begin(),
                                  group_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    rows_[cursor[static_cast<std::size_t>(group_of[i])]++] = i;
  }
}

std::span<const std::size_t> DataKeyIndex::Candidates(
    const GeneralizedTuple& probe, const std::vector<int>& probe_cols) const {
  if (!keyed_) return {rows_.data(), rows_.size()};
  assert(probe_cols.size() == key_cols_.size());
  if (rows_.empty()) return {};
  const std::uint64_t h =
      internal::ValueKeyHash{}(internal::ProbeKey{&probe, &probe_cols});
  std::size_t slot = h & table_mask_;
  while (table_group_[slot] >= 0) {
    const std::size_t g = static_cast<std::size_t>(table_group_[slot]);
    if (table_hash_[slot] == h &&
        KeysEqual(probe, probe_cols, rows_[group_offsets_[g]])) {
      return {rows_.data() + group_offsets_[g],
              group_offsets_[g + 1] - group_offsets_[g]};
    }
    slot = (slot + 1) & table_mask_;
  }
  return {};
}

std::int64_t DataKeyIndex::CountCandidatePairs(
    const GeneralizedRelation& probe_rel,
    const std::vector<int>& probe_cols) const {
  std::int64_t total = 0;
  for (const GeneralizedTuple& t : probe_rel.tuples()) {
    total += static_cast<std::int64_t>(Candidates(t, probe_cols).size());
  }
  return total;
}

TemporalHull TemporalHull::Of(const GeneralizedTuple& t) {
  TemporalHull out;
  Dbm c = t.constraints();
  if (!c.Close().ok()) {
    out.close_failed = true;
    return out;
  }
  if (!c.feasible()) {
    out.infeasible = true;
    return out;
  }
  int m = c.num_vars();
  out.lo.resize(static_cast<std::size_t>(m));
  out.hi.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    // Row / column of the zero node: Xi <= bound(i+1, 0) and
    // -Xi <= bound(0, i+1), i.e. Xi >= -bound(0, i+1).
    std::int64_t upper = c.bound_node(i + 1, 0);
    std::int64_t lower = c.bound_node(0, i + 1);
    out.hi[static_cast<std::size_t>(i)] = upper;
    out.lo[static_cast<std::size_t>(i)] =
        lower == Dbm::kInf ? -Dbm::kInf : -lower;
  }
  out.closed = std::move(c);
  return out;
}

bool HullsDisjoint(const TemporalHull& a, const TemporalHull& b,
                   const std::vector<std::pair<int, int>>& cols) {
  if (!a.usable() || !b.usable()) return false;
  for (const auto& [ca, cb] : cols) {
    std::int64_t lo = std::max(a.lo[static_cast<std::size_t>(ca)],
                               b.lo[static_cast<std::size_t>(cb)]);
    std::int64_t hi = std::min(a.hi[static_cast<std::size_t>(ca)],
                               b.hi[static_cast<std::size_t>(cb)]);
    if (hi != Dbm::kInf && lo > hi) return true;
  }
  return false;
}

Result<Dbm> ConjoinOntoClosed(const Dbm& closed_base, const Dbm& addition,
                              KernelCounters* counters) {
  assert(closed_base.closed() && closed_base.feasible());
  assert(closed_base.num_vars() == addition.num_vars());
  Dbm out = closed_base;
  for (const AtomicConstraint& c : addition.ToAtomics()) {
    switch (out.TightenAndClose(c)) {
      case Dbm::TightenResult::kClosed:
        break;
      case Dbm::TightenResult::kInfeasible:
        // Adding the remaining constraints cannot restore feasibility, and
        // callers discard infeasible results without looking at the matrix.
        if (counters != nullptr) {
          counters->closures_incremental.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
        return out;
      case Dbm::TightenResult::kFallbackNeeded: {
        // Bounds near the overflow guard: recompute exactly the way the
        // naive kernel would, so the status (and matrix) are identical.
        if (counters != nullptr) {
          counters->closures_full.fetch_add(1, std::memory_order_relaxed);
        }
        Dbm merged = Dbm::Conjoin(closed_base, addition);
        ITDB_RETURN_IF_ERROR(merged.Close());
        return merged;
      }
    }
  }
  if (counters != nullptr) {
    counters->closures_incremental.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

}  // namespace itdb
