#include "core/index.h"

#include <cassert>
#include <utility>

#include "util/numeric.h"

namespace itdb {

void KernelCounters::Reset() {
  pairs_total.store(0, std::memory_order_relaxed);
  pairs_candidate.store(0, std::memory_order_relaxed);
  pairs_pruned_residue.store(0, std::memory_order_relaxed);
  pairs_pruned_hull.store(0, std::memory_order_relaxed);
  closures_incremental.store(0, std::memory_order_relaxed);
  closures_full.store(0, std::memory_order_relaxed);
  tuples_subsumed.store(0, std::memory_order_relaxed);
}

bool LrpIntersectionEmpty(const Lrp& a, const Lrp& b) {
  // Mirrors Lrp::Intersect's emptiness decisions exactly, in the same order
  // and through the same primitives, so the prefilter and the naive kernel
  // agree on every input -- including any edge cases of Contains / FloorMod.
  if (a.period() == 0) return !b.Contains(a.offset());
  if (b.period() == 0) return !a.Contains(b.offset());
  std::int64_t g = Gcd(a.period(), b.period());
  std::int64_t diff = b.offset() - a.offset();  // Canonical offsets: no
                                                // overflow (both in [0, k)).
  return FloorMod(diff, g) != 0;
}

DataKeyIndex::DataKeyIndex(const GeneralizedRelation& r,
                           std::vector<int> key_cols)
    : keyed_(!key_cols.empty()), key_cols_(std::move(key_cols)) {
  if (!keyed_) {
    all_.resize(static_cast<std::size_t>(r.size()));
    for (std::size_t i = 0; i < all_.size(); ++i) all_[i] = i;
    return;
  }
  std::vector<Value> key(key_cols_.size());
  for (std::size_t i = 0; i < r.tuples().size(); ++i) {
    const GeneralizedTuple& t = r.tuples()[i];
    for (std::size_t c = 0; c < key_cols_.size(); ++c) {
      key[c] = t.value(key_cols_[c]);
    }
    buckets_[key].push_back(i);
  }
}

const std::vector<std::size_t>* DataKeyIndex::Candidates(
    const GeneralizedTuple& probe, const std::vector<int>& probe_cols) const {
  if (!keyed_) return &all_;
  assert(probe_cols.size() == key_cols_.size());
  std::vector<Value> key(probe_cols.size());
  for (std::size_t c = 0; c < probe_cols.size(); ++c) {
    key[c] = probe.value(probe_cols[c]);
  }
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

std::int64_t DataKeyIndex::CountCandidatePairs(
    const GeneralizedRelation& probe_rel,
    const std::vector<int>& probe_cols) const {
  std::int64_t total = 0;
  for (const GeneralizedTuple& t : probe_rel.tuples()) {
    const std::vector<std::size_t>* bucket = Candidates(t, probe_cols);
    if (bucket != nullptr) total += static_cast<std::int64_t>(bucket->size());
  }
  return total;
}

TemporalHull TemporalHull::Of(const GeneralizedTuple& t) {
  TemporalHull out;
  Dbm c = t.constraints();
  if (!c.Close().ok()) {
    out.close_failed = true;
    return out;
  }
  if (!c.feasible()) {
    out.infeasible = true;
    return out;
  }
  int m = c.num_vars();
  out.lo.resize(static_cast<std::size_t>(m));
  out.hi.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    // Row / column of the zero node: Xi <= bound(i+1, 0) and
    // -Xi <= bound(0, i+1), i.e. Xi >= -bound(0, i+1).
    std::int64_t upper = c.bound_node(i + 1, 0);
    std::int64_t lower = c.bound_node(0, i + 1);
    out.hi[static_cast<std::size_t>(i)] = upper;
    out.lo[static_cast<std::size_t>(i)] =
        lower == Dbm::kInf ? -Dbm::kInf : -lower;
  }
  out.closed = std::move(c);
  return out;
}

bool HullsDisjoint(const TemporalHull& a, const TemporalHull& b,
                   const std::vector<std::pair<int, int>>& cols) {
  if (!a.usable() || !b.usable()) return false;
  for (const auto& [ca, cb] : cols) {
    std::int64_t lo = std::max(a.lo[static_cast<std::size_t>(ca)],
                               b.lo[static_cast<std::size_t>(cb)]);
    std::int64_t hi = std::min(a.hi[static_cast<std::size_t>(ca)],
                               b.hi[static_cast<std::size_t>(cb)]);
    if (hi != Dbm::kInf && lo > hi) return true;
  }
  return false;
}

Result<Dbm> ConjoinOntoClosed(const Dbm& closed_base, const Dbm& addition,
                              KernelCounters* counters) {
  assert(closed_base.closed() && closed_base.feasible());
  assert(closed_base.num_vars() == addition.num_vars());
  Dbm out = closed_base;
  for (const AtomicConstraint& c : addition.ToAtomics()) {
    switch (out.TightenAndClose(c)) {
      case Dbm::TightenResult::kClosed:
        break;
      case Dbm::TightenResult::kInfeasible:
        // Adding the remaining constraints cannot restore feasibility, and
        // callers discard infeasible results without looking at the matrix.
        if (counters != nullptr) {
          counters->closures_incremental.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
        return out;
      case Dbm::TightenResult::kFallbackNeeded: {
        // Bounds near the overflow guard: recompute exactly the way the
        // naive kernel would, so the status (and matrix) are identical.
        if (counters != nullptr) {
          counters->closures_full.fetch_add(1, std::memory_order_relaxed);
        }
        Dbm merged = Dbm::Conjoin(closed_base, addition);
        ITDB_RETURN_IF_ERROR(merged.Close());
        return merged;
      }
    }
  }
  if (counters != nullptr) {
    counters->closures_incremental.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

}  // namespace itdb
