#include "core/normalize_cache.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace itdb {

namespace {

void AppendInt64(std::string& key, std::int64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  key.append(buf, sizeof(v));
}

/// The canonical shape key: target period, split budget, lrp vector, and the
/// CLOSED constraint matrix (so raw systems with equal closure share one
/// entry -- closure preserves both solutions and the split enumeration).
Result<std::string> MakeKey(const GeneralizedTuple& t, std::int64_t period,
                            const NormalizeOptions& options,
                            bool* infeasible) {
  Dbm closed = t.constraints();
  ITDB_RETURN_IF_ERROR(closed.Close());
  *infeasible = !closed.feasible();
  std::string key;
  key.reserve(static_cast<std::size_t>(
      (2 + 2 * t.temporal_arity() +
       (t.temporal_arity() + 1) * (t.temporal_arity() + 1)) *
      static_cast<int>(sizeof(std::int64_t))));
  AppendInt64(key, period);
  AppendInt64(key, options.max_split_product);
  for (const Lrp& l : t.temporal()) {
    AppendInt64(key, l.offset());
    AppendInt64(key, l.period());
  }
  const int n = closed.num_vars() + 1;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      AppendInt64(key, closed.bound_node(p, q));
    }
  }
  return key;
}

/// Rebuilds the output tuples exactly as NormalizeTupleToPeriod emits them:
/// each surviving combination carries the caller's raw constraints and data.
std::vector<GeneralizedTuple> Materialize(
    const std::vector<std::vector<Lrp>>& survivors,
    const GeneralizedTuple& t) {
  std::vector<GeneralizedTuple> out;
  out.reserve(survivors.size());
  for (const std::vector<Lrp>& lrps : survivors) {
    GeneralizedTuple nt(lrps, t.data());
    nt.set_constraints(t.constraints());
    out.push_back(std::move(nt));
  }
  return out;
}

}  // namespace

NormalizeCache::NormalizeCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::vector<GeneralizedTuple>> NormalizeCache::NormalizeToPeriod(
    const GeneralizedTuple& t, std::int64_t period,
    const NormalizeOptions& options) {
  if (period <= 0) {
    // Mirror the plain function's error exactly (and don't pollute the key
    // space with invalid periods).
    return NormalizeTupleToPeriod(t, period, options);
  }
  bool infeasible = false;
  Result<std::string> key = MakeKey(t, period, options, &infeasible);
  if (!key.ok()) {
    // Closure overflow: fall through to the plain path, which reports the
    // same failure from inside NSpaceTuple::Build.
    return NormalizeTupleToPeriod(t, period, options);
  }
  if (infeasible) {
    // Every candidate combination carries these constraints and is pruned;
    // skip the enumeration (and the cache) entirely.
    return std::vector<GeneralizedTuple>{};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(*key);
    if (it != entries_.end()) {
      ++stats_.hits;
      obs::AddGlobalCounter("normalize_cache.hits", 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return Materialize(it->second.survivors, t);
    }
    ++stats_.misses;
    obs::AddGlobalCounter("normalize_cache.misses", 1);
  }
  ITDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> result,
                        NormalizeTupleToPeriod(t, period, options));
  std::vector<std::vector<Lrp>> survivors;
  survivors.reserve(result.size());
  for (const GeneralizedTuple& nt : result) survivors.push_back(nt.temporal());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(*key);
    if (it == entries_.end()) {
      lru_.push_front(*key);
      entries_.emplace(std::move(*key),
                       Entry{std::move(survivors), lru_.begin()});
      while (entries_.size() > capacity_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
        obs::AddGlobalCounter("normalize_cache.evictions", 1);
      }
    }
  }
  return result;
}

Result<std::vector<GeneralizedTuple>> NormalizeCache::Normalize(
    const GeneralizedTuple& t, const NormalizeOptions& options) {
  ITDB_ASSIGN_OR_RETURN(std::int64_t k, CommonPeriod(t));
  return NormalizeToPeriod(t, k, options);
}

NormalizeCache::Stats NormalizeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void NormalizeCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_ = Stats{};
}

Result<std::vector<GeneralizedTuple>> CachedNormalizeTupleToPeriod(
    NormalizeCache* cache, const GeneralizedTuple& t, std::int64_t period,
    const NormalizeOptions& options) {
  if (cache != nullptr) return cache->NormalizeToPeriod(t, period, options);
  return NormalizeTupleToPeriod(t, period, options);
}

Result<std::vector<GeneralizedTuple>> CachedNormalizeTuple(
    NormalizeCache* cache, const GeneralizedTuple& t,
    const NormalizeOptions& options) {
  if (cache != nullptr) return cache->Normalize(t, options);
  return NormalizeTuple(t, options);
}

}  // namespace itdb
