// Batched DBM kernels over entry-major slabs.
//
// The scalar Dbm stores one bound matrix per object and closes it with a
// Floyd-Warshall sweep whose inner loop walks a single small matrix.  The
// algebra's hot paths, however, close MANY matrices of the same shape at
// once: every tuple of a relation (hull construction), every candidate of a
// normalization cross product, every branch of a temporal selection.  This
// module stores such a batch as one contiguous slab in ENTRY-MAJOR order --
//
//     slab[(p * n + q) * count + t]  =  entry (p, q) of system t
//
// -- so the relaxation loop over systems t is a contiguous, stride-1 sweep
// the compiler auto-vectorizes (verified with -fopt-info-vec: the min-plus
// update compiles to SIMD compares/adds/blends).  The per-system results are
// BIT-IDENTICAL to running the scalar Dbm operations one system at a time:
// closure relaxations are monotone min-assigns, so the pivot-skip heuristic
// of Dbm::Close() and the lockstep sweep here reach the same fixpoint, and
// the feasibility / overflow decisions replicate the scalar checks entry
// for entry.  The fuzzer's layout axis pins this equivalence.
//
// Slabs borrow their memory from an Arena (util/arena.h); a slab is a view,
// the arena owns the bytes.

#ifndef ITDB_CORE_DBM_BATCH_H_
#define ITDB_CORE_DBM_BATCH_H_

#include <cstdint>

#include "core/dbm.h"
#include "util/arena.h"
#include "util/status.h"

namespace itdb {

/// A batch of `count` DBM bound matrices over `num_vars + 1` nodes each, in
/// entry-major layout, allocated from an arena.
class DbmSlab {
 public:
  /// An uninitialized slab; call InitUnconstrained() or Load() per system.
  DbmSlab(Arena* arena, int num_vars, std::int64_t count);

  int num_vars() const { return num_vars_; }
  int nodes() const { return num_vars_ + 1; }
  std::int64_t count() const { return count_; }

  /// Entry (p, q) of system t.
  std::int64_t& at(int p, int q, std::int64_t t) {
    return slab_[(static_cast<std::size_t>(p) * static_cast<std::size_t>(nodes()) +
                  static_cast<std::size_t>(q)) *
                     static_cast<std::size_t>(count_) +
                 static_cast<std::size_t>(t)];
  }
  std::int64_t at(int p, int q, std::int64_t t) const {
    return slab_[(static_cast<std::size_t>(p) * static_cast<std::size_t>(nodes()) +
                  static_cast<std::size_t>(q)) *
                     static_cast<std::size_t>(count_) +
                 static_cast<std::size_t>(t)];
  }

  /// Sets every system to the unconstrained matrix (diagonal 0, kInf off it).
  void InitUnconstrained();

  /// Copies the bound matrix of `d` (num_vars must match) into system t.
  void Load(std::int64_t t, const Dbm& d);

  /// min-assigns entry (p, q) of system t, exactly like Dbm::Tighten.
  void Tighten(int p, int q, std::int64_t t, std::int64_t v) {
    std::int64_t& cell = at(p, q, t);
    if (v < cell) cell = v;
  }

  /// Applies one atomic constraint to system t (Dbm::AddAtomic semantics for
  /// the non-degenerate forms; callers handle the ground 0 <= bound case).
  void AddAtomic(std::int64_t t, int lhs, int rhs, std::int64_t bound) {
    Tighten(lhs + 1, rhs + 1, t, bound);
  }

  /// Per-system outcome of CloseAll, matching Dbm::Close():
  ///   feasible[t]  -- no negative diagonal after closure;
  ///   overflow[t]  -- feasible and some finite bound left the safe range
  ///                   (the scalar kernel's Status::Overflow case).
  /// The arrays must hold count() entries.
  void CloseAll(bool* feasible, bool* overflow);

  /// Extracts system t as a closed, feasible Dbm.  Pre: CloseAll() ran and
  /// reported system t feasible without overflow.
  Dbm Extract(std::int64_t t) const;

 private:
  int num_vars_;
  std::int64_t count_;
  Arena* arena_;  // Owns slab_ and CloseAll's snapshot scratch.
  std::int64_t* slab_;
};

/// Batched incremental closure: applies the SAME atomic constraint `c` to
/// every system of `slab` (all closed and feasible), replicating
/// Dbm::TightenAndClose per system.  results[t] receives the scalar kernel's
/// TightenResult; systems reporting kFallbackNeeded are left untouched so
/// the caller can replay the full closure exactly as the scalar path does.
/// Pre: every system in the slab is a feasible shortest-path closure.
void TightenAndCloseBatch(DbmSlab& slab, const AtomicConstraint& c,
                          Dbm::TightenResult* results);

}  // namespace itdb

#endif  // ITDB_CORE_DBM_BATCH_H_
