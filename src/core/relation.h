// Generalized relations (Definition 2.3): finite sets of generalized tuples
// sharing one schema.

#ifndef ITDB_CORE_RELATION_H_
#define ITDB_CORE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/tuple.h"
#include "util/status.h"

namespace itdb {

/// A concrete (fully instantiated) row: one integer per temporal attribute
/// and one value per data attribute.  Used by the ground-truth enumeration
/// APIs and by the finite baseline.
struct ConcreteRow {
  std::vector<std::int64_t> temporal;
  std::vector<Value> data;

  friend bool operator==(const ConcreteRow& a, const ConcreteRow& b) = default;
  friend auto operator<=>(const ConcreteRow& a,
                          const ConcreteRow& b) = default;

  std::string ToString() const;
};

/// A generalized relation: a schema plus a finite set of generalized tuples.
/// The represented (possibly infinite) set of concrete rows is the union of
/// the tuples' extensions.
class GeneralizedRelation {
 public:
  GeneralizedRelation() = default;
  explicit GeneralizedRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<GeneralizedTuple>& tuples() const { return tuples_; }
  /// Tuple count as a signed 64-bit value: relation sizes feed pair-product
  /// budgets (size_a * size_b), which an `int` return would silently
  /// truncate / overflow at workload scale.
  std::int64_t size() const {
    return static_cast<std::int64_t>(tuples_.size());
  }

  /// Appends a tuple; fails when its arities do not match the schema.
  Status AddTuple(GeneralizedTuple t);

  /// Pre-sizes the tuple store for `n` upcoming AddTuple calls.  Bulk
  /// loaders (the binary snapshot decoder) know the row count up front;
  /// growth-doubling would otherwise re-move every tuple O(log n) times.
  void ReserveTuples(std::size_t n) { tuples_.reserve(n); }

  /// Concrete membership test (exact; no normalization needed).
  bool Contains(const ConcreteRow& row) const;

  /// All concrete rows whose temporal coordinates lie in [lo, hi], sorted
  /// and deduplicated.  Ground truth for property tests.
  std::vector<ConcreteRow> Enumerate(std::int64_t lo, std::int64_t hi) const;

  /// One tuple per line, in the paper's table notation.
  std::string ToString() const;

  /// Sorts the tuple sequence by CanonicalTupleLess.  The represented set
  /// is an (unordered) union over tuples, so this is semantics-preserving;
  /// it pins a REPRESENTATION that no longer depends on the order tuples
  /// were produced in -- the keystone of the planner's bit-identity
  /// guarantee (query/planner.h): join results conjoin closed constraint
  /// systems, whose closure is association-invariant, so reordered plans
  /// yield the same tuple multiset and sorting makes the sequences equal.
  void SortTuplesCanonical();

 private:
  Schema schema_;
  std::vector<GeneralizedTuple> tuples_;
};

/// A strict total order on the full representation of a generalized tuple:
/// lrps lexicographically by (offset, period), then data values, then the
/// constraint matrix (variable count, then entries node-major).  Equivalence
/// under this order is exactly operator== on GeneralizedTuple.
bool CanonicalTupleLess(const GeneralizedTuple& a, const GeneralizedTuple& b);

}  // namespace itdb

#endif  // ITDB_CORE_RELATION_H_
