// Relation schemas: named temporal and data attributes.
//
// A generalized relation of temporal arity k and data arity l (Definition
// 2.2/2.3) has k temporal attributes -- integer-valued, possibly with
// infinite extensions -- and l data attributes holding concrete values.

#ifndef ITDB_CORE_SCHEMA_H_
#define ITDB_CORE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

namespace itdb {

/// Type of a data attribute.
enum class DataType {
  kInt,
  kString,
};

/// Schema of a generalized relation.  Temporal attributes come first in all
/// positional APIs, followed by data attributes.
class Schema {
 public:
  Schema() = default;

  /// Unnamed schema with `temporal_arity` temporal attributes named
  /// "T1".."Tk" and no data attributes.
  static Schema Temporal(int temporal_arity);

  Schema(std::vector<std::string> temporal_names,
         std::vector<std::string> data_names, std::vector<DataType> data_types)
      : temporal_names_(std::move(temporal_names)),
        data_names_(std::move(data_names)),
        data_types_(std::move(data_types)) {}

  int temporal_arity() const {
    return static_cast<int>(temporal_names_.size());
  }
  int data_arity() const { return static_cast<int>(data_names_.size()); }

  const std::vector<std::string>& temporal_names() const {
    return temporal_names_;
  }
  const std::vector<std::string>& data_names() const { return data_names_; }
  const std::vector<DataType>& data_types() const { return data_types_; }

  const std::string& temporal_name(int i) const { return temporal_names_[i]; }
  const std::string& data_name(int i) const { return data_names_[i]; }
  DataType data_type(int i) const { return data_types_[i]; }

  /// Index of the temporal attribute with this name, if any.
  std::optional<int> FindTemporal(const std::string& name) const;
  /// Index of the data attribute with this name, if any.
  std::optional<int> FindData(const std::string& name) const;

  friend bool operator==(const Schema& a, const Schema& b) = default;

  std::string ToString() const;

 private:
  std::vector<std::string> temporal_names_;
  std::vector<std::string> data_names_;
  std::vector<DataType> data_types_;
};

}  // namespace itdb

#endif  // ITDB_CORE_SCHEMA_H_
