// Normal form for generalized tuples (Section 3.4 of the paper).
//
// Variable elimination with real-arithmetic rules is NOT sound for lrp
// constrained tuples (the paper's Figure 2 counterexample): the constraint
// polyhedron may contain real points with no lattice point nearby.  The
// paper's fix is a *normal form* (Definition 3.2): every non-constant column
// has the same period k, and constraints are aligned to multiples of k.
// Theorem 3.1 then shows real projection is exact.
//
// This module implements
//   * Theorem 3.2's normalization: split every lrp to a common period
//     (Lemma 3.1) and take the cross product of the splits;
//   * the "n-space" view of a normal-form tuple: substituting
//     X_i = c_i + k*n_i turns the restricted constraints on the X's into
//     difference constraints on the integer variables n_i (steps 3..5 of
//     Theorem 3.2 -- the floor-shift of step 5 happens in the translation),
//     on which DBM operations (feasibility, elimination) are exact.

#ifndef ITDB_CORE_NORMALIZE_H_
#define ITDB_CORE_NORMALIZE_H_

#include <cstdint>
#include <vector>

#include "core/relation.h"
#include "core/tuple.h"
#include "util/status.h"

namespace itdb {

/// Budgets for normalization blow-up (Appendix A.1: a tuple with periods
/// k_1..k_m splits into prod(k / k_i) tuples, worst case k^m).
struct NormalizeOptions {
  std::int64_t max_split_product = std::int64_t{1} << 20;
  /// Worker threads for the cross-product feasibility sweep (0 = the
  /// ITDB_THREADS / hardware default, 1 = sequential).  The result is
  /// bit-identical at every thread count.
  int threads = 0;
  /// Run the feasibility sweep on batched DBM slabs (core/dbm_batch) with
  /// the X-space closure hoisted out of the candidate loop, processing
  /// morsel-sized chunks of the cross product at a time.  false = the
  /// legacy per-candidate NSpaceTuple::Build sweep.  Results are
  /// bit-identical either way (fuzzed via the layout axis); the flag exists
  /// for that comparison.
  bool batch = true;
};

/// True iff every non-singleton lrp of `t` has the same period.  On success
/// `*period` receives that period (1 when all columns are singletons).
bool IsNormalForm(const GeneralizedTuple& t, std::int64_t* period);

/// lcm of the non-zero periods of `t` (1 when there are none).
Result<std::int64_t> CommonPeriod(const GeneralizedTuple& t);
/// lcm of the non-zero periods over all tuples of `r` (1 when none).
Result<std::int64_t> CommonPeriod(const GeneralizedRelation& r);

/// Theorem 3.2: an equivalent set of normal-form tuples.  Infeasible
/// combinations (step 4 of the theorem) are pruned.  Constant columns stay
/// constants.
Result<std::vector<GeneralizedTuple>> NormalizeTuple(
    const GeneralizedTuple& t, const NormalizeOptions& options = {});

/// Same, but to an explicitly given period (a positive multiple of every
/// non-zero period of `t`).
Result<std::vector<GeneralizedTuple>> NormalizeTupleToPeriod(
    const GeneralizedTuple& t, std::int64_t period,
    const NormalizeOptions& options = {});

/// The integer-variable ("n-space") view of one normal-form tuple.
///
/// Columns with period k are parameterized as X_i = c_i + k*n_i; constant
/// columns keep their fixed value.  All restricted constraints of the tuple
/// translate into difference constraints on the n_i with floored bounds
/// (exact over Z).  Feasibility and projection on this view are exact
/// (Theorem 3.1).
class NSpaceTuple {
 public:
  /// Pre: IsNormalForm(t).  Fails with kInvalidArgument otherwise, and with
  /// kOverflow if bound arithmetic leaves the int64 range.
  static Result<NSpaceTuple> Build(const GeneralizedTuple& t);

  /// Whether the tuple denotes at least one concrete point.  Exact.
  bool feasible() const { return feasible_; }

  std::int64_t period() const { return period_; }
  int num_columns() const { return static_cast<int>(offsets_.size()); }
  bool is_dropped(int col) const { return dropped_[static_cast<std::size_t>(col)]; }
  bool is_constant(int col) const {
    return var_of_column_[static_cast<std::size_t>(col)] < 0;
  }

  /// Projects away one (not yet dropped) column.  Exact by Theorem 3.1.
  /// Pre: feasible().
  Status EliminateColumn(int col);

  /// Rebuilds a generalized tuple whose temporal columns are the listed
  /// original columns in the given order (none may be dropped), with
  /// constraints translated back to X-space, and the given data values.
  /// Pre: feasible().
  Result<GeneralizedTuple> Rebuild(const std::vector<int>& columns,
                                   std::vector<Value> data) const;

  /// Rebuild with all remaining columns in original order.
  Result<GeneralizedTuple> RebuildAll(std::vector<Value> data) const;

 private:
  NSpaceTuple() : dbm_(0) {}

  std::int64_t period_ = 1;
  std::vector<std::int64_t> offsets_;   // c_i per column
  std::vector<int> var_of_column_;      // n-var index, or -1 for constants
  std::vector<bool> dropped_;
  Dbm dbm_;                             // over the n-vars, closed
  bool feasible_ = true;
};

}  // namespace itdb

#endif  // ITDB_CORE_NORMALIZE_H_
