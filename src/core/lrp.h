// Linear repeating points (Definition 2.1 of the paper).
//
// An lrp is the set {c + k*n | n in Z}.  For k != 0 this is an arithmetic
// progression unbounded in both directions (a residue class modulo |k|);
// for k == 0 it is the singleton {c}.  Lrps are the values of the temporal
// attributes of generalized tuples.
//
// Canonical form maintained by this class: period >= 0, and for period > 0
// the offset satisfies 0 <= offset < period.  (Replacing c by c mod k does
// not change the set since n ranges over all of Z, and neither does flipping
// the sign of k.)

#ifndef ITDB_CORE_LRP_H_
#define ITDB_CORE_LRP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace itdb {

struct LrpDifference;

/// A linear repeating point: the set {offset + period * n | n in Z}.
class Lrp {
 public:
  /// The singleton {0}.
  Lrp() = default;

  /// Builds the lrp {c + k*n}; canonicalizes sign and offset.
  static Lrp Make(std::int64_t c, std::int64_t k);

  /// The singleton {c}.
  static Lrp Singleton(std::int64_t c) { return Make(c, 0); }

  std::int64_t offset() const { return offset_; }
  std::int64_t period() const { return period_; }

  /// True when the lrp contains exactly one point (period == 0).
  bool IsSingleton() const { return period_ == 0; }

  /// Set membership: t in {offset + period * n}.
  bool Contains(std::int64_t t) const;

  /// Set inclusion: every element of `other` is an element of *this.
  bool Includes(const Lrp& other) const;

  /// Set intersection (Section 3.2.1 of the paper).  The intersection of two
  /// lrps is again an lrp or empty; computed with the extended Euclid /
  /// Chinese-remainder construction.  Returns nullopt for the empty set and
  /// a Status on (unlikely) int64 overflow of the combined period.
  static Result<std::optional<Lrp>> Intersect(const Lrp& a, const Lrp& b);

  /// Computes the set difference a - b (Section 3.3.1); see LrpDifference.
  static Result<LrpDifference> Subtract(const Lrp& a, const Lrp& b);

  /// Lemma 3.1: rewrites this lrp (period k > 0) as the equivalent set of
  /// new_period / k lrps of period `new_period`, which must be a positive
  /// multiple of k.
  Result<std::vector<Lrp>> SplitToPeriod(std::int64_t new_period) const;

  /// Smallest element >= t.  nullopt when the lrp is the singleton {c} with
  /// c < t, or when the next element exceeds the int64 range.
  std::optional<std::int64_t> FirstAtLeast(std::int64_t t) const;

  /// All elements x with lo <= x <= hi, ascending.
  std::vector<std::int64_t> ElementsInRange(std::int64_t lo,
                                            std::int64_t hi) const;

  /// "c" for singletons, "c+kn" otherwise (e.g. "3+5n", "0+2n").
  std::string ToString() const;

  friend bool operator==(const Lrp& a, const Lrp& b) = default;

 private:
  std::int64_t offset_ = 0;
  std::int64_t period_ = 0;
};

/// The result of an lrp set difference a - b (Section 3.3.1).  The
/// difference is a finite union of lrps, except in one degenerate case the
/// paper glosses over: removing a single point p from an infinite lrp.
/// That case is reported via `punctured`, meaning the true difference is
/// punctured->base minus the point punctured->point, which callers represent
/// with bound constraints at the tuple level (see GeneralizedTuple
/// subtraction).
struct LrpDifference {
  struct Punctured {
    Lrp base;
    std::int64_t point;
  };
  std::vector<Lrp> parts;
  std::optional<Punctured> punctured;

  bool IsEmpty() const { return parts.empty() && !punctured.has_value(); }
};

std::ostream& operator<<(std::ostream& os, const Lrp& lrp);

}  // namespace itdb

#endif  // ITDB_CORE_LRP_H_
