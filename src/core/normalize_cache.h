// Memoization of Theorem 3.2 normalization.
//
// Query evaluation and the complement's residue sweep normalize the same
// tuple shapes over and over: the split of a tuple to a common period
// depends only on (lrp vector, canonical constraint form, target period,
// split budget) -- NOT on the tuple's data values, and not on which of the
// infinitely many raw constraint systems with the same closure it carries.
// This cache keys on exactly that quadruple and stores the surviving lrp
// combinations; a hit re-attaches the caller's own (raw) constraints and
// data, so cached and uncached results are byte-identical.
//
// The cache is a plain LRU over a serialized key, safe for concurrent use
// (one mutex; entries are copied out under the lock).  Failures (split
// budget, overflow) are never cached -- they are rare and must re-report
// with the caller's exact budget message.

#ifndef ITDB_CORE_NORMALIZE_CACHE_H_
#define ITDB_CORE_NORMALIZE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/lrp.h"
#include "core/normalize.h"
#include "core/tuple.h"
#include "util/status.h"

namespace itdb {

/// An LRU memo-cache for NormalizeTupleToPeriod.  Thread-safe.
class NormalizeCache {
 public:
  /// `capacity`: maximum number of distinct (tuple shape, period) entries.
  explicit NormalizeCache(std::size_t capacity = 1 << 12);

  NormalizeCache(const NormalizeCache&) = delete;
  NormalizeCache& operator=(const NormalizeCache&) = delete;

  /// Drop-in replacement for NormalizeTupleToPeriod (same results, byte for
  /// byte): looks up the surviving lrp combinations for this tuple's shape
  /// and rebuilds the output with the tuple's own constraints and data.
  Result<std::vector<GeneralizedTuple>> NormalizeToPeriod(
      const GeneralizedTuple& t, std::int64_t period,
      const NormalizeOptions& options);

  /// Same, to the tuple's own common period (lcm of its lrp periods).
  Result<std::vector<GeneralizedTuple>> Normalize(
      const GeneralizedTuple& t, const NormalizeOptions& options);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  void Clear();

 private:
  using LruList = std::list<std::string>;
  struct Entry {
    /// Surviving combinations, in enumeration order; each combination is
    /// the full lrp vector of one output tuple.
    std::vector<std::vector<Lrp>> survivors;
    LruList::iterator lru_pos;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  LruList lru_;  // Front = most recently used.
  Stats stats_;
};

/// Normalizes through `cache` when non-null, else calls the plain function.
/// The two paths produce identical results.
Result<std::vector<GeneralizedTuple>> CachedNormalizeTupleToPeriod(
    NormalizeCache* cache, const GeneralizedTuple& t, std::int64_t period,
    const NormalizeOptions& options);
Result<std::vector<GeneralizedTuple>> CachedNormalizeTuple(
    NormalizeCache* cache, const GeneralizedTuple& t,
    const NormalizeOptions& options);

}  // namespace itdb

#endif  // ITDB_CORE_NORMALIZE_CACHE_H_
