#include "core/schema.h"

namespace itdb {

Schema Schema::Temporal(int temporal_arity) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(temporal_arity));
  for (int i = 1; i <= temporal_arity; ++i) {
    names.push_back("T" + std::to_string(i));
  }
  return Schema(std::move(names), {}, {});
}

std::optional<int> Schema::FindTemporal(const std::string& name) const {
  for (std::size_t i = 0; i < temporal_names_.size(); ++i) {
    if (temporal_names_[i] == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::optional<int> Schema::FindData(const std::string& name) const {
  for (std::size_t i = 0; i < data_names_.size(); ++i) {
    if (data_names_[i] == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  bool first = true;
  for (const std::string& n : temporal_names_) {
    if (!first) out += ", ";
    out += n + ": time";
    first = false;
  }
  for (std::size_t i = 0; i < data_names_.size(); ++i) {
    if (!first) out += ", ";
    out += data_names_[i];
    out += data_types_[i] == DataType::kInt ? ": int" : ": string";
    first = false;
  }
  out += ")";
  return out;
}

}  // namespace itdb
