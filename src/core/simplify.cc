#include "core/simplify.h"

#include <utility>
#include <vector>

#include "core/index.h"

namespace itdb {

namespace {

/// Pass 2 of both Simplify variants: drop tuples subsumed by another
/// surviving tuple.  Process in order, preferring to keep earlier tuples; a
/// tuple subsumed by an already dropped tuple is re-tested against the
/// keepers only, so mutual subsumption (duplicates) keeps exactly one copy.
Result<std::vector<bool>> SubsumptionDrops(
    const std::vector<GeneralizedTuple>& live) {
  std::vector<bool> dropped(live.size(), false);
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (i == j || dropped[j] || dropped[i]) continue;
      ITDB_ASSIGN_OR_RETURN(bool sub, TupleSubsumes(live[j], live[i]));
      if (sub) {
        // Keep the lexicographically earlier index on mutual subsumption.
        ITDB_ASSIGN_OR_RETURN(bool back, TupleSubsumes(live[i], live[j]));
        if (back && i < j) continue;
        dropped[i] = true;
        break;
      }
    }
  }
  return dropped;
}

}  // namespace

Result<bool> TupleSubsumes(const GeneralizedTuple& big,
                           const GeneralizedTuple& small) {
  if (big.temporal_arity() != small.temporal_arity() ||
      big.data_arity() != small.data_arity()) {
    return Status::InvalidArgument("TupleSubsumes: arity mismatch");
  }
  Dbm small_closed = small.constraints();
  ITDB_RETURN_IF_ERROR(small_closed.Close());
  if (!small_closed.feasible()) return true;  // Empty set is subsumed by all.
  if (big.data() != small.data()) return false;
  for (int i = 0; i < big.temporal_arity(); ++i) {
    if (!big.lrp(i).Includes(small.lrp(i))) return false;
  }
  return small_closed.Implies(big.constraints());
}

Result<GeneralizedRelation> Simplify(const GeneralizedRelation& r,
                                     const SimplifyOptions& options) {
  // Pass 1: drop tuples with empty extensions (exact via normal form).
  std::vector<GeneralizedTuple> live;
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> normal,
                          NormalizeTuple(t, options.normalize));
    if (!normal.empty()) live.push_back(t);
  }
  ITDB_ASSIGN_OR_RETURN(std::vector<bool> dropped, SubsumptionDrops(live));
  GeneralizedRelation out(r.schema());
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!dropped[i]) ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(live[i])));
  }
  return out;
}

Result<GeneralizedRelation> SimplifyRelation(const GeneralizedRelation& r,
                                             KernelCounters* counters) {
  // Pass 1 (cheap): drop tuples whose constraints are infeasible already
  // over the real relaxation -- no normalization, so lattice-empty tuples
  // with a feasible relaxation survive (sound, not complete).
  std::vector<GeneralizedTuple> live;
  for (const GeneralizedTuple& t : r.tuples()) {
    Dbm closed = t.constraints();
    ITDB_RETURN_IF_ERROR(closed.Close());
    if (closed.feasible()) live.push_back(t);
  }
  ITDB_ASSIGN_OR_RETURN(std::vector<bool> dropped, SubsumptionDrops(live));
  GeneralizedRelation out(r.schema());
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!dropped[i]) ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(live[i])));
  }
  if (counters != nullptr) {
    counters->tuples_subsumed.fetch_add(
        static_cast<std::int64_t>(r.size()) - out.size(),
        std::memory_order_relaxed);
  }
  return out;
}

}  // namespace itdb
