#include "core/simplify.h"

#include <utility>
#include <vector>

namespace itdb {

Result<bool> TupleSubsumes(const GeneralizedTuple& big,
                           const GeneralizedTuple& small) {
  if (big.temporal_arity() != small.temporal_arity() ||
      big.data_arity() != small.data_arity()) {
    return Status::InvalidArgument("TupleSubsumes: arity mismatch");
  }
  Dbm small_closed = small.constraints();
  ITDB_RETURN_IF_ERROR(small_closed.Close());
  if (!small_closed.feasible()) return true;  // Empty set is subsumed by all.
  if (big.data() != small.data()) return false;
  for (int i = 0; i < big.temporal_arity(); ++i) {
    if (!big.lrp(i).Includes(small.lrp(i))) return false;
  }
  return small_closed.Implies(big.constraints());
}

Result<GeneralizedRelation> Simplify(const GeneralizedRelation& r,
                                     const SimplifyOptions& options) {
  // Pass 1: drop tuples with empty extensions (exact via normal form).
  std::vector<GeneralizedTuple> live;
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> normal,
                          NormalizeTuple(t, options.normalize));
    if (!normal.empty()) live.push_back(t);
  }
  // Pass 2: drop tuples subsumed by another surviving tuple.  Process in
  // order, preferring to keep earlier tuples; a tuple subsumed by an already
  // dropped tuple is re-tested against the keepers only, so mutual
  // subsumption (duplicates) keeps exactly one copy.
  std::vector<bool> dropped(live.size(), false);
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (i == j || dropped[j] || dropped[i]) continue;
      ITDB_ASSIGN_OR_RETURN(bool sub, TupleSubsumes(live[j], live[i]));
      if (sub) {
        // Keep the lexicographically earlier index on mutual subsumption.
        ITDB_ASSIGN_OR_RETURN(bool back, TupleSubsumes(live[i], live[j]));
        if (back && i < j) continue;
        dropped[i] = true;
        break;
      }
    }
  }
  GeneralizedRelation out(r.schema());
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!dropped[i]) ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(live[i])));
  }
  return out;
}

}  // namespace itdb
