// Columnar (structure-of-arrays) views of generalized relations.
//
// GeneralizedRelation stores an array of GeneralizedTuple structs: each
// tuple owns its lrp vector, its data vector, and its DBM, scattered across
// the heap.  The binary algebra kernels, however, sweep one FIELD across
// many tuples -- every period of column 2 for the residue prefilter, every
// constraint matrix for hull construction -- so the AoS layout turns those
// sweeps into pointer chases.  ColumnarRelation regroups a chosen subset of
// rows by field into contiguous arrays borrowed from an Arena:
//
//   offsets(col)[i], periods(col)[i]   lrp components, one array per column
//   hull_lo(col)[i], hull_hi(col)[i]   per-column bounding intervals
//   (plus the closed constraint systems in one entry-major DbmSlab)
//
// Construction closes ALL selected constraint systems in one batched
// Floyd-Warshall over the slab (dbm_batch.h) instead of one scalar closure
// per tuple.  The per-row outcomes -- closed matrix, feasibility, overflow
// -- are bit-identical to the scalar TemporalHull::Of path; Hull(i)
// materializes exactly that struct.  The fuzzer's layout axis pins the
// equivalence by running the algebra with the columnar path on and off.
//
// A ColumnarRelation is a VIEW: it borrows its memory from the arena and
// keeps indices into the source relation for everything not regrouped
// (data values, full tuples).  It must not outlive either.

#ifndef ITDB_CORE_COLUMNAR_H_
#define ITDB_CORE_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "core/dbm_batch.h"
#include "core/index.h"
#include "core/relation.h"
#include "util/arena.h"

namespace itdb {

/// An SoA regrouping of rows `rows` of a relation, with all constraint
/// systems closed on one slab.
class ColumnarRelation {
 public:
  /// Builds the view in `arena`.  `rows` lists source-relation indices; the
  /// view's row i corresponds to source row rows[i].
  ColumnarRelation(const GeneralizedRelation& r,
                   const std::vector<std::size_t>& rows, Arena* arena);

  std::int64_t count() const { return count_; }
  int temporal_arity() const { return arity_; }

  /// Contiguous lrp components of one temporal column, `count()` entries.
  const std::int64_t* offsets(int col) const {
    return offsets_ + static_cast<std::size_t>(col) * static_cast<std::size_t>(count_);
  }
  const std::int64_t* periods(int col) const {
    return periods_ + static_cast<std::size_t>(col) * static_cast<std::size_t>(count_);
  }
  /// The lrp of column `col` in view row `i`, reassembled by value.
  Lrp lrp(int col, std::int64_t i) const {
    return Lrp::Make(offsets(col)[i], periods(col)[i]);
  }

  /// Scalar-equivalent closure outcome of row i's constraints (the
  /// TemporalHull::Of triage): exactly one of usable / infeasible /
  /// close_failed holds.
  bool usable(std::int64_t i) const {
    return feasible_[i] && !overflow_[i];
  }
  bool infeasible(std::int64_t i) const { return !feasible_[i]; }
  bool close_failed(std::int64_t i) const {
    return feasible_[i] && overflow_[i];
  }

  /// Bounding intervals of one column across all rows (Dbm::kInf sentinels
  /// as in TemporalHull).  Entries of non-usable rows are unspecified.
  const std::int64_t* hull_lo(int col) const {
    return hull_lo_ + static_cast<std::size_t>(col) * static_cast<std::size_t>(count_);
  }
  const std::int64_t* hull_hi(int col) const {
    return hull_hi_ + static_cast<std::size_t>(col) * static_cast<std::size_t>(count_);
  }

  /// Row i's TemporalHull, bit-identical to TemporalHull::Of on the source
  /// tuple (closed matrix included, extracted from the slab).
  TemporalHull Hull(std::int64_t i) const;

  /// The source-relation index of view row i.
  std::size_t source_row(std::int64_t i) const {
    return rows_[static_cast<std::size_t>(i)];
  }

 private:
  std::int64_t count_;
  int arity_;
  std::vector<std::size_t> rows_;
  std::int64_t* offsets_;
  std::int64_t* periods_;
  std::int64_t* hull_lo_;
  std::int64_t* hull_hi_;
  bool* feasible_;
  bool* overflow_;
  DbmSlab slab_;
};

}  // namespace itdb

#endif  // ITDB_CORE_COLUMNAR_H_
