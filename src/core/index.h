// Indexed execution support for the binary algebra kernels.
//
// The paper costs every binary operation as a full product over tuple pairs
// (Tables 2-3), each pair paying lrp intersection plus a DBM closure.  This
// header factors the machinery that lets Join / Intersect / Subtract visit
// only *candidate* pairs and reject most of those in O(1):
//
//   - DataKeyIndex: a hash partition of a relation's tuples keyed on the
//     values of selected data attributes, so equality on shared data columns
//     is resolved by bucket lookup instead of an inner-loop comparison.
//   - LrpIntersectionEmpty: the gcd residue-class test
//     {c1 + k1 Z} n {c2 + k2 Z} != {}  iff  c1 === c2 (mod gcd(k1, k2)),
//     mirroring exactly the emptiness decisions of Lrp::Intersect but
//     skipping the CRT arithmetic that builds the witness.
//   - TemporalHull: per-column bounding intervals read off a tuple's closed
//     DBM; two tuples whose hulls are disjoint on a shared column cannot
//     produce a feasible conjunction, so the pair is skipped before paying
//     Dbm::Conjoin + closure.
//   - ConjoinOntoClosed: incremental conjunction -- tighten a closed DBM by
//     the other side's constraints one atomic at a time in O(n^2) each
//     (Dbm::TightenAndClose), falling back to the full O(n^3) closure only
//     when bounds approach the overflow guard.
//
// Every fast path here is bit-identical to the naive computation it replaces
// (same tuples, same order, same statuses); the fuzz oracle pins this with an
// indexed-vs-naive axis in its determinism matrix.  KernelCounters reports
// how much work each layer saved.

#ifndef ITDB_CORE_INDEX_H_
#define ITDB_CORE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/dbm.h"
#include "core/lrp.h"
#include "core/relation.h"
#include "core/tuple.h"
#include "core/value.h"
#include "util/status.h"

namespace itdb {

/// Per-operation instrumentation for the indexed kernels.  Fields are
/// atomic so parallel workers can bump them without synchronization; wire
/// an instance through AlgebraOptions::counters to collect.
struct KernelCounters {
  /// Raw pair product a.size() * b.size() the naive kernel would scan.
  std::atomic<std::int64_t> pairs_total{0};
  /// Pairs surviving the data-key partition (what the budget charges).
  std::atomic<std::int64_t> pairs_candidate{0};
  /// Candidate pairs rejected by the gcd residue-class prefilter.
  std::atomic<std::int64_t> pairs_pruned_residue{0};
  /// Candidate pairs rejected by the bounding-interval hull prefilter.
  std::atomic<std::int64_t> pairs_pruned_hull{0};
  /// Conjunctions closed incrementally (O(n^2) per atomic).
  std::atomic<std::int64_t> closures_incremental{0};
  /// Conjunctions that fell back to the full Floyd-Warshall closure.
  std::atomic<std::int64_t> closures_full{0};
  /// Tuples dropped by SimplifyRelation's subsumption sweep.
  std::atomic<std::int64_t> tuples_subsumed{0};

  void Reset();
};

/// Exact O(1) emptiness test for Lrp::Intersect(a, b): true iff the
/// intersection is the empty set.  Mirrors the emptiness decisions of
/// Lrp::Intersect code-path for code-path (singleton membership, gcd
/// residue), which all happen before the CRT witness construction -- so a
/// pair pruned here is exactly a pair the naive kernel would have dropped,
/// never one where Lrp::Intersect would have reported overflow.
bool LrpIntersectionEmpty(const Lrp& a, const Lrp& b);

namespace internal {

/// A by-reference probe key: the values of `*tuple` at data columns `*cols`,
/// hashed in place -- no per-probe key vector is ever materialized.
struct ProbeKey {
  const GeneralizedTuple* tuple;
  const std::vector<int>* cols;
};

struct ValueKeyHash {
  std::size_t operator()(const ProbeKey& key) const;
};

}  // namespace internal

/// A hash partition of a relation's tuples keyed on the Values of selected
/// data columns, stored flat: one CSR row-index array grouped by key plus an
/// open-addressing table of (hash, group) slots.  Building is two passes
/// over the rows with a constant number of allocations -- no per-row node or
/// key-vector allocation, which is what makes the per-operation index build
/// cheap enough for the indexed kernels to win on mid-size inputs.
///
/// Groups list tuple indices in ascending order, so probing a group
/// enumerates exactly the naive inner loop's surviving iterations in the
/// naive order -- the partition changes which pairs are *visited*, never
/// which pairs *match* or in what sequence.  Table iteration order is never
/// observed, so the hash storage cannot leak into results.
///
/// An empty key column list degenerates to a single group holding every
/// tuple (the raw product), so callers need no special case for operations
/// without shared data attributes.  The index borrows `r`; it must not
/// outlive the relation it partitions.
class DataKeyIndex {
 public:
  /// Partitions `r` on the values of `key_cols` (data-column indices).
  DataKeyIndex(const GeneralizedRelation& r, std::vector<int> key_cols);

  /// Indices (ascending) of the tuples matching `probe`'s values at
  /// `probe_cols` (must be the same length as the key); empty when no tuple
  /// matches.  probe_cols[i] is the probe-side data column compared against
  /// key_cols[i].
  std::span<const std::size_t> Candidates(
      const GeneralizedTuple& probe, const std::vector<int>& probe_cols) const;

  /// Sum of group sizes over every tuple of `probe_rel`: the number of
  /// candidate pairs an indexed scan will visit.  Used for budget checks.
  std::int64_t CountCandidatePairs(const GeneralizedRelation& probe_rel,
                                   const std::vector<int>& probe_cols) const;

 private:
  bool KeysEqual(const GeneralizedTuple& probe,
                 const std::vector<int>& probe_cols,
                 std::size_t row) const;

  bool keyed_;  // False when key_cols is empty: one implicit group.
  std::vector<int> key_cols_;
  const GeneralizedRelation* rel_;
  /// Row indices grouped by key; group g occupies
  /// rows_[group_offsets_[g], group_offsets_[g+1]), ascending within.
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> group_offsets_;
  /// Open addressing (linear probing), power-of-two sized: slot s holds a
  /// group id in table_group_[s] (-1 = empty) and its key hash in
  /// table_hash_[s].  Keys compare against the group's first row.
  std::vector<std::uint64_t> table_hash_;
  std::vector<std::int64_t> table_group_;
  std::uint64_t table_mask_ = 0;
};

/// Per-column bounding intervals of a tuple's constraint polyhedron, read
/// off the closed DBM (row / column of the zero node).  `closed` doubles as
/// the cached closed matrix for the incremental-conjoin fast path.
///
/// Soundness of hull pruning: the hull only *relaxes* the DBM, so disjoint
/// hulls on any shared column imply the conjoined system is infeasible over
/// the reals -- exactly the pairs the naive kernel drops after paying for
/// the full closure.  The hull deliberately ignores lrp information: the
/// naive DBM closure never sees lrps either, and pruning on them would drop
/// representation tuples the naive path keeps.
struct TemporalHull {
  /// Set when Close() succeeded on a copy of the tuple's constraints and the
  /// system is feasible; fast paths require it.
  std::optional<Dbm> closed;
  /// The constraints are infeasible over the integers (tuple denotes {}).
  bool infeasible = false;
  /// Whether Close() returned a status error (overflow): no fast path, the
  /// pair must take the naive route to reproduce the error.
  bool close_failed = false;
  /// Inclusive bounds per temporal column; Dbm::kInf / -Dbm::kInf when
  /// unbounded.  Empty unless `closed` is set.
  std::vector<std::int64_t> lo;
  std::vector<std::int64_t> hi;

  static TemporalHull Of(const GeneralizedTuple& t);

  bool usable() const { return closed.has_value(); }
};

/// True when hulls `a` and `b` are provably disjoint on some shared column
/// pair (cols[i] = {column in a's tuple, column in b's tuple}).  Requires
/// both hulls usable; returns false (no pruning) otherwise.
bool HullsDisjoint(const TemporalHull& a, const TemporalHull& b,
                   const std::vector<std::pair<int, int>>& cols);

/// The canonical closure of `closed_base` (closed, feasible) conjoined with
/// `addition` (same variable count, need not be closed).  Bit-identical in
/// matrix, feasibility, and status to
///     Dbm m = Dbm::Conjoin(closed_base, addition); m.Close();
/// but runs each of `addition`'s finite entries through the O(n^2)
/// incremental Dbm::TightenAndClose, re-running the full closure only when
/// the incremental step reports kFallbackNeeded.  May return an infeasible
/// (closed) DBM; callers test feasible().
Result<Dbm> ConjoinOntoClosed(const Dbm& closed_base, const Dbm& addition,
                              KernelCounters* counters);

}  // namespace itdb

#endif  // ITDB_CORE_INDEX_H_
