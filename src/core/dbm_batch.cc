#include "core/dbm_batch.h"

#include <cassert>
#include <vector>

#include "obs/metrics.h"

namespace itdb {

namespace {

constexpr std::int64_t kInf = Dbm::kInf;
constexpr std::int64_t kBoundLimit = Dbm::kBoundLimit;

obs::Counter& CloseBatchCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("dbm.close_batch");
  return *counter;
}

obs::Counter& CloseBatchSystemsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("dbm.close_batch_systems");
  return *counter;
}

}  // namespace

DbmSlab::DbmSlab(Arena* arena, int num_vars, std::int64_t count)
    : num_vars_(num_vars), count_(count), arena_(arena) {
  assert(num_vars >= 0 && count >= 0);
  std::size_t n = static_cast<std::size_t>(num_vars) + 1;
  slab_ = arena->AllocateArray<std::int64_t>(
      n * n * static_cast<std::size_t>(count));
}

void DbmSlab::InitUnconstrained() {
  const int n = nodes();
  const std::size_t cnt = static_cast<std::size_t>(count_);
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      std::int64_t* row =
          slab_ + (static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(q)) *
                      cnt;
      const std::int64_t fill = p == q ? 0 : kInf;
      for (std::size_t t = 0; t < cnt; ++t) row[t] = fill;
    }
  }
}

void DbmSlab::Load(std::int64_t t, const Dbm& d) {
  assert(d.num_vars() == num_vars_);
  const int n = nodes();
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      at(p, q, t) = d.bound_node(p, q);
    }
  }
}

void DbmSlab::CloseAll(bool* feasible, bool* overflow) {
  CloseBatchCounter().Increment();
  CloseBatchSystemsCounter().Add(count_);
  const int n = nodes();
  const std::size_t cnt = static_cast<std::size_t>(count_);
  std::int64_t* pr_snap = arena_->AllocateArray<std::int64_t>(cnt);
  // Floyd-Warshall in lockstep over all systems.  Per system this performs
  // the scalar Dbm::Close() relaxations in the scalar order: the (p, r)
  // operand is snapshotted before each q sweep exactly as the scalar loop
  // hoists it, so even pathological (negative-cycle) systems produce the
  // same matrices entry for entry.
  for (int r = 0; r < n; ++r) {
    for (int p = 0; p < n; ++p) {
      const std::int64_t* pr_row =
          slab_ + (static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(r)) *
                      cnt;
      for (std::size_t t = 0; t < cnt; ++t) pr_snap[t] = pr_row[t];
      for (int q = 0; q < n; ++q) {
        const std::int64_t* rq_row =
            slab_ + (static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(q)) *
                        cnt;
        std::int64_t* pq_row =
            slab_ + (static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(q)) *
                        cnt;
        // The stride-1 min-plus update: this is the loop the vectorizer
        // turns into SIMD compares/adds/blends.
        for (std::size_t t = 0; t < cnt; ++t) {
          const std::int64_t a = pr_snap[t];
          const std::int64_t b = rq_row[t];
          const std::int64_t via = (a == kInf || b == kInf) ? kInf : a + b;
          if (via < pq_row[t]) pq_row[t] = via;
        }
      }
    }
  }
  for (std::size_t t = 0; t < cnt; ++t) {
    feasible[t] = true;
    overflow[t] = false;
  }
  for (int p = 0; p < n; ++p) {
    const std::int64_t* diag =
        slab_ + (static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(p)) *
                    cnt;
    for (std::size_t t = 0; t < cnt; ++t) {
      if (diag[t] < 0) feasible[t] = false;
    }
  }
  // The scalar kernel only polices the bound range on feasible systems.
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      const std::int64_t* row =
          slab_ + (static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(q)) *
                      cnt;
      for (std::size_t t = 0; t < cnt; ++t) {
        if (feasible[t] && row[t] != kInf &&
            (row[t] > kBoundLimit || row[t] < -kBoundLimit)) {
          overflow[t] = true;
        }
      }
    }
  }
}

Dbm DbmSlab::Extract(std::int64_t t) const {
  const int n = nodes();
  std::int64_t local[Dbm::kMaxInlineNodes * Dbm::kMaxInlineNodes];
  std::vector<std::int64_t> heap;
  std::int64_t* entries = local;
  if (n > static_cast<int>(Dbm::kMaxInlineNodes)) {
    heap.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    entries = heap.data();
  }
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      entries[p * n + q] = at(p, q, t);
    }
  }
  return Dbm::FromClosedEntries(num_vars_, entries);
}

void TightenAndCloseBatch(DbmSlab& slab, const AtomicConstraint& c,
                          Dbm::TightenResult* results) {
  const int p = c.lhs + 1;
  const int q = c.rhs + 1;
  const std::int64_t w = c.bound;
  const std::int64_t cnt = slab.count();
  if (p == q) {
    const Dbm::TightenResult r = w < 0 ? Dbm::TightenResult::kFallbackNeeded
                                       : Dbm::TightenResult::kClosed;
    for (std::int64_t t = 0; t < cnt; ++t) results[t] = r;
    return;
  }
  const int n = slab.nodes();
  for (std::int64_t t = 0; t < cnt; ++t) {
    if (w >= slab.at(p, q, t)) {  // Not tighter: already closed.
      results[t] = Dbm::TightenResult::kClosed;
      continue;
    }
    const std::int64_t qp = slab.at(q, p, t);
    if (qp != kInf && static_cast<__int128>(qp) + w < 0) {
      slab.Tighten(p, q, t, w);
      results[t] = Dbm::TightenResult::kInfeasible;
      continue;
    }
    // Detect-before-mutate, exactly like Dbm::TightenAndClose: any improving
    // value outside the safe range leaves the system untouched for the
    // caller's full-closure replay.
    bool fallback = false;
    for (int i = 0; i < n && !fallback; ++i) {
      const std::int64_t ip = slab.at(i, p, t);
      if (ip == kInf) continue;
      for (int j = 0; j < n; ++j) {
        const std::int64_t qj = slab.at(q, j, t);
        if (qj == kInf) continue;
        const __int128 via = static_cast<__int128>(ip) + w + qj;
        if (via < slab.at(i, j, t) &&
            (via > kBoundLimit || via < -kBoundLimit)) {
          fallback = true;
          break;
        }
      }
    }
    if (fallback) {
      results[t] = Dbm::TightenResult::kFallbackNeeded;
      continue;
    }
    // Mutate pass.  The scalar kernel snapshots column p and row q before
    // writing; entry (p, q) itself is both an input (i == p, j == q) and an
    // output, so snapshot here too.
    std::int64_t to_p[Dbm::kMaxInlineNodes];
    std::int64_t from_q[Dbm::kMaxInlineNodes];
    std::vector<std::int64_t> to_p_heap;
    std::vector<std::int64_t> from_q_heap;
    std::int64_t* tp = to_p;
    std::int64_t* fq = from_q;
    if (n > static_cast<int>(Dbm::kMaxInlineNodes)) {
      to_p_heap.resize(static_cast<std::size_t>(n));
      from_q_heap.resize(static_cast<std::size_t>(n));
      tp = to_p_heap.data();
      fq = from_q_heap.data();
    }
    for (int i = 0; i < n; ++i) {
      tp[i] = slab.at(i, p, t);
      fq[i] = slab.at(q, i, t);
    }
    for (int i = 0; i < n; ++i) {
      const std::int64_t ip = tp[i];
      if (ip == kInf) continue;
      for (int j = 0; j < n; ++j) {
        const std::int64_t qj = fq[j];
        if (qj == kInf) continue;
        const __int128 via = static_cast<__int128>(ip) + w + qj;
        if (via < slab.at(i, j, t)) {
          slab.at(i, j, t) = static_cast<std::int64_t>(via);
        }
      }
    }
    results[t] = Dbm::TightenResult::kClosed;
  }
}

}  // namespace itdb
