// Per-relation statistics for cost-based planning (query/planner.h).
//
// A generalized relation's evaluation cost is governed by quantities the
// paper's complexity analysis singles out: how many generalized tuples it
// holds, how many distinct data keys each column carries (join fan-out),
// the lcm of its lrp periods (Lemma 3.1 splits tuples to the common period,
// so the lcm bounds normalization blowup), and the bounding interval of
// each temporal column (disjoint hulls cannot join).  ComputeRelationStats
// reads all of them in one pass; StatsCache memoizes the pass per relation,
// keyed on the catalog version (storage/database.h), so statistics are
// computed lazily and invalidated by any catalog mutation.
//
// Everything here is an ESTIMATE consumed by the planner's cost model --
// never by evaluation itself -- so staleness or imprecision can only change
// plan choice, not results (the planner is bit-identical by construction;
// see query/planner.h).

#ifndef ITDB_CORE_STATS_H_
#define ITDB_CORE_STATS_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/relation.h"

namespace itdb {

/// One relation's planning statistics.  Vector entries are per-column, in
/// schema order (temporal columns index the temporal vectors, data columns
/// the data vectors).
struct RelationStats {
  std::int64_t tuple_count = 0;
  /// Distinct (offset, period) pairs per temporal column: the number of
  /// residue classes a join on that column discriminates between.
  std::vector<std::int64_t> distinct_temporal;
  /// Exact distinct value count per data column (hash-join key cardinality).
  std::vector<std::int64_t> distinct_data;
  /// lcm of all lrp periods > 0 across the relation; 1 when every lrp is a
  /// singleton; nullopt when the lcm overflows int64 ("huge": any plan that
  /// normalizes this relation to a common period should be deferred).
  std::optional<std::int64_t> period_lcm;
  /// Like period_lcm but over EVERY representation tuple, infeasible ones
  /// included.  Complement picks its uniform period from the whole
  /// representation (CommonPeriod ignores feasibility), so certificates
  /// about period structure (analysis/absint.h) must start from this field,
  /// not from the feasible-only estimate above.
  std::optional<std::int64_t> period_lcm_rep;
  /// Certified upper bound on the tuple count after FULL normalization to
  /// each tuple's common period: sum over all tuples of
  /// prod_{columns with period k>0} (L_t / k), where L_t is the lcm of the
  /// tuple's nonzero periods.  This bounds the splitting any Project over
  /// this relation can perform (partial normalization splits no more).
  /// nullopt when the sum or a factor overflows int64.
  std::optional<std::int64_t> normalized_rows;
  /// Inclusive bounding interval per temporal column, folding each tuple's
  /// DBM hull with its singleton lrps; Dbm::kInf / -Dbm::kInf = unbounded.
  /// Empty (alongside hull_hi) when the relation has no tuples.
  std::vector<std::int64_t> hull_lo;
  std::vector<std::int64_t> hull_hi;
  /// The representation is provably empty at the bit level: no tuples, or
  /// every tuple's constraint system is infeasible.  Conservative (a tuple
  /// empty only over the integer lattice does not set it).
  bool bit_empty = false;
};

/// One full scan of `r`.  O(tuples * columns) plus one DBM closure per
/// tuple; never fails (overflowed aggregates degrade to "unknown").
RelationStats ComputeRelationStats(const GeneralizedRelation& r);

/// Human-readable rendering, one `name.field value` line per statistic (the
/// `stats` shell verb's output format).
std::string FormatRelationStats(const std::string& name,
                                const RelationStats& stats);

/// A thread-safe LRU cache of RelationStats keyed (relation name, catalog
/// version).  A lookup whose version differs from the cached one recomputes
/// and replaces the entry -- statistics are lazy and never stale.  Use one
/// cache per Database instance: versions of distinct databases are
/// unrelated.
class StatsCache {
 public:
  explicit StatsCache(std::size_t capacity = 256);

  StatsCache(const StatsCache&) = delete;
  StatsCache& operator=(const StatsCache&) = delete;

  /// The statistics of `relation` (which the caller looked up under `name`)
  /// at catalog version `version`: served from cache when fresh, otherwise
  /// computed and cached.
  RelationStats Get(const std::string& name, std::uint64_t version,
                    const GeneralizedRelation& relation);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  void Clear();

 private:
  using LruList = std::list<std::string>;
  struct Entry {
    std::uint64_t version = 0;
    RelationStats stats;
    LruList::iterator lru_pos;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  LruList lru_;  // Front = most recently used.
  Stats stats_;
};

}  // namespace itdb

#endif  // ITDB_CORE_STATS_H_
