// Residue coalescing: the inverse of Lemma 3.1.
//
// Operations that normalize (complement above all: Appendix A.6 enumerates
// a full k^m residue universe) return relations with many tuples that
// differ only in one column's residue.  When the offsets of such a family
// cover every residue of a coarser period, the family collapses back into
// a single tuple -- Lemma 3.1 read right-to-left:
//
//   { c + k'n, k + c + k'n, ..., (c'-1)k + c + k'n }  ==  { c + kn }.
//
// Coalescing never changes the represented set (the ablation benchmark and
// the property tests check equivalence) and can shrink complement outputs
// by orders of magnitude.

#ifndef ITDB_CORE_COALESCE_H_
#define ITDB_CORE_COALESCE_H_

#include "core/relation.h"
#include "util/status.h"

namespace itdb {

/// Merges residue-class families column by column until a fixpoint.
/// Exact: the result represents the same set with at most as many tuples.
/// `threads` fans the per-tuple canonicalization (constraint closure +
/// signature) out over the thread pool (0 = the ITDB_THREADS / hardware
/// default, 1 = sequential); the result is identical at every thread count.
Result<GeneralizedRelation> CoalesceResidues(const GeneralizedRelation& r,
                                             int threads = 0);

}  // namespace itdb

#endif  // ITDB_CORE_COALESCE_H_
