#include "core/relation.h"

#include <algorithm>

namespace itdb {

std::string ConcreteRow::ToString() const {
  std::string out = "(";
  bool first = true;
  for (std::int64_t t : temporal) {
    if (!first) out += ", ";
    out += std::to_string(t);
    first = false;
  }
  for (const Value& v : data) {
    if (!first) out += ", ";
    out += v.ToString();
    first = false;
  }
  out += ")";
  return out;
}

bool CanonicalTupleLess(const GeneralizedTuple& a, const GeneralizedTuple& b) {
  // Tuples of one relation share a schema, so the arity comparisons only
  // matter for cross-relation use; they keep the order total regardless.
  if (a.temporal_arity() != b.temporal_arity()) {
    return a.temporal_arity() < b.temporal_arity();
  }
  for (int i = 0; i < a.temporal_arity(); ++i) {
    const Lrp& la = a.lrp(i);
    const Lrp& lb = b.lrp(i);
    if (la.offset() != lb.offset()) return la.offset() < lb.offset();
    if (la.period() != lb.period()) return la.period() < lb.period();
  }
  if (a.data_arity() != b.data_arity()) return a.data_arity() < b.data_arity();
  for (int i = 0; i < a.data_arity(); ++i) {
    if (a.value(i) != b.value(i)) return a.value(i) < b.value(i);
  }
  const Dbm& da = a.constraints();
  const Dbm& db = b.constraints();
  if (da.num_vars() != db.num_vars()) return da.num_vars() < db.num_vars();
  const int nodes = da.num_vars() + 1;
  for (int p = 0; p < nodes; ++p) {
    for (int q = 0; q < nodes; ++q) {
      if (da.bound_node(p, q) != db.bound_node(p, q)) {
        return da.bound_node(p, q) < db.bound_node(p, q);
      }
    }
  }
  return false;
}

void GeneralizedRelation::SortTuplesCanonical() {
  std::sort(tuples_.begin(), tuples_.end(), CanonicalTupleLess);
}

Status GeneralizedRelation::AddTuple(GeneralizedTuple t) {
  if (t.temporal_arity() != schema_.temporal_arity() ||
      t.data_arity() != schema_.data_arity()) {
    return Status::InvalidArgument(
        "tuple arity (" + std::to_string(t.temporal_arity()) + " temporal, " +
        std::to_string(t.data_arity()) + " data) does not match schema " +
        schema_.ToString());
  }
  tuples_.push_back(std::move(t));
  return Status::Ok();
}

bool GeneralizedRelation::Contains(const ConcreteRow& row) const {
  for (const GeneralizedTuple& t : tuples_) {
    if (t.data() == row.data && t.ContainsTemporal(row.temporal)) return true;
  }
  return false;
}

std::vector<ConcreteRow> GeneralizedRelation::Enumerate(std::int64_t lo,
                                                        std::int64_t hi) const {
  std::vector<ConcreteRow> out;
  for (const GeneralizedTuple& t : tuples_) {
    for (std::vector<std::int64_t>& point : t.EnumerateTemporal(lo, hi)) {
      out.push_back(ConcreteRow{std::move(point), t.data()});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string GeneralizedRelation::ToString() const {
  std::string out = schema_.ToString() + "\n";
  for (const GeneralizedTuple& t : tuples_) {
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

}  // namespace itdb
