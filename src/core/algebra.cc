#include "core/algebra.h"

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <utility>

#include "core/coalesce.h"
#include "core/columnar.h"
#include "core/index.h"
#include "core/simplify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/numeric.h"
#include "util/thread_pool.h"

namespace itdb {

namespace {

/// Per-operation observability: bumps the central "algebra.<op>" invocation
/// counter and, when a tracer is attached (options.tracer or the installed
/// global one), opens a span in category "algebra" tagged with the input
/// sizes.  The returned span closes (and records wall/CPU time) when it
/// leaves scope.  Pure observer: never touches results.
obs::Span OpSpan(const AlgebraOptions& options, const char* name,
                 const GeneralizedRelation* a,
                 const GeneralizedRelation* b = nullptr) {
  obs::AddGlobalCounter(std::string("algebra.") + name, 1);
  obs::Tracer* tracer = obs::ResolveTracer(options.tracer);
  if (tracer == nullptr) return obs::Span();
  obs::Span span = obs::Span::Begin(tracer, name, "algebra");
  if (a != nullptr) span.AddArg("tuples_in_a", a->size());
  if (b != nullptr) span.AddArg("tuples_in_b", b->size());
  return span;
}

/// Relaxed add on an optional KernelCounters field; safe from any worker
/// thread (the fields are atomic).
void BumpCounter(std::atomic<std::int64_t> KernelCounters::*field,
                 const AlgebraOptions& options, std::int64_t v) {
  if (options.counters != nullptr && v != 0) {
    (options.counters->*field).fetch_add(v, std::memory_order_relaxed);
  }
}

Status CheckSameSchema(const GeneralizedRelation& a,
                       const GeneralizedRelation& b, const char* op) {
  if (a.schema() != b.schema()) {
    return Status::InvalidArgument(std::string(op) +
                                   ": schemas differ: " + a.schema().ToString() +
                                   " vs " + b.schema().ToString());
  }
  return Status::Ok();
}

Status CheckBudget(std::int64_t count, const AlgebraOptions& options,
                   const char* op) {
  if (count > options.max_tuples) {
    return Status::ResourceExhausted(std::string(op) + ": result exceeds " +
                                     std::to_string(options.max_tuples) +
                                     " tuples");
  }
  return Status::Ok();
}

Result<GeneralizedRelation> MaybeSimplify(GeneralizedRelation r,
                                          const AlgebraOptions& options) {
  if (!options.simplify) return r;
  return Simplify(r, SimplifyOptions{options.normalize});
}

/// Closes a copy of the tuple's constraints; returns nullopt when they are
/// infeasible already over the reals (cheap prune -- lattice-exact emptiness
/// is TupleIsEmpty's job).
Result<std::optional<GeneralizedTuple>> PruneByRelaxation(GeneralizedTuple t) {
  Dbm closed = t.constraints();
  ITDB_RETURN_IF_ERROR(closed.Close());
  if (!closed.feasible()) return std::optional<GeneralizedTuple>();
  t.set_constraints(std::move(closed));
  return std::optional<GeneralizedTuple>(std::move(t));
}

/// t1 - t2 for tuples of identical schema (Section 3.3.3 and Figure 1):
///   t1 - t2 = (t1 - t2*) U (not(t2) ^ t1).
/// `c2` is t2's constraints, closed by the caller (Subtract hoists the
/// closure out of the per-t1 loop: it is the same matrix for every t1 of a
/// round).
Result<std::vector<GeneralizedTuple>> SubtractTuples(
    const GeneralizedTuple& t1, const GeneralizedTuple& t2, const Dbm& c2) {
  std::vector<GeneralizedTuple> out;
  if (t1.data() != t2.data()) {
    out.push_back(t1);
    return out;
  }
  int m = t1.temporal_arity();
  // If t2's constraints are already contradictory, t2 is empty.
  if (!c2.feasible()) {
    out.push_back(t1);
    return out;
  }
  // Componentwise intersection of the free extensions t3* = t1* ^ t2*.
  std::vector<Lrp> inter;
  inter.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> x,
                          Lrp::Intersect(t1.lrp(i), t2.lrp(i)));
    if (!x.has_value()) {
      out.push_back(t1);  // Free extensions disjoint: t1 - t2 == t1.
      return out;
    }
    inter.push_back(*x);
  }
  // Part 1: r3 = (t1* - t2*) with t1's constraints.  A point of t1* escapes
  // t3* iff at least one coordinate escapes the intersected lrp.
  for (int i = 0; i < m; ++i) {
    ITDB_ASSIGN_OR_RETURN(LrpDifference diff,
                          Lrp::Subtract(t1.lrp(i), inter[static_cast<std::size_t>(i)]));
    for (const Lrp& part : diff.parts) {
      std::vector<Lrp> lrps = t1.temporal();
      lrps[static_cast<std::size_t>(i)] = part;
      GeneralizedTuple t(std::move(lrps), t1.data());
      t.set_constraints(t1.constraints());
      ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> pruned,
                            PruneByRelaxation(std::move(t)));
      if (pruned.has_value()) out.push_back(std::move(*pruned));
    }
    if (diff.punctured.has_value()) {
      // Removing the single point p from an infinite lrp: representable with
      // bound constraints (X_i <= p-1) / (X_i >= p+1).
      const std::int64_t p = diff.punctured->point;
      for (int side = 0; side < 2; ++side) {
        std::vector<Lrp> lrps = t1.temporal();
        lrps[static_cast<std::size_t>(i)] = diff.punctured->base;
        GeneralizedTuple t(std::move(lrps), t1.data());
        Dbm c = t1.constraints();
        if (side == 0) {
          ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedSub(p, 1));
          c.AddUpperBound(i, b);
        } else {
          ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedAdd(p, 1));
          c.AddLowerBound(i, b);
        }
        t.set_constraints(std::move(c));
        ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> pruned,
                              PruneByRelaxation(std::move(t)));
        if (pruned.has_value()) out.push_back(std::move(*pruned));
      }
    }
  }
  // Part 2: r4 = not(t2) ^ t1: points on t3* that satisfy t1's constraints
  // but violate at least one of t2's.  One tuple per negated atomic
  // constraint (the paper's disjunction splitting).
  for (const AtomicConstraint& a : c2.MinimalAtomics()) {
    GeneralizedTuple t(inter, t1.data());
    Dbm c = t1.constraints();
    c.AddAtomic(a.Negated());
    t.set_constraints(std::move(c));
    ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> pruned,
                          PruneByRelaxation(std::move(t)));
    if (pruned.has_value()) out.push_back(std::move(*pruned));
  }
  return out;
}

}  // namespace

Result<GeneralizedRelation> Union(const GeneralizedRelation& a,
                                  const GeneralizedRelation& b,
                                  const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "Union", &a, &b);
  ITDB_RETURN_IF_ERROR(CheckSameSchema(a, b, "Union"));
  ITDB_RETURN_IF_ERROR(
      CheckBudget(static_cast<std::int64_t>(a.size()) + b.size(), options,
                  "Union"));
  GeneralizedRelation out(a.schema());
  for (const GeneralizedTuple& t : a.tuples()) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(t));
  }
  for (const GeneralizedTuple& t : b.tuples()) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(t));
  }
  return MaybeSimplify(std::move(out), options);
}

namespace {

/// The single period shared by every lrp of the relation, or 0 when the
/// relation mixes periods or has singleton columns (no uniform lattice).
std::int64_t UniformPeriod(const GeneralizedRelation& r) {
  std::int64_t k = 0;
  for (const GeneralizedTuple& t : r.tuples()) {
    for (const Lrp& l : t.temporal()) {
      if (l.period() == 0) return 0;
      if (k == 0) {
        k = l.period();
      } else if (k != l.period()) {
        return 0;
      }
    }
  }
  return k;
}

/// Appendix A.3 fast path: with one uniform period on both sides, two
/// tuples intersect only when their residue vectors are identical, so a
/// hash join on the offsets replaces the N^2 pair scan.
Result<GeneralizedRelation> IntersectByIndex(const GeneralizedRelation& a,
                                             const GeneralizedRelation& b,
                                             const AlgebraOptions& options) {
  std::map<std::vector<std::int64_t>, std::vector<std::size_t>> index;
  for (std::size_t j = 0; j < b.tuples().size(); ++j) {
    const GeneralizedTuple& tb = b.tuples()[j];
    std::vector<std::int64_t> key;
    key.reserve(tb.temporal().size());
    for (const Lrp& l : tb.temporal()) key.push_back(l.offset());
    index[std::move(key)].push_back(j);
  }
  GeneralizedRelation out(a.schema());
  for (const GeneralizedTuple& ta : a.tuples()) {
    std::vector<std::int64_t> key;
    key.reserve(ta.temporal().size());
    for (const Lrp& l : ta.temporal()) key.push_back(l.offset());
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (std::size_t j : it->second) {
      ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> t,
                            GeneralizedTuple::Intersect(ta, b.tuples()[j]));
      if (t.has_value()) ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(*t)));
      ITDB_RETURN_IF_ERROR(CheckBudget(out.size(), options, "Intersect"));
    }
  }
  return MaybeSimplify(std::move(out), options);
}

/// Indexed pair scan (core/index.h): partition b on all data columns, then
/// reject candidate pairs with the O(1) residue and hull prefilters before
/// paying lrp intersection + conjunction, and close the conjunction
/// incrementally from ta's cached closed matrix.  Bit-identical to the
/// naive double loop: buckets enumerate exactly the pairs whose data values
/// match, in the naive order; prefilter-rejected pairs are exactly those
/// GeneralizedTuple::Intersect maps to nullopt; and the incremental
/// conjunction reproduces the naive closure's matrix and status.
Result<GeneralizedRelation> IntersectIndexed(const GeneralizedRelation& a,
                                             const GeneralizedRelation& b,
                                             const AlgebraOptions& options) {
  const int m = a.schema().temporal_arity();
  std::vector<int> key_cols(static_cast<std::size_t>(a.schema().data_arity()));
  for (std::size_t i = 0; i < key_cols.size(); ++i) {
    key_cols[i] = static_cast<int>(i);
  }
  DataKeyIndex index(b, key_cols);
  // One probe pass (see JoinIndexed): the candidate spans feed the budget
  // count, the touched-row discovery, and the pair scan.
  std::vector<std::span<const std::size_t>> a_buckets(a.tuples().size());
  std::int64_t candidates = 0;
  for (std::size_t i = 0; i < a.tuples().size(); ++i) {
    a_buckets[i] = index.Candidates(a.tuples()[i], key_cols);
    candidates += static_cast<std::int64_t>(a_buckets[i].size());
  }
  BumpCounter(&KernelCounters::pairs_total, options,
              static_cast<std::int64_t>(a.size()) * b.size());
  BumpCounter(&KernelCounters::pairs_candidate, options, candidates);
  ITDB_RETURN_IF_ERROR(CheckBudget(candidates, options, "Intersect"));
  std::vector<std::int64_t> slot(b.tuples().size(), -1);
  std::vector<TemporalHull> hull_b;
  if (options.use_columnar) {
    // Hoist hulls only for the b rows some bucket reaches, closing their
    // constraint systems on one batched slab (core/columnar.h).
    std::vector<std::size_t> touched;
    for (std::span<const std::size_t> bucket : a_buckets) {
      for (std::size_t j : bucket) {
        if (slot[j] < 0) {
          slot[j] = static_cast<std::int64_t>(touched.size());
          touched.push_back(j);
        }
      }
    }
    Arena arena;
    ColumnarRelation cb_cols(b, touched, &arena);
    hull_b.reserve(touched.size());
    for (std::size_t s = 0; s < touched.size(); ++s) {
      hull_b.push_back(cb_cols.Hull(static_cast<std::int64_t>(s)));
    }
  } else {
    hull_b.reserve(b.tuples().size());
    for (std::size_t j = 0; j < b.tuples().size(); ++j) {
      slot[j] = static_cast<std::int64_t>(j);
      hull_b.push_back(TemporalHull::Of(b.tuples()[j]));
    }
  }
  std::vector<std::pair<int, int>> hull_cols;
  hull_cols.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) hull_cols.emplace_back(i, i);
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> tuples,
      ParallelAppend<GeneralizedTuple>(
          static_cast<std::int64_t>(a.size()),
          ParallelOptions{options.threads, /*grain=*/16},
          [&](std::int64_t i, std::vector<GeneralizedTuple>& row) -> Status {
            const GeneralizedTuple& ta =
                a.tuples()[static_cast<std::size_t>(i)];
            const std::span<const std::size_t> bucket =
                a_buckets[static_cast<std::size_t>(i)];
            if (bucket.empty()) return Status::Ok();
            TemporalHull ha = TemporalHull::Of(ta);
            for (std::size_t j : bucket) {
              const GeneralizedTuple& tb = b.tuples()[j];
              bool residue_empty = false;
              for (int col = 0; col < m; ++col) {
                if (LrpIntersectionEmpty(ta.lrp(col), tb.lrp(col))) {
                  residue_empty = true;
                  break;
                }
              }
              if (residue_empty) {
                BumpCounter(&KernelCounters::pairs_pruned_residue, options, 1);
                continue;
              }
              const TemporalHull& hb =
                  hull_b[static_cast<std::size_t>(slot[j])];
              if (ha.infeasible || hb.infeasible ||
                  HullsDisjoint(ha, hb, hull_cols)) {
                BumpCounter(&KernelCounters::pairs_pruned_hull, options, 1);
                continue;
              }
              if (!ha.usable() || !hb.usable()) {
                // A tuple's own closure overflowed: take the naive pair
                // kernel so any status it reports is reproduced exactly.
                ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> t,
                                      GeneralizedTuple::Intersect(ta, tb));
                if (t.has_value()) row.push_back(std::move(*t));
                continue;
              }
              std::vector<Lrp> lrps;
              lrps.reserve(static_cast<std::size_t>(m));
              bool empty = false;
              for (int col = 0; col < m && !empty; ++col) {
                ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> x,
                                      Lrp::Intersect(ta.lrp(col), tb.lrp(col)));
                if (!x.has_value()) {
                  empty = true;  // Unreachable after the residue prefilter.
                  break;
                }
                lrps.push_back(*x);
              }
              if (empty) continue;
              ITDB_ASSIGN_OR_RETURN(
                  Dbm merged, ConjoinOntoClosed(*ha.closed, tb.constraints(),
                                                options.counters));
              if (!merged.feasible()) continue;
              GeneralizedTuple t(std::move(lrps), ta.data());
              t.set_constraints(std::move(merged));
              row.push_back(std::move(t));
            }
            return Status::Ok();
          }));
  GeneralizedRelation out(a.schema());
  for (GeneralizedTuple& t : tuples) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  return MaybeSimplify(std::move(out), options);
}

}  // namespace

Result<GeneralizedRelation> Intersect(const GeneralizedRelation& a,
                                      const GeneralizedRelation& b,
                                      const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "Intersect", &a, &b);
  ITDB_RETURN_IF_ERROR(CheckSameSchema(a, b, "Intersect"));
  if (options.use_intersection_index && a.schema().temporal_arity() > 0) {
    std::int64_t ka = UniformPeriod(a);
    if (ka != 0 && ka == UniformPeriod(b)) {
      return IntersectByIndex(a, b, options);
    }
  }
  if (options.use_index) return IntersectIndexed(a, b, options);
  ITDB_RETURN_IF_ERROR(
      CheckBudget(static_cast<std::int64_t>(a.size()) * b.size(), options,
                  "Intersect"));
  // Pair intersections are independent; fan the rows of `a` out over the
  // thread pool.  Per-row buffers merge in row order, so the tuple sequence
  // matches the sequential double loop exactly.
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> tuples,
      ParallelAppend<GeneralizedTuple>(
          static_cast<std::int64_t>(a.size()),
          ParallelOptions{options.threads, /*grain=*/16},
          [&](std::int64_t i, std::vector<GeneralizedTuple>& row) -> Status {
            const GeneralizedTuple& ta =
                a.tuples()[static_cast<std::size_t>(i)];
            for (const GeneralizedTuple& tb : b.tuples()) {
              ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> t,
                                    GeneralizedTuple::Intersect(ta, tb));
              if (t.has_value()) row.push_back(std::move(*t));
            }
            return Status::Ok();
          }));
  GeneralizedRelation out(a.schema());
  for (GeneralizedTuple& t : tuples) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  return MaybeSimplify(std::move(out), options);
}

Result<GeneralizedRelation> Subtract(const GeneralizedRelation& a,
                                     const GeneralizedRelation& b,
                                     const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "Subtract", &a, &b);
  ITDB_RETURN_IF_ERROR(CheckSameSchema(a, b, "Subtract"));
  std::vector<GeneralizedTuple> current = a.tuples();
  const int m = a.schema().temporal_arity();
  // Round skipping: every tuple SubtractTuples emits inherits t1's data
  // values, so the data keys of `current` never change across rounds.  A
  // key probe of t2 against the partition of the original `a` therefore
  // decides in O(log n) whether the whole round is the identity.
  const bool skip_rounds = options.use_index && a.schema().data_arity() > 0;
  std::vector<int> key_cols(static_cast<std::size_t>(a.schema().data_arity()));
  for (std::size_t i = 0; i < key_cols.size(); ++i) {
    key_cols[i] = static_cast<int>(i);
  }
  std::optional<DataKeyIndex> index;
  if (skip_rounds) index.emplace(a, key_cols);
  for (const GeneralizedTuple& t2 : b.tuples()) {
    if (current.empty()) break;
    BumpCounter(&KernelCounters::pairs_total, options,
                static_cast<std::int64_t>(current.size()));
    // When no residue shares t2's data values the round maps every t1 to
    // {t1}: skip it (keeping the old per-round budget check).  Decided by
    // index probe when available, by linear scan otherwise -- either way
    // this mirrors SubtractTuples' data-mismatch early exit, which also
    // never looks at t2's constraints.
    bool any_match = true;
    if (skip_rounds && index->Candidates(t2, key_cols).empty()) {
      // The partition covers the original `a`, a superset of the surviving
      // residues: an empty bucket proves no survivor matches either.
      any_match = false;
    } else if (a.schema().data_arity() > 0) {
      any_match = std::any_of(
          current.begin(), current.end(),
          [&t2](const GeneralizedTuple& t1) { return t1.data() == t2.data(); });
    }
    if (!any_match) {
      ITDB_RETURN_IF_ERROR(
          CheckBudget(static_cast<std::int64_t>(current.size()), options,
                      "Subtract"));
      continue;
    }
    BumpCounter(&KernelCounters::pairs_candidate, options,
                static_cast<std::int64_t>(current.size()));
    // The closure of t2's constraints is the same matrix for every t1:
    // hoist it out of the per-residue loop.
    Dbm c2 = t2.constraints();
    ITDB_RETURN_IF_ERROR(c2.Close());
    // One round subtracts t2 from every residue independently; the round's
    // outputs merge in residue order.  The budget is checked on the merged
    // round: round sizes only grow as residues accumulate, so this trips
    // exactly when the sequential per-residue prefix check would.
    ITDB_ASSIGN_OR_RETURN(
        std::vector<std::vector<GeneralizedTuple>> rounds,
        ParallelAppend<std::vector<GeneralizedTuple>>(
            static_cast<std::int64_t>(current.size()),
            ParallelOptions{options.threads, /*grain=*/16},
            [&](std::int64_t i, std::vector<std::vector<GeneralizedTuple>>&
                                    out_parts) -> Status {
              const GeneralizedTuple& t1 =
                  current[static_cast<std::size_t>(i)];
              if (options.use_index && t1.data() == t2.data() &&
                  c2.feasible()) {
                // Residue prefilter: a disjoint shared column means the free
                // extensions miss each other, so t1 - t2 == t1 -- exactly
                // SubtractTuples' first-empty-column early exit.
                for (int col = 0; col < m; ++col) {
                  if (LrpIntersectionEmpty(t1.lrp(col), t2.lrp(col))) {
                    BumpCounter(&KernelCounters::pairs_pruned_residue,
                                options, 1);
                    out_parts.push_back({t1});
                    return Status::Ok();
                  }
                }
              }
              ITDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> parts,
                                    SubtractTuples(t1, t2, c2));
              out_parts.push_back(std::move(parts));
              return Status::Ok();
            }));
    std::vector<GeneralizedTuple> next;
    for (std::vector<GeneralizedTuple>& parts : rounds) {
      for (GeneralizedTuple& p : parts) next.push_back(std::move(p));
    }
    ITDB_RETURN_IF_ERROR(
        CheckBudget(static_cast<std::int64_t>(next.size()), options,
                    "Subtract"));
    current = std::move(next);
    if (current.empty()) break;
  }
  GeneralizedRelation out(a.schema());
  for (GeneralizedTuple& t : current) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  return MaybeSimplify(std::move(out), options);
}

namespace {

/// Incremental-DNF complement of the constraint sets sharing one free
/// extension (Appendix A.6): starts from the unconstrained system and
/// conjoins, one input tuple at a time, the disjunction of its negated
/// atomics, reducing after each step (closure + infeasibility pruning +
/// exact-duplicate and subsumption elimination).  This keeps intermediate
/// sizes within the paper's (N+1)^{m(m+1)} bound instead of (m(m+1))^N.
Result<std::vector<Dbm>> ComplementConstraintSets(
    int num_vars, const std::vector<Dbm>& constraint_sets,
    const AlgebraOptions& options) {
  std::vector<Dbm> current;
  current.push_back(Dbm(num_vars));  // Unconstrained; trivially closed.
  for (const Dbm& c : constraint_sets) {
    std::vector<AtomicConstraint> atoms = c.MinimalAtomics();
    if (atoms.empty()) return std::vector<Dbm>{};  // not(true) == false.
    std::vector<Dbm> next;
    for (const Dbm& s : current) {
      for (const AtomicConstraint& a : atoms) {
        // Every system in `current` is closed and feasible, so one negated
        // atomic can be folded in with the O(n^2) incremental closure.
        Dbm d = s;
        if (options.use_index) {
          Dbm::TightenResult tr = d.TightenAndClose(a.Negated());
          if (tr == Dbm::TightenResult::kFallbackNeeded) {
            BumpCounter(&KernelCounters::closures_full, options, 1);
            d.AddAtomic(a.Negated());
            ITDB_RETURN_IF_ERROR(d.Close());
          } else {
            BumpCounter(&KernelCounters::closures_incremental, options, 1);
          }
        } else {
          d.AddAtomic(a.Negated());
          ITDB_RETURN_IF_ERROR(d.Close());
        }
        if (!d.feasible()) continue;
        // Reduction: drop d if subsumed by a kept system; drop kept systems
        // subsumed by d.
        bool subsumed = false;
        for (std::size_t i = 0; i < next.size(); ++i) {
          if (d.Implies(next[i])) {
            subsumed = true;
            break;
          }
        }
        if (subsumed) continue;
        std::erase_if(next, [&d](const Dbm& e) { return e.Implies(d); });
        next.push_back(std::move(d));
        ITDB_RETURN_IF_ERROR(
            CheckBudget(static_cast<std::int64_t>(next.size()), options,
                        "Complement (DNF)"));
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace

Result<GeneralizedRelation> Complement(const GeneralizedRelation& r,
                                       const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "Complement", &r);
  if (r.schema().data_arity() != 0) {
    return Status::InvalidArgument(
        "Complement requires a purely temporal relation; use "
        "ComplementWithDataDomains");
  }
  const int m = r.schema().temporal_arity();
  ITDB_ASSIGN_OR_RETURN(std::int64_t k, CommonPeriod(r));
  // Universe budget: k^m residue vectors.
  __int128 universe = 1;
  for (int i = 0; i < m; ++i) {
    universe *= static_cast<__int128>(k);
    if (universe > static_cast<__int128>(options.max_complement_universe)) {
      return Status::ResourceExhausted(
          "Complement: residue universe k^m = " + std::to_string(k) + "^" +
          std::to_string(m) + " exceeds budget");
    }
  }
  // Normalize every tuple to period k and turn constant columns into full
  // residue classes pinned by an equality constraint, so that every tuple's
  // free extension is a plain residue vector.
  std::map<std::vector<std::int64_t>, std::vector<Dbm>> groups;
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_ASSIGN_OR_RETURN(
        std::vector<GeneralizedTuple> normal,
        CachedNormalizeTupleToPeriod(options.normalize_cache, t, k,
                                     options.normalize));
    for (GeneralizedTuple& nt : normal) {
      std::vector<std::int64_t> residues(static_cast<std::size_t>(m));
      Dbm constraints = nt.constraints();
      for (int i = 0; i < m; ++i) {
        const Lrp& l = nt.lrp(i);
        if (l.period() == 0) {
          residues[static_cast<std::size_t>(i)] = FloorMod(l.offset(), k);
          constraints.AddEquality(i, l.offset());
        } else {
          residues[static_cast<std::size_t>(i)] = l.offset();
        }
      }
      ITDB_RETURN_IF_ERROR(constraints.Close());
      if (!constraints.feasible()) continue;
      groups[std::move(residues)].push_back(std::move(constraints));
    }
  }
  // Enumerate the k^m universe.  Residue vectors are decoded from a linear
  // index in base k with the LAST column least significant -- the sequential
  // odometer order -- so the index-ordered merge reproduces it exactly.
  // Each residue class is complemented independently (groups is only read);
  // the tuple budget is checked on the merged result, which trips exactly
  // when the sequential running check would (the count only grows).
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> tuples,
      ParallelAppend<GeneralizedTuple>(
          static_cast<std::int64_t>(universe),
          ParallelOptions{options.threads, /*grain=*/16},
          [&](std::int64_t index, std::vector<GeneralizedTuple>& part)
              -> Status {
            std::vector<std::int64_t> rv(static_cast<std::size_t>(m), 0);
            std::int64_t rest = index;
            for (int i = m - 1; i >= 0; --i) {
              rv[static_cast<std::size_t>(i)] = rest % k;
              rest /= k;
            }
            std::vector<Lrp> lrps;
            lrps.reserve(static_cast<std::size_t>(m));
            for (int i = 0; i < m; ++i) {
              lrps.push_back(Lrp::Make(rv[static_cast<std::size_t>(i)], k));
            }
            auto it = groups.find(rv);
            if (it == groups.end()) {
              part.push_back(GeneralizedTuple(std::move(lrps)));
              return Status::Ok();
            }
            ITDB_ASSIGN_OR_RETURN(
                std::vector<Dbm> systems,
                ComplementConstraintSets(m, it->second, options));
            for (Dbm& s : systems) {
              GeneralizedTuple t(lrps);
              t.set_constraints(std::move(s));
              part.push_back(std::move(t));
            }
            return Status::Ok();
          }));
  ITDB_RETURN_IF_ERROR(
      CheckBudget(static_cast<std::int64_t>(tuples.size()), options,
                  "Complement"));
  GeneralizedRelation out(r.schema());
  for (GeneralizedTuple& t : tuples) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  if (options.coalesce) return CoalesceResidues(out, options.threads);
  return out;
}

Result<GeneralizedRelation> ComplementWithDataDomains(
    const GeneralizedRelation& r,
    const std::vector<std::vector<Value>>& domains,
    const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "ComplementWithDataDomains", &r);
  const int l = r.schema().data_arity();
  if (static_cast<int>(domains.size()) != l) {
    return Status::InvalidArgument(
        "ComplementWithDataDomains: need one domain per data column");
  }
  if (l == 0) return Complement(r, options);
  for (const std::vector<Value>& d : domains) {
    if (d.empty()) {
      // Empty domain: the universe itself is empty.
      return GeneralizedRelation(r.schema());
    }
  }
  Schema temporal_schema(r.schema().temporal_names(), {}, {});
  GeneralizedRelation out(r.schema());
  // Enumerate every data-value combination of the domain product.
  std::vector<std::size_t> idx(static_cast<std::size_t>(l), 0);
  while (true) {
    std::vector<Value> combo;
    combo.reserve(static_cast<std::size_t>(l));
    for (int i = 0; i < l; ++i) {
      combo.push_back(
          domains[static_cast<std::size_t>(i)][idx[static_cast<std::size_t>(i)]]);
    }
    // Temporal slice of r at this data combination.
    GeneralizedRelation slice(temporal_schema);
    for (const GeneralizedTuple& t : r.tuples()) {
      if (t.data() != combo) continue;
      GeneralizedTuple bare(t.temporal());
      bare.set_constraints(t.constraints());
      ITDB_RETURN_IF_ERROR(slice.AddTuple(std::move(bare)));
    }
    ITDB_ASSIGN_OR_RETURN(GeneralizedRelation comp,
                          Complement(slice, options));
    for (const GeneralizedTuple& t : comp.tuples()) {
      GeneralizedTuple full(t.temporal(), combo);
      full.set_constraints(t.constraints());
      ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(full)));
    }
    ITDB_RETURN_IF_ERROR(
        CheckBudget(static_cast<std::int64_t>(out.size()), options,
                    "ComplementWithDataDomains"));
    int d = l - 1;
    while (d >= 0) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++idx[ud] < domains[ud].size()) break;
      idx[ud] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return out;
}

namespace {

/// Full-normalization projection of one tuple (Section 3.4 verbatim):
/// normalize every column to the common period, eliminate the dropped ones
/// in n-space, rebuild in the requested order.
Result<std::vector<GeneralizedTuple>> ProjectTupleFull(
    const GeneralizedTuple& t, const std::vector<int>& keep_temporal,
    const std::vector<bool>& kept, std::vector<Value> data,
    const AlgebraOptions& options) {
  std::vector<GeneralizedTuple> out;
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> normal,
      CachedNormalizeTuple(options.normalize_cache, t, options.normalize));
  for (const GeneralizedTuple& nt : normal) {
    ITDB_ASSIGN_OR_RETURN(NSpaceTuple ns, NSpaceTuple::Build(nt));
    if (!ns.feasible()) continue;
    for (int c = 0; c < t.temporal_arity(); ++c) {
      if (!kept[static_cast<std::size_t>(c)]) {
        ITDB_RETURN_IF_ERROR(ns.EliminateColumn(c));
      }
    }
    ITDB_ASSIGN_OR_RETURN(GeneralizedTuple projected,
                          ns.Rebuild(keep_temporal, data));
    out.push_back(std::move(projected));
  }
  return out;
}

/// Partial-normalization projection (the optimization suggested at the end
/// of Section 3.4): only the connected component of the dropped columns in
/// the constraint graph is normalized and projected; every other column --
/// lrp and constraints -- passes through untouched.
Result<std::vector<GeneralizedTuple>> ProjectTuplePartial(
    const GeneralizedTuple& t, const std::vector<int>& keep_temporal,
    const std::vector<bool>& kept, const std::vector<Value>& data,
    const AlgebraOptions& options) {
  const int m = t.temporal_arity();
  // Connected component of the dropped columns under two-variable
  // constraint edges (unary bounds do not connect columns).
  std::vector<AtomicConstraint> atomics = t.constraints().ToAtomics();
  std::vector<bool> in_comp(static_cast<std::size_t>(m), false);
  std::vector<int> frontier;
  for (int c = 0; c < m; ++c) {
    if (!kept[static_cast<std::size_t>(c)]) {
      in_comp[static_cast<std::size_t>(c)] = true;
      frontier.push_back(c);
    }
  }
  while (!frontier.empty()) {
    int c = frontier.back();
    frontier.pop_back();
    for (const AtomicConstraint& a : atomics) {
      if (a.lhs == kZeroVar || a.rhs == kZeroVar) continue;
      int other = -1;
      if (a.lhs == c) other = a.rhs;
      if (a.rhs == c) other = a.lhs;
      if (other >= 0 && !in_comp[static_cast<std::size_t>(other)]) {
        in_comp[static_cast<std::size_t>(other)] = true;
        frontier.push_back(other);
      }
    }
  }
  // Build the component subtuple: component columns in original order.
  std::vector<int> comp_cols;
  std::vector<int> sub_index(static_cast<std::size_t>(m), -1);
  for (int c = 0; c < m; ++c) {
    if (in_comp[static_cast<std::size_t>(c)]) {
      sub_index[static_cast<std::size_t>(c)] = static_cast<int>(comp_cols.size());
      comp_cols.push_back(c);
    }
  }
  std::vector<Lrp> sub_lrps;
  sub_lrps.reserve(comp_cols.size());
  for (int c : comp_cols) sub_lrps.push_back(t.lrp(c));
  GeneralizedTuple sub(std::move(sub_lrps));
  for (const AtomicConstraint& a : atomics) {
    // By construction there are no two-variable edges crossing the
    // component boundary; atomics belong to the subtuple iff any endpoint
    // lies inside.
    bool lhs_in = a.lhs != kZeroVar && in_comp[static_cast<std::size_t>(a.lhs)];
    bool rhs_in = a.rhs != kZeroVar && in_comp[static_cast<std::size_t>(a.rhs)];
    if (!lhs_in && !rhs_in) continue;
    AtomicConstraint mapped = a;
    if (a.lhs != kZeroVar) mapped.lhs = sub_index[static_cast<std::size_t>(a.lhs)];
    if (a.rhs != kZeroVar) mapped.rhs = sub_index[static_cast<std::size_t>(a.rhs)];
    sub.mutable_constraints().AddAtomic(mapped);
  }
  // Project the subtuple with full normalization (kept component columns in
  // original order).
  std::vector<int> sub_keep;
  std::vector<bool> sub_kept(comp_cols.size(), false);
  for (std::size_t i = 0; i < comp_cols.size(); ++i) {
    if (kept[static_cast<std::size_t>(comp_cols[i])]) {
      sub_keep.push_back(static_cast<int>(i));
      sub_kept[i] = true;
    }
  }
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> sub_results,
      ProjectTupleFull(sub, sub_keep, sub_kept, {}, options));
  // Where does each original kept column land in the output order?
  std::vector<int> out_pos(static_cast<std::size_t>(m), -1);
  for (std::size_t pos = 0; pos < keep_temporal.size(); ++pos) {
    out_pos[static_cast<std::size_t>(keep_temporal[pos])] =
        static_cast<int>(pos);
  }
  // And which output position holds each sub-result column?
  std::vector<int> sub_out(sub_keep.size());
  for (std::size_t i = 0; i < sub_keep.size(); ++i) {
    sub_out[i] =
        out_pos[static_cast<std::size_t>(comp_cols[static_cast<std::size_t>(
            sub_keep[i])])];
  }
  const int n_out = static_cast<int>(keep_temporal.size());
  std::vector<GeneralizedTuple> out;
  for (const GeneralizedTuple& sr : sub_results) {
    std::vector<Lrp> lrps(static_cast<std::size_t>(n_out));
    for (int pos = 0; pos < n_out; ++pos) {
      int col = keep_temporal[static_cast<std::size_t>(pos)];
      if (!in_comp[static_cast<std::size_t>(col)]) {
        lrps[static_cast<std::size_t>(pos)] = t.lrp(col);
      }
    }
    for (std::size_t i = 0; i < sub_out.size(); ++i) {
      lrps[static_cast<std::size_t>(sub_out[i])] = sr.lrp(static_cast<int>(i));
    }
    GeneralizedTuple assembled(std::move(lrps), data);
    Dbm constraints(n_out);
    // Untouched constraints between kept non-component columns.
    for (const AtomicConstraint& a : atomics) {
      bool lhs_in =
          a.lhs != kZeroVar && in_comp[static_cast<std::size_t>(a.lhs)];
      bool rhs_in =
          a.rhs != kZeroVar && in_comp[static_cast<std::size_t>(a.rhs)];
      if (lhs_in || rhs_in) continue;
      AtomicConstraint mapped = a;
      if (a.lhs != kZeroVar) mapped.lhs = out_pos[static_cast<std::size_t>(a.lhs)];
      if (a.rhs != kZeroVar) mapped.rhs = out_pos[static_cast<std::size_t>(a.rhs)];
      constraints.AddAtomic(mapped);
    }
    // Component constraints from the projected subtuple.
    for (const AtomicConstraint& a : sr.constraints().ToAtomics()) {
      AtomicConstraint mapped = a;
      if (a.lhs != kZeroVar) mapped.lhs = sub_out[static_cast<std::size_t>(a.lhs)];
      if (a.rhs != kZeroVar) mapped.rhs = sub_out[static_cast<std::size_t>(a.rhs)];
      constraints.AddAtomic(mapped);
    }
    assembled.set_constraints(std::move(constraints));
    out.push_back(std::move(assembled));
  }
  return out;
}

}  // namespace

Result<GeneralizedRelation> Project(const GeneralizedRelation& r,
                                    const std::vector<std::string>& attrs,
                                    const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "Project", &r);
  // Split the request into kept temporal and kept data attributes,
  // preserving the requested relative order within each kind.
  std::vector<int> keep_temporal;
  std::vector<int> keep_data;
  std::vector<std::string> temporal_names;
  std::vector<std::string> data_names;
  std::vector<DataType> data_types;
  for (const std::string& name : attrs) {
    if (std::optional<int> t = r.schema().FindTemporal(name)) {
      keep_temporal.push_back(*t);
      temporal_names.push_back(name);
    } else if (std::optional<int> d = r.schema().FindData(name)) {
      keep_data.push_back(*d);
      data_names.push_back(name);
      data_types.push_back(r.schema().data_type(*d));
    } else {
      return Status::NotFound("Project: unknown attribute \"" + name + "\"");
    }
  }
  Schema schema(temporal_names, data_names, data_types);
  GeneralizedRelation out(schema);
  std::vector<bool> kept(static_cast<std::size_t>(r.schema().temporal_arity()),
                         false);
  for (int c : keep_temporal) kept[static_cast<std::size_t>(c)] = true;
  for (const GeneralizedTuple& t : r.tuples()) {
    std::vector<Value> data;
    data.reserve(keep_data.size());
    for (int d : keep_data) data.push_back(t.value(d));
    ITDB_ASSIGN_OR_RETURN(
        std::vector<GeneralizedTuple> projected,
        options.partial_normalization
            ? ProjectTuplePartial(t, keep_temporal, kept, data, options)
            : ProjectTupleFull(t, keep_temporal, kept, std::move(data),
                               options));
    for (GeneralizedTuple& p : projected) {
      ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(p)));
    }
    ITDB_RETURN_IF_ERROR(
        CheckBudget(static_cast<std::int64_t>(out.size()), options,
                    "Project"));
  }
  return MaybeSimplify(std::move(out), options);
}

Result<GeneralizedRelation> SelectTemporal(const GeneralizedRelation& r,
                                           const TemporalCondition& cond,
                                           const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "SelectTemporal", &r);
  const int m = r.schema().temporal_arity();
  auto check_col = [m](int c) {
    return c == kZeroVar || (c >= 0 && c < m);
  };
  if (!check_col(cond.lhs) || !check_col(cond.rhs) || cond.lhs == kZeroVar) {
    return Status::InvalidArgument("SelectTemporal: bad column indices");
  }
  if (cond.lhs == cond.rhs) {
    return Status::InvalidArgument(
        "SelectTemporal: identical columns on both sides");
  }
  // Compile the condition into one or two (for kNe) branches of atomic
  // constraint lists.  X(lhs) op X(rhs) + c, with X(kZeroVar) == 0.
  std::vector<std::vector<AtomicConstraint>> branches;
  auto upper = [&cond](std::int64_t b) {  // X(lhs) - X(rhs) <= b
    return AtomicConstraint{cond.lhs, cond.rhs, b};
  };
  auto lower = [&cond](std::int64_t b) {  // X(rhs) - X(lhs) <= -b
    return AtomicConstraint{cond.rhs, cond.lhs, -b};
  };
  switch (cond.op) {
    case CmpOp::kEq:
      branches.push_back({upper(cond.c), lower(cond.c)});
      break;
    case CmpOp::kNe: {
      ITDB_ASSIGN_OR_RETURN(std::int64_t below, CheckedSub(cond.c, 1));
      ITDB_ASSIGN_OR_RETURN(std::int64_t above, CheckedAdd(cond.c, 1));
      branches.push_back({upper(below)});
      branches.push_back({lower(above)});
      break;
    }
    case CmpOp::kLt: {
      ITDB_ASSIGN_OR_RETURN(std::int64_t below, CheckedSub(cond.c, 1));
      branches.push_back({upper(below)});
      break;
    }
    case CmpOp::kLe:
      branches.push_back({upper(cond.c)});
      break;
    case CmpOp::kGt: {
      ITDB_ASSIGN_OR_RETURN(std::int64_t above, CheckedAdd(cond.c, 1));
      branches.push_back({lower(above)});
      break;
    }
    case CmpOp::kGe:
      branches.push_back({lower(cond.c)});
      break;
  }
  GeneralizedRelation out(r.schema());
  for (const GeneralizedTuple& t : r.tuples()) {
    // DBM fast path: close the tuple's constraints once, then fold each
    // branch's atomics in with the O(n^2) incremental closure instead of
    // paying one full Floyd-Warshall per branch.  If the base closure
    // overflows, every branch takes the naive route (reproducing the
    // error); if it is infeasible, so is every branch.
    std::optional<Dbm> base;
    if (options.use_index) {
      Dbm c = t.constraints();
      if (c.Close().ok()) {
        if (!c.feasible()) continue;
        base = std::move(c);
      }
    }
    for (const std::vector<AtomicConstraint>& branch : branches) {
      if (base.has_value()) {
        Dbm c = *base;
        bool feasible = true;
        bool fast = true;
        for (const AtomicConstraint& a : branch) {
          Dbm::TightenResult tr = c.TightenAndClose(a);
          if (tr == Dbm::TightenResult::kInfeasible) {
            feasible = false;
            break;
          }
          if (tr == Dbm::TightenResult::kFallbackNeeded) {
            fast = false;
            break;
          }
        }
        if (fast) {
          BumpCounter(&KernelCounters::closures_incremental, options, 1);
          if (!feasible) continue;
          GeneralizedTuple selected = t;
          selected.set_constraints(std::move(c));
          ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(selected)));
          continue;
        }
        BumpCounter(&KernelCounters::closures_full, options, 1);
      }
      GeneralizedTuple selected = t;
      Dbm c = t.constraints();
      for (const AtomicConstraint& a : branch) c.AddAtomic(a);
      selected.set_constraints(std::move(c));
      ITDB_ASSIGN_OR_RETURN(std::optional<GeneralizedTuple> pruned,
                            PruneByRelaxation(std::move(selected)));
      if (pruned.has_value()) {
        ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(*pruned)));
      }
    }
  }
  ITDB_RETURN_IF_ERROR(
      CheckBudget(static_cast<std::int64_t>(out.size()), options,
                  "SelectTemporal"));
  return out;
}

namespace {

bool CompareValues(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<GeneralizedRelation> SelectData(const GeneralizedRelation& r,
                                       int data_col, CmpOp op,
                                       const Value& value) {
  if (data_col < 0 || data_col >= r.schema().data_arity()) {
    return Status::InvalidArgument("SelectData: bad data column " +
                                   std::to_string(data_col));
  }
  GeneralizedRelation out(r.schema());
  for (const GeneralizedTuple& t : r.tuples()) {
    if (CompareValues(t.value(data_col), op, value)) {
      ITDB_RETURN_IF_ERROR(out.AddTuple(t));
    }
  }
  return out;
}

Result<GeneralizedRelation> SelectDataEqColumns(const GeneralizedRelation& r,
                                                int left_col, int right_col) {
  if (left_col < 0 || left_col >= r.schema().data_arity() || right_col < 0 ||
      right_col >= r.schema().data_arity()) {
    return Status::InvalidArgument("SelectDataEqColumns: bad data columns");
  }
  GeneralizedRelation out(r.schema());
  for (const GeneralizedTuple& t : r.tuples()) {
    if (t.value(left_col) == t.value(right_col)) {
      ITDB_RETURN_IF_ERROR(out.AddTuple(t));
    }
  }
  return out;
}

namespace {

Status CheckDisjointNames(const Schema& a, const Schema& b) {
  for (const std::string& n : b.temporal_names()) {
    if (a.FindTemporal(n).has_value()) {
      return Status::InvalidArgument(
          "CrossProduct: duplicate temporal attribute \"" + n + "\"");
    }
  }
  for (const std::string& n : b.data_names()) {
    if (a.FindData(n).has_value()) {
      return Status::InvalidArgument(
          "CrossProduct: duplicate data attribute \"" + n + "\"");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<GeneralizedRelation> CrossProduct(const GeneralizedRelation& a,
                                         const GeneralizedRelation& b,
                                         const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "CrossProduct", &a, &b);
  ITDB_RETURN_IF_ERROR(CheckDisjointNames(a.schema(), b.schema()));
  ITDB_RETURN_IF_ERROR(
      CheckBudget(static_cast<std::int64_t>(a.size()) * b.size(), options,
                  "CrossProduct"));
  std::vector<std::string> temporal_names = a.schema().temporal_names();
  temporal_names.insert(temporal_names.end(),
                        b.schema().temporal_names().begin(),
                        b.schema().temporal_names().end());
  std::vector<std::string> data_names = a.schema().data_names();
  data_names.insert(data_names.end(), b.schema().data_names().begin(),
                    b.schema().data_names().end());
  std::vector<DataType> data_types = a.schema().data_types();
  data_types.insert(data_types.end(), b.schema().data_types().begin(),
                    b.schema().data_types().end());
  Schema schema(std::move(temporal_names), std::move(data_names),
                std::move(data_types));
  const int ma = a.schema().temporal_arity();
  const int mb = b.schema().temporal_arity();
  GeneralizedRelation out(std::move(schema));
  for (const GeneralizedTuple& ta : a.tuples()) {
    for (const GeneralizedTuple& tb : b.tuples()) {
      std::vector<Lrp> lrps = ta.temporal();
      lrps.insert(lrps.end(), tb.temporal().begin(), tb.temporal().end());
      std::vector<Value> data = ta.data();
      data.insert(data.end(), tb.data().begin(), tb.data().end());
      GeneralizedTuple t(std::move(lrps), std::move(data));
      Dbm ca = ta.constraints().AppendVariables(mb);
      std::vector<int> shift(static_cast<std::size_t>(mb));
      for (int i = 0; i < mb; ++i) shift[static_cast<std::size_t>(i)] = ma + i;
      Dbm cb = tb.constraints().MapVariables(shift, ma + mb);
      t.set_constraints(Dbm::Conjoin(ca, cb));
      ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
    }
  }
  return out;
}

Result<GeneralizedRelation> Join(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b,
                                 const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "Join", &a, &b);
  // Identify shared attributes by name.
  const Schema& sa = a.schema();
  const Schema& sb = b.schema();
  const int ma = sa.temporal_arity();
  const int mb = sb.temporal_arity();
  // For each of b's temporal columns: matching column of a, or -1.
  std::vector<int> b_temporal_match(static_cast<std::size_t>(mb), -1);
  for (int j = 0; j < mb; ++j) {
    if (std::optional<int> i = sa.FindTemporal(sb.temporal_name(j))) {
      b_temporal_match[static_cast<std::size_t>(j)] = *i;
    }
  }
  std::vector<int> b_data_match(static_cast<std::size_t>(sb.data_arity()), -1);
  for (int j = 0; j < sb.data_arity(); ++j) {
    if (std::optional<int> i = sa.FindData(sb.data_name(j))) {
      b_data_match[static_cast<std::size_t>(j)] = *i;
      if (sa.data_type(*i) != sb.data_type(j)) {
        return Status::InvalidArgument(
            "Join: shared data attribute \"" + sb.data_name(j) +
            "\" has different types");
      }
    }
  }
  // Output schema: all of a's attributes, then b's non-shared ones.
  std::vector<std::string> temporal_names = sa.temporal_names();
  std::vector<int> b_new_temporal;  // b columns appended, with new indices.
  for (int j = 0; j < mb; ++j) {
    if (b_temporal_match[static_cast<std::size_t>(j)] < 0) {
      b_new_temporal.push_back(j);
      temporal_names.push_back(sb.temporal_name(j));
    }
  }
  std::vector<std::string> data_names = sa.data_names();
  std::vector<DataType> data_types = sa.data_types();
  std::vector<int> b_new_data;
  for (int j = 0; j < sb.data_arity(); ++j) {
    if (b_data_match[static_cast<std::size_t>(j)] < 0) {
      b_new_data.push_back(j);
      data_names.push_back(sb.data_name(j));
      data_types.push_back(sb.data_type(j));
    }
  }
  Schema schema(temporal_names, data_names, data_types);
  const int m_out = static_cast<int>(temporal_names.size());
  // Where does b's temporal column j land in the output?
  std::vector<int> b_temporal_target(static_cast<std::size_t>(mb), -1);
  for (int j = 0; j < mb; ++j) {
    int match = b_temporal_match[static_cast<std::size_t>(j)];
    if (match >= 0) {
      b_temporal_target[static_cast<std::size_t>(j)] = match;
    }
  }
  for (std::size_t pos = 0; pos < b_new_temporal.size(); ++pos) {
    b_temporal_target[static_cast<std::size_t>(b_new_temporal[pos])] =
        ma + static_cast<int>(pos);
  }
  // Shared data columns drive the hash partition; shared temporal columns
  // drive the prefilters.
  std::vector<int> a_key_cols;
  std::vector<int> b_key_cols;
  for (int j = 0; j < sb.data_arity(); ++j) {
    int i = b_data_match[static_cast<std::size_t>(j)];
    if (i >= 0) {
      a_key_cols.push_back(i);
      b_key_cols.push_back(j);
    }
  }
  std::vector<std::pair<int, int>> shared_temporal;  // (a column, b column)
  for (int j = 0; j < mb; ++j) {
    int match = b_temporal_match[static_cast<std::size_t>(j)];
    if (match >= 0) shared_temporal.emplace_back(match, j);
  }
  // The per-pair lrp intersection over shared columns, writing into the
  // output lrp vector.  Sets `temporal_ok` false on a disjoint pair.
  auto intersect_shared = [&](const GeneralizedTuple& ta,
                              const GeneralizedTuple& tb,
                              std::vector<Lrp>& lrps,
                              bool& temporal_ok) -> Status {
    temporal_ok = true;
    for (int j = 0; j < mb && temporal_ok; ++j) {
      int target = b_temporal_target[static_cast<std::size_t>(j)];
      int match = b_temporal_match[static_cast<std::size_t>(j)];
      if (match >= 0) {
        ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> inter,
                              Lrp::Intersect(ta.lrp(match), tb.lrp(j)));
        if (!inter.has_value()) {
          temporal_ok = false;
          break;
        }
        lrps[static_cast<std::size_t>(target)] = *inter;
      } else {
        lrps[static_cast<std::size_t>(target)] = tb.lrp(j);
      }
    }
    return Status::Ok();
  };
  std::vector<GeneralizedTuple> tuples;
  if (options.use_index) {
    DataKeyIndex index(b, b_key_cols);
    // Probe every outer row once: the stored candidate spans drive the
    // budget count, the touched-row discovery, AND the pair scan, instead
    // of re-probing the index in each of those passes.
    std::vector<std::span<const std::size_t>> a_buckets(a.tuples().size());
    std::int64_t candidates = 0;
    for (std::size_t i = 0; i < a.tuples().size(); ++i) {
      a_buckets[i] = index.Candidates(a.tuples()[i], a_key_cols);
      candidates += static_cast<std::int64_t>(a_buckets[i].size());
    }
    BumpCounter(&KernelCounters::pairs_total, options,
                static_cast<std::int64_t>(a.size()) * b.size());
    BumpCounter(&KernelCounters::pairs_candidate, options, candidates);
    ITDB_RETURN_IF_ERROR(CheckBudget(candidates, options, "Join"));
    // Per-b-tuple hulls and output-space constraint matrices, hoisted out
    // of the pair loop (both depend only on tb).  Columnar path: hoist only
    // the rows some bucket can actually reach, closing their constraints in
    // one batched slab; legacy path: every row, one scalar closure each.
    // slot[j] maps a b row to its entry in hull_b / cb_mapped.
    std::vector<std::int64_t> slot(b.tuples().size(), -1);
    std::vector<TemporalHull> hull_b;
    std::vector<Dbm> cb_mapped;
    if (options.use_columnar) {
      std::vector<std::size_t> touched;
      for (std::span<const std::size_t> bucket : a_buckets) {
        for (std::size_t j : bucket) {
          if (slot[j] < 0) {
            slot[j] = static_cast<std::int64_t>(touched.size());
            touched.push_back(j);
          }
        }
      }
      Arena arena;
      ColumnarRelation cb_cols(b, touched, &arena);
      hull_b.reserve(touched.size());
      cb_mapped.reserve(touched.size());
      for (std::size_t s = 0; s < touched.size(); ++s) {
        hull_b.push_back(cb_cols.Hull(static_cast<std::int64_t>(s)));
        cb_mapped.push_back(b.tuples()[touched[s]].constraints().MapVariables(
            b_temporal_target, m_out));
      }
    } else {
      hull_b.reserve(b.tuples().size());
      cb_mapped.reserve(b.tuples().size());
      for (std::size_t j = 0; j < b.tuples().size(); ++j) {
        const GeneralizedTuple& tb = b.tuples()[j];
        slot[j] = static_cast<std::int64_t>(j);
        hull_b.push_back(TemporalHull::Of(tb));
        cb_mapped.push_back(
            tb.constraints().MapVariables(b_temporal_target, m_out));
      }
    }
    ITDB_ASSIGN_OR_RETURN(
        tuples,
        ParallelAppend<GeneralizedTuple>(
            static_cast<std::int64_t>(a.size()),
            ParallelOptions{options.threads, /*grain=*/16},
            [&](std::int64_t row, std::vector<GeneralizedTuple>& part)
                -> Status {
              const GeneralizedTuple& ta =
                  a.tuples()[static_cast<std::size_t>(row)];
              const std::span<const std::size_t> bucket =
                  a_buckets[static_cast<std::size_t>(row)];
              if (bucket.empty()) return Status::Ok();
              TemporalHull ha = TemporalHull::Of(ta);
              std::optional<Dbm> ca_ext;
              if (ha.usable()) {
                ca_ext = ha.closed->AppendVariablesClosed(m_out - ma);
              }
              for (std::size_t j : bucket) {
                const GeneralizedTuple& tb = b.tuples()[j];
                bool residue_empty = false;
                for (const auto& [ca_col, cb_col] : shared_temporal) {
                  if (LrpIntersectionEmpty(ta.lrp(ca_col), tb.lrp(cb_col))) {
                    residue_empty = true;
                    break;
                  }
                }
                if (residue_empty) {
                  BumpCounter(&KernelCounters::pairs_pruned_residue, options,
                              1);
                  continue;
                }
                const TemporalHull& hb =
                    hull_b[static_cast<std::size_t>(slot[j])];
                if (ha.infeasible || hb.infeasible ||
                    HullsDisjoint(ha, hb, shared_temporal)) {
                  BumpCounter(&KernelCounters::pairs_pruned_hull, options, 1);
                  continue;
                }
                std::vector<Lrp> lrps = ta.temporal();
                lrps.resize(static_cast<std::size_t>(m_out));
                bool temporal_ok = true;
                ITDB_RETURN_IF_ERROR(
                    intersect_shared(ta, tb, lrps, temporal_ok));
                if (!temporal_ok) continue;
                std::vector<Value> data = ta.data();
                for (int j2 : b_new_data) data.push_back(tb.value(j2));
                GeneralizedTuple t(std::move(lrps), std::move(data));
                Dbm merged(m_out);
                const Dbm& cb = cb_mapped[static_cast<std::size_t>(slot[j])];
                if (ca_ext.has_value()) {
                  ITDB_ASSIGN_OR_RETURN(
                      merged,
                      ConjoinOntoClosed(*ca_ext, cb, options.counters));
                } else {
                  // ta's own closure overflowed: replay the naive kernel so
                  // its status is reproduced exactly.
                  Dbm ca = ta.constraints().AppendVariables(m_out - ma);
                  merged = Dbm::Conjoin(ca, cb);
                  ITDB_RETURN_IF_ERROR(merged.Close());
                }
                if (!merged.feasible()) continue;
                t.set_constraints(std::move(merged));
                part.push_back(std::move(t));
              }
              return Status::Ok();
            }));
  } else {
    ITDB_RETURN_IF_ERROR(
        CheckBudget(static_cast<std::int64_t>(a.size()) * b.size(), options,
                    "Join"));
    // Tuple-pair matching is independent per pair; fan the rows of `a` out
    // over the thread pool.  Per-row buffers keep b's order within each row
    // and merge in row order: byte-identical to the sequential double loop.
    ITDB_ASSIGN_OR_RETURN(
        tuples,
        ParallelAppend<GeneralizedTuple>(
            static_cast<std::int64_t>(a.size()),
            ParallelOptions{options.threads, /*grain=*/16},
            [&](std::int64_t row, std::vector<GeneralizedTuple>& part)
                -> Status {
              const GeneralizedTuple& ta =
                  a.tuples()[static_cast<std::size_t>(row)];
              for (const GeneralizedTuple& tb : b.tuples()) {
                // Shared data attributes must agree.
                bool data_ok = true;
                for (int j = 0; j < sb.data_arity(); ++j) {
                  int i = b_data_match[static_cast<std::size_t>(j)];
                  if (i >= 0 && ta.value(i) != tb.value(j)) {
                    data_ok = false;
                    break;
                  }
                }
                if (!data_ok) continue;
                // Shared temporal attributes: lrp intersection.
                std::vector<Lrp> lrps = ta.temporal();
                lrps.resize(static_cast<std::size_t>(m_out));
                bool temporal_ok = true;
                ITDB_RETURN_IF_ERROR(
                    intersect_shared(ta, tb, lrps, temporal_ok));
                if (!temporal_ok) continue;
                std::vector<Value> data = ta.data();
                for (int j : b_new_data) data.push_back(tb.value(j));
                GeneralizedTuple t(std::move(lrps), std::move(data));
                Dbm ca = ta.constraints().AppendVariables(m_out - ma);
                Dbm cb =
                    tb.constraints().MapVariables(b_temporal_target, m_out);
                Dbm merged = Dbm::Conjoin(ca, cb);
                ITDB_RETURN_IF_ERROR(merged.Close());
                if (!merged.feasible()) continue;
                t.set_constraints(std::move(merged));
                part.push_back(std::move(t));
              }
              return Status::Ok();
            }));
  }
  GeneralizedRelation out(std::move(schema));
  for (GeneralizedTuple& t : tuples) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  return MaybeSimplify(std::move(out), options);
}

Result<GeneralizedRelation> ShiftTemporalColumn(const GeneralizedRelation& r,
                                                int col, std::int64_t delta) {
  if (col < 0 || col >= r.schema().temporal_arity()) {
    return Status::InvalidArgument("ShiftTemporalColumn: bad column " +
                                   std::to_string(col));
  }
  GeneralizedRelation out(r.schema());
  for (const GeneralizedTuple& t : r.tuples()) {
    std::vector<Lrp> lrps = t.temporal();
    const Lrp& old = lrps[static_cast<std::size_t>(col)];
    ITDB_ASSIGN_OR_RETURN(std::int64_t offset,
                          CheckedAdd(old.offset(), delta));
    lrps[static_cast<std::size_t>(col)] = Lrp::Make(offset, old.period());
    GeneralizedTuple shifted(std::move(lrps), t.data());
    // Rewrite every atomic mentioning the column: with X' = X + delta,
    //   X - Y <= b  becomes  X' - Y <= b + delta, and symmetrically.
    Dbm constraints(t.constraints().num_vars());
    for (const AtomicConstraint& a : t.constraints().ToAtomics()) {
      std::int64_t bound = a.bound;
      if (a.lhs == col) {
        ITDB_ASSIGN_OR_RETURN(bound, CheckedAdd(bound, delta));
      }
      if (a.rhs == col) {
        ITDB_ASSIGN_OR_RETURN(bound, CheckedSub(bound, delta));
      }
      constraints.AddAtomic(AtomicConstraint{a.lhs, a.rhs, bound});
    }
    shifted.set_constraints(std::move(constraints));
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(shifted)));
  }
  return out;
}

Result<GeneralizedRelation> Rename(
    const GeneralizedRelation& r,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<std::string> temporal_names = r.schema().temporal_names();
  std::vector<std::string> data_names = r.schema().data_names();
  for (const auto& [from, to] : renames) {
    bool found = false;
    for (std::string& n : temporal_names) {
      if (n == from) {
        n = to;
        found = true;
      }
    }
    for (std::string& n : data_names) {
      if (n == from) {
        n = to;
        found = true;
      }
    }
    if (!found) {
      return Status::NotFound("Rename: unknown attribute \"" + from + "\"");
    }
  }
  // Check uniqueness per kind.
  for (std::size_t i = 0; i < temporal_names.size(); ++i) {
    for (std::size_t j = i + 1; j < temporal_names.size(); ++j) {
      if (temporal_names[i] == temporal_names[j]) {
        return Status::InvalidArgument("Rename: duplicate temporal name \"" +
                                       temporal_names[i] + "\"");
      }
    }
  }
  for (std::size_t i = 0; i < data_names.size(); ++i) {
    for (std::size_t j = i + 1; j < data_names.size(); ++j) {
      if (data_names[i] == data_names[j]) {
        return Status::InvalidArgument("Rename: duplicate data name \"" +
                                       data_names[i] + "\"");
      }
    }
  }
  Schema schema(std::move(temporal_names), std::move(data_names),
                r.schema().data_types());
  GeneralizedRelation out(std::move(schema));
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(t));
  }
  return out;
}

Result<bool> TupleIsEmpty(const GeneralizedTuple& t,
                          const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> normal,
      CachedNormalizeTuple(options.normalize_cache, t, options.normalize));
  // NormalizeTuple prunes infeasible combinations, so any survivor is a
  // nonempty piece of the extension.
  return normal.empty();
}

Result<bool> IsEmpty(const GeneralizedRelation& r,
                     const AlgebraOptions& options) {
  obs::Span span = OpSpan(options, "IsEmpty", &r);
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_ASSIGN_OR_RETURN(bool empty, TupleIsEmpty(t, options));
    if (!empty) return false;
  }
  return true;
}

Result<std::optional<std::vector<std::int64_t>>> FindTemporalWitness(
    const GeneralizedTuple& t, const AlgebraOptions& options) {
  using MaybePoint = std::optional<std::vector<std::int64_t>>;
  ITDB_ASSIGN_OR_RETURN(
      std::vector<GeneralizedTuple> normal,
      CachedNormalizeTuple(options.normalize_cache, t, options.normalize));
  if (normal.empty()) return MaybePoint(std::nullopt);
  const GeneralizedTuple& nt = normal.front();
  // Fix the n-space variables one at a time: each variable is pinned to its
  // tightest finite bound (lower preferred, else upper, else 0); re-closing
  // after each pin keeps the system feasible because the pinned value lies
  // inside the variable's admissible interval of the closed DBM.
  ITDB_ASSIGN_OR_RETURN(NSpaceTuple ns, NSpaceTuple::Build(nt));
  if (!ns.feasible()) return MaybePoint(std::nullopt);
  // Re-derive the n-space DBM here: NSpaceTuple does not expose its matrix,
  // so work with the X-space values via repeated equality selection instead.
  // Pin columns left to right.
  GeneralizedTuple pinned = nt;
  std::vector<std::int64_t> point(static_cast<std::size_t>(nt.temporal_arity()));
  for (int col = 0; col < nt.temporal_arity(); ++col) {
    const Lrp& l = pinned.lrp(col);
    if (l.period() == 0) {
      point[static_cast<std::size_t>(col)] = l.offset();
      continue;
    }
    // Project the current tuple onto this column to learn its admissible
    // lattice values, then pick the smallest bounded one.
    ITDB_ASSIGN_OR_RETURN(NSpaceTuple view, NSpaceTuple::Build(pinned));
    if (!view.feasible()) {
      return Status::InvalidArgument(
          "FindTemporalWitness: pinning made the tuple infeasible (bug)");
    }
    for (int other = 0; other < nt.temporal_arity(); ++other) {
      if (other != col) ITDB_RETURN_IF_ERROR(view.EliminateColumn(other));
    }
    ITDB_ASSIGN_OR_RETURN(GeneralizedTuple unary, view.Rebuild({col}, {}));
    // The unary tuple is an lrp with bound constraints; pick its smallest
    // element if bounded below, else its largest if bounded above, else the
    // offset itself.
    Dbm c = unary.constraints();
    ITDB_RETURN_IF_ERROR(c.Close());
    std::int64_t lo_bound = c.bound_node(0, 1);  // -x <= b  ->  x >= -b.
    std::int64_t hi_bound = c.bound_node(1, 0);  //  x <= b.
    std::int64_t value;
    if (lo_bound != Dbm::kInf) {
      std::optional<std::int64_t> v = unary.lrp(0).FirstAtLeast(-lo_bound);
      if (!v.has_value()) return MaybePoint(std::nullopt);
      value = *v;
      if (hi_bound != Dbm::kInf && value > hi_bound) {
        return MaybePoint(std::nullopt);
      }
    } else if (hi_bound != Dbm::kInf) {
      // Largest lattice element <= hi_bound: step down from FirstAtLeast.
      std::optional<std::int64_t> v = unary.lrp(0).FirstAtLeast(hi_bound);
      value = (v.has_value() && *v == hi_bound)
                  ? hi_bound
                  : hi_bound - FloorMod(hi_bound - unary.lrp(0).offset(),
                                        unary.lrp(0).period());
    } else {
      value = unary.lrp(0).offset();
    }
    point[static_cast<std::size_t>(col)] = value;
    // Pin: replace the column's lrp by the chosen singleton.
    std::vector<Lrp> lrps = pinned.temporal();
    lrps[static_cast<std::size_t>(col)] = Lrp::Singleton(value);
    GeneralizedTuple next(std::move(lrps), pinned.data());
    next.set_constraints(pinned.constraints());
    pinned = std::move(next);
  }
  if (!nt.ContainsTemporal(point)) {
    return Status::InvalidArgument(
        "FindTemporalWitness produced a non-member point (bug)");
  }
  return MaybePoint(std::move(point));
}

Result<std::optional<ConcreteRow>> FindWitness(const GeneralizedRelation& r,
                                               const AlgebraOptions& options) {
  for (const GeneralizedTuple& t : r.tuples()) {
    ITDB_ASSIGN_OR_RETURN(std::optional<std::vector<std::int64_t>> point,
                          FindTemporalWitness(t, options));
    if (point.has_value()) {
      return std::optional<ConcreteRow>(ConcreteRow{*point, t.data()});
    }
  }
  return std::optional<ConcreteRow>(std::nullopt);
}


Result<bool> Subset(const GeneralizedRelation& a, const GeneralizedRelation& b,
                    const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation diff, Subtract(a, b, options));
  return IsEmpty(diff, options);
}

Result<bool> Equivalent(const GeneralizedRelation& a,
                        const GeneralizedRelation& b,
                        const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(bool ab, Subset(a, b, options));
  if (!ab) return false;
  return Subset(b, a, options);
}

}  // namespace itdb

