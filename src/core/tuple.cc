#include "core/tuple.h"

#include <ostream>

namespace itdb {

bool GeneralizedTuple::ContainsTemporal(
    const std::vector<std::int64_t>& x) const {
  if (static_cast<int>(x.size()) != temporal_arity()) return false;
  for (int i = 0; i < temporal_arity(); ++i) {
    if (!temporal_[static_cast<std::size_t>(i)].Contains(
            x[static_cast<std::size_t>(i)])) {
      return false;
    }
  }
  return constraints_.IsSatisfiedBy(x);
}

std::vector<std::vector<std::int64_t>> GeneralizedTuple::EnumerateTemporal(
    std::int64_t lo, std::int64_t hi) const {
  std::vector<std::vector<std::int64_t>> out;
  int m = temporal_arity();
  if (m == 0) {
    // A zero-arity tuple denotes the empty point () unless its constraints
    // are contradictory.
    if (constraints_.IsSatisfiedBy({})) out.push_back({});
    return out;
  }
  std::vector<std::vector<std::int64_t>> columns;
  columns.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    columns.push_back(
        temporal_[static_cast<std::size_t>(i)].ElementsInRange(lo, hi));
    if (columns.back().empty()) return out;
  }
  std::vector<std::int64_t> point(static_cast<std::size_t>(m));
  std::vector<std::size_t> idx(static_cast<std::size_t>(m), 0);
  while (true) {
    for (int i = 0; i < m; ++i) {
      point[static_cast<std::size_t>(i)] =
          columns[static_cast<std::size_t>(i)][idx[static_cast<std::size_t>(i)]];
    }
    if (constraints_.IsSatisfiedBy(point)) out.push_back(point);
    // Advance the mixed-radix counter.
    int d = m - 1;
    while (d >= 0) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++idx[ud] < columns[ud].size()) break;
      idx[ud] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return out;
}

Result<std::optional<GeneralizedTuple>> GeneralizedTuple::Intersect(
    const GeneralizedTuple& a, const GeneralizedTuple& b) {
  using MaybeTuple = std::optional<GeneralizedTuple>;
  if (a.temporal_arity() != b.temporal_arity() ||
      a.data_arity() != b.data_arity()) {
    return Status::InvalidArgument(
        "tuple intersection requires identical arities");
  }
  if (a.data_ != b.data_) return MaybeTuple(std::nullopt);
  std::vector<Lrp> lrps;
  lrps.reserve(a.temporal_.size());
  for (int i = 0; i < a.temporal_arity(); ++i) {
    ITDB_ASSIGN_OR_RETURN(std::optional<Lrp> inter,
                          Lrp::Intersect(a.lrp(i), b.lrp(i)));
    if (!inter.has_value()) return MaybeTuple(std::nullopt);
    lrps.push_back(*inter);
  }
  GeneralizedTuple out(std::move(lrps), a.data_);
  Dbm merged = Dbm::Conjoin(a.constraints_, b.constraints_);
  ITDB_RETURN_IF_ERROR(merged.Close());
  if (!merged.feasible()) return MaybeTuple(std::nullopt);
  out.set_constraints(std::move(merged));
  return MaybeTuple(std::move(out));
}

std::string GeneralizedTuple::ToString() const {
  std::string out = "[";
  for (int i = 0; i < temporal_arity(); ++i) {
    if (i > 0) out += ", ";
    out += temporal_[static_cast<std::size_t>(i)].ToString();
  }
  out += "]";
  Dbm closed = constraints_;
  if (closed.Close().ok() && closed.feasible()) {
    std::string c = closed.ToString();
    if (c != "true") out += " " + c;
  } else {
    out += " false";
  }
  for (int i = 0; i < data_arity(); ++i) {
    out += i == 0 ? " ; " : ", ";
    out += data_[static_cast<std::size_t>(i)].ToString();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const GeneralizedTuple& t) {
  return os << t.ToString();
}

}  // namespace itdb
