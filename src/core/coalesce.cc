#include "core/coalesce.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace itdb {

namespace {

/// Canonical signature of everything in a tuple EXCEPT column `col`'s lrp:
/// data values, the other lrps, the closed constraint matrix, and the
/// period of column `col` (families must share it).  Tuples with equal
/// signatures differ at most in column `col`'s offset.
Result<std::string> SignatureWithoutOffset(const GeneralizedTuple& t,
                                           int col) {
  std::string key;
  for (int i = 0; i < t.temporal_arity(); ++i) {
    key += i == col ? "@" : t.lrp(i).ToString();
    key += "|";
  }
  key += std::to_string(t.lrp(col).period());
  key += "#";
  for (const Value& v : t.data()) {
    key += v.ToString();
    key += "|";
  }
  Dbm closed = t.constraints();
  ITDB_RETURN_IF_ERROR(closed.Close());
  if (!closed.feasible()) return std::string();  // Empty tuple: droppable.
  key += "#";
  int n = closed.num_vars() + 1;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      key += std::to_string(closed.bound_node(p, q));
      key += ",";
    }
  }
  return key;
}

}  // namespace

Result<GeneralizedRelation> CoalesceResidues(const GeneralizedRelation& r,
                                             int threads) {
  const int m = r.schema().temporal_arity();
  const ParallelOptions parallel{threads, /*grain=*/8};
  std::vector<GeneralizedTuple> tuples;
  // Drop tuples with contradictory constraints up front (their extension is
  // empty, so removal preserves the set) and deduplicate exact copies.
  // Closure + printing are per-tuple and independent; only the order-
  // sensitive dedup stays sequential.
  {
    using KeyEntry = std::pair<bool, std::string>;
    ITDB_ASSIGN_OR_RETURN(
        std::vector<KeyEntry> keys,
        ParallelAppend<KeyEntry>(
            static_cast<std::int64_t>(r.tuples().size()), parallel,
            [&](std::int64_t i, std::vector<KeyEntry>& out) -> Status {
              const GeneralizedTuple& t =
                  r.tuples()[static_cast<std::size_t>(i)];
              Dbm closed = t.constraints();
              ITDB_RETURN_IF_ERROR(closed.Close());
              if (!closed.feasible()) {
                out.push_back({false, std::string()});
              } else {
                out.push_back({true, t.ToString()});
              }
              return Status::Ok();
            }));
    std::set<std::string> seen;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (!keys[i].first) continue;
      if (seen.insert(std::move(keys[i].second)).second) {
        tuples.push_back(r.tuples()[i]);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int col = 0; col < m && !changed; ++col) {
      // Families keyed by everything but this column's offset.  The
      // per-tuple signatures (a closure each) fan out; the family map is
      // built sequentially so member lists stay index-ordered.
      ITDB_ASSIGN_OR_RETURN(
          std::vector<std::string> signatures,
          ParallelAppend<std::string>(
              static_cast<std::int64_t>(tuples.size()), parallel,
              [&](std::int64_t i, std::vector<std::string>& out) -> Status {
                const GeneralizedTuple& t =
                    tuples[static_cast<std::size_t>(i)];
                if (t.lrp(col).period() == 0) {
                  out.push_back(std::string());
                  return Status::Ok();
                }
                ITDB_ASSIGN_OR_RETURN(std::string key,
                                      SignatureWithoutOffset(t, col));
                out.push_back(std::move(key));
                return Status::Ok();
              }));
      std::map<std::string, std::vector<std::size_t>> families;
      for (std::size_t i = 0; i < signatures.size(); ++i) {
        if (signatures[i].empty()) continue;
        families[std::move(signatures[i])].push_back(i);
      }
      for (const auto& [key, members] : families) {
        // A merge rewrites `tuples`, invalidating every index in
        // `families`: restart the scan from the top.
        if (changed) break;
        if (members.size() < 2) continue;
        const std::int64_t k = tuples[members.front()].lrp(col).period();
        std::map<std::int64_t, std::vector<std::size_t>> by_offset;
        for (std::size_t idx : members) {
          by_offset[tuples[idx].lrp(col).offset()].push_back(idx);
        }
        // Try divisors of k ascending: the smaller the target period, the
        // more tuples collapse.
        for (std::int64_t d = 1; d < k && !changed; ++d) {
          if (k % d != 0) continue;
          for (std::int64_t r0 = 0; r0 < d && !changed; ++r0) {
            bool complete = true;
            for (std::int64_t c = r0; c < k; c += d) {
              if (!by_offset.contains(c)) {
                complete = false;
                break;
              }
            }
            if (!complete) continue;
            // Merge: one representative keeps the family with the coarser
            // period; all members with the covered offsets are removed.
            std::set<std::size_t> to_remove;
            for (std::int64_t c = r0; c < k; c += d) {
              for (std::size_t idx : by_offset[c]) to_remove.insert(idx);
            }
            const GeneralizedTuple& proto = tuples[*to_remove.begin()];
            std::vector<Lrp> lrps = proto.temporal();
            lrps[static_cast<std::size_t>(col)] = Lrp::Make(r0, d);
            GeneralizedTuple merged(std::move(lrps), proto.data());
            merged.set_constraints(proto.constraints());
            std::vector<GeneralizedTuple> next;
            next.reserve(tuples.size() - to_remove.size() + 1);
            for (std::size_t i = 0; i < tuples.size(); ++i) {
              if (!to_remove.contains(i)) next.push_back(std::move(tuples[i]));
            }
            next.push_back(std::move(merged));
            tuples = std::move(next);
            changed = true;
          }
        }
      }
    }
  }
  GeneralizedRelation out(r.schema());
  for (GeneralizedTuple& t : tuples) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  return out;
}

}  // namespace itdb
