// Conjunctions of restricted constraints as difference-bound matrices.
//
// The paper's restricted atomic constraints (Section 2.1)
//
//     Xi <= Xj + a,   Xi = Xj + a,   Xi <= a,   Xi >= a,   Xi = a
//
// are exactly difference constraints with unit coefficients.  A conjunction
// of such constraints over variables X0..X{n-1} is represented canonically
// by a difference-bound matrix (DBM) over n+1 nodes, where node 0 stands for
// the constant 0 and node i+1 for variable Xi: entry (p, q) is the tightest
// known upper bound on node_p - node_q.
//
// Because all coefficients are unit and all bounds integral, the constraint
// polyhedron is integral: Floyd-Warshall shortest-path closure yields the
// canonical form, a negative cycle is the exact integer-infeasibility
// criterion, and dropping a row/column of the closed matrix is exact
// variable elimination over the reals -- which Theorem 3.1 of the paper
// lifts to the integers once tuples are in normal form.

#ifndef ITDB_CORE_DBM_H_
#define ITDB_CORE_DBM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/small_vec.h"
#include "util/status.h"

namespace itdb {

/// Index of the distinguished "constant zero" pseudo-variable in
/// AtomicConstraint.
inline constexpr int kZeroVar = -1;

/// One restricted atomic constraint in difference form:
///   X(lhs) - X(rhs) <= bound,
/// where lhs / rhs may be kZeroVar, denoting the constant 0.  All five
/// syntactic forms of the paper reduce to one or two of these.
struct AtomicConstraint {
  int lhs = kZeroVar;
  int rhs = kZeroVar;
  std::int64_t bound = 0;

  /// The negation over the integers: not(x - y <= b)  <=>  y - x <= -b - 1.
  AtomicConstraint Negated() const { return {rhs, lhs, -bound - 1}; }

  /// Human-readable form, e.g. "X1 - X3 <= 4", "X2 <= -1", "-X1 <= 5".
  std::string ToString() const;

  friend bool operator==(const AtomicConstraint& a,
                         const AtomicConstraint& b) = default;
};

/// A conjunction of restricted constraints over a fixed number of variables.
///
/// Mutating methods (AddXxx) invalidate closure; call Close() before using
/// feasibility, elimination, implication, or minimal-atomic queries.
class Dbm {
 public:
  /// Sentinel for "no constraint".
  static constexpr std::int64_t kInf = INT64_MAX;

  /// Magnitude limit for finite bounds: Close() reports kOverflow when a
  /// derived bound leaves [-kBoundLimit, kBoundLimit].  The margin below
  /// INT64_MAX keeps saturating additions representable in __int128 and far
  /// from the kInf sentinel.  Shared with the batched kernels (dbm_batch),
  /// which must reproduce the same overflow decisions.
  static constexpr std::int64_t kBoundLimit = std::int64_t{1} << 61;

  /// Matrices of up to this many nodes (num_vars + 1) are stored inline in
  /// the Dbm object; larger ones take a single heap block.  Public so the
  /// batched kernels can size their stack scratch to the common case.
  static constexpr std::size_t kMaxInlineNodes = 5;

  /// An unconstrained system over `num_vars` variables.
  explicit Dbm(int num_vars);

  int num_vars() const { return num_vars_; }

  /// Adds X(i) - X(j) <= a.  Pre: i != j, both in range.
  void AddDifferenceUpperBound(int i, int j, std::int64_t a);
  /// Adds X(i) <= a.
  void AddUpperBound(int i, std::int64_t a);
  /// Adds X(i) >= a.
  void AddLowerBound(int i, std::int64_t a);
  /// Adds X(i) = X(j) + a (two inequalities).
  void AddDifferenceEquality(int i, int j, std::int64_t a);
  /// Adds X(i) = a.
  void AddEquality(int i, std::int64_t a);
  /// Adds one atomic constraint (kZeroVar handled).
  void AddAtomic(const AtomicConstraint& c);

  /// Floyd-Warshall closure.  Returns kOverflow if intermediate bounds leave
  /// the safe range (|bound| > 2^61).  After a successful Close(), closed()
  /// is true and feasible() reports integer satisfiability.
  Status Close();

  /// Outcome of TightenAndClose (incremental closure).
  enum class TightenResult {
    /// The matrix is again the canonical closure (possibly unchanged).
    kClosed,
    /// The constraint closed a negative cycle: closed() && !feasible().
    kInfeasible,
    /// A derived bound would leave the safe range; the matrix is UNCHANGED
    /// and the caller must fall back to AddAtomic + Close on a fresh copy.
    kFallbackNeeded,
  };

  /// Adds one atomic constraint to an already-closed feasible system and
  /// re-closes incrementally in O(n^2) instead of re-running the O(n^3)
  /// Floyd-Warshall: a shortest path that uses the new edge (p, q) once
  /// decomposes as i ->* p -> q ->* j over old shortest paths, and using it
  /// twice cannot help unless there is a negative cycle -- which, because
  /// the base was closed and feasible, must pass through the new edge and
  /// is detected exactly by bound(q, p) + w < 0.
  ///
  /// Pre: closed() && feasible().  On kClosed the matrix is bit-identical
  /// to what AddAtomic(c) + Close() would produce.
  TightenResult TightenAndClose(const AtomicConstraint& c);

  bool closed() const { return closed_; }
  /// Pre: closed().  False iff the constraint graph has a negative cycle.
  bool feasible() const { return feasible_; }

  /// Whether the concrete assignment x (size num_vars) satisfies every
  /// constraint.  Does not require closure.
  bool IsSatisfiedBy(const std::vector<std::int64_t>& x) const;

  /// Projects away variable i (Fourier-Motzkin via the closed matrix).
  /// Pre: closed() && feasible().  The result is closed.
  Dbm EliminateVariable(int i) const;

  /// Returns a copy with `count` additional unconstrained variables appended.
  Dbm AppendVariables(int count) const;

  /// Like AppendVariables, but preserves closure: appending unconstrained
  /// variables to a closed feasible matrix cannot create shorter paths, so
  /// the result is closed and feasible.  Pre: closed() && feasible().
  Dbm AppendVariablesClosed(int count) const;

  /// Returns a DBM over `new_size` variables where old variable i becomes
  /// new variable new_from_old[i].  Targets must be distinct and in range;
  /// unmapped new variables are unconstrained.
  Dbm MapVariables(const std::vector<int>& new_from_old, int new_size) const;

  /// Conjunction of two systems over the same variables (entrywise min).
  /// The result is not closed.
  static Dbm Conjoin(const Dbm& a, const Dbm& b);

  /// Builds a Dbm directly from `(num_vars + 1)^2` node-major entries that
  /// are already a feasible shortest-path closure (as produced by the
  /// batched closure kernels).  The result has closed() && feasible().
  static Dbm FromClosedEntries(int num_vars, const std::int64_t* entries);

  /// Rebuilds a Dbm from `(num_vars + 1)^2` node-major entries captured via
  /// bound_node(), restoring the exact closure/feasibility state.  This is
  /// the binary storage layer's round-trip primitive: unlike
  /// FromClosedEntries it makes no canonicality assumption, so
  /// FromEntries(v, snapshot, closed(), feasible()) reproduces the source
  /// matrix bit for bit whatever state it was in.
  static Dbm FromEntries(int num_vars, const std::int64_t* entries,
                         bool closed, bool feasible);

  /// Raw entry access in node space (0 = zero node, i+1 = variable i):
  /// the upper bound on node_p - node_q, or kInf.
  std::int64_t bound_node(int p, int q) const {
    return matrix_[static_cast<std::size_t>(p) *
                       static_cast<std::size_t>(num_vars_ + 1) +
                   static_cast<std::size_t>(q)];
  }

  /// All finite off-diagonal entries as atomic constraints.  On a closed
  /// matrix this list is canonical but redundant.
  std::vector<AtomicConstraint> ToAtomics() const;

  /// A minimal (irredundant) set of atomics whose conjunction is equivalent
  /// to this system.  Pre: closed() && feasible().  At most
  /// (num_vars)(num_vars+1) constraints, matching the bound the paper uses
  /// in Appendix A.
  std::vector<AtomicConstraint> MinimalAtomics() const;

  /// Whether every solution of *this satisfies `other` (same num_vars).
  /// Pre: closed() && feasible().
  bool Implies(const Dbm& other) const;

  /// Structural equality of matrices (use on closed DBMs for semantic
  /// equality of feasible systems).
  friend bool operator==(const Dbm& a, const Dbm& b) {
    return a.num_vars_ == b.num_vars_ && a.matrix_ == b.matrix_;
  }

  /// " && "-joined minimal atomics, or "true" when unconstrained.
  /// Pre: closed() && feasible().
  std::string ToString() const;

 private:
  void set_bound_node(int p, int q, std::int64_t v) {
    matrix_[static_cast<std::size_t>(p) *
                static_cast<std::size_t>(num_vars_ + 1) +
            static_cast<std::size_t>(q)] = v;
  }
  /// min-assign, invalidates closure.
  void Tighten(int p, int q, std::int64_t v);

  /// Bound matrix in node-major order.  Matrices up to kMaxInlineNodes^2
  /// entries (temporal arity <= 4, the overwhelmingly common case) live
  /// inline in the Dbm object itself, so constructing or copying a small
  /// system never touches the heap; larger systems fall back to one heap
  /// block.
  int num_vars_;
  SmallVec<std::int64_t, kMaxInlineNodes * kMaxInlineNodes> matrix_;
  bool closed_ = false;
  bool feasible_ = true;
};

}  // namespace itdb

#endif  // ITDB_CORE_DBM_H_
