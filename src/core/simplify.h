// Redundancy elimination for generalized relations.
//
// The paper notes (Section 3.1) that "in practice, one would also attempt to
// eliminate the redundancies that might appear between the tuples of the
// merged relation.  We do not consider this problem."  This module is that
// missing pass: it drops tuples with empty extensions and tuples subsumed by
// other tuples.  It is exercised by the ablation benchmark
// bench/bench_ablation_simplify.

#ifndef ITDB_CORE_SIMPLIFY_H_
#define ITDB_CORE_SIMPLIFY_H_

#include "core/normalize.h"
#include "core/relation.h"
#include "util/status.h"

namespace itdb {

struct KernelCounters;  // core/index.h

struct SimplifyOptions {
  NormalizeOptions normalize;
};

/// Sufficient (sound, not complete) subsumption test: returns true only when
/// every concrete row of `small` is provably a row of `big` -- data values
/// equal, every lrp of `small` included in the corresponding lrp of `big`,
/// and small's (closed) constraints implying big's.
Result<bool> TupleSubsumes(const GeneralizedTuple& big,
                           const GeneralizedTuple& small);

/// Removes tuples whose extension is empty (exact, via normal form) and
/// tuples subsumed by another remaining tuple.
Result<GeneralizedRelation> Simplify(const GeneralizedRelation& r,
                                     const SimplifyOptions& options = {});

/// The cheap variant: only the pairwise subsumption sweep plus the
/// real-relaxation infeasibility prune -- no normalization, so a tuple with
/// a nonempty relaxation but an empty lattice extension survives.  Intended
/// for intermediate results inside query evaluation
/// (QueryOptions::prune_intermediates), where soundness matters but exact
/// emptiness is too expensive to pay per operator.  Drops are counted into
/// `counters` (tuples_subsumed) when provided.
Result<GeneralizedRelation> SimplifyRelation(const GeneralizedRelation& r,
                                             KernelCounters* counters = nullptr);

}  // namespace itdb

#endif  // ITDB_CORE_SIMPLIFY_H_
