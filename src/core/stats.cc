#include "core/stats.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/index.h"
#include "obs/metrics.h"
#include "util/numeric.h"

namespace itdb {

RelationStats ComputeRelationStats(const GeneralizedRelation& r) {
  RelationStats out;
  const int m = r.schema().temporal_arity();
  const int l = r.schema().data_arity();
  out.tuple_count = r.size();

  std::vector<std::set<std::pair<std::int64_t, std::int64_t>>> temporal_keys(
      static_cast<std::size_t>(m));
  std::vector<std::set<Value>> data_keys(static_cast<std::size_t>(l));
  out.hull_lo.assign(static_cast<std::size_t>(m), Dbm::kInf);
  out.hull_hi.assign(static_cast<std::size_t>(m), -Dbm::kInf);
  std::int64_t lcm = 1;
  bool lcm_overflow = false;
  bool any_feasible = false;
  std::int64_t lcm_rep = 1;
  bool lcm_rep_overflow = false;
  std::int64_t normalized = 0;
  bool normalized_overflow = false;

  for (const GeneralizedTuple& t : r.tuples()) {
    // Representation-level aggregates run over every tuple, feasible or
    // not: Complement and Project consume the representation as stored.
    std::int64_t tuple_lcm = 1;
    bool tuple_lcm_overflow = false;
    for (const Lrp& lrp : t.temporal()) {
      if (lrp.period() <= 0) continue;
      Result<std::int64_t> next = Lcm(tuple_lcm, lrp.period());
      if (next.ok()) {
        tuple_lcm = next.value();
      } else {
        tuple_lcm_overflow = true;
        break;
      }
    }
    if (tuple_lcm_overflow) {
      lcm_rep_overflow = true;
      normalized_overflow = true;
    } else {
      if (!lcm_rep_overflow) {
        Result<std::int64_t> next = Lcm(lcm_rep, tuple_lcm);
        if (next.ok()) {
          lcm_rep = next.value();
        } else {
          lcm_rep_overflow = true;
        }
      }
      if (!normalized_overflow) {
        std::int64_t split = 1;
        for (const Lrp& lrp : t.temporal()) {
          if (lrp.period() <= 0) continue;
          Result<std::int64_t> grown =
              CheckedMul(split, tuple_lcm / lrp.period());
          if (grown.ok()) {
            split = grown.value();
          } else {
            normalized_overflow = true;
            break;
          }
        }
        if (!normalized_overflow) {
          Result<std::int64_t> sum = CheckedAdd(normalized, split);
          if (sum.ok()) {
            normalized = sum.value();
          } else {
            normalized_overflow = true;
          }
        }
      }
    }
    // One closure per tuple classifies feasibility and yields per-column
    // bounds; a failed closure (overflow) counts as potentially nonempty
    // and unbounded -- stats must stay conservative.
    TemporalHull hull = TemporalHull::Of(t);
    if (hull.infeasible) continue;  // Denotes {}: invisible to every stat.
    any_feasible = true;
    for (int i = 0; i < m; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const Lrp& lrp = t.lrp(i);
      temporal_keys[ui].emplace(lrp.offset(), lrp.period());
      if (lrp.period() > 0 && !lcm_overflow) {
        Result<std::int64_t> next = Lcm(lcm, lrp.period());
        if (next.ok()) {
          lcm = next.value();
        } else {
          lcm_overflow = true;
        }
      }
      // Tuple bound on column i: the DBM hull when available, tightened by
      // a singleton lrp (period 0 pins the coordinate at its offset).
      std::int64_t lo = hull.usable() ? hull.lo[ui] : -Dbm::kInf;
      std::int64_t hi = hull.usable() ? hull.hi[ui] : Dbm::kInf;
      if (lrp.period() == 0) {
        lo = std::max(lo, lrp.offset());
        hi = std::min(hi, lrp.offset());
      }
      out.hull_lo[ui] = std::min(out.hull_lo[ui], lo);
      out.hull_hi[ui] = std::max(out.hull_hi[ui], hi);
    }
    for (int i = 0; i < l; ++i) {
      data_keys[static_cast<std::size_t>(i)].insert(t.value(i));
    }
  }

  out.distinct_temporal.reserve(static_cast<std::size_t>(m));
  for (const auto& keys : temporal_keys) {
    out.distinct_temporal.push_back(static_cast<std::int64_t>(keys.size()));
  }
  out.distinct_data.reserve(static_cast<std::size_t>(l));
  for (const auto& keys : data_keys) {
    out.distinct_data.push_back(static_cast<std::int64_t>(keys.size()));
  }
  if (lcm_overflow) {
    out.period_lcm = std::nullopt;
  } else {
    out.period_lcm = lcm;
  }
  if (!lcm_rep_overflow) out.period_lcm_rep = lcm_rep;
  if (!normalized_overflow) out.normalized_rows = normalized;
  out.bit_empty = !any_feasible;
  if (out.bit_empty) {
    out.hull_lo.clear();
    out.hull_hi.clear();
  }
  return out;
}

namespace {

std::string FormatBound(std::int64_t b) {
  if (b >= Dbm::kInf) return "+inf";
  if (b <= -Dbm::kInf) return "-inf";
  return std::to_string(b);
}

std::string JoinInts(const std::vector<std::int64_t>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

std::string FormatRelationStats(const std::string& name,
                                const RelationStats& stats) {
  std::ostringstream out;
  out << name << ".tuples " << stats.tuple_count << "\n";
  if (!stats.distinct_temporal.empty()) {
    out << name << ".distinct_temporal " << JoinInts(stats.distinct_temporal)
        << "\n";
  }
  if (!stats.distinct_data.empty()) {
    out << name << ".distinct_data " << JoinInts(stats.distinct_data) << "\n";
  }
  out << name << ".period_lcm "
      << (stats.period_lcm.has_value() ? std::to_string(*stats.period_lcm)
                                       : std::string("overflow"))
      << "\n";
  out << name << ".period_lcm_rep "
      << (stats.period_lcm_rep.has_value()
              ? std::to_string(*stats.period_lcm_rep)
              : std::string("overflow"))
      << "\n";
  out << name << ".normalized_rows "
      << (stats.normalized_rows.has_value()
              ? std::to_string(*stats.normalized_rows)
              : std::string("overflow"))
      << "\n";
  for (std::size_t i = 0; i < stats.hull_lo.size(); ++i) {
    out << name << ".hull[" << i << "] [" << FormatBound(stats.hull_lo[i])
        << ", " << FormatBound(stats.hull_hi[i]) << "]\n";
  }
  out << name << ".bit_empty " << (stats.bit_empty ? "true" : "false") << "\n";
  return out.str();
}

StatsCache::StatsCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

RelationStats StatsCache::Get(const std::string& name, std::uint64_t version,
                              const GeneralizedRelation& relation) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.version == version) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      obs::AddGlobalCounter("stats.cache.hits", 1);
      return it->second.stats;
    }
  }
  // Compute outside the lock: scans are the expensive part, and a duplicate
  // computation under contention is benign (same version, same result).
  RelationStats computed = ComputeRelationStats(relation);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  obs::AddGlobalCounter("stats.cache.misses", 1);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second.version = version;
    it->second.stats = computed;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(name);
    entries_.emplace(name, Entry{version, computed, lru_.begin()});
  }
  stats_.entries = entries_.size();
  return computed;
}

StatsCache::Stats StatsCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void StatsCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_.entries = 0;
}

}  // namespace itdb
