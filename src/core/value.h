// Nontemporal data values (the set D of Definition 2.2).
//
// Generalized tuples assign *concrete* values to data attributes (only the
// temporal attributes are symbolic), so a simple variant suffices.

#ifndef ITDB_CORE_VALUE_H_
#define ITDB_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace itdb {

/// A concrete nontemporal value: integer or string.
class Value {
 public:
  Value() : rep_(std::int64_t{0}) {}
  explicit Value(std::int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  bool IsInt() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool IsString() const { return std::holds_alternative<std::string>(rep_); }

  /// Pre: IsInt().
  std::int64_t AsInt() const { return std::get<std::int64_t>(rep_); }
  /// Pre: IsString().
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  std::string ToString() const {
    if (IsInt()) return std::to_string(AsInt());
    return "\"" + AsString() + "\"";
  }

  friend bool operator==(const Value& a, const Value& b) = default;
  friend auto operator<=>(const Value& a, const Value& b) = default;

 private:
  std::variant<std::int64_t, std::string> rep_;
};

}  // namespace itdb

#endif  // ITDB_CORE_VALUE_H_
