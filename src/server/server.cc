#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "query/parser.h"
#include "storage/wal/storage_engine.h"
#include "util/errno_message.h"
#include "util/thread_pool.h"

namespace itdb {
namespace server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::InvalidArgument(std::string("fcntl: ") +
                                   ErrnoMessage(errno));
  }
  return Status::Ok();
}

}  // namespace

struct Server::Connection {
  explicit Connection(int fd_in, SharedDatabase* db,
                      const SessionOptions& session_options)
      : fd(fd_in), session(db, session_options) {}

  ~Connection() {
    if (fd >= 0) close(fd);
  }

  const int fd;
  LineBuffer lines;   // Event-loop thread only.
  Session session;    // AppendLine: loop thread; Execute: pumping worker.
  std::atomic<bool> open{true};

  std::mutex mu;                     // Guards queue + busy.
  std::deque<std::string> queue;     // Assembled statements awaiting a pump.
  bool busy = false;                 // A worker is pumping this connection.
  std::mutex write_mu;
};

Server::Server(Database* db, ServerOptions options)
    : options_(std::move(options)),
      // Seeding with the recovered LSN keeps post-restart versions disjoint
      // from pre-crash ones (options_ is already move-initialized here).
      shared_db_(db, options_.session.engine != nullptr
                         ? options_.session.engine->version()
                         : 0),
      normalize_cache_(options_.normalize_cache_capacity
                           ? options_.normalize_cache_capacity
                           : 1),
      result_cache_(options_.result_cache_bytes),
      admission_(options_.admission) {
  if (options_.normalize_cache_capacity > 0) {
    options_.session.normalize_cache = &normalize_cache_;
  }
  options_.session.batcher = &batcher_;
  if (options_.result_cache_bytes > 0) {
    options_.session.result_cache = &result_cache_;
  }
  options_.session.stats_cache = &stats_cache_;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.unix_path.empty() && options_.port < 0) {
    return Status::InvalidArgument(
        "server needs a unix_path or a TCP port");
  }
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: \"" +
                                     options_.unix_path + "\"");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::InvalidArgument(std::string("socket: ") +
                                     ErrnoMessage(errno));
    }
    unlink(options_.unix_path.c_str());
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      Status status = Status::InvalidArgument(
          "bind \"" + options_.unix_path + "\": " + ErrnoMessage(errno));
      close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::InvalidArgument(std::string("socket: ") +
                                     ErrnoMessage(errno));
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      Status status = Status::InvalidArgument(
          "bind 127.0.0.1:" + std::to_string(options_.port) + ": " +
          ErrnoMessage(errno));
      close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  Status status = SetNonBlocking(listen_fd_);
  if (status.ok() && listen(listen_fd_, options_.backlog) < 0) {
    status = Status::InvalidArgument(std::string("listen: ") +
                                     ErrnoMessage(errno));
  }
  if (status.ok() && pipe(wake_fds_) < 0) {
    status = Status::InvalidArgument(std::string("pipe: ") +
                                     ErrnoMessage(errno));
  }
  if (status.ok()) status = SetNonBlocking(wake_fds_[0]);
  if (!status.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    if (wake_fds_[0] >= 0) close(wake_fds_[0]);
    if (wake_fds_[1] >= 0) close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    return status;
  }
  // The global pool grows lazily (ParallelFor sizes it per call); a bare
  // Submit does not, so make sure statement pumps have workers to land on.
  ThreadPool::Global().EnsureWorkers(ThreadPool::DefaultThreads());
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake poll(); the loop notices stopping_ and drains out.
  (void)!write(wake_fds_[1], "x", 1);
  if (loop_.joinable()) loop_.join();
  {
    // In-flight pump tasks still hold Connection refs; let them finish so
    // their sockets see complete responses before we return.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
}

void Server::EventLoop() {
  std::map<int, std::shared_ptr<Connection>> connections;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& [fd, conn] : connections) {
      fds.push_back({fd, POLLIN, 0});
    }
    int ready = poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      // Timeout tick: reap connections a worker closed (quit / EPIPE).
      for (auto it = connections.begin(); it != connections.end();) {
        if (!it->second->open.load(std::memory_order_acquire)) {
          connections_active_.fetch_sub(1, std::memory_order_relaxed);
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }
    if (fds[1].revents & POLLIN) {
      char buf[64];
      while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      while (true) {
        int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!SetNonBlocking(fd).ok()) {
          close(fd);
          continue;
        }
        connections.emplace(fd, std::make_shared<Connection>(
                                    fd, &shared_db_, options_.session));
        connections_active_.fetch_add(1, std::memory_order_relaxed);
        obs::AddGlobalCounter("server.connections", 1);
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = connections.find(fds[i].fd);
      if (it == connections.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (fds[i].revents & POLLIN) OnReadable(conn);
      const bool hung_up = (fds[i].revents & (POLLHUP | POLLERR)) != 0;
      if (hung_up || !conn->open.load(std::memory_order_acquire)) {
        if (hung_up) {
          // A dropped client unwinds cleanly: any half-assembled statement
          // is abandoned without touching the shared database, and queued
          // statements finish against a socket nobody reads (EPIPE, eaten
          // by WriteFrame).
          conn->session.AbortPending();
          conn->open.store(false, std::memory_order_release);
        }
        connections_active_.fetch_sub(1, std::memory_order_relaxed);
        connections.erase(it);
      }
    }
  }
  // Shutdown: abandon assembly, drop loop-side refs.  Pump workers holding
  // refs finish their statements; Stop() waits for them.
  for (auto& [fd, conn] : connections) {
    conn->session.AbortPending();
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }
  connections.clear();
}

void Server::OnReadable(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->lines.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: no more statements will complete.
    conn->session.AbortPending();
    conn->open.store(false, std::memory_order_release);
    break;
  }
  while (std::optional<std::string> line = conn->lines.NextLine()) {
    std::optional<std::string> statement = conn->session.AppendLine(*line);
    if (!statement.has_value()) continue;
    if (StatementVerb(*statement).empty()) continue;
    EnqueueStatement(conn, *std::move(statement));
  }
}

void Server::EnqueueStatement(const std::shared_ptr<Connection>& conn,
                              std::string statement) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  obs::AddGlobalCounter("server.requests", 1);
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->queue.push_back(std::move(statement));
    if (!conn->busy) {
      conn->busy = true;
      schedule = true;
    }
  }
  if (!schedule) return;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  ThreadPool::Global().Submit([this, conn] {
    PumpConnection(conn);
    // Notify under the lock: the moment inflight_ hits zero with the lock
    // released, Stop() may return and the Server (cv included) may die.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
    inflight_cv_.notify_all();
  });
}

void Server::PumpConnection(const std::shared_ptr<Connection>& conn) {
  while (true) {
    std::string statement;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->queue.empty()) {
        conn->busy = false;
        return;
      }
      statement = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    HandleStatement(*conn, statement);
  }
}

void Server::HandleStatement(Connection& conn, const std::string& statement) {
  std::string_view verb = StatementVerb(statement);
  if (Session::IsQuitStatement(statement)) {
    WriteFrame(conn, ResponseStatus::kBye, "");
    // Half-close the socket; poll() reports the hangup and the loop reaps.
    shutdown(conn.fd, SHUT_RDWR);
    conn.open.store(false, std::memory_order_release);
    return;
  }
  if (verb == "status") {
    // Deliberately unadmitted: the overload dashboard must answer while the
    // server sheds everything else.
    WriteFrame(conn, ResponseStatus::kOk, StatusReport());
    return;
  }
  if (!admission_.TryAdmit()) {
    WriteFrame(conn, ResponseStatus::kRetry,
               "overloaded: admission queue is full, retry later\n");
    return;
  }
  // Class-aware admission: evaluating statements are graded AFTER clearing
  // the total bound (shedding under overload must never pay for analysis)
  // and heavy ones must also clear the smaller heavy bound, so worst-case-
  // exponential queries cannot occupy every worker.
  CostClass cls = CostClass::kNormal;
  if (verb == "ask" || verb == "query" || verb == "profile" ||
      verb == "PROFILE") {
    cls = ClassifyStatement(verb, statement);
    if (cls == CostClass::kHeavy && !admission_.PromoteToHeavy()) {
      admission_.Release(CostClass::kNormal);
      WriteFrame(conn, ResponseStatus::kRetry,
                 "overloaded: heavy-query admission is full, retry later\n");
      return;
    }
  }
  std::ostringstream out;
  Status status = conn.session.Execute(statement, out);
  admission_.Release(cls);
  WriteFrame(conn, status.ok() ? ResponseStatus::kOk : ResponseStatus::kError,
             out.str());
}

CostClass Server::ClassifyStatement(std::string_view verb,
                                    const std::string& statement) {
  std::string_view body = statement;
  const std::size_t verb_at = body.find(verb);
  if (verb_at == std::string_view::npos) return CostClass::kNormal;
  body.remove_prefix(verb_at + verb.size());
  const std::size_t start = body.find_first_not_of(" \t\n");
  if (start == std::string_view::npos) return CostClass::kNormal;
  body.remove_prefix(start);
  Result<query::QueryPtr> q = query::ParseQuery(body);
  if (!q.ok()) return CostClass::kNormal;
  return shared_db_.WithRead([&](const Database& db) {
    return ClassifyQueryCost(db, q.value());
  });
}

std::string Server::StatusReport() {
  std::ostringstream out;
  out << "connections_active " << connections_active() << "\n";
  out << "requests_total " << requests_total() << "\n";
  out << "queue_depth " << admission_.pending() << "\n";
  out << "queue_limit " << admission_.options().max_pending << "\n";
  out << "queue_heavy_depth " << admission_.pending_heavy() << "\n";
  out << "queue_heavy_limit " << admission_.options().max_pending_heavy
      << "\n";
  out << "admitted_total " << admission_.admitted_total() << "\n";
  out << "shed_total " << admission_.shed_total() << "\n";
  out << "shed_heavy_total " << admission_.shed_heavy_total() << "\n";
  QueryBatcher::Stats batch = batcher_.stats();
  out << "batch_leads " << batch.leads << "\n";
  out << "batch_coalesced " << batch.coalesced << "\n";
  ResultCache::Stats cache = result_cache_.stats();
  out << "cache_hits " << cache.hits << "\n";
  out << "cache_misses " << cache.misses << "\n";
  out << "cache_evictions " << cache.evictions << "\n";
  out << "cache_invalidations " << cache.invalidations << "\n";
  out << "cache_entries " << cache.entries << "\n";
  out << "cache_bytes " << cache.bytes << "\n";
  out << "cache_budget " << result_cache_.byte_budget() << "\n";
  StatsCache::Stats rstats = stats_cache_.stats();
  out << "stats_cache_hits " << rstats.hits << "\n";
  out << "stats_cache_misses " << rstats.misses << "\n";
  out << "db_version " << shared_db_.version() << "\n";
  if (const storage::StorageEngine* engine = options_.session.engine) {
    // The engine mutates only under the writer lock; read its stats under
    // the reader lock for a consistent line set.
    storage::StorageStats durable = shared_db_.WithRead(
        [&](const Database&) { return engine->stats(); });
    out << "durable_version " << durable.version << "\n";
    out << "snapshot_version " << durable.snapshot_version << "\n";
    out << "wal_records " << durable.wal_records << "\n";
    out << "wal_bytes " << durable.wal_bytes << "\n";
    out << "wal_appended_bytes "
        << obs::MetricsRegistry::Global()
               .GetCounter("storage.wal_appended_bytes")
               ->value()
        << "\n";
    out << "replayed_records " << durable.replayed_records << "\n";
    out << "recovered_torn_tail " << (durable.recovered_torn_tail ? 1 : 0)
        << "\n";
  }
  return out.str();
}

void Server::WriteFrame(Connection& conn, ResponseStatus status,
                        std::string_view payload) {
  const std::string frame = EncodeResponse(status, payload);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(conn.fd, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The socket is nonblocking; wait for drain.  Response frames are
      // bounded by relation-dump sizes, so briefly blocking the pumping
      // worker here is the simple, correct backpressure.
      pollfd pfd{conn.fd, POLLOUT, 0};
      (void)poll(&pfd, 1, /*timeout_ms=*/1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE & friends: the client vanished mid-response.
    conn.open.store(false, std::memory_order_release);
    return;
  }
}

}  // namespace server
}  // namespace itdb
