#include "server/admission.h"

#include "analysis/analyzer.h"
#include "obs/metrics.h"
#include "util/diagnostic.h"

namespace itdb {
namespace server {

namespace {

/// The pre-certificate grading: heavy iff the cost pass guessed an
/// NP-regime complement (A010) or a period blowup (A012).  Kept as the
/// fallback for queries whose certificate is unbounded -- exactly the
/// queries the guesses were invented for.
CostClass ClassifyHeuristic(const analysis::AnalysisResult& result) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == diag::kExpensiveComplement || d.code == diag::kPeriodBlowup) {
      return CostClass::kHeavy;
    }
  }
  return CostClass::kNormal;
}

}  // namespace

bool AdmissionQueue::TryAdmit(CostClass cls) {
  if (cls == CostClass::kHeavy && !PromoteToHeavy()) return false;
  std::int64_t now = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    if (cls == CostClass::kHeavy) {
      pending_heavy_.fetch_sub(1, std::memory_order_relaxed);
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::AddGlobalCounter("server.shed", 1);
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global()
      .GetCounter("server.queue_depth_max")
      ->RecordMax(now);
  return true;
}

bool AdmissionQueue::PromoteToHeavy() {
  std::int64_t now = pending_heavy_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > options_.max_pending_heavy) {
    pending_heavy_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_heavy_.fetch_add(1, std::memory_order_relaxed);
    obs::AddGlobalCounter("server.shed", 1);
    obs::AddGlobalCounter("server.shed_heavy", 1);
    return false;
  }
  return true;
}

void AdmissionQueue::Release(CostClass cls) {
  pending_.fetch_sub(1, std::memory_order_relaxed);
  if (cls == CostClass::kHeavy) {
    pending_heavy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

CostGrade GradeQueryCost(const Database& db, const query::QueryPtr& q) {
  analysis::AnalyzeOptions options;
  // Only the cost and certificate passes matter here; emptiness proofs (DBM
  // closures over every conjunction) are the expensive part of analysis and
  // evaluation re-runs them anyway.
  options.check_emptiness = false;
  analysis::AnalysisResult result = analysis::Analyze(db, q, options);
  CostGrade grade;
  if (result.HasErrors()) return grade;
  grade.root_certificate = result.root_certificate;
  if (grade.root_certificate.bounded()) {
    // Certified grading: the sound bounds replace the guesses in both
    // directions.  The thresholds are the analyzer's own (A014 / A015).
    const bool huge =
        *grade.root_certificate.rows > options.certified_rows_threshold ||
        *grade.root_certificate.lcm > options.period_blowup_threshold;
    grade.cls = huge ? CostClass::kHeavy : CostClass::kNormal;
    return grade;
  }
  grade.cls = ClassifyHeuristic(result);
  return grade;
}

CostClass ClassifyQueryCost(const Database& db, const query::QueryPtr& q) {
  return GradeQueryCost(db, q).cls;
}

}  // namespace server
}  // namespace itdb
