#include "server/admission.h"

#include "analysis/analyzer.h"
#include "obs/metrics.h"
#include "util/diagnostic.h"

namespace itdb {
namespace server {

bool AdmissionQueue::TryAdmit() {
  std::int64_t now = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::AddGlobalCounter("server.shed", 1);
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global()
      .GetCounter("server.queue_depth_max")
      ->RecordMax(now);
  return true;
}

void AdmissionQueue::Release() {
  pending_.fetch_sub(1, std::memory_order_relaxed);
}

CostClass ClassifyQueryCost(const Database& db, const query::QueryPtr& q) {
  analysis::AnalyzeOptions options;
  // Only the cost pass matters here; emptiness proofs (DBM closures over
  // every conjunction) are the expensive part of analysis and evaluation
  // re-runs them anyway.
  options.check_emptiness = false;
  analysis::AnalysisResult result = analysis::Analyze(db, q, options);
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == diag::kExpensiveComplement || d.code == diag::kPeriodBlowup) {
      return CostClass::kHeavy;
    }
  }
  return CostClass::kNormal;
}

}  // namespace server
}  // namespace itdb
