// One client's conversation with the engine: the parse -> analyze ->
// optimize -> evaluate pipeline behind both the interactive shell and the
// socket server.
//
// Before this layer existed the pipeline lived inline in the REPL loop
// (src/shell/shell.cc), so nothing else could drive it.  A Session owns
// everything per-client -- QueryOptions, the multi-line statement buffer, a
// result cursor, error/command counters -- while the Database is shared through
// SharedDatabase's reader-writer lock: read-only verbs (ask / query /
// explain / profile / check / ...) evaluate under the shared lock, mutating
// verbs (define / load / drop / coalesce / simplify) under the exclusive
// one.  The shell is now a thin client of Feed(); the server drives
// AppendLine()/Execute() directly so statement assembly stays on its event
// loop while execution runs on pool workers.
//
// Statement grammar: exactly the shell's command set (help prints it), plus
//   fetch [n]          next n tuples of the last `query` result (cursor)
//   set [name value]   per-session options; bare `set` lists them
// `quit` / `exit` are session-terminating and surface as Disposition::kQuit
// from Feed (Execute never sees them; use IsQuitStatement for routing).
//
// Budgets: with deadline_ms set, query-evaluating verbs run under a
// CancellationToken (util/thread_pool.h) and fail with kResourceExhausted
// when the budget elapses.  With cost_aware_budgets set, queries graded
// heavy (certified bounds over the analyzer's thresholds, or the A010 /
// A012 heuristics when no bound is certified -- see admission.h) get
// tuple/split budgets and deadline divided by heavy_budget_divisor -- the
// admission layer's defense against one pathological query starving the
// fleet.  Results enter the shared result cache only when their root
// certificate is bounded (certified cacheability).

#ifndef ITDB_SERVER_SESSION_H_
#define ITDB_SERVER_SESSION_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/normalize_cache.h"
#include "core/relation.h"
#include "query/eval.h"
#include "server/admission.h"
#include "server/batcher.h"
#include "server/result_cache.h"
#include "server/shared_database.h"
#include "util/status.h"

namespace itdb {

namespace storage {
class StorageEngine;
}  // namespace storage

namespace server {

struct SessionOptions {
  /// Per-session evaluation options (threads, budgets, analyze, ...).
  /// Mutable at runtime through the `set` verb.
  query::QueryOptions query;
  /// Wall-clock budget per query-evaluating command, in milliseconds.
  /// 0 = unlimited.
  std::int64_t deadline_ms = 0;
  /// Apply stricter budgets to queries the cost analysis grades heavy.
  bool cost_aware_budgets = false;
  /// Divisor for the heavy class's tuple/split budgets and deadline.
  std::int64_t heavy_budget_divisor = 8;
  /// Default row count for a bare `fetch`.
  std::int64_t fetch_batch = 16;
  /// Reject verbs that mutate the shared catalog or touch server-side
  /// files (define / load / save / drop / coalesce / simplify).
  bool read_only = false;
  /// Normalization memo-cache shared across sessions (not owned; null =
  /// one private cache per query evaluation).
  NormalizeCache* normalize_cache = nullptr;
  /// Coalesces identical concurrent plans (not owned; null = off).
  QueryBatcher* batcher = nullptr;
  /// Versioned cross-query result cache shared across sessions (not owned;
  /// null = off).  Keyed by the batcher fingerprint + database version, so
  /// hits are byte-identical and any catalog write invalidates wholesale.
  ResultCache* result_cache = nullptr;
  /// Per-relation statistics memo for the cost-based planner and the
  /// `stats` verb, shared across sessions (not owned; null recomputes).
  StatsCache* stats_cache = nullptr;
  /// Durable storage engine (not owned; null = in-memory only).  When set,
  /// every catalog mutation is WAL-logged through it -- under the same
  /// WithWrite lock as the in-memory change -- and the `checkpoint`,
  /// `as of`, and `history` verbs come alive.
  storage::StorageEngine* engine = nullptr;
};

class Session {
 public:
  explicit Session(SharedDatabase* db, SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  struct FeedResult {
    enum class Disposition {
      kDone,      // A statement executed (status holds its outcome).
      kNeedMore,  // Line buffered; the statement wants more lines.
      kQuit,      // quit / exit: the caller should end the session.
    };
    Disposition disposition = Disposition::kDone;
    Status status;
  };

  /// Feeds one input line: assembles multi-line statements, executes
  /// complete ones (output to `out`), recognizes quit/exit.
  FeedResult Feed(std::string_view line, std::ostream& out);

  /// Statement assembly only: buffers `line` and returns the completed
  /// statement once braces balance (single-line statements complete
  /// immediately).  Comment stripping applies to statement-initial lines
  /// only -- continuation lines pass through to the relation parser intact.
  std::optional<std::string> AppendLine(std::string_view line);

  /// Executes one complete statement.  Output and error reports go to
  /// `out`; the returned Status is the command's outcome.  Never executes
  /// quit/exit (route those via Feed or IsQuitStatement).
  Status Execute(std::string_view statement, std::ostream& out);

  /// True for quit / exit statements.
  static bool IsQuitStatement(std::string_view statement);

  /// A partially assembled statement is buffered (EOF or disconnect now
  /// would abandon it).
  bool has_pending() const { return !pending_.empty(); }

  /// Discards the partial statement, if any; returns whether there was one.
  /// The shared database is untouched -- assembly never executes anything.
  bool AbortPending();

  struct Stats {
    std::int64_t commands = 0;
    std::int64_t queries = 0;  // ask / query / profile evaluations.
    std::int64_t errors = 0;
    std::int64_t batched = 0;  // Served from a concurrent leader's result.
    std::int64_t cache_hits = 0;  // Served from the versioned result cache.
  };
  const Stats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }

 private:
  Status Dispatch(const std::string& verb, const std::string& rest,
                  std::ostream& out);
  Status CmdQuery(std::ostream& out, const std::string& text);
  Status CmdAsk(std::ostream& out, const std::string& text);
  Status CmdFetch(std::ostream& out, const std::string& args);
  Status CmdSet(std::ostream& out, const std::string& args);
  Status CmdLoad(const std::string& path);
  Status CmdDefine(const std::string& text);

  /// Evaluation options for `q`, with heavy-class budget division applied.
  /// `grade` is the precomputed cost grade (admission.h); null classifies
  /// here when cost_aware_budgets is set.
  query::QueryOptions EffectiveOptions(const Database& db,
                                       const query::QueryPtr& q,
                                       std::int64_t* deadline_ms,
                                       const CostGrade* grade = nullptr) const;

  /// Runs a read-only, deterministic evaluation -- through the batcher when
  /// configured -- rendering output into `out`.
  Status EvalThroughBatcher(std::string_view verb, const std::string& text,
                            std::ostream& out);

  SharedDatabase* db_;
  SessionOptions options_;
  std::string pending_;  // Partial multi-line statement.
  std::optional<GeneralizedRelation> cursor_;
  std::int64_t cursor_pos_ = 0;
  Stats stats_;
};

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_SESSION_H_
