// The itdb wire protocol: newline-delimited requests, length-prefixed
// responses.
//
// A client sends statements in the shell's command grammar, one line at a
// time ('\r' before '\n' is tolerated and stripped).  Most statements are a
// single line; a multi-line `define relation ... { ... }` block simply
// spans several lines and is complete when its braces balance -- the same
// assembly rule the interactive shell uses (server::Session::AppendLine).
// The server replies with exactly ONE frame per complete statement:
//
//   response = "itdb " status " " nbytes "\n" payload
//   status   = "ok"      command succeeded; payload is its output
//            | "error"   command failed; payload is the error report
//            | "retry"   shed by admission control; retriable verbatim
//            | "bye"     quit acknowledged; the server closes after this
//   nbytes   = decimal byte length of payload (which follows verbatim,
//              with no trailing newline of its own)
//
// The length prefix makes payloads self-delimiting (relation dumps contain
// newlines), so clients never sniff payload contents for framing.  Both
// directions are plain bytes -- no escaping anywhere.

#ifndef ITDB_SERVER_PROTOCOL_H_
#define ITDB_SERVER_PROTOCOL_H_

#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace itdb {
namespace server {

enum class ResponseStatus {
  kOk,
  kError,
  kRetry,
  kBye,
};

/// Stable wire name ("ok", "error", "retry", "bye").
std::string_view ResponseStatusName(ResponseStatus status);

/// Inverse of ResponseStatusName; kParseError for unknown names.
Result<ResponseStatus> ParseResponseStatus(std::string_view name);

/// Serializes one response frame (see the grammar above).
std::string EncodeResponse(ResponseStatus status, std::string_view payload);

/// One decoded response frame.
struct ResponseFrame {
  ResponseStatus status = ResponseStatus::kOk;
  std::string payload;

  friend bool operator==(const ResponseFrame&, const ResponseFrame&) = default;
};

/// Incremental decoder for a stream of response frames.  Feed raw bytes in
/// any chunking; Next() yields complete frames in order.  Used by the C++
/// test client; tools/itdb_client.py implements the same state machine.
class ResponseDecoder {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// The next complete frame, nullopt when more bytes are needed, or
  /// kParseError when the stream violates the grammar (the decoder is then
  /// poisoned: every later call reports the same error).
  Result<std::optional<ResponseFrame>> Next();

 private:
  std::string buffer_;
  Status error_ = Status::Ok();
};

/// Splits a raw byte stream into lines for the request direction: feed
/// arbitrary chunks, pop complete lines ('\n'-terminated, '\r\n' tolerated,
/// terminator stripped).  Bytes after the last terminator stay buffered.
class LineBuffer {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// The next complete line, or nullopt when none is buffered.
  std::optional<std::string> NextLine();

  /// Unterminated trailing bytes (what a dropped client left behind).
  const std::string& pending() const { return buffer_; }

 private:
  std::string buffer_;
};

/// The first whitespace-delimited word of `statement` -- its verb.  Empty
/// for blank statements.
std::string_view StatementVerb(std::string_view statement);

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_PROTOCOL_H_
