#include "server/protocol.h"

#include <cstddef>
#include <utility>

namespace itdb {
namespace server {

std::string_view ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kError:
      return "error";
    case ResponseStatus::kRetry:
      return "retry";
    case ResponseStatus::kBye:
      return "bye";
  }
  return "error";
}

Result<ResponseStatus> ParseResponseStatus(std::string_view name) {
  if (name == "ok") return ResponseStatus::kOk;
  if (name == "error") return ResponseStatus::kError;
  if (name == "retry") return ResponseStatus::kRetry;
  if (name == "bye") return ResponseStatus::kBye;
  return Status::ParseError("unknown response status \"" + std::string(name) +
                            "\"");
}

std::string EncodeResponse(ResponseStatus status, std::string_view payload) {
  std::string out = "itdb ";
  out += ResponseStatusName(status);
  out += ' ';
  out += std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

Result<std::optional<ResponseFrame>> ResponseDecoder::Next() {
  if (!error_.ok()) return error_;
  const std::size_t eol = buffer_.find('\n');
  if (eol == std::string::npos) {
    return std::optional<ResponseFrame>(std::nullopt);
  }
  std::string_view header(buffer_.data(), eol);
  auto fail = [this](std::string message) -> Result<std::optional<ResponseFrame>> {
    error_ = Status::ParseError(std::move(message));
    return error_;
  };
  if (header.substr(0, 5) != "itdb ") {
    return fail("response header missing \"itdb \" magic: \"" +
                std::string(header) + "\"");
  }
  header.remove_prefix(5);
  const std::size_t space = header.find(' ');
  if (space == std::string_view::npos) {
    return fail("response header missing byte count");
  }
  Result<ResponseStatus> status = ParseResponseStatus(header.substr(0, space));
  if (!status.ok()) {
    error_ = status.status();
    return error_;
  }
  std::string_view count = header.substr(space + 1);
  std::size_t nbytes = 0;
  if (count.empty()) return fail("empty response byte count");
  for (char c : count) {
    if (c < '0' || c > '9') {
      return fail("malformed response byte count \"" + std::string(count) +
                  "\"");
    }
    nbytes = nbytes * 10 + static_cast<std::size_t>(c - '0');
    if (nbytes > (std::size_t{1} << 32)) {
      return fail("response byte count out of range");
    }
  }
  if (buffer_.size() - eol - 1 < nbytes) {
    return std::optional<ResponseFrame>(std::nullopt);  // Payload incomplete.
  }
  ResponseFrame frame;
  frame.status = status.value();
  frame.payload = buffer_.substr(eol + 1, nbytes);
  buffer_.erase(0, eol + 1 + nbytes);
  return std::optional<ResponseFrame>(std::move(frame));
}

std::optional<std::string> LineBuffer::NextLine() {
  const std::size_t eol = buffer_.find('\n');
  if (eol == std::string::npos) return std::nullopt;
  std::size_t len = eol;
  if (len > 0 && buffer_[len - 1] == '\r') --len;
  std::string line = buffer_.substr(0, len);
  buffer_.erase(0, eol + 1);
  return line;
}

std::string_view StatementVerb(std::string_view statement) {
  std::size_t start = statement.find_first_not_of(" \t");
  if (start == std::string_view::npos) return {};
  std::size_t end = statement.find_first_of(" \t\n", start);
  if (end == std::string_view::npos) return statement.substr(start);
  return statement.substr(start, end - start);
}

}  // namespace server
}  // namespace itdb
