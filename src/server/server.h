// The itdb query service: a multi-client socket front end over one shared
// Database.
//
// One event-loop thread owns accept + read + statement assembly (via
// Session::AppendLine, so the wire grammar IS the shell grammar); complete
// statements are queued per connection and executed on util/thread_pool
// workers, one at a time per connection (statements from one client run in
// the order sent; statements from different clients run concurrently).
// Before a statement executes it passes admission control: past the bound
// the server answers `retry` immediately instead of queueing -- see
// admission.h.  `status` and `quit` bypass admission (they must work best
// under overload).
//
// Listens on a Unix-domain socket (options.unix_path) or loopback TCP
// (options.port; 0 picks an ephemeral port, readable from port() after
// Start).  Wire format: protocol.h.  Stop() drains in-flight statements and
// joins the loop; the destructor calls it.
//
// Concurrency invariants worth knowing before editing:
//   * A Session's AppendLine runs only on the event loop; its Execute runs
//     only on the single worker pumping that connection.  The two touch
//     disjoint Session state (pending_ vs everything else), so neither
//     locks.
//   * Workers never block on other statements except as a batch follower,
//     and a follower's leader is already running (batcher.h), so progress
//     never depends on a free worker.
//   * Sockets are written only by the pumping worker, under the
//     connection's write mutex, with MSG_NOSIGNAL (a vanished client is an
//     EPIPE to handle, not a SIGPIPE to die from).

#ifndef ITDB_SERVER_SERVER_H_
#define ITDB_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/normalize_cache.h"
#include "core/stats.h"
#include "server/admission.h"
#include "server/batcher.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/session.h"
#include "server/shared_database.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {
namespace server {

struct ServerOptions {
  /// Unix-domain socket path.  Non-empty wins over `port`; an existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// TCP port on 127.0.0.1; 0 = ephemeral (read port() after Start).
  /// Ignored when unix_path is set; both unset is an error.
  int port = -1;
  int backlog = 64;
  AdmissionOptions admission;
  /// Per-session defaults (deadline, budgets, read_only, ...).  The
  /// normalize_cache and batcher fields are overwritten with the server's
  /// own shared instances.
  SessionOptions session;
  /// Capacity of the server-wide normalization memo-cache shared by every
  /// session (0 disables sharing).
  std::size_t normalize_cache_capacity = std::size_t{1} << 12;
  /// Byte budget of the versioned cross-query result cache shared by every
  /// session (result_cache.h); 0 disables caching.
  std::size_t result_cache_bytes = std::size_t{1} << 24;
};

class Server {
 public:
  /// The Database must outlive the server; all access to it must go through
  /// shared_database() once the server is running.
  Server(Database* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop.  Fails (without starting
  /// anything) if the socket cannot be set up.
  Status Start();

  /// Stops accepting, drains in-flight statements, joins the loop, closes
  /// every connection.  Idempotent.
  void Stop();

  /// The bound TCP port (after Start, when listening on TCP).
  int port() const { return port_; }

  std::int64_t requests_total() const {
    return requests_total_.load(std::memory_order_relaxed);
  }
  std::int64_t connections_active() const {
    return connections_active_.load(std::memory_order_relaxed);
  }
  const AdmissionQueue& admission() const { return admission_; }
  const QueryBatcher& batcher() const { return batcher_; }
  const ResultCache& result_cache() const { return result_cache_; }
  const StatsCache& stats_cache() const { return stats_cache_; }
  SharedDatabase& shared_database() { return shared_db_; }

 private:
  struct Connection;

  void EventLoop();
  void OnReadable(const std::shared_ptr<Connection>& conn);
  /// Queues `statement` for the connection and ensures a worker is pumping.
  void EnqueueStatement(const std::shared_ptr<Connection>& conn,
                        std::string statement);
  /// Worker entry: executes the connection's queued statements in order.
  void PumpConnection(const std::shared_ptr<Connection>& conn);
  void HandleStatement(Connection& conn, const std::string& statement);
  /// Grades an evaluating statement (ask / query / profile) for class-aware
  /// admission.  Unparseable statements grade kNormal; execution reports
  /// the real error.
  CostClass ClassifyStatement(std::string_view verb,
                              const std::string& statement);
  std::string StatusReport();
  static void WriteFrame(Connection& conn, ResponseStatus status,
                         std::string_view payload);

  ServerOptions options_;
  SharedDatabase shared_db_;
  NormalizeCache normalize_cache_;
  QueryBatcher batcher_;
  ResultCache result_cache_;
  StatsCache stats_cache_;
  AdmissionQueue admission_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // Self-pipe: Stop() wakes poll().
  int port_ = -1;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::int64_t> requests_total_{0};
  std::atomic<std::int64_t> connections_active_{0};

  // In-flight pump tasks; Stop() waits for zero.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::int64_t inflight_ = 0;
};

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_SERVER_H_
