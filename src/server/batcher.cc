#include "server/batcher.h"

#include "obs/metrics.h"

namespace itdb {
namespace server {

QueryBatcher::Outcome QueryBatcher::Run(
    const std::string& key, std::uint64_t version,
    const std::function<Outcome()>& compute, bool* shared) {
  if (shared != nullptr) *shared = false;
  const std::pair<std::string, std::uint64_t> full_key(key, version);
  std::shared_ptr<InFlight> entry;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(full_key);
    if (it == inflight_.end()) {
      entry = std::make_shared<InFlight>();
      inflight_.emplace(full_key, entry);
      leader = true;
      ++stats_.leads;
    } else {
      entry = it->second;
      ++stats_.coalesced;
    }
  }
  if (leader) {
    Outcome outcome = compute();
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->outcome = outcome;
      entry->done = true;
    }
    entry->cv.notify_all();
    {
      // Retire the entry: later arrivals must re-evaluate (no caching).
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(full_key);
      if (it != inflight_.end() && it->second == entry) inflight_.erase(it);
    }
    return outcome;
  }
  obs::AddGlobalCounter("server.batched", 1);
  if (shared != nullptr) *shared = true;
  std::unique_lock<std::mutex> lock(entry->mu);
  entry->cv.wait(lock, [&entry] { return entry->done; });
  return entry->outcome;
}

QueryBatcher::Stats QueryBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace server
}  // namespace itdb
