// Versioned cross-query result cache: the batcher's key, extended across
// time.
//
// QueryBatcher (batcher.h) coalesces identical plans only while they are
// CONCURRENT -- the leader's outcome is dropped the moment it is published.
// Dashboards and monitoring fleets re-issue the same queries against a
// database that mutates rarely, recomputing identical results between
// writes.  ResultCache keeps those outcomes: entries are keyed by the same
// fingerprint the batcher uses (canonical plan text plus every
// outcome-changing option) paired with the SharedDatabase version the
// evaluation observed, so a catalog write -- which bumps the version --
// invalidates the whole cache wholesale on the next access.  Within one
// version, a hit returns the rendered text and the shared result relation
// (re-seating the session's fetch cursor) byte-identically.
//
// Bounded by a byte budget, evicted LRU; only successful outcomes are
// cached (failures are often budget- or deadline-shaped and must re-run).
// Thread-safe; all operations take one mutex, and the relation payload is
// shared immutably via shared_ptr, so hits copy nothing.

#ifndef ITDB_SERVER_RESULT_CACHE_H_
#define ITDB_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/relation.h"

namespace itdb {
namespace server {

/// A cached successful outcome: the rendered response and, for open
/// queries, the result relation backing `fetch` cursors (null for verbs
/// that render text only, e.g. `ask`).
struct CachedResult {
  std::string text;
  std::shared_ptr<const GeneralizedRelation> relation;
};

class ResultCache {
 public:
  /// `byte_budget` bounds the estimated resident size of all entries; an
  /// entry larger than the whole budget is simply not cached.
  explicit ResultCache(std::size_t byte_budget);

  /// Returns the entry for `key` computed at exactly `version`, refreshing
  /// its recency.  A `version` newer than the cache's clears every entry
  /// first (catalog writes invalidate wholesale).
  std::optional<CachedResult> Lookup(const std::string& key,
                                     std::uint64_t version);

  /// Stores `result` for `key` at `version`, evicting least-recently-used
  /// entries past the byte budget.  A stale `version` (older than the
  /// cache's) is dropped: the result was computed against a catalog that no
  /// longer exists.
  void Insert(const std::string& key, std::uint64_t version,
              CachedResult result);

  void Clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;      // LRU byte-budget evictions.
    std::uint64_t invalidations = 0;  // Wholesale version-bump clears.
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  Stats stats() const;

  std::size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    CachedResult result;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  /// Drops every entry and advances the version clock.  Caller holds mu_.
  void ClearLocked(std::uint64_t version);
  /// Evicts from the LRU tail until within budget.  Caller holds mu_.
  void EvictLocked();

  const std::size_t byte_budget_;
  mutable std::mutex mu_;
  std::uint64_t version_ = 0;
  std::size_t bytes_ = 0;
  std::list<std::string> lru_;  // Front = most recent.
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

/// The resident-size estimate the cache charges for a result relation:
/// per-tuple lrp, data value, and constraint-matrix footprint.  Exposed for
/// the byte-budget tests.
std::size_t EstimateRelationBytes(const GeneralizedRelation& rel);

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_RESULT_CACHE_H_
