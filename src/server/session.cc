#include "server/session.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "core/coalesce.h"
#include "core/simplify.h"
#include "core/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/optimize.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/sorts.h"
#include "server/admission.h"
#include "storage/binary/binary_format.h"
#include "storage/text_format.h"
#include "storage/wal/storage_engine.h"
#include "tl/ltl.h"
#include "tl/parser.h"
#include "util/diagnostic.h"
#include "util/thread_pool.h"

namespace itdb {
namespace server {

namespace {

constexpr const char* kHelp = R"(commands:
  help                          this text
  load <path>                   parse relation blocks from a file
  define relation N(...) {...}  inline definition (may span lines)
  list                          relation names
  show <name>                   print a relation
  enumerate <name> <lo> <hi>    concrete rows with coordinates in [lo, hi]
  ask <query>                   yes/no first-order query
  query <query>                 open query; prints the result relation
  fetch [n]                     next n tuples of the last `query` result
  set [<name> <value>]          per-session options; bare `set` lists them
  explain <query>               print the (optimized) query-plan tree
  profile <query>               evaluate with tracing; prints per-plan-node
                                wall/CPU time, tuple counts, and kernel stats
  metrics                       dump the process-global metrics registry
  stats [name]                  per-relation statistics (tuple counts,
                                distinct keys, period lcm, interval hull)
  check <query>                 static analysis only: sort errors, unsafe
                                variables, provably empty subqueries, cost
                                warnings -- with source-span diagnostics
  tlcheck <tl-formula>          does the temporal-logic formula hold at
                                every instant?  (e.g. G(req -> F[0,5](ack)))
  sat <tl-formula>              instants satisfying the formula
  coalesce <name>               merge residue families in place
  simplify <name>               drop empty and subsumed tuples in place
  witness <name>                print one concrete row, if any
  save <path>                   write the catalog to a file (.itdbb = binary)
  drop <name>                   remove a relation
  checkpoint                    write a snapshot and reset the WAL
                                (needs a durable session: --data-dir)
  as of <version> [name]        the catalog (or one relation) as it stood
                                after LSN <version> (durable sessions)
  history <name>                every recorded row of a relation with its
                                [sys_from, sys_to) system period
  quit | exit                   leave
)";

// First whitespace-delimited word; `rest` receives the remainder trimmed.
// Splits on spaces and tabs only, so a multi-line define statement keeps its
// continuation lines intact in `rest`.
std::string SplitCommand(const std::string& line, std::string* rest) {
  std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) {
    rest->clear();
    return "";
  }
  std::size_t end = line.find_first_of(" \t", start);
  std::string head = line.substr(start, end - start);
  if (end == std::string::npos) {
    rest->clear();
  } else {
    std::size_t rstart = line.find_first_not_of(" \t", end);
    *rest = rstart == std::string::npos ? "" : line.substr(rstart);
  }
  return head;
}

int BraceBalance(const std::string& s) {
  int open = 0;
  for (char c : s) {
    if (c == '{') ++open;
    if (c == '}') --open;
  }
  return open;
}

// Installs a cancellation deadline for the enclosed evaluation when
// `deadline_ms` is positive; otherwise a no-op.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(std::int64_t deadline_ms) {
    if (deadline_ms > 0) {
      token_.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
      scope_.emplace(&token_);
    }
  }

 private:
  CancellationToken token_;
  std::optional<CancellationScope> scope_;
};

bool IsBinaryPath(const std::string& path) {
  return path.size() >= 6 && path.ends_with(".itdbb");
}

Status CmdSave(const Database& db, const std::string& path) {
  if (IsBinaryPath(path)) return storage::SaveDatabaseFile(db, path);
  std::ofstream file(path);
  if (!file) return Status::InvalidArgument("cannot write \"" + path + "\"");
  file << db.ToText();
  return Status::Ok();
}

Status CmdShow(std::ostream& out, const Database& db,
               const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  out << PrintRelation(name, rel);
  return Status::Ok();
}

Status CmdAsOf(std::ostream& out, const storage::StorageEngine& engine,
               const std::string& args) {
  std::istringstream in(args);
  std::int64_t version = 0;
  if (!(in >> version) || version < 0) {
    return Status::InvalidArgument("usage: as of <version> [name]");
  }
  std::string name;
  in >> name;
  ITDB_ASSIGN_OR_RETURN(Database db,
                        engine.AsOf(static_cast<std::uint64_t>(version)));
  if (!name.empty()) return CmdShow(out, db, name);
  out << db.ToText();
  out << db.size() << " relation(s) as of version " << version << "\n";
  return Status::Ok();
}

Status CmdHistory(std::ostream& out, const storage::StorageEngine& engine,
                  const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("usage: history <name>");
  ITDB_ASSIGN_OR_RETURN(std::vector<storage::HistoryEntry> entries,
                        engine.History(name));
  for (const storage::HistoryEntry& entry : entries) {
    out << "  [" << entry.sys_from << ", ";
    if (entry.sys_to == storage::kOpenVersion) {
      out << "now";
    } else {
      out << entry.sys_to;
    }
    out << ") " << entry.tuple.ToString() << "\n";
  }
  out << entries.size() << " row(s)\n";
  return Status::Ok();
}

Status CmdEnumerate(std::ostream& out, const Database& db,
                    const std::string& args) {
  std::istringstream in(args);
  std::string name;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  if (!(in >> name >> lo >> hi)) {
    return Status::InvalidArgument("usage: enumerate <name> <lo> <hi>");
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  std::vector<ConcreteRow> rows = rel.Enumerate(lo, hi);
  for (const ConcreteRow& row : rows) {
    out << "  " << row.ToString() << "\n";
  }
  out << rows.size() << " row(s)\n";
  return Status::Ok();
}

// Static analysis of a first-order query: rustc-style caret diagnostics,
// then a one-line summary.  Findings go to `out` as ordinary output; the
// command itself only fails on I/O-level problems, so scripted `check`
// runs (tools/check_queries.py) can assert on the printed codes.
Status CmdCheckQuery(std::ostream& out, const Database& db,
                     const std::string& text) {
  Result<query::QueryPtr> q = query::ParseQuery(text);
  if (!q.ok()) {
    out << "error[parse]: " << q.status().message() << "\n";
    out << "check: 1 error(s), 0 warning(s)\n";
    return Status::Ok();
  }
  analysis::AnalysisResult result = analysis::Analyze(db, q.value());
  out << FormatDiagnostics(text, result.diagnostics);
  if (result.root_proven_empty) {
    out << "note: the query result is statically empty\n";
  }
  if (result.diagnostics.empty()) {
    out << "check: ok\n";
  } else {
    out << "check: " << result.errors() << " error(s), " << result.warnings()
        << " warning(s)\n";
  }
  return Status::Ok();
}

Status CmdCheckTl(std::ostream& out, const Database& db,
                  const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(tl::TlPtr formula, tl::ParseTlFormula(text));
  ITDB_ASSIGN_OR_RETURN(bool holds, tl::HoldsEverywhere(db, formula));
  if (holds) {
    out << "PASS: holds at every instant\n";
    return Status::Ok();
  }
  ITDB_ASSIGN_OR_RETURN(
      GeneralizedRelation sat,
      tl::SatisfactionSet(db, tl::TlFormula::Not(formula)));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation packed, CoalesceResidues(sat));
  out << "FAIL: violated on\n" << PrintRelation("violations", packed);
  return Status::Ok();
}

Status CmdSat(std::ostream& out, const Database& db, const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(tl::TlPtr formula, tl::ParseTlFormula(text));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation sat,
                        tl::SatisfactionSet(db, formula));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation packed, CoalesceResidues(sat));
  out << PrintRelation("sat", packed);
  out << packed.size() << " generalized tuple(s)\n";
  return Status::Ok();
}

// Replaces `name` with `relation`, through the durable engine when one is
// configured so the rewrite is WAL-logged and versioned.
Status PutRelation(Database& db, storage::StorageEngine* engine,
                   const std::string& name, GeneralizedRelation relation) {
  if (engine != nullptr) return engine->ApplyPut(db, name, std::move(relation));
  db.Put(name, std::move(relation));
  return Status::Ok();
}

Status CmdCoalesce(std::ostream& out, Database& db,
                   storage::StorageEngine* engine, const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  std::int64_t before = rel.size();
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation packed, CoalesceResidues(rel));
  out << before << " -> " << packed.size() << " tuple(s)\n";
  return PutRelation(db, engine, name, std::move(packed));
}

Status CmdSimplify(std::ostream& out, Database& db,
                   storage::StorageEngine* engine, const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  std::int64_t before = rel.size();
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation simplified, Simplify(rel));
  out << before << " -> " << simplified.size() << " tuple(s)\n";
  return PutRelation(db, engine, name, std::move(simplified));
}

Status CmdWitness(std::ostream& out, const Database& db,
                  const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  ITDB_ASSIGN_OR_RETURN(std::optional<ConcreteRow> row, FindWitness(rel));
  if (row.has_value()) {
    out << row->ToString() << "\n";
  } else {
    out << "empty relation\n";
  }
  return Status::Ok();
}

Status CmdExplain(std::ostream& out, const Database& db,
                  const query::QueryOptions& opts, const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(query::QueryPtr q, query::ParseQuery(text));
  out << "query:     " << q->ToString() << "\n";
  query::QueryPtr optimized = query::Optimize(q);
  out << "optimized: " << optimized->ToString() << "\n";
  // Analyzer findings in a STABLE severity order -- errors, then warnings,
  // then notes, pass order within each severity -- so scripts can pin the
  // first analysis line regardless of which pass found what.
  analysis::AnalysisResult analyzed = analysis::Analyze(db, q);
  if (!analyzed.diagnostics.empty()) {
    std::vector<Diagnostic> ordered = analyzed.diagnostics;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     });
    out << "analysis:\n" << FormatDiagnosticList(ordered) << "\n";
  }
  if (opts.cost_plan) {
    // Show the PLANNED tree with the estimates that ordered it and, when
    // certified bounds are on, the certificates that clamped them.  Sort
    // inference can fail (unknown relations, sort conflicts); the
    // unestimated tree is still worth printing then.
    Result<query::SortMap> sorts = query::InferSorts(db, optimized);
    if (sorts.ok()) {
      std::optional<analysis::AbstractInterpreter> interp;
      if (opts.certified_bounds) {
        interp.emplace(db, sorts.value(), opts.stats_cache);
        interp->SeedActiveDomain(*q);
        interp->Interpret(optimized);
      }
      query::PlannedQuery planned =
          query::PlanQuery(db, optimized, sorts.value(), opts.stats_cache,
                           interp.has_value() ? &*interp : nullptr);
      out << "plan:\n"
          << query::FormatQueryPlanWithEstimates(
                 planned.query, planned.estimates,
                 interp.has_value() ? &interp->certificates() : nullptr);
      return Status::Ok();
    }
  }
  out << "plan:\n" << query::FormatQueryPlan(optimized);
  return Status::Ok();
}

Status CmdStats(std::ostream& out, const Database& db, const std::string& args,
                StatsCache* cache) {
  std::vector<std::string> names;
  if (!args.empty()) {
    std::istringstream in(args);
    std::string name;
    while (in >> name) names.push_back(name);
  } else {
    names = db.Names();
  }
  for (const std::string& name : names) {
    ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
    RelationStats stats = cache != nullptr
                              ? cache->Get(name, db.version(), rel)
                              : ComputeRelationStats(rel);
    out << FormatRelationStats(name, stats);
  }
  return Status::Ok();
}

void CmdMetrics(std::ostream& out) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::PublishThreadPoolMetrics(registry);
  obs::PublishArenaMetrics(registry);
  out << registry.snapshot().ToText();
}

bool ParseOnOff(const std::string& value, bool* flag) {
  if (value == "on" || value == "true" || value == "1") {
    *flag = true;
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    *flag = false;
    return true;
  }
  return false;
}

}  // namespace

Session::Session(SharedDatabase* db, SessionOptions options)
    : db_(db), options_(std::move(options)) {
  obs::AddGlobalCounter("server.sessions_opened", 1);
  obs::AddGlobalCounter("server.sessions_active", 1);
}

Session::~Session() {
  obs::AddGlobalCounter("server.sessions_active", -1);
}

bool Session::IsQuitStatement(std::string_view statement) {
  std::string rest;
  std::string verb = SplitCommand(std::string(statement), &rest);
  return verb == "quit" || verb == "exit";
}

std::optional<std::string> Session::AppendLine(std::string_view line) {
  if (pending_.empty()) {
    std::string text(line);
    std::size_t hash = text.find('#');
    if (hash != std::string::npos) text.erase(hash);
    std::string rest;
    std::string verb = SplitCommand(text, &rest);
    // Only `define` statements continue across lines; for everything else a
    // stray brace is the statement's own problem.
    if (verb == "define" && BraceBalance(text) > 0) {
      pending_ = text;
      return std::nullopt;
    }
    return text;
  }
  // Continuation lines feed the relation parser verbatim -- no comment
  // stripping, matching the classic shell's CompleteBlock behavior.
  pending_ += "\n";
  pending_ += std::string(line);
  if (BraceBalance(pending_) > 0) return std::nullopt;
  std::string statement = std::move(pending_);
  pending_.clear();
  return statement;
}

bool Session::AbortPending() {
  if (pending_.empty()) return false;
  pending_.clear();
  return true;
}

Session::FeedResult Session::Feed(std::string_view line, std::ostream& out) {
  FeedResult result;
  std::optional<std::string> statement = AppendLine(line);
  if (!statement.has_value()) {
    result.disposition = FeedResult::Disposition::kNeedMore;
    return result;
  }
  if (IsQuitStatement(*statement)) {
    result.disposition = FeedResult::Disposition::kQuit;
    return result;
  }
  result.status = Execute(*statement, out);
  return result;
}

Status Session::Execute(std::string_view statement, std::ostream& out) {
  std::string line(statement);
  std::string rest;
  std::string verb = SplitCommand(line, &rest);
  if (verb.empty() || verb == "quit" || verb == "exit") return Status::Ok();
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  ++stats_.commands;
  obs::AddGlobalCounter("server.commands", 1);
  obs::Span span =
      obs::Span::Begin(obs::ResolveTracer(options_.query.tracer), verb,
                       "server");
  Status status = Dispatch(verb, rest, out);
  span.AddArg("ok", status.ok() ? 1 : 0);
  span.End();
  obs::MetricsRegistry::Global()
      .GetHistogram("server.command_ns")
      ->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count());
  if (!status.ok()) {
    ++stats_.errors;
    obs::AddGlobalCounter("server.errors", 1);
    out << "error: " << status << "\n";
  }
  return status;
}

Status Session::Dispatch(const std::string& verb, const std::string& rest,
                         std::ostream& out) {
  if (options_.read_only &&
      (verb == "define" || verb == "load" || verb == "save" ||
       verb == "drop" || verb == "coalesce" || verb == "simplify" ||
       verb == "checkpoint")) {
    return Status::InvalidArgument("read-only session: \"" + verb +
                                   "\" is disabled");
  }
  if (verb == "help") {
    out << kHelp;
    return Status::Ok();
  }
  if (verb == "load") return CmdLoad(rest);
  if (verb == "save") {
    return db_->WithRead(
        [&](const Database& db) { return CmdSave(db, rest); });
  }
  if (verb == "list") {
    db_->WithRead([&](const Database& db) {
      for (const std::string& name : db.Names()) out << name << "\n";
      return 0;
    });
    return Status::Ok();
  }
  if (verb == "show") {
    return db_->WithRead(
        [&](const Database& db) { return CmdShow(out, db, rest); });
  }
  if (verb == "enumerate") {
    return db_->WithRead(
        [&](const Database& db) { return CmdEnumerate(out, db, rest); });
  }
  if (verb == "ask") return CmdAsk(out, rest);
  if (verb == "query") return CmdQuery(out, rest);
  if (verb == "fetch") return CmdFetch(out, rest);
  if (verb == "set") return CmdSet(out, rest);
  if (verb == "explain" || verb == "EXPLAIN") {
    return db_->WithRead([&](const Database& db) {
      query::QueryOptions opts = options_.query;
      if (opts.stats_cache == nullptr) opts.stats_cache = options_.stats_cache;
      return CmdExplain(out, db, opts, rest);
    });
  }
  if (verb == "stats") {
    return db_->WithRead([&](const Database& db) {
      return CmdStats(out, db, rest, options_.stats_cache);
    });
  }
  if (verb == "profile" || verb == "PROFILE") {
    ++stats_.queries;
    obs::AddGlobalCounter("server.queries", 1);
    ITDB_ASSIGN_OR_RETURN(query::QueryPtr q, query::ParseQuery(rest));
    return db_->WithRead([&](const Database& db) -> Status {
      std::int64_t deadline_ms = options_.deadline_ms;
      query::QueryOptions opts = EffectiveOptions(db, q, &deadline_ms);
      DeadlineGuard deadline(deadline_ms);
      ITDB_ASSIGN_OR_RETURN(query::ProfiledResult profiled,
                            query::EvalQueryProfiled(db, q, opts));
      out << profiled.profile.ToText();
      out << profiled.relation.size() << " generalized tuple(s)\n";
      return Status::Ok();
    });
  }
  if (verb == "metrics") {
    CmdMetrics(out);
    return Status::Ok();
  }
  if (verb == "check") {
    return db_->WithRead(
        [&](const Database& db) { return CmdCheckQuery(out, db, rest); });
  }
  if (verb == "tlcheck") {
    return db_->WithRead([&](const Database& db) {
      DeadlineGuard deadline(options_.deadline_ms);
      return CmdCheckTl(out, db, rest);
    });
  }
  if (verb == "sat") {
    return db_->WithRead([&](const Database& db) {
      DeadlineGuard deadline(options_.deadline_ms);
      return CmdSat(out, db, rest);
    });
  }
  if (verb == "coalesce") {
    return db_->WithWrite([&](Database& db) {
      return CmdCoalesce(out, db, options_.engine, rest);
    });
  }
  if (verb == "simplify") {
    return db_->WithWrite([&](Database& db) {
      return CmdSimplify(out, db, options_.engine, rest);
    });
  }
  if (verb == "witness") {
    return db_->WithRead(
        [&](const Database& db) { return CmdWitness(out, db, rest); });
  }
  if (verb == "drop") {
    return db_->WithWrite([&](Database& db) {
      if (options_.engine != nullptr) {
        return options_.engine->ApplyRemove(db, rest);
      }
      return db.Remove(rest);
    });
  }
  if (verb == "define") return CmdDefine(rest);
  if (verb == "checkpoint") {
    if (options_.engine == nullptr) {
      return Status::InvalidArgument(
          "no durable storage (start with --data-dir)");
    }
    // Under the writer lock: the snapshot must capture a quiescent state.
    return db_->WithWrite(
        [&](Database&) { return options_.engine->Checkpoint(); });
  }
  // `as of <version> [name]` arrives as verb "as", rest "of ..."; accept a
  // fused "asof" spelling too.
  if (verb == "as" || verb == "asof") {
    std::string args = rest;
    if (verb == "as") {
      std::string tail;
      if (SplitCommand(rest, &tail) != "of") {
        return Status::InvalidArgument("usage: as of <version> [name]");
      }
      args = tail;
    }
    if (options_.engine == nullptr) {
      return Status::InvalidArgument(
          "no durable storage (start with --data-dir)");
    }
    return db_->WithRead([&](const Database&) {
      return CmdAsOf(out, *options_.engine, args);
    });
  }
  if (verb == "history") {
    if (options_.engine == nullptr) {
      return Status::InvalidArgument(
          "no durable storage (start with --data-dir)");
    }
    return db_->WithRead([&](const Database&) {
      return CmdHistory(out, *options_.engine, rest);
    });
  }
  return Status::InvalidArgument("unknown command \"" + verb +
                                 "\" (try: help)");
}

Status Session::CmdLoad(const std::string& path) {
  Database loaded;
  if (IsBinaryPath(path)) {
    ITDB_ASSIGN_OR_RETURN(loaded, storage::LoadDatabaseFile(path));
  } else {
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open \"" + path + "\"");
    std::stringstream buffer;
    buffer << file.rdbuf();
    ITDB_ASSIGN_OR_RETURN(loaded, Database::FromText(buffer.str()));
  }
  return db_->WithWrite([&](Database& db) -> Status {
    // Validate before committing so a name clash leaves the catalog exactly
    // as it was (the classic shell stopped mid-file, keeping a prefix).
    for (const std::string& name : loaded.Names()) {
      if (db.Has(name)) {
        return Status::InvalidArgument("relation \"" + name +
                                       "\" already exists");
      }
    }
    for (const std::string& name : loaded.Names()) {
      if (options_.engine != nullptr) {
        ITDB_RETURN_IF_ERROR(
            options_.engine->ApplyAdd(db, name, loaded.Get(name).value()));
      } else {
        ITDB_RETURN_IF_ERROR(db.Add(name, loaded.Get(name).value()));
      }
    }
    return Status::Ok();
  });
}

Status Session::CmdDefine(const std::string& text) {
  if (BraceBalance(text) != 0) {
    return Status::ParseError("unbalanced braces in definition");
  }
  ITDB_ASSIGN_OR_RETURN(NamedRelation named, ParseRelation(text));
  return db_->WithWrite([&](Database& db) {
    if (options_.engine != nullptr) {
      return options_.engine->ApplyAdd(db, named.name,
                                       std::move(named.relation));
    }
    return db.Add(named.name, std::move(named.relation));
  });
}

Status Session::CmdAsk(std::ostream& out, const std::string& text) {
  return EvalThroughBatcher("ask", text, out);
}

Status Session::CmdQuery(std::ostream& out, const std::string& text) {
  return EvalThroughBatcher("query", text, out);
}

Status Session::CmdFetch(std::ostream& out, const std::string& args) {
  if (!cursor_.has_value()) {
    return Status::InvalidArgument(
        "no query result to fetch from (run `query` first)");
  }
  std::int64_t n = options_.fetch_batch;
  if (!args.empty()) {
    std::istringstream in(args);
    if (!(in >> n) || n <= 0) {
      return Status::InvalidArgument("usage: fetch [n]");
    }
  }
  GeneralizedRelation page(cursor_->schema());
  const std::vector<GeneralizedTuple>& tuples = cursor_->tuples();
  const std::int64_t end = std::min<std::int64_t>(cursor_pos_ + n,
                                                  cursor_->size());
  for (std::int64_t i = cursor_pos_; i < end; ++i) {
    ITDB_RETURN_IF_ERROR(page.AddTuple(tuples[static_cast<std::size_t>(i)]));
  }
  cursor_pos_ = end;
  out << PrintRelation("fetch", page);
  out << page.size() << " tuple(s), " << (cursor_->size() - cursor_pos_)
      << " remaining\n";
  return Status::Ok();
}

Status Session::CmdSet(std::ostream& out, const std::string& args) {
  if (args.empty()) {
    out << "analyze      " << (options_.query.analyze ? "on" : "off") << "\n";
    out << "optimize     " << (options_.query.optimize ? "on" : "off")
        << "\n";
    out << "prune        "
        << (options_.query.prune_intermediates ? "on" : "off") << "\n";
    out << "cost_plan    " << (options_.query.cost_plan ? "on" : "off")
        << "\n";
    out << "certified_bounds "
        << (options_.query.certified_bounds ? "on" : "off") << "\n";
    out << "threads      " << options_.query.algebra.threads << "\n";
    out << "deadline_ms  " << options_.deadline_ms << "\n";
    return Status::Ok();
  }
  std::istringstream in(args);
  std::string name;
  std::string value;
  if (!(in >> name >> value)) {
    return Status::InvalidArgument("usage: set <name> <value>");
  }
  if (name == "analyze") {
    if (ParseOnOff(value, &options_.query.analyze)) return Status::Ok();
  } else if (name == "optimize") {
    if (ParseOnOff(value, &options_.query.optimize)) return Status::Ok();
  } else if (name == "prune") {
    if (ParseOnOff(value, &options_.query.prune_intermediates)) {
      return Status::Ok();
    }
  } else if (name == "cost_plan") {
    if (ParseOnOff(value, &options_.query.cost_plan)) return Status::Ok();
  } else if (name == "certified_bounds") {
    if (ParseOnOff(value, &options_.query.certified_bounds)) {
      return Status::Ok();
    }
  } else if (name == "threads") {
    std::istringstream vin(value);
    int threads = 0;
    if (vin >> threads && threads >= 0) {
      options_.query.algebra.threads = threads;
      return Status::Ok();
    }
  } else if (name == "deadline_ms") {
    std::istringstream vin(value);
    std::int64_t ms = 0;
    if (vin >> ms && ms >= 0) {
      options_.deadline_ms = ms;
      return Status::Ok();
    }
  } else {
    return Status::InvalidArgument("unknown option \"" + name +
                                   "\" (set alone lists them)");
  }
  return Status::InvalidArgument("bad value \"" + value + "\" for " + name);
}

query::QueryOptions Session::EffectiveOptions(const Database& db,
                                              const query::QueryPtr& q,
                                              std::int64_t* deadline_ms,
                                              const CostGrade* grade) const {
  query::QueryOptions opts = options_.query;
  if (opts.algebra.normalize_cache == nullptr) {
    opts.algebra.normalize_cache = options_.normalize_cache;
  }
  if (opts.stats_cache == nullptr) opts.stats_cache = options_.stats_cache;
  if (options_.cost_aware_budgets &&
      (grade != nullptr ? grade->cls : ClassifyQueryCost(db, q)) ==
          CostClass::kHeavy) {
    const std::int64_t d =
        std::max<std::int64_t>(1, options_.heavy_budget_divisor);
    opts.algebra.max_tuples =
        std::max<std::int64_t>(1, opts.algebra.max_tuples / d);
    opts.algebra.max_complement_universe =
        std::max<std::int64_t>(1, opts.algebra.max_complement_universe / d);
    opts.algebra.normalize.max_split_product = std::max<std::int64_t>(
        1, opts.algebra.normalize.max_split_product / d);
    if (*deadline_ms > 0) {
      *deadline_ms = std::max<std::int64_t>(1, *deadline_ms / d);
    }
  }
  return opts;
}

Status Session::EvalThroughBatcher(std::string_view verb,
                                   const std::string& text,
                                   std::ostream& out) {
  ++stats_.queries;
  obs::AddGlobalCounter("server.queries", 1);
  ITDB_ASSIGN_OR_RETURN(query::QueryPtr q, query::ParseQuery(text));
  return db_->WithRead([&](const Database& db) -> Status {
    std::int64_t deadline_ms = options_.deadline_ms;
    // One grading analysis serves both budget division and, later, the
    // result cache's certified-cacheability check.  Lazy: cache hits and
    // budget-indifferent sessions never pay for it up front.
    std::optional<CostGrade> grade;
    if (options_.cost_aware_budgets) grade = GradeQueryCost(db, q);
    query::QueryOptions opts = EffectiveOptions(
        db, q, &deadline_ms, grade.has_value() ? &*grade : nullptr);
    auto compute = [&]() -> QueryBatcher::Outcome {
      QueryBatcher::Outcome o;
      std::ostringstream rendered;
      DeadlineGuard deadline(deadline_ms);
      if (verb == "ask") {
        Result<bool> truth = query::EvalBooleanQuery(db, q, opts);
        if (!truth.ok()) {
          o.status = truth.status();
          return o;
        }
        rendered << (truth.value() ? "true" : "false") << "\n";
      } else {
        Result<GeneralizedRelation> rel = query::EvalQuery(db, q, opts);
        if (!rel.ok()) {
          o.status = rel.status();
          return o;
        }
        o.relation = std::make_shared<const GeneralizedRelation>(
            std::move(rel).value());
        rendered << PrintRelation("result", *o.relation);
        rendered << o.relation->size() << " generalized tuple(s)\n";
      }
      o.text = rendered.str();
      return o;
    };
    // The fingerprint is the normalized plan shape plus every option that
    // can change the rendered outcome.  Thread count is deliberately
    // absent: results are bit-identical at every thread count (and, by the
    // planner's guarantee, across cost_plan too -- it is keyed anyway so a
    // budget-shaped divergence can never alias).  The database version is
    // read under the same reader lock the evaluation holds, so it is
    // exactly the version the evaluation observes.
    std::string key;
    std::uint64_t version = 0;
    if (options_.batcher != nullptr || options_.result_cache != nullptr) {
      std::ostringstream fp;
      fp << verb << '\x1f'
         << (opts.optimize ? query::Optimize(q)->ToString() : q->ToString())
         << '\x1f' << opts.analyze << opts.optimize
         << opts.prune_intermediates << opts.cost_plan
         << opts.certified_bounds << '\x1f'
         << opts.algebra.max_tuples << '/'
         << opts.algebra.max_complement_universe << '/'
         << opts.algebra.normalize.max_split_product << '/' << deadline_ms;
      key = fp.str();
      version = db_->version();
    }
    if (options_.result_cache != nullptr) {
      std::optional<CachedResult> hit =
          options_.result_cache->Lookup(key, version);
      if (hit.has_value()) {
        ++stats_.cache_hits;
        out << hit->text;
        if (verb == "query" && hit->relation != nullptr) {
          cursor_ = *hit->relation;
          cursor_pos_ = 0;
        }
        return Status::Ok();
      }
    }
    QueryBatcher::Outcome outcome;
    bool shared = false;
    if (options_.batcher != nullptr) {
      outcome = options_.batcher->Run(key, version, compute, &shared);
      if (shared) ++stats_.batched;
    } else {
      outcome = compute();
    }
    if (outcome.status.ok() && options_.result_cache != nullptr) {
      // Certified cacheability: only results whose size the analysis can
      // BOUND (bounded root certificate, analysis/absint.h) are admitted
      // to the shared cache.  An unbounded-certificate result may be
      // arbitrarily large relative to its query, so caching it could
      // displace any number of certified-small entries.
      if (!grade.has_value()) grade = GradeQueryCost(db, q);
      if (grade->root_certificate.bounded()) {
        options_.result_cache->Insert(key, version,
                                      CachedResult{outcome.text,
                                                   outcome.relation});
      } else {
        obs::AddGlobalCounter("server.cache_refused_unbounded", 1);
      }
    }
    ITDB_RETURN_IF_ERROR(outcome.status);
    out << outcome.text;
    if (verb == "query" && outcome.relation != nullptr) {
      cursor_ = *outcome.relation;
      cursor_pos_ = 0;
    }
    return Status::Ok();
  });
}

}  // namespace server
}  // namespace itdb
