// Admission control for the query service.
//
// The server bounds the number of requests it will hold at once (queued on
// the thread pool or executing).  A request arriving past the bound is shed
// immediately with the protocol's retriable "retry" status instead of
// growing an unbounded backlog -- under overload, fast rejection preserves
// the latency of the work already admitted, and clients own the retry
// policy (tools/itdb_client.py backs off and resends).
//
// Admission also grades queries by the static cost analysis (analysis pass
// 4): a query carrying an A010 (NP-complete-regime complement) or A012
// (period-blowup) warning gets the "heavy" class, which the session maps to
// divided tuple/split budgets and a shorter deadline.  Heavy queries are
// exactly the ones whose worst case is exponential, so they must not be
// allowed to hold a worker for the default budget while the admission queue
// sheds cheap queries behind them.

#ifndef ITDB_SERVER_ADMISSION_H_
#define ITDB_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "query/ast.h"
#include "storage/database.h"

namespace itdb {
namespace server {

struct AdmissionOptions {
  /// Maximum requests admitted at once (queued + executing).  0 sheds
  /// everything -- useful for drain mode and for deterministic shedding
  /// tests.
  std::int64_t max_pending = 64;
};

/// A bounded admission gate.  Lock-free; safe from any thread.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionOptions& options)
      : options_(options) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Tries to admit one request.  On success the caller owes one Release()
  /// when the request finishes; on failure the request was shed (the shed
  /// counter and the server.shed metric advance).
  bool TryAdmit();
  void Release();

  /// Requests currently admitted (queued + executing).
  std::int64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }
  std::int64_t shed_total() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::int64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> admitted_{0};
};

/// The admission-relevant grade of a query.
enum class CostClass {
  kNormal,
  /// The static analyzer flagged an NP-complete-regime complement (A010)
  /// or a period-blowup risk (A012): worst-case exponential work.
  kHeavy,
};

/// Grades `q` against `db` by running the analyzer's cost pass.  Queries
/// that fail analysis grade kNormal -- evaluation will report the real
/// error with its own diagnostics.
CostClass ClassifyQueryCost(const Database& db, const query::QueryPtr& q);

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_ADMISSION_H_
