// Admission control for the query service.
//
// The server bounds the number of requests it will hold at once (queued on
// the thread pool or executing).  A request arriving past the bound is shed
// immediately with the protocol's retriable "retry" status instead of
// growing an unbounded backlog -- under overload, fast rejection preserves
// the latency of the work already admitted, and clients own the retry
// policy (tools/itdb_client.py backs off and resends).
//
// Admission also grades queries by cost.  The grade is CERTIFIED where
// possible: the abstract interpreter (analysis/absint.h) proves an upper
// bound on result cardinality and period lcm, and a query whose certified
// bounds exceed the analyzer's thresholds -- or whose certificate is
// unbounded AND the A010/A012 heuristics fire -- gets the "heavy" class.
// Certified grading beats the old heuristic-only grading in both
// directions: a certified-small query stays normal even when the
// heuristics panic, and a certified-huge query grades heavy even when the
// heuristics saw nothing.  Heavy queries occupy a separate, smaller
// admission budget (max_pending_heavy) so a burst of worst-case-exponential
// work cannot hold every worker while cheap queries shed behind it, and
// the session maps the class to divided tuple/split budgets and a shorter
// deadline.

#ifndef ITDB_SERVER_ADMISSION_H_
#define ITDB_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "analysis/absint.h"
#include "query/ast.h"
#include "storage/database.h"

namespace itdb {
namespace server {

/// The admission-relevant grade of a query.
enum class CostClass {
  kNormal,
  /// Worst-case exponential work: certified bounds above the analyzer's
  /// thresholds, or an unbounded certificate with the A010
  /// (NP-complete-regime complement) / A012 (period-blowup) heuristics
  /// firing.
  kHeavy,
};

struct AdmissionOptions {
  /// Maximum requests admitted at once (queued + executing).  0 sheds
  /// everything -- useful for drain mode and for deterministic shedding
  /// tests.
  std::int64_t max_pending = 64;
  /// Maximum heavy-class requests admitted at once; heavy arrivals past
  /// this shed even while normal capacity remains.  Defaults to the
  /// max_pending default so an unconfigured queue behaves exactly as
  /// before the class existed.
  std::int64_t max_pending_heavy = 64;
};

/// A bounded admission gate.  Lock-free; safe from any thread.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionOptions& options)
      : options_(options) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Tries to admit one request of class `cls` (heavy requests must clear
  /// both the total and the heavy bound).  On success the caller owes one
  /// Release(cls) with the SAME class when the request finishes; on failure
  /// the request was shed (the shed counter and the server.shed metric
  /// advance).
  bool TryAdmit(CostClass cls = CostClass::kNormal);

  /// Upgrades a request already admitted as kNormal to kHeavy once its
  /// grade is known -- the server classifies AFTER total admission so that
  /// shedding under overload never pays for analysis.  On success the
  /// caller now owes Release(kHeavy); on failure the request was shed as
  /// heavy and the caller still owes Release(kNormal).
  bool PromoteToHeavy();

  void Release(CostClass cls = CostClass::kNormal);

  /// Requests currently admitted (queued + executing).
  std::int64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }
  std::int64_t pending_heavy() const {
    return pending_heavy_.load(std::memory_order_relaxed);
  }
  std::int64_t shed_total() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::int64_t shed_heavy_total() const {
    return shed_heavy_.load(std::memory_order_relaxed);
  }
  std::int64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::int64_t> pending_heavy_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> shed_heavy_{0};
  std::atomic<std::int64_t> admitted_{0};
};

/// A query's cost grade together with the certificate that justified it.
struct CostGrade {
  CostClass cls = CostClass::kNormal;
  /// The root certificate of the grading analysis (top when analysis had
  /// errors or the certificate pass was off).  An unbounded root
  /// certificate also makes the query ineligible for the result cache: a
  /// result whose size the analysis cannot bound must not displace
  /// certified-small entries.
  analysis::Certificate root_certificate;
};

/// Grades `q` against `db`: runs the analyzer (without the emptiness pass;
/// DBM closures are the expensive part and evaluation re-runs them anyway)
/// and grades from the root certificate when it is bounded, falling back
/// to the A010/A012 heuristics when it is not.  Queries that fail analysis
/// grade kNormal -- evaluation will report the real error with its own
/// diagnostics.
CostGrade GradeQueryCost(const Database& db, const query::QueryPtr& q);

/// GradeQueryCost reduced to its class.
CostClass ClassifyQueryCost(const Database& db, const query::QueryPtr& q);

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_ADMISSION_H_
