// Plan-batching: coalescing concurrently submitted identical queries.
//
// Interactive fleets are bursty and repetitive -- dashboards and retry
// storms submit the same query from many clients at once.  Two requests
// whose statements normalize to the same optimized plan (and evaluate under
// the same options against the same database version) are, by the engine's
// bit-identity guarantees, going to produce byte-identical output; their
// normalizations would even hit the same NormalizeCache entries.  The
// batcher lets the first such request (the "leader") evaluate once while
// concurrent duplicates ("followers") block and share its rendered result.
//
// Only *concurrent* requests coalesce: the in-flight entry is removed the
// moment the leader publishes, so the batcher never serves a cached result
// (staleness is impossible by construction; the database version in the key
// is belt-and-braces against writers that slip between parse and publish).
//
// Deadlock-safety on the shared thread pool: a follower only ever blocks on
// a leader that is ALREADY RUNNING (the entry is created by the leader's
// own Run call, on the leader's thread, immediately before it computes), and
// leaders never block on other requests.  Progress therefore never depends
// on a free worker.

#ifndef ITDB_SERVER_BATCHER_H_
#define ITDB_SERVER_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/relation.h"
#include "util/status.h"

namespace itdb {
namespace server {

/// Coalesces concurrent evaluations keyed on (plan fingerprint, database
/// version).  Thread-safe.
class QueryBatcher {
 public:
  QueryBatcher() = default;
  QueryBatcher(const QueryBatcher&) = delete;
  QueryBatcher& operator=(const QueryBatcher&) = delete;

  /// A finished request: the command Status plus everything it printed.
  /// For `query` evaluations the result relation rides along (immutable,
  /// shared by every coalesced caller) so a follower session can still
  /// seat its fetch cursor.
  struct Outcome {
    Status status;
    std::string text;
    std::shared_ptr<const GeneralizedRelation> relation;
  };

  /// Runs `compute` once per concurrent (key, version) group and hands every
  /// caller the same Outcome.  The leader (first caller in) computes on its
  /// own thread; followers block until it publishes.  `shared`, if non-null,
  /// receives true on followers (their outcome is a shared copy).
  Outcome Run(const std::string& key, std::uint64_t version,
              const std::function<Outcome()>& compute, bool* shared = nullptr);

  struct Stats {
    std::int64_t leads = 0;    // Evaluations actually run.
    std::int64_t coalesced = 0;  // Requests served from a leader's result.
  };
  Stats stats() const;

 private:
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Outcome outcome;
  };

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::uint64_t>, std::shared_ptr<InFlight>>
      inflight_;
  Stats stats_;
};

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_BATCHER_H_
