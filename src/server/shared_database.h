// A Database shared by many concurrent sessions.
//
// The storage-layer Database is a plain single-threaded catalog; the query
// service runs many readers (query evaluation walks the catalog for the
// whole evaluation: atoms, active-domain computation) against occasional
// writers (define / load / drop / coalesce / simplify).  This wrapper
// serializes them with one reader-writer lock held for the WHOLE callback:
// a query evaluated under WithRead observes one consistent catalog state,
// which is what makes the multi-client stress test's "bit-identical to
// serial execution" guarantee well-defined.
//
// Every write bumps a version counter.  The plan batcher keys in-flight
// evaluations on (plan, version): two queries may share one evaluation only
// when no write could have interleaved between them.

#ifndef ITDB_SERVER_SHARED_DATABASE_H_
#define ITDB_SERVER_SHARED_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <utility>

#include "storage/database.h"

namespace itdb {
namespace server {

/// Reader-writer access to a borrowed Database.  The Database must outlive
/// the wrapper and every session using it; all mutation must go through
/// WithWrite once the wrapper exists.
class SharedDatabase {
 public:
  /// `initial_version` seeds the write-version -- the storage engine's
  /// recovered LSN when durability is on, so post-restart versions never
  /// collide with pre-crash ones and version-keyed caches (result cache,
  /// batcher) can never serve a stale pre-recovery entry.
  explicit SharedDatabase(Database* db, std::uint64_t initial_version = 0)
      : db_(db), version_(initial_version) {}

  SharedDatabase(const SharedDatabase&) = delete;
  SharedDatabase& operator=(const SharedDatabase&) = delete;

  /// Runs `fn(const Database&)` under the shared (reader) lock and returns
  /// its result.  Hold for the whole logical read -- e.g. one full query
  /// evaluation -- never for just a lookup you then use lock-free.
  template <typename Fn>
  auto WithRead(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return std::forward<Fn>(fn)(static_cast<const Database&>(*db_));
  }

  /// Runs `fn(Database&)` under the exclusive (writer) lock and bumps the
  /// version.  The version moves even when `fn` fails or changes nothing:
  /// over-invalidation only costs a missed batching opportunity, while
  /// under-invalidation would serve a stale result.
  template <typename Fn>
  auto WithWrite(Fn&& fn) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    version_.fetch_add(1, std::memory_order_relaxed);
    return std::forward<Fn>(fn)(*db_);
  }

  /// The write-version.  Stable while a WithRead callback is running (the
  /// reader lock excludes writers), so reading it inside WithRead yields
  /// the version the whole read observes.
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

 private:
  Database* db_;
  mutable std::shared_mutex mu_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace server
}  // namespace itdb

#endif  // ITDB_SERVER_SHARED_DATABASE_H_
