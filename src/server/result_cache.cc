#include "server/result_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace itdb {
namespace server {

namespace {

/// Fixed per-entry overhead charged on top of the payload estimate: map
/// node, LRU node, and two copies of the key's bookkeeping.
constexpr std::size_t kEntryOverhead = 128;

}  // namespace

std::size_t EstimateRelationBytes(const GeneralizedRelation& rel) {
  std::size_t bytes = sizeof(GeneralizedRelation);
  for (const GeneralizedTuple& t : rel.tuples()) {
    bytes += sizeof(GeneralizedTuple);
    bytes += static_cast<std::size_t>(t.temporal_arity()) * sizeof(Lrp);
    for (const Value& v : t.data()) {
      bytes += sizeof(Value);
      if (v.IsString()) bytes += v.AsString().size();
    }
    const std::size_t nodes =
        static_cast<std::size_t>(t.constraints().num_vars()) + 1;
    bytes += nodes * nodes * sizeof(std::int64_t);
  }
  return bytes;
}

ResultCache::ResultCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

void ResultCache::ClearLocked(std::uint64_t version) {
  if (!entries_.empty()) {
    ++invalidations_;
    obs::AddGlobalCounter("server.cache.invalidations", 1);
  }
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  version_ = version;
}

void ResultCache::EvictLocked() {
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    obs::AddGlobalCounter("server.cache.evictions", 1);
  }
}

std::optional<CachedResult> ResultCache::Lookup(const std::string& key,
                                                std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version > version_) ClearLocked(version);
  auto it = entries_.find(key);
  if (version < version_ || it == entries_.end()) {
    ++misses_;
    obs::AddGlobalCounter("server.cache.misses", 1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++hits_;
  obs::AddGlobalCounter("server.cache.hits", 1);
  return it->second.result;
}

void ResultCache::Insert(const std::string& key, std::uint64_t version,
                         CachedResult result) {
  std::size_t bytes = kEntryOverhead + key.size() + result.text.size();
  if (result.relation != nullptr) {
    bytes += EstimateRelationBytes(*result.relation);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (version > version_) ClearLocked(version);
  if (version < version_ || bytes > byte_budget_) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(result), bytes, lru_.begin()});
  bytes_ += bytes;
  EvictLocked();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked(version_);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace server
}  // namespace itdb
