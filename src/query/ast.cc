#include "query/ast.h"

#include <algorithm>
#include <set>

namespace itdb {
namespace query {

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      if (number == 0) return var;
      if (number > 0) return var + " + " + std::to_string(number);
      return var + " - " + std::to_string(-number);
    case Kind::kInt:
      return std::to_string(number);
    case Kind::kString:
      return "\"" + text + "\"";
  }
  return "?";
}

struct QueryBuilder : Query {
  using Query::Query;
  Kind& kind() { return kind_; }
  std::string& relation() { return relation_; }
  std::vector<Term>& args() { return args_; }
  Term& lhs() { return lhs_; }
  Term& rhs() { return rhs_; }
  QueryCmp& cmp() { return cmp_; }
  QueryPtr& left() { return left_; }
  QueryPtr& right() { return right_; }
  SourceSpan& span() { return span_; }
  std::vector<SourceSpan>& term_spans() { return term_spans_; }
};

namespace {

std::shared_ptr<QueryBuilder> NewNode(Query::Kind kind) {
  auto node = std::make_shared<QueryBuilder>();
  node->kind() = kind;
  return node;
}

void CollectFree(const Query& q, std::set<std::string>& bound,
                 std::set<std::string>& free) {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      for (const Term& t : q.args()) {
        if (t.kind == Term::Kind::kVariable && !bound.contains(t.var)) {
          free.insert(t.var);
        }
      }
      break;
    case Query::Kind::kCmp:
      for (const Term* t : {&q.lhs(), &q.rhs()}) {
        if (t->kind == Term::Kind::kVariable && !bound.contains(t->var)) {
          free.insert(t->var);
        }
      }
      break;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CollectFree(*q.left(), bound, free);
      CollectFree(*q.right(), bound, free);
      break;
    case Query::Kind::kNot:
      CollectFree(*q.left(), bound, free);
      break;
    case Query::Kind::kExists:
    case Query::Kind::kForall: {
      bool inserted = bound.insert(q.quantified_var()).second;
      CollectFree(*q.left(), bound, free);
      if (inserted) bound.erase(q.quantified_var());
      break;
    }
  }
}

}  // namespace

void Query::SetSpans(const QueryPtr& q, SourceSpan span,
                     std::vector<SourceSpan> term_spans) {
  // Safe: the parser calls this on nodes it just created and still uniquely
  // owns; spans are pure metadata for diagnostics.
  auto* node =
      static_cast<QueryBuilder*>(const_cast<Query*>(q.get()));  // NOLINT
  node->span() = span;
  node->term_spans() = std::move(term_spans);
}

QueryPtr Query::Atom(std::string relation, std::vector<Term> args) {
  auto node = NewNode(Kind::kAtom);
  node->relation() = std::move(relation);
  node->args() = std::move(args);
  return node;
}

QueryPtr Query::Compare(Term lhs, QueryCmp op, Term rhs) {
  auto node = NewNode(Kind::kCmp);
  node->lhs() = std::move(lhs);
  node->rhs() = std::move(rhs);
  node->cmp() = op;
  return node;
}

QueryPtr Query::And(QueryPtr a, QueryPtr b) {
  auto node = NewNode(Kind::kAnd);
  node->left() = std::move(a);
  node->right() = std::move(b);
  return node;
}

QueryPtr Query::Or(QueryPtr a, QueryPtr b) {
  auto node = NewNode(Kind::kOr);
  node->left() = std::move(a);
  node->right() = std::move(b);
  return node;
}

QueryPtr Query::Not(QueryPtr a) {
  auto node = NewNode(Kind::kNot);
  node->left() = std::move(a);
  return node;
}

QueryPtr Query::Implies(QueryPtr a, QueryPtr b) {
  return Or(Not(std::move(a)), std::move(b));
}

QueryPtr Query::Exists(std::string var, QueryPtr body) {
  auto node = NewNode(Kind::kExists);
  node->relation() = std::move(var);
  node->left() = std::move(body);
  return node;
}

QueryPtr Query::Forall(std::string var, QueryPtr body) {
  auto node = NewNode(Kind::kForall);
  node->relation() = std::move(var);
  node->left() = std::move(body);
  return node;
}

std::vector<std::string> Query::FreeVariables() const {
  std::set<std::string> bound;
  std::set<std::string> free;
  CollectFree(*this, bound, free);
  return std::vector<std::string>(free.begin(), free.end());
}

std::string Query::ToString() const {
  switch (kind_) {
    case Kind::kAtom: {
      std::string out = relation_ + "(";
      for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += args_[i].ToString();
      }
      return out + ")";
    }
    case Kind::kCmp: {
      const char* op = "=";
      switch (cmp_) {
        case QueryCmp::kEq:
          op = "=";
          break;
        case QueryCmp::kNe:
          op = "!=";
          break;
        case QueryCmp::kLe:
          op = "<=";
          break;
        case QueryCmp::kLt:
          op = "<";
          break;
        case QueryCmp::kGe:
          op = ">=";
          break;
        case QueryCmp::kGt:
          op = ">";
          break;
      }
      return lhs_.ToString() + " " + op + " " + rhs_.ToString();
    }
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + left_->ToString() + ")";
    case Kind::kExists:
      return "EXISTS " + relation_ + " . (" + left_->ToString() + ")";
    case Kind::kForall:
      return "FORALL " + relation_ + " . (" + left_->ToString() + ")";
  }
  return "?";
}

}  // namespace query
}  // namespace itdb
