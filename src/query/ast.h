// Abstract syntax of the two-sorted first-order query language (Section 4).
//
// The language has a temporal sort (interpreted over Z, with the successor
// function and the interpreted predicate <=) and a generic data sort.
// Uninterpreted predicates are the named relations of a Database.  Full
// boolean structure and quantification over both sorts are allowed;
// evaluation compiles to the closed relational algebra of Section 3.

#ifndef ITDB_QUERY_AST_H_
#define ITDB_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "util/source_span.h"

namespace itdb {
namespace query {

/// A term: a variable (with an optional successor offset, "t + 3"), an
/// integer constant, or a string constant.
struct Term {
  enum class Kind { kVariable, kInt, kString };

  Kind kind = Kind::kInt;
  std::string var;          // kVariable: the variable name.
  std::int64_t number = 0;  // kVariable: offset; kInt: the constant.
  std::string text;         // kString: the constant.

  static Term Variable(std::string name, std::int64_t offset = 0) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    t.number = offset;
    return t;
  }
  static Term Int(std::int64_t v) {
    Term t;
    t.kind = Kind::kInt;
    t.number = v;
    return t;
  }
  static Term String(std::string s) {
    Term t;
    t.kind = Kind::kString;
    t.text = std::move(s);
    return t;
  }

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) = default;
};

/// Comparison operators of the language.  <=, <, >=, > apply to the
/// temporal sort; = and != apply to both sorts.
enum class QueryCmp { kEq, kNe, kLe, kLt, kGe, kGt };

class Query;
using QueryPtr = std::shared_ptr<const Query>;

/// An immutable query tree.
class Query {
 public:
  enum class Kind {
    kAtom,    // relation(args...)
    kCmp,     // term op term
    kAnd,
    kOr,
    kNot,
    kExists,  // one quantified variable (sort inferred)
    kForall,
  };

  static QueryPtr Atom(std::string relation, std::vector<Term> args);
  static QueryPtr Compare(Term lhs, QueryCmp op, Term rhs);
  static QueryPtr And(QueryPtr a, QueryPtr b);
  static QueryPtr Or(QueryPtr a, QueryPtr b);
  static QueryPtr Not(QueryPtr a);
  /// a -> b, sugar for (NOT a) OR b.
  static QueryPtr Implies(QueryPtr a, QueryPtr b);
  static QueryPtr Exists(std::string var, QueryPtr body);
  static QueryPtr Forall(std::string var, QueryPtr body);

  Kind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const std::vector<Term>& args() const { return args_; }
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  QueryCmp cmp() const { return cmp_; }
  const QueryPtr& left() const { return left_; }
  const QueryPtr& right() const { return right_; }
  const std::string& quantified_var() const { return relation_; }

  /// Source span of the node (unknown for programmatically built trees).
  const SourceSpan& span() const { return span_; }
  /// Span of one term: for kAtom, index into args(); for kCmp, 0 = lhs and
  /// 1 = rhs.  Falls back to the node span when the parser recorded none.
  const SourceSpan& TermSpan(std::size_t i) const {
    return i < term_spans_.size() && term_spans_[i].known() ? term_spans_[i]
                                                           : span_;
  }

  /// Attaches source locations to a freshly parsed node.  Parser-only: the
  /// tree is otherwise immutable, and spans are metadata (they never affect
  /// evaluation or equality).
  static void SetSpans(const QueryPtr& q, SourceSpan span,
                       std::vector<SourceSpan> term_spans = {});

  /// Free variables, sorted by name.
  std::vector<std::string> FreeVariables() const;

  std::string ToString() const;

 protected:
  Query() = default;

 private:
  friend struct QueryBuilder;

  Kind kind_ = Kind::kAtom;
  std::string relation_;      // kAtom: name; kExists/kForall: variable.
  std::vector<Term> args_;    // kAtom.
  Term lhs_;                  // kCmp.
  Term rhs_;                  // kCmp.
  QueryCmp cmp_ = QueryCmp::kEq;
  QueryPtr left_;
  QueryPtr right_;
  SourceSpan span_;                     // Unknown unless parsed from text.
  std::vector<SourceSpan> term_spans_;  // kAtom: per arg; kCmp: lhs, rhs.
};

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_AST_H_
