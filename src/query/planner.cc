#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "query/eval.h"

namespace itdb {
namespace query {

namespace {

/// Cardinality multiplier per free temporal column of a complement operand:
/// the A010 signal.  Complement output grows with the residue universe
/// (k^m tuples for m columns at period k), so anything complement-shaped is
/// priced exponentially in its width and lands late in the chain.
constexpr double kComplementBase = 8.0;
/// Fallback distinct count for estimates with no statistics behind them
/// (range comparisons, inner OR branches): large enough that joining on
/// such a variable claims little selectivity.
constexpr double kUnknownNdv = 1e6;
constexpr double kMaxRows = 1e18;

double ClampRows(double rows) {
  if (!(rows >= 0.0)) return 0.0;
  return std::min(rows, kMaxRows);
}

bool IsTemporal(const SortMap& sorts, const std::string& var) {
  auto it = sorts.find(var);
  return it == sorts.end() || it->second == Sort::kTime;
}

int FreeTemporalWidth(const Query& q, const SortMap& sorts) {
  int width = 0;
  for (const std::string& v : q.FreeVariables()) {
    if (IsTemporal(sorts, v)) ++width;
  }
  return width;
}

/// A planned subtree: the (possibly rewritten) node, its estimate, and a
/// per-free-variable distinct-count estimate feeding join selectivity.
struct ConjunctInfo {
  QueryPtr q;
  PlanEstimate est;
  std::map<std::string, double> ndv;
  std::size_t index = 0;  // Original chain position; deterministic ties.
};

bool SharesVariable(const ConjunctInfo& a, const ConjunctInfo& b) {
  for (const auto& [var, ndv] : a.ndv) {
    if (b.ndv.contains(var)) return true;
  }
  return false;
}

/// The classic max-ndv join estimate, |A| * |B| / max(ndv_A, ndv_B), taken
/// over the single STRONGEST shared variable only: multiplying the
/// per-variable factors assumes independence, and on multi-column links
/// (two shared temporal columns are usually correlated, and a complement
/// shares every column of its operand) the product collapses toward zero --
/// which would rank exactly the wide conjuncts we mean to defer as nearly
/// free.  No shared variable means a cross product.  Cost charges the
/// candidate-pair product (what Join's budget charges) plus the output.
ConjunctInfo JoinInfo(const ConjunctInfo& a, const ConjunctInfo& b) {
  ConjunctInfo out;
  double selectivity = 1.0;
  for (const auto& [var, a_ndv] : a.ndv) {
    auto it = b.ndv.find(var);
    if (it == b.ndv.end()) continue;
    selectivity =
        std::min(selectivity, 1.0 / std::max({a_ndv, it->second, 1.0}));
  }
  out.est.rows = ClampRows(a.est.rows * b.est.rows * selectivity);
  out.est.cost =
      a.est.cost + b.est.cost + ClampRows(a.est.rows * b.est.rows) +
      out.est.rows;
  out.ndv = a.ndv;
  for (const auto& [var, b_ndv] : b.ndv) {
    auto [it, inserted] = out.ndv.emplace(var, b_ndv);
    if (!inserted) it->second = std::min(it->second, b_ndv);
  }
  for (auto& [var, ndv] : out.ndv) {
    ndv = std::min(ndv, std::max(out.est.rows, 1.0));
  }
  out.index = std::min(a.index, b.index);
  return out;
}

/// Clamps a heuristic estimate to a certified bound (planner.h): the
/// certificate caps rows, and a set-level hull refutation zeroes them.
/// Ordering-only -- cost is left alone so chains still price their work.
void ClampToCert(const analysis::Certificate& cert, PlanEstimate* est) {
  if (cert.rows.has_value()) {
    est->rows = std::min(est->rows, static_cast<double>(*cert.rows));
  }
  if (cert.HullRefuted()) est->rows = 0.0;
}

class Planner {
 public:
  Planner(const Database& db, const SortMap& sorts, StatsCache* cache,
          analysis::AbstractInterpreter* absint)
      : db_(db), sorts_(sorts), cache_(cache), absint_(absint) {}

  ConjunctInfo PlanNode(const QueryPtr& q);

  PlanEstimateMap take_estimates() { return std::move(estimates_); }

 private:
  ConjunctInfo PlanAtom(const QueryPtr& q);
  ConjunctInfo PlanCmp(const QueryPtr& q);
  ConjunctInfo PlanChain(const QueryPtr& q);

  /// JoinInfo with the estimate clamped to the conjoined certificate of the
  /// operands (when both are certified).  Used for every candidate pair the
  /// greedy search prices, so certified bounds steer the ORDER, not just
  /// the printed annotations.
  ConjunctInfo Join(const ConjunctInfo& a, const ConjunctInfo& b) const {
    ConjunctInfo out = JoinInfo(a, b);
    if (absint_ != nullptr) {
      const analysis::Certificate* ca = absint_->Find(a.q.get());
      const analysis::Certificate* cb = absint_->Find(b.q.get());
      if (ca != nullptr && cb != nullptr) {
        ClampToCert(absint_->Conjoin(*ca, *cb), &out.est);
      }
    }
    return out;
  }

  /// For nodes PlanNode rebuilt (replanned children give the wrapper a new
  /// identity): carries the original node's certificate over, then clamps
  /// the estimate.  No-op without an interpreter.
  void Certify(const Query* original, ConjunctInfo* info) const {
    if (absint_ == nullptr) return;
    if (info->q.get() != original) {
      const analysis::Certificate* c = absint_->Find(original);
      if (c != nullptr) absint_->Register(info->q.get(), *c);
    }
    const analysis::Certificate* c = absint_->Find(info->q.get());
    if (c != nullptr) ClampToCert(*c, &info->est);
  }

  RelationStats StatsFor(const std::string& name,
                         const GeneralizedRelation& rel) {
    if (cache_ != nullptr) return cache_->Get(name, db_.version(), rel);
    return ComputeRelationStats(rel);
  }

  void Record(const ConjunctInfo& info) {
    estimates_[info.q.get()] = info.est;
  }

  const Database& db_;
  const SortMap& sorts_;
  StatsCache* cache_;
  analysis::AbstractInterpreter* absint_;
  PlanEstimateMap estimates_;
};

ConjunctInfo Planner::PlanAtom(const QueryPtr& q) {
  ConjunctInfo info;
  info.q = q;
  Result<GeneralizedRelation> rel = db_.Get(q->relation());
  if (!rel.ok()) {
    // Unknown relation: evaluation will fail regardless of order; estimate
    // empty so the failure surfaces as early as the written order would.
    info.est = {0.0, 0.0};
    return info;
  }
  RelationStats stats = StatsFor(q->relation(), rel.value());
  const int m = rel.value().schema().temporal_arity();
  double rows = stats.bit_empty ? 0.0 : static_cast<double>(stats.tuple_count);
  const double base_rows = std::max(rows, 1.0);
  info.est.cost = static_cast<double>(stats.tuple_count);

  auto column_ndv = [&](int pos) -> double {
    const std::size_t upos = static_cast<std::size_t>(pos);
    if (pos < m) {
      return upos < stats.distinct_temporal.size()
                 ? std::max<double>(
                       1.0,
                       static_cast<double>(stats.distinct_temporal[upos]))
                 : 1.0;
    }
    const std::size_t dpos = static_cast<std::size_t>(pos - m);
    return dpos < stats.distinct_data.size()
               ? std::max<double>(
                     1.0, static_cast<double>(stats.distinct_data[dpos]))
               : 1.0;
  };

  // Constant arguments and repeated variables are selections applied inside
  // EvalAtom; each claims 1/ndv of its column.
  std::map<std::string, int> first_position;
  for (std::size_t i = 0; i < q->args().size(); ++i) {
    const Term& t = q->args()[i];
    const int pos = static_cast<int>(i);
    if (t.kind == Term::Kind::kVariable) {
      auto [it, inserted] = first_position.emplace(t.var, pos);
      if (!inserted) rows /= column_ndv(pos);
      continue;
    }
    // Temporal constants select one residue; data constants one key.
    rows /= column_ndv(pos);
  }
  rows = ClampRows(rows);
  info.est.rows = rows;
  for (const auto& [var, pos] : first_position) {
    info.ndv[var] = std::min(column_ndv(pos), std::max(rows, 1.0));
  }
  (void)base_rows;
  return info;
}

ConjunctInfo Planner::PlanCmp(const QueryPtr& q) {
  ConjunctInfo info;
  info.q = q;
  std::vector<std::string> vars = q->FreeVariables();
  const bool temporal =
      !vars.empty() && IsTemporal(sorts_, vars.front());
  if (vars.empty()) {
    // Ground comparison: a boolean gate, one tuple at most.
    info.est = {1.0, 1.0};
    return info;
  }
  if (temporal) {
    // One universe tuple with a constraint: cheap, and joining it pins or
    // narrows the shared column.  Equality discriminates fully; ranges and
    // disequalities claim progressively less.
    info.est.rows = q->cmp() == QueryCmp::kNe ? 2.0 : 1.0;
    info.est.cost = 1.0;
    const double ndv = q->cmp() == QueryCmp::kEq ? 1.0 : 4.0;
    for (const std::string& v : vars) info.ndv[v] = ndv;
    return info;
  }
  // Data comparisons enumerate active-domain combinations; without domain
  // statistics, price equality small and disequality large.
  const bool eq = q->cmp() == QueryCmp::kEq;
  const bool two_vars = vars.size() > 1;
  info.est.rows = eq ? (two_vars ? 16.0 : 1.0) : 256.0;
  info.est.cost = info.est.rows;
  for (const std::string& v : vars) {
    info.ndv[v] = eq && !two_vars ? 1.0 : kUnknownNdv;
  }
  return info;
}

void FlattenConjuncts(const QueryPtr& q, std::vector<QueryPtr>* out) {
  if (q->kind() == Query::Kind::kAnd) {
    FlattenConjuncts(q->left(), out);
    FlattenConjuncts(q->right(), out);
    return;
  }
  out->push_back(q);
}

ConjunctInfo Planner::PlanChain(const QueryPtr& q) {
  std::vector<QueryPtr> conjuncts;
  FlattenConjuncts(q, &conjuncts);
  std::vector<ConjunctInfo> infos;
  infos.reserve(conjuncts.size());
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    ConjunctInfo info = PlanNode(conjuncts[i]);
    info.index = i;
    infos.push_back(std::move(info));
  }

  // Greedy left-deep order on the connectivity graph: the cheapest
  // variable-sharing pair seeds the chain, then the connected conjunct with
  // the smallest estimated intermediate extends it; conjuncts sharing no
  // variable with the running result (cross products, by A011) only enter
  // when nothing connected remains.  Ties break on original position, so
  // planning is deterministic and a statistics-free plan degenerates to the
  // written order.
  std::vector<std::size_t> remaining(infos.size());
  for (std::size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  auto better = [](bool cand_cross, const PlanEstimate& cand,
                   std::size_t cand_idx, bool best_cross,
                   const PlanEstimate& best, std::size_t best_idx) {
    if (cand_cross != best_cross) return !cand_cross;
    if (cand.rows != best.rows) return cand.rows < best.rows;
    if (cand.cost != best.cost) return cand.cost < best.cost;
    return cand_idx < best_idx;
  };

  // Seed pair.
  std::size_t best_a = 0;
  std::size_t best_b = 1;
  bool have_best = false;
  bool best_cross = true;
  ConjunctInfo best_joined;
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    for (std::size_t j = i + 1; j < remaining.size(); ++j) {
      const ConjunctInfo& a = infos[i];
      const ConjunctInfo& b = infos[j];
      const bool cross = !SharesVariable(a, b);
      ConjunctInfo joined = Join(a, b);
      if (!have_best ||
          better(cross, joined.est, i * remaining.size() + j, best_cross,
                 best_joined.est, best_a * remaining.size() + best_b)) {
        have_best = true;
        best_cross = cross;
        best_joined = std::move(joined);
        best_a = i;
        best_b = j;
      }
    }
  }

  // Left operand of the seed: the smaller side (the evaluator's indexed
  // join hashes the right operand, and EXPLAIN reads better with the
  // driving conjunct first).  Ties keep written order.
  if (infos[best_b].est.rows < infos[best_a].est.rows) {
    std::swap(best_a, best_b);
  }
  ConjunctInfo current = infos[best_a];
  QueryPtr planned = current.q;
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    if (i != best_a && i != best_b) pending.push_back(i);
  }
  std::size_t next = best_b;
  while (true) {
    ConjunctInfo joined = Join(current, infos[next]);
    QueryPtr prev = planned;
    planned = Query::And(planned, infos[next].q);
    joined.q = planned;
    if (absint_ != nullptr) {
      // Certify the freshly built AND: certificates key on node identity,
      // and this node did not exist when the tree was interpreted.
      const analysis::Certificate* cl = absint_->Find(prev.get());
      const analysis::Certificate* cr = absint_->Find(infos[next].q.get());
      if (cl != nullptr && cr != nullptr) {
        absint_->Register(planned.get(), absint_->Conjoin(*cl, *cr));
      }
    }
    Record(joined);
    current = std::move(joined);
    if (pending.empty()) break;
    std::size_t choice = 0;
    bool have = false;
    bool choice_cross = true;
    ConjunctInfo choice_joined;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      const ConjunctInfo& cand = infos[pending[k]];
      const bool cross = !SharesVariable(current, cand);
      ConjunctInfo j = Join(current, cand);
      if (!have || better(cross, j.est, cand.index, choice_cross,
                          choice_joined.est, infos[pending[choice]].index)) {
        have = true;
        choice_cross = cross;
        choice_joined = std::move(j);
        choice = k;
      }
    }
    next = pending[choice];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(choice));
  }
  return current;
}

ConjunctInfo Planner::PlanNode(const QueryPtr& q) {
  switch (q->kind()) {
    case Query::Kind::kAtom: {
      ConjunctInfo info = PlanAtom(q);
      Certify(q.get(), &info);
      Record(info);
      return info;
    }
    case Query::Kind::kCmp: {
      ConjunctInfo info = PlanCmp(q);
      Certify(q.get(), &info);
      Record(info);
      return info;
    }
    case Query::Kind::kAnd:
      // PlanChain records the estimate of every AND node it builds.
      return PlanChain(q);
    case Query::Kind::kOr: {
      ConjunctInfo l = PlanNode(q->left());
      ConjunctInfo r = PlanNode(q->right());
      ConjunctInfo info;
      info.q = l.q == q->left() && r.q == q->right()
                   ? q
                   : Query::Or(l.q, r.q);
      info.est.rows = ClampRows(l.est.rows + r.est.rows);
      info.est.cost = l.est.cost + r.est.cost + info.est.rows;
      info.ndv = l.ndv;
      for (const auto& [var, ndv] : r.ndv) {
        auto [it, inserted] = info.ndv.emplace(var, ndv);
        if (!inserted) it->second = ClampRows(it->second + ndv);
      }
      Certify(q.get(), &info);
      Record(info);
      return info;
    }
    case Query::Kind::kNot: {
      ConjunctInfo child = PlanNode(q->left());
      ConjunctInfo info;
      info.q = child.q == q->left() ? q : Query::Not(child.q);
      const int width = FreeTemporalWidth(*q->left(), sorts_);
      info.est.rows = ClampRows(std::max(child.est.rows, 1.0) *
                                std::pow(kComplementBase, width));
      info.est.cost = child.est.cost + info.est.rows;
      for (const std::string& v : q->FreeVariables()) {
        info.ndv[v] = std::max(info.est.rows, 1.0);
      }
      Certify(q.get(), &info);
      Record(info);
      return info;
    }
    case Query::Kind::kExists: {
      ConjunctInfo child = PlanNode(q->left());
      ConjunctInfo info;
      info.q = child.q == q->left()
                   ? q
                   : Query::Exists(q->quantified_var(), child.q);
      info.est.rows = child.est.rows;
      info.est.cost = child.est.cost + child.est.rows;
      info.ndv = std::move(child.ndv);
      info.ndv.erase(q->quantified_var());
      Certify(q.get(), &info);
      Record(info);
      return info;
    }
    case Query::Kind::kForall: {
      ConjunctInfo child = PlanNode(q->left());
      ConjunctInfo info;
      info.q = child.q == q->left()
                   ? q
                   : Query::Forall(q->quantified_var(), child.q);
      // not(exists(not(child))): two complements, priced at the node's own
      // free temporal width plus the quantified column.
      const int width = FreeTemporalWidth(*q, sorts_) + 1;
      info.est.rows = ClampRows(std::max(child.est.rows, 1.0) *
                                std::pow(kComplementBase, width));
      info.est.cost = child.est.cost + 2.0 * info.est.rows;
      for (const std::string& v : q->FreeVariables()) {
        info.ndv[v] = std::max(info.est.rows, 1.0);
      }
      Certify(q.get(), &info);
      Record(info);
      return info;
    }
  }
  ConjunctInfo info;
  info.q = q;
  Record(info);
  return info;
}

}  // namespace

PlannedQuery PlanQuery(const Database& db, const QueryPtr& q,
                       const SortMap& sorts, StatsCache* stats_cache,
                       analysis::AbstractInterpreter* absint) {
  Planner planner(db, sorts, stats_cache, absint);
  ConjunctInfo root = planner.PlanNode(q);
  PlannedQuery out;
  out.query = std::move(root.q);
  out.estimates = planner.take_estimates();
  return out;
}

std::string FormatQueryPlanWithEstimates(
    const QueryPtr& q, const PlanEstimateMap& estimates,
    const analysis::CertificateMap* certificates) {
  std::string out;
  auto walk = [&](auto&& self, const Query& node, int depth) -> void {
    out.append(static_cast<std::size_t>(2 * depth), ' ');
    out += PlanNodeLabel(node);
    auto it = estimates.find(&node);
    const analysis::Certificate* cert = nullptr;
    if (certificates != nullptr) {
      auto cit = certificates->find(&node);
      if (cit != certificates->end()) cert = &cit->second;
    }
    if (it != estimates.end() || cert != nullptr) {
      out += "  (";
      if (it != estimates.end()) {
        out += "est_rows=" +
               std::to_string(static_cast<std::int64_t>(
                   std::llround(std::min(it->second.rows, kMaxRows)))) +
               ", est_cost=" +
               std::to_string(static_cast<std::int64_t>(
                   std::llround(std::min(it->second.cost, kMaxRows))));
        if (cert != nullptr) out += ", ";
      }
      if (cert != nullptr) out += analysis::FormatCertificate(*cert);
      out += ")";
    }
    out += '\n';
    switch (node.kind()) {
      case Query::Kind::kAnd:
      case Query::Kind::kOr:
        self(self, *node.left(), depth + 1);
        self(self, *node.right(), depth + 1);
        break;
      case Query::Kind::kNot:
      case Query::Kind::kExists:
      case Query::Kind::kForall:
        self(self, *node.left(), depth + 1);
        break;
      case Query::Kind::kAtom:
      case Query::Kind::kCmp:
        break;
    }
  };
  walk(walk, *q, 0);
  return out;
}

}  // namespace query
}  // namespace itdb
