#include "query/optimize.h"

#include <algorithm>
#include <string>
#include <vector>

namespace itdb {
namespace query {

namespace {

QueryCmp NegateCmp(QueryCmp cmp) {
  switch (cmp) {
    case QueryCmp::kEq:
      return QueryCmp::kNe;
    case QueryCmp::kNe:
      return QueryCmp::kEq;
    case QueryCmp::kLe:
      return QueryCmp::kGt;
    case QueryCmp::kLt:
      return QueryCmp::kGe;
    case QueryCmp::kGe:
      return QueryCmp::kLt;
    case QueryCmp::kGt:
      return QueryCmp::kLe;
  }
  return cmp;
}

bool IsFreeIn(const QueryPtr& q, const std::string& var) {
  std::vector<std::string> free = q->FreeVariables();
  return std::binary_search(free.begin(), free.end(), var);
}

/// Pushes negations toward the leaves.  `negate` is the pending polarity.
QueryPtr PushNegations(const QueryPtr& q, bool negate) {
  switch (q->kind()) {
    case Query::Kind::kAtom:
      return negate ? Query::Not(q) : q;
    case Query::Kind::kCmp:
      return negate
                 ? Query::Compare(q->lhs(), NegateCmp(q->cmp()), q->rhs())
                 : q;
    case Query::Kind::kAnd: {
      QueryPtr l = PushNegations(q->left(), negate);
      QueryPtr r = PushNegations(q->right(), negate);
      return negate ? Query::Or(std::move(l), std::move(r))
                    : Query::And(std::move(l), std::move(r));
    }
    case Query::Kind::kOr: {
      QueryPtr l = PushNegations(q->left(), negate);
      QueryPtr r = PushNegations(q->right(), negate);
      return negate ? Query::And(std::move(l), std::move(r))
                    : Query::Or(std::move(l), std::move(r));
    }
    case Query::Kind::kNot:
      return PushNegations(q->left(), !negate);
    case Query::Kind::kExists: {
      // Deliberately do NOT rewrite "not exists" into "forall not": the
      // evaluator computes a negated existential as one complement AFTER
      // the projection (few columns), whereas a universal would complement
      // the un-projected scope -- strictly more columns, exponentially
      // worse (Table 3).  The pending negation stays outside.
      QueryPtr body = PushNegations(q->left(), false);
      QueryPtr exists = Query::Exists(q->quantified_var(), std::move(body));
      return negate ? Query::Not(std::move(exists)) : exists;
    }
    case Query::Kind::kForall: {
      if (negate) {
        // "not forall x. phi" == "exists x. not phi": saves two of the
        // three complements the evaluator would otherwise run.
        return Query::Exists(q->quantified_var(),
                             PushNegations(q->left(), true));
      }
      return Query::Forall(q->quantified_var(),
                           PushNegations(q->left(), false));
    }
  }
  return q;
}

/// Bottom-up quantifier scope minimization.
QueryPtr ShrinkQuantifiers(const QueryPtr& q) {
  switch (q->kind()) {
    case Query::Kind::kAtom:
    case Query::Kind::kCmp:
      return q;
    case Query::Kind::kAnd:
      return Query::And(ShrinkQuantifiers(q->left()),
                        ShrinkQuantifiers(q->right()));
    case Query::Kind::kOr:
      return Query::Or(ShrinkQuantifiers(q->left()),
                       ShrinkQuantifiers(q->right()));
    case Query::Kind::kNot:
      return Query::Not(ShrinkQuantifiers(q->left()));
    case Query::Kind::kExists:
    case Query::Kind::kForall: {
      const bool exists = q->kind() == Query::Kind::kExists;
      const std::string& var = q->quantified_var();
      QueryPtr body = ShrinkQuantifiers(q->left());
      if (!IsFreeIn(body, var)) return body;  // Vacuous (domains nonempty).
      auto requantify = [exists, &var](QueryPtr inner) {
        return exists ? Query::Exists(var, std::move(inner))
                      : Query::Forall(var, std::move(inner));
      };
      // Push through AND/OR when one side does not mention the variable
      // (sound for both quantifiers in that one-sided case).
      if (body->kind() == Query::Kind::kAnd ||
          body->kind() == Query::Kind::kOr) {
        const bool in_left = IsFreeIn(body->left(), var);
        const bool in_right = IsFreeIn(body->right(), var);
        auto rebuild = [&body](QueryPtr l, QueryPtr r) {
          return body->kind() == Query::Kind::kAnd
                     ? Query::And(std::move(l), std::move(r))
                     : Query::Or(std::move(l), std::move(r));
        };
        if (in_left && !in_right) {
          return rebuild(ShrinkQuantifiers(requantify(body->left())),
                         body->right());
        }
        if (!in_left && in_right) {
          return rebuild(body->left(),
                         ShrinkQuantifiers(requantify(body->right())));
        }
      }
      return requantify(std::move(body));
    }
  }
  return q;
}

}  // namespace

QueryPtr Optimize(const QueryPtr& q) {
  QueryPtr current = q;
  std::string fingerprint = current->ToString();
  // Negation pushing can expose new shrink opportunities and vice versa;
  // iterate to a fixpoint (bounded -- each pass only shrinks scopes).
  for (int round = 0; round < 16; ++round) {
    QueryPtr next = ShrinkQuantifiers(PushNegations(current, false));
    std::string next_fingerprint = next->ToString();
    if (next_fingerprint == fingerprint) break;
    current = std::move(next);
    fingerprint = std::move(next_fingerprint);
  }
  return current;
}

}  // namespace query
}  // namespace itdb
