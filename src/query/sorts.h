// Sort inference for query variables.
//
// The query language is two-sorted (Section 4): temporal variables range
// over Z, data variables over the generic sort D.  The surface syntax does
// not annotate variables, so sorts are inferred:
//   * an argument position of a relation atom dictates the sort (and data
//     type) of the variable appearing there;
//   * order comparisons (<=, <, >=, >) and successor offsets force the
//     temporal sort;
//   * comparison against a string constant forces the string data sort;
//   * comparison against an integer constant forces the temporal sort
//     (write the value into a relation to compare data integers);
//   * = / != propagate sorts between their operands.
// Inference iterates to a fixpoint; inconsistent or undetermined variables
// are errors.

#ifndef ITDB_QUERY_SORTS_H_
#define ITDB_QUERY_SORTS_H_

#include <map>
#include <string>

#include "query/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {
namespace query {

enum class Sort {
  kTime,
  kDataString,
  kDataInt,
};

/// Variable name -> inferred sort, for every variable in the query
/// (quantified variable names must be distinct from each other and from the
/// free variables; shadowing is rejected).
using SortMap = std::map<std::string, Sort>;

/// Infers the sort of every variable of `q` against the relation schemas in
/// `db`.  Fails on: unknown relations, arity mismatches, inconsistent sort
/// usage, undetermined variables, and variable shadowing.
Result<SortMap> InferSorts(const Database& db, const QueryPtr& q);

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_SORTS_H_
