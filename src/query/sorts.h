// Sort inference for query variables.
//
// The query language is two-sorted (Section 4): temporal variables range
// over Z, data variables over the generic sort D.  The surface syntax does
// not annotate variables, so sorts are inferred:
//   * an argument position of a relation atom dictates the sort (and data
//     type) of the variable appearing there;
//   * order comparisons (<=, <, >=, >) and successor offsets force the
//     temporal sort;
//   * comparison against a string constant forces the string data sort;
//   * comparison against an integer constant forces the temporal sort
//     (write the value into a relation to compare data integers);
//   * = / != propagate sorts between their operands.
// Inference iterates to a fixpoint; inconsistent or undetermined variables
// are errors.
//
// Two entry points share one implementation: InferSorts (legacy, stops at
// the first problem and returns it as a Status) and InferSortsDiagnosed
// (collects every problem as a coded Diagnostic with a source span -- the
// front end of the static analyzer, src/analysis).

#ifndef ITDB_QUERY_SORTS_H_
#define ITDB_QUERY_SORTS_H_

#include <map>
#include <string>
#include <vector>

#include "query/ast.h"
#include "storage/database.h"
#include "util/diagnostic.h"
#include "util/status.h"

namespace itdb {
namespace query {

enum class Sort {
  kTime,
  kDataString,
  kDataInt,
};

/// Variable name -> inferred sort, for every variable in the query
/// (quantified variable names must be distinct from each other and from the
/// free variables; shadowing is rejected).
using SortMap = std::map<std::string, Sort>;

/// Infers the sort of every variable of `q` against the relation schemas in
/// `db`.  Fails on: unknown relations, arity mismatches, inconsistent sort
/// usage, undetermined variables, and variable shadowing.
Result<SortMap> InferSorts(const Database& db, const QueryPtr& q);

struct SortDiagnostics {
  /// Best-effort map: every variable whose sort could be determined, even
  /// when other variables produced diagnostics.
  SortMap sorts;
  /// Coded findings (diag::kUnknownRelation .. diag::kMixedSortComparison),
  /// in source order per pass.  Use HasErrors() to gate on validity.
  std::vector<Diagnostic> diagnostics;
  /// First source span seen for each variable (for follow-up diagnostics).
  std::map<std::string, SourceSpan> var_spans;
  /// Variables bound by a quantifier.
  std::vector<std::string> quantified;
};

/// Collecting variant of InferSorts.  With `strict_unused_quantified` a
/// quantified variable that is never used still yields A006 (exactly the
/// legacy behavior); the analyzer passes false and reports such variables
/// as A013 vacuous-quantifier warnings instead.
SortDiagnostics InferSortsDiagnosed(const Database& db, const QueryPtr& q,
                                    bool strict_unused_quantified = true);

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_SORTS_H_
