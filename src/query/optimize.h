// Logical query optimization.
//
// The evaluator compiles negation to the Appendix A.6 complement, whose
// cost is exponential in the number of columns of its operand (Table 3 of
// the paper).  The classical countermeasure is *miniscoping*: push
// quantifiers (and negations) inward so complements run over as few
// columns as possible.  Rewrites applied, all standard equivalences of
// first-order logic:
//
//   NOT NOT phi                      -> phi
//   NOT (phi AND psi)                -> NOT phi OR NOT psi     (toward atoms)
//   NOT (phi OR psi)                 -> NOT phi AND NOT psi
//   NOT FORALL v . phi               -> EXISTS v . NOT phi
//   (but NOT EXISTS stays as written: the evaluator complements a negated
//    existential after its projection, which is the cheap direction)
//   NOT (t1 cmp t2)                  -> t1 cmp' t2   (comparison negation)
//   EXISTS v . phi                   -> phi             if v not free in phi
//   FORALL v . phi                   -> phi             if v not free in phi
//   EXISTS v . (phi AND psi)         -> phi AND EXISTS v . psi   if v not
//                                       free in phi (and symmetrically)
//   EXISTS v . (phi OR psi)          -> phi OR EXISTS v . psi    if v not
//                                       free in phi (and symmetrically)
//   FORALL v . (phi AND psi)         -> phi AND FORALL v . psi   if v not
//                                       free in phi (and symmetrically)
//   FORALL v . (phi OR psi)          -> phi OR FORALL v . psi    if v not
//                                       free in phi (and symmetrically)
//
// Quantifier-duplicating distributions (EXISTS over OR into both branches)
// are deliberately NOT applied: they would quantify the same variable name
// twice, which the sort-inference pass rejects.
//
// The rewrite is semantics-preserving under the evaluator's semantics
// (temporal sort over Z -- nonempty -- and data sort over the active
// domain): scope shrinking never changes which domain a quantifier ranges
// over.
//
// Pipeline position: EvalQuery runs the static analyzer first
// (analysis/analyzer.h), applies its sound rewrites (dead OR-branch
// elimination, which IS representation-preserving), then hands the result
// here.  The analyzer's polarity tracking mirrors the De Morgan pushes
// above on purpose: elimination only fires where these rewrites keep the
// branch a positive union arm.

#ifndef ITDB_QUERY_OPTIMIZE_H_
#define ITDB_QUERY_OPTIMIZE_H_

#include "query/ast.h"

namespace itdb {
namespace query {

/// Returns an equivalent query with negations pushed toward atoms and
/// quantifier scopes minimized.  Idempotent.
QueryPtr Optimize(const QueryPtr& q);

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_OPTIMIZE_H_
