// Cost-based physical planning: reorder AND-chains before evaluation.
//
// The evaluator compiles kAnd nodes to Join and evaluates chains in written
// order, but conjunction cost is wildly order-sensitive: joining the two
// large relations of a three-way chain first can materialize an
// O(|A| * |B|) intermediate that the selective third conjunct would have
// kept tiny, and a chain whose adjacent conjuncts share no variables
// degenerates to a cross product (the A011 analysis warning) even when a
// different order joins on shared attributes throughout.  PlanQuery walks
// the tree bottom-up, flattens every maximal AND-chain, estimates each
// conjunct's cardinality from per-relation statistics (core/stats.h), and
// rebuilds the chain greedy left-deep: cheapest connected pair first, each
// following step the connected conjunct that minimizes the estimated
// intermediate, selections and comparisons as soon as their variables are
// bound, cross products and wide complements (the A010 NP-regime signal:
// estimated rows exponential in free temporal width) last.
//
// Bit-identity: planning changes only the association/order of joins inside
// AND-chains.  Join output tuples carry the CLOSED conjunction of their
// operands' constraint systems, and min-plus closure is idempotent over
// entrywise min, so the per-tuple representation of a multi-way conjunction
// is join-order-invariant; only the tuple SEQUENCE differs.  The evaluator
// therefore sorts every kAnd result canonically (SortTuplesCanonical),
// making planned and written-order evaluation bit-identical -- pinned by
// the cost_plan axis of the fuzz determinism matrix.  The one observable
// divergence is resource exhaustion: a budget that the written order blows
// and the planned order does not (or vice versa) surfaces as different
// kOverflow / kResourceExhausted outcomes; the fuzz oracle treats that as a
// budget-skip, the same convention as every other budget divergence.
//
// Estimates are heuristics feeding ORDERING ONLY; they never gate or alter
// an operation.  Complement placement is likewise ordering-only: narrowing
// a complement's operand would change the representation, so scope
// minimization stays the job of query/optimize.h miniscoping.

#ifndef ITDB_QUERY_PLANNER_H_
#define ITDB_QUERY_PLANNER_H_

#include <map>
#include <string>

#include "analysis/absint.h"
#include "core/stats.h"
#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"

namespace itdb {
namespace query {

/// A plan node's estimate: output cardinality (generalized tuples) and
/// cumulative subtree work, both heuristic.
struct PlanEstimate {
  double rows = 1.0;
  double cost = 0.0;
};

/// Estimates keyed by node address.  Valid only for the exact tree (shared
/// subtree pointers included) they were computed for.
using PlanEstimateMap = std::map<const Query*, PlanEstimate>;

struct PlannedQuery {
  QueryPtr query;
  /// Estimates for every node of `query` (the planned tree).
  PlanEstimateMap estimates;
};

/// Plans `q` against `db`: AND-chains reordered as documented above, every
/// other node preserved.  `sorts` must be the successful sort inference for
/// `q` (variable sets are unchanged by planning, so it stays valid for the
/// result).  `stats_cache`, when non-null, memoizes per-relation statistics
/// keyed on db.version(); null recomputes them per call.  Never fails:
/// relations that cannot be read estimate as empty.
///
/// `absint`, when non-null, must have interpreted `q`'s tree
/// (analysis/absint.h); the planner then CLAMPS its heuristic row
/// estimates to the certified bounds -- a certified cardinality caps the
/// estimate, and a hull-refuted conjunct (provably empty set) estimates as
/// zero rows, pulling it to the front of the chain.  The planner registers
/// certificates for every AND node it rebuilds, so the planned tree is
/// fully annotated for explain/profile.  Clamping changes join ORDER only;
/// bit-identity is untouched (QueryOptions::certified_bounds axis of the
/// fuzz matrix).
PlannedQuery PlanQuery(const Database& db, const QueryPtr& q,
                       const SortMap& sorts, StatsCache* stats_cache,
                       analysis::AbstractInterpreter* absint = nullptr);

/// FormatQueryPlan (eval.h) with per-node estimates appended:
///   AND  (est_rows=12, est_cost=340)
/// Nodes absent from `estimates` print without a suffix.  With
/// `certificates`, certified bounds are appended to the annotation:
///   AND  (est_rows=12, est_cost=340, cert_rows=40, cert_lcm=6)
std::string FormatQueryPlanWithEstimates(
    const QueryPtr& q, const PlanEstimateMap& estimates,
    const analysis::CertificateMap* certificates = nullptr);

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_PLANNER_H_
