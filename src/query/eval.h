// Query evaluation (Section 4): compiles two-sorted first-order queries to
// the closed relational algebra of Section 3 and evaluates them against a
// Database.
//
// Semantics:
//   * Temporal variables and quantifiers range over all of Z -- the whole
//     point of the paper's representation.  Negation over the temporal sort
//     uses the Appendix A.6 complement; universal temporal quantification
//     is not(exists not(...)).
//   * Data variables and quantifiers range over the ACTIVE DOMAIN: the data
//     values appearing in the database plus the constants of the query,
//     split by type.  This is the standard safe interpretation of the
//     generic sort.
//   * The result of an open query is a generalized relation with one
//     temporal column per free temporal variable and one data column per
//     free data variable, each named after its variable, in sorted name
//     order per kind.
//   * A sentence (no free variables) evaluates to a zero-arity relation;
//     EvalBooleanQuery reports whether it is nonempty (Theorem 4.1).

#ifndef ITDB_QUERY_EVAL_H_
#define ITDB_QUERY_EVAL_H_

#include <string_view>

#include "core/algebra.h"
#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {
namespace query {

struct QueryOptions {
  AlgebraOptions algebra;
  /// Run the logical optimizer (query/optimize.h) before evaluation.
  /// Semantics-preserving; dramatically cheaper complements on deeply
  /// quantified queries.  Disable to benchmark the naive pipeline.
  bool optimize = true;
  /// Sweep intermediate results of kAnd / kOr / kNot nodes with the cheap
  /// subsumption pass (SimplifyRelation): drops duplicate, subsumed, and
  /// relaxation-infeasible tuples so composed plans don't snowball tuple
  /// counts.  Semantics-preserving (the represented set is unchanged) but
  /// NOT representation-preserving, hence opt-in.
  bool prune_intermediates = false;
};

/// Evaluates an open query; see the semantics above.
Result<GeneralizedRelation> EvalQuery(const Database& db, const QueryPtr& q,
                                      const QueryOptions& options = {});

/// Evaluates a yes/no query.  Fails with kInvalidArgument when `q` has free
/// variables.
Result<bool> EvalBooleanQuery(const Database& db, const QueryPtr& q,
                              const QueryOptions& options = {});

/// Parse + evaluate conveniences.
Result<GeneralizedRelation> EvalQueryString(const Database& db,
                                            std::string_view text,
                                            const QueryOptions& options = {});
Result<bool> EvalBooleanQueryString(const Database& db, std::string_view text,
                                    const QueryOptions& options = {});

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_EVAL_H_
