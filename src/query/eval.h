// Query evaluation (Section 4): compiles two-sorted first-order queries to
// the closed relational algebra of Section 3 and evaluates them against a
// Database.
//
// Semantics:
//   * Temporal variables and quantifiers range over all of Z -- the whole
//     point of the paper's representation.  Negation over the temporal sort
//     uses the Appendix A.6 complement; universal temporal quantification
//     is not(exists not(...)).
//   * Data variables and quantifiers range over the ACTIVE DOMAIN: the data
//     values appearing in the database plus the constants of the query,
//     split by type.  This is the standard safe interpretation of the
//     generic sort.
//   * The result of an open query is a generalized relation with one
//     temporal column per free temporal variable and one data column per
//     free data variable, each named after its variable, in sorted name
//     order per kind.
//   * A sentence (no free variables) evaluates to a zero-arity relation;
//     EvalBooleanQuery reports whether it is nonempty (Theorem 4.1).

#ifndef ITDB_QUERY_EVAL_H_
#define ITDB_QUERY_EVAL_H_

#include <optional>
#include <string>
#include <string_view>

#include "analysis/analyzer.h"
#include "core/algebra.h"
#include "obs/profile.h"
#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {

class StatsCache;  // core/stats.h

namespace query {

struct QueryOptions {
  AlgebraOptions algebra;
  /// Run the static analyzer (analysis/analyzer.h) before evaluation.
  /// Error-severity diagnostics abort with a Status listing them; otherwise
  /// the analyzer's sound rewrites (dead OR-branch elimination) are applied
  /// and a root proven empty short-circuits evaluation.  Both are
  /// bit-identical to evaluating without analysis -- same representation,
  /// at every thread count (the fuzz oracle pins this).  Disable to
  /// evaluate exactly the tree you built, diagnostics be damned.
  bool analyze = true;
  /// Analyzer knobs used when `analyze` is set.
  analysis::AnalyzeOptions analysis;
  /// Run the logical optimizer (query/optimize.h) before evaluation.
  /// Semantics-preserving; dramatically cheaper complements on deeply
  /// quantified queries.  Disable to benchmark the naive pipeline.
  bool optimize = true;
  /// Cost-based physical planning (query/planner.h): reorder AND-chains
  /// greedy left-deep on per-relation statistics before evaluation.
  /// Bit-identical to the written order (results of kAnd nodes are sorted
  /// canonically either way; the fuzz matrix pins it), except that planned
  /// and written orders can exhaust resource budgets differently.
  bool cost_plan = true;
  /// Memo for the per-relation statistics the planner reads, keyed on the
  /// database's catalog version (core/stats.h).  Not owned; null recomputes
  /// statistics on every planned query.
  StatsCache* stats_cache = nullptr;
  /// Feed certified bounds (analysis/absint.h) into the cost planner: the
  /// abstract interpreter runs over the tree being planned and its
  /// certificates CLAMP the planner's heuristic row estimates (a certified
  /// cardinality caps the guess; a hull-refuted conjunct sorts first as
  /// provably set-empty).  Certificates also annotate plan spans
  /// (cert_rows / cert_lcm args next to est_rows / est_cost).  Ordering and
  /// observability only -- results stay bit-identical with this on or off,
  /// at every thread count (the certified_bounds axis of the fuzz
  /// determinism matrix pins it).  No effect unless `cost_plan` is set.
  bool certified_bounds = true;
  /// Sweep intermediate results of kAnd / kOr / kNot nodes with the cheap
  /// subsumption pass (SimplifyRelation): drops duplicate, subsumed, and
  /// relaxation-infeasible tuples so composed plans don't snowball tuple
  /// counts.  Semantics-preserving (the represented set is unchanged) but
  /// NOT representation-preserving, hence opt-in.
  bool prune_intermediates = false;
  /// Open one span per query-plan node (category "plan", labeled AND / OR /
  /// ATOM ... / EXISTS v) in the resolved tracer, recording wall/CPU time,
  /// tuples_out, and the deltas of the kernel counters and normalize-cache
  /// stats attributable to the node's subtree.  The resolved tracer is
  /// `tracer` below, else algebra.tracer, else the process-global tracer
  /// (obs::InstallGlobalTracer); when none is set, tracing is off.  Tracing
  /// is an observer only: results are bit-identical with it on or off, at
  /// every thread count.  EvalQueryProfiled implies trace.
  bool trace = false;
  /// Destination for the plan spans.  Not owned; null falls back as
  /// described at `trace`.
  obs::Tracer* tracer = nullptr;
};

/// A query result together with its evaluation profile (the plan-span tree
/// folded per node; see obs/profile.h).
struct ProfiledResult {
  GeneralizedRelation relation;
  obs::Profile profile;
};

/// Evaluates an open query; see the semantics above.
Result<GeneralizedRelation> EvalQuery(const Database& db, const QueryPtr& q,
                                      const QueryOptions& options = {});

/// An evaluation result together with everything the analyzer found.  When
/// the analysis has error-severity diagnostics, `relation` is nullopt (and
/// the call itself still returns ok: the diagnostics ARE the result).
struct AnalyzedResult {
  analysis::AnalysisResult analysis;
  std::optional<GeneralizedRelation> relation;
};

/// Like EvalQuery with `analyze` forced on, but analysis findings are
/// returned structurally instead of flattened into a Status message.
/// Parse failures and evaluation failures still fail the call.
Result<AnalyzedResult> EvalQueryAnalyzed(const Database& db, const QueryPtr& q,
                                         const QueryOptions& options = {});
Result<AnalyzedResult> EvalQueryStringAnalyzed(
    const Database& db, std::string_view text, const QueryOptions& options = {});

/// Evaluates a yes/no query.  Fails with kInvalidArgument when `q` has free
/// variables.
Result<bool> EvalBooleanQuery(const Database& db, const QueryPtr& q,
                              const QueryOptions& options = {});

/// Parse + evaluate conveniences.
Result<GeneralizedRelation> EvalQueryString(const Database& db,
                                            std::string_view text,
                                            const QueryOptions& options = {});
Result<bool> EvalBooleanQueryString(const Database& db, std::string_view text,
                                    const QueryOptions& options = {});

/// Evaluates `q` with per-plan-node tracing and returns the result together
/// with its profile (the backing store of the shell's PROFILE command).
/// With no explicit tracer in `options`, spans go to a private tracer local
/// to this call -- the process-global tracer is deliberately NOT used, so
/// the profile never folds in spans of unrelated work.  With an explicit
/// options.tracer (or algebra.tracer), spans are recorded there and the
/// profile is built from ALL of that tracer's "plan" spans.
Result<ProfiledResult> EvalQueryProfiled(const Database& db, const QueryPtr& q,
                                         const QueryOptions& options = {});
Result<ProfiledResult> EvalQueryStringProfiled(
    const Database& db, std::string_view text, const QueryOptions& options = {});

/// The indented plan tree EXPLAIN prints: one line per plan node, labeled
/// exactly like the spans EvalQueryProfiled opens (AND / OR / NOT /
/// EXISTS v / FORALL v / ATOM P(x, y) / CMP x < y).  Apply
/// query::Optimize first to see the plan evaluation actually runs.
std::string FormatQueryPlan(const QueryPtr& q);

/// The label of one plan node: what EXPLAIN prints, what its trace span is
/// named, and what the planner's estimated-plan rendering prefixes (AND /
/// OR / NOT / EXISTS v / FORALL v / ATOM P(x, y) / CMP x < y).
std::string PlanNodeLabel(const Query& q);

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_EVAL_H_
