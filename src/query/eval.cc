#include "query/eval.h"

#include "query/optimize.h"
#include "query/parser.h"
#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "core/index.h"
#include "core/simplify.h"
#include "obs/metrics.h"
#include "util/arena.h"
#include "obs/trace.h"
#include "util/diagnostic.h"
#include "util/numeric.h"
#include "util/thread_pool.h"

namespace itdb {
namespace query {

namespace {

/// The active domain of the generic sort, split by type.
struct ActiveDomain {
  std::vector<Value> strings;
  std::vector<Value> ints;

  const std::vector<Value>& OfType(DataType type) const {
    return type == DataType::kString ? strings : ints;
  }
};

void CollectQueryConstants(const Query& q, std::set<Value>& strings,
                           std::set<Value>& ints, const Database& db) {
  switch (q.kind()) {
    case Query::Kind::kAtom: {
      Result<GeneralizedRelation> rel = db.Get(q.relation());
      if (!rel.ok()) return;  // Reported later by sort inference.
      const Schema& schema = rel.value().schema();
      for (std::size_t i = 0; i < q.args().size(); ++i) {
        const Term& t = q.args()[i];
        bool data_pos = static_cast<int>(i) >= schema.temporal_arity();
        if (t.kind == Term::Kind::kString) {
          strings.insert(Value(t.text));
        } else if (t.kind == Term::Kind::kInt && data_pos) {
          ints.insert(Value(t.number));
        }
      }
      break;
    }
    case Query::Kind::kCmp:
      for (const Term* t : {&q.lhs(), &q.rhs()}) {
        if (t->kind == Term::Kind::kString) strings.insert(Value(t->text));
      }
      break;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CollectQueryConstants(*q.left(), strings, ints, db);
      CollectQueryConstants(*q.right(), strings, ints, db);
      break;
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      CollectQueryConstants(*q.left(), strings, ints, db);
      break;
  }
}

ActiveDomain ComputeActiveDomain(const Database& db, const Query& q) {
  std::set<Value> strings;
  std::set<Value> ints;
  for (const std::string& name : db.Names()) {
    Result<GeneralizedRelation> rel = db.Get(name);
    if (!rel.ok()) continue;
    for (const GeneralizedTuple& t : rel.value().tuples()) {
      for (const Value& v : t.data()) {
        (v.IsString() ? strings : ints).insert(v);
      }
    }
  }
  CollectQueryConstants(q, strings, ints, db);
  ActiveDomain out;
  out.strings.assign(strings.begin(), strings.end());
  out.ints.assign(ints.begin(), ints.end());
  return out;
}

}  // namespace

// Leaves carry their full text; inner nodes just the operator, their
// structure being the tree itself.
std::string PlanNodeLabel(const Query& q) {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      return "ATOM " + q.ToString();
    case Query::Kind::kCmp:
      return "CMP " + q.ToString();
    case Query::Kind::kAnd:
      return "AND";
    case Query::Kind::kOr:
      return "OR";
    case Query::Kind::kNot:
      return "NOT";
    case Query::Kind::kExists:
      return "EXISTS " + q.quantified_var();
    case Query::Kind::kForall:
      return "FORALL " + q.quantified_var();
  }
  return "?";
}

namespace {

/// Point-in-time reading of the work counters a plan span reports as
/// deltas.  Relaxed loads: the evaluator recursion is single-threaded (the
/// parallelism lives inside the algebra kernels, which have joined by the
/// time a node's span closes), so before/after differences are exact.
struct CounterSnapshot {
  std::int64_t pairs_candidate = 0;
  std::int64_t pairs_pruned_residue = 0;
  std::int64_t pairs_pruned_hull = 0;
  std::int64_t closures_incremental = 0;
  std::int64_t closures_full = 0;
  std::int64_t tuples_subsumed = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t arena_bytes = 0;
  std::int64_t arena_allocs = 0;
};

CounterSnapshot SnapshotCounters(const KernelCounters* counters,
                                 const NormalizeCache* cache) {
  CounterSnapshot s;
  // Process-wide arena totals: the per-node delta reports how much slab
  // memory the subtree's batched kernels consumed.
  const Arena::GlobalStats arena = Arena::TotalStats();
  s.arena_bytes = arena.bytes_allocated;
  s.arena_allocs = arena.allocations;
  if (counters != nullptr) {
    s.pairs_candidate =
        counters->pairs_candidate.load(std::memory_order_relaxed);
    s.pairs_pruned_residue =
        counters->pairs_pruned_residue.load(std::memory_order_relaxed);
    s.pairs_pruned_hull =
        counters->pairs_pruned_hull.load(std::memory_order_relaxed);
    s.closures_incremental =
        counters->closures_incremental.load(std::memory_order_relaxed);
    s.closures_full = counters->closures_full.load(std::memory_order_relaxed);
    s.tuples_subsumed =
        counters->tuples_subsumed.load(std::memory_order_relaxed);
  }
  if (cache != nullptr) {
    NormalizeCache::Stats stats = cache->stats();
    s.cache_hits = stats.hits;
    s.cache_misses = stats.misses;
  }
  return s;
}

struct Evaluator {
  const Database& db;
  const SortMap& sorts;
  const ActiveDomain& adom;
  const AlgebraOptions& algebra;
  bool prune_intermediates = false;
  /// Plan-span destination; null disables per-node tracing.
  obs::Tracer* tracer = nullptr;
  /// Planner estimates for the tree being evaluated (keyed by node
  /// address); null or missing nodes simply omit the est_* span args.
  const PlanEstimateMap* estimates = nullptr;
  /// Certified bounds for the tree being evaluated (analysis/absint.h);
  /// null or missing nodes omit the cert_* span args, and unbounded
  /// components omit their arg (absence = unbounded).
  const analysis::CertificateMap* certificates = nullptr;

  Result<GeneralizedRelation> Eval(const Query& q) const;

 private:
  Result<GeneralizedRelation> EvalNode(const Query& q) const;
  Result<GeneralizedRelation> EvalAtom(const Query& q) const;
  Result<GeneralizedRelation> EvalCmp(const Query& q) const;
  Result<GeneralizedRelation> EvalNot(const GeneralizedRelation& rel) const;
  Result<GeneralizedRelation> EvalOr(const Query& q) const;
  Result<GeneralizedRelation> ExistsVar(GeneralizedRelation rel,
                                        const std::string& var) const;

  Sort SortOf(const std::string& var) const { return sorts.at(var); }
  DataType TypeOf(const std::string& var) const {
    return SortOf(var) == Sort::kDataInt ? DataType::kInt : DataType::kString;
  }

  /// Opt-in cheap-subsumption sweep on an intermediate result (see
  /// QueryOptions::prune_intermediates).
  Result<GeneralizedRelation> MaybePrune(GeneralizedRelation rel) const;
  /// Reorders (and renames nothing) so columns are sorted by name per kind.
  Result<GeneralizedRelation> Canonical(const GeneralizedRelation& rel) const;
  /// Extends `rel` with an unconstrained column for each missing variable
  /// in `vars` (temporal: all of Z; data: the active domain of its type).
  Result<GeneralizedRelation> ExtendTo(
      const GeneralizedRelation& rel,
      const std::vector<std::string>& vars) const;
  /// The universe relation over exactly `vars`.
  Result<GeneralizedRelation> Universe(
      const std::vector<std::string>& vars) const;
};

Result<GeneralizedRelation> Evaluator::MaybePrune(
    GeneralizedRelation rel) const {
  if (!prune_intermediates) return rel;
  return SimplifyRelation(rel, algebra.counters);
}

Result<GeneralizedRelation> Evaluator::Canonical(
    const GeneralizedRelation& rel) const {
  std::vector<std::string> temporal = rel.schema().temporal_names();
  std::vector<std::string> data = rel.schema().data_names();
  std::sort(temporal.begin(), temporal.end());
  std::sort(data.begin(), data.end());
  bool sorted = temporal == rel.schema().temporal_names() &&
                data == rel.schema().data_names();
  if (sorted) return rel;
  std::vector<std::string> attrs = std::move(temporal);
  attrs.insert(attrs.end(), data.begin(), data.end());
  return Project(rel, attrs, algebra);
}

Result<GeneralizedRelation> Evaluator::Universe(
    const std::vector<std::string>& vars) const {
  std::vector<std::string> temporal;
  std::vector<std::string> data_names;
  std::vector<DataType> data_types;
  for (const std::string& v : vars) {
    if (SortOf(v) == Sort::kTime) {
      temporal.push_back(v);
    } else {
      data_names.push_back(v);
      data_types.push_back(TypeOf(v));
    }
  }
  std::sort(temporal.begin(), temporal.end());
  std::sort(data_names.begin(), data_names.end());
  // Re-derive types in sorted order.
  for (std::size_t i = 0; i < data_names.size(); ++i) {
    data_types[i] = TypeOf(data_names[i]);
  }
  GeneralizedRelation out(Schema(temporal, data_names, data_types));
  // One tuple per combination of active-domain values for data columns,
  // with every temporal column unconstrained.
  std::vector<Lrp> lrps(temporal.size(), Lrp::Make(0, 1));
  if (data_names.empty()) {
    ITDB_RETURN_IF_ERROR(out.AddTuple(GeneralizedTuple(lrps)));
    return out;
  }
  std::vector<std::size_t> idx(data_names.size(), 0);
  std::vector<const std::vector<Value>*> domains;
  domains.reserve(data_names.size());
  for (std::size_t i = 0; i < data_names.size(); ++i) {
    domains.push_back(&adom.OfType(data_types[i]));
    if (domains.back()->empty()) return out;  // Empty domain: empty universe.
  }
  while (true) {
    std::vector<Value> combo;
    combo.reserve(data_names.size());
    for (std::size_t i = 0; i < data_names.size(); ++i) {
      combo.push_back((*domains[i])[idx[i]]);
    }
    ITDB_RETURN_IF_ERROR(out.AddTuple(GeneralizedTuple(lrps, std::move(combo))));
    int d = static_cast<int>(data_names.size()) - 1;
    while (d >= 0) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++idx[ud] < domains[ud]->size()) break;
      idx[ud] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return out;
}

Result<GeneralizedRelation> Evaluator::ExtendTo(
    const GeneralizedRelation& rel, const std::vector<std::string>& vars) const {
  std::vector<std::string> missing;
  for (const std::string& v : vars) {
    if (!rel.schema().FindTemporal(v).has_value() &&
        !rel.schema().FindData(v).has_value()) {
      missing.push_back(v);
    }
  }
  if (missing.empty()) return Canonical(rel);
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation extension, Universe(missing));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation crossed,
                        CrossProduct(rel, extension, algebra));
  return Canonical(crossed);
}

Result<GeneralizedRelation> Evaluator::EvalAtom(const Query& q) const {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(q.relation()));
  const Schema& schema = rel.schema();
  const int m = schema.temporal_arity();
  // Pass 1: constants and successor offsets.
  for (std::size_t i = 0; i < q.args().size(); ++i) {
    const Term& t = q.args()[i];
    int pos = static_cast<int>(i);
    if (pos < m) {
      // Temporal position.
      if (t.kind == Term::Kind::kInt) {
        ITDB_ASSIGN_OR_RETURN(
            rel, SelectTemporal(
                     rel, TemporalCondition{pos, kZeroVar, CmpOp::kEq, t.number},
                     algebra));
      } else if (t.number != 0) {
        // P(..., v + c, ...): the column equals v + c, so the variable's
        // value is column - c.
        ITDB_ASSIGN_OR_RETURN(std::int64_t delta, CheckedSub(0, t.number));
        ITDB_ASSIGN_OR_RETURN(rel, ShiftTemporalColumn(rel, pos, delta));
      }
    } else {
      // Data position.
      if (t.kind == Term::Kind::kString) {
        ITDB_ASSIGN_OR_RETURN(
            rel, SelectData(rel, pos - m, CmpOp::kEq, Value(t.text)));
      } else if (t.kind == Term::Kind::kInt) {
        ITDB_ASSIGN_OR_RETURN(
            rel, SelectData(rel, pos - m, CmpOp::kEq, Value(t.number)));
      }
    }
  }
  // Pass 2: repeated variables force equality selections; remember the
  // first column of each variable.
  std::map<std::string, int> first_position;
  for (std::size_t i = 0; i < q.args().size(); ++i) {
    const Term& t = q.args()[i];
    if (t.kind != Term::Kind::kVariable) continue;
    int pos = static_cast<int>(i);
    auto [it, inserted] = first_position.emplace(t.var, pos);
    if (inserted) continue;
    int prev = it->second;
    if (pos < m) {
      ITDB_ASSIGN_OR_RETURN(
          rel,
          SelectTemporal(rel, TemporalCondition{prev, pos, CmpOp::kEq, 0},
                         algebra));
    } else {
      ITDB_ASSIGN_OR_RETURN(rel,
                            SelectDataEqColumns(rel, prev - m, pos - m));
    }
  }
  // Pass 3: keep the first column of each variable, rename to the variable.
  std::vector<std::string> keep;
  std::vector<std::pair<std::string, std::string>> renames;
  for (const auto& [var, pos] : first_position) {
    const std::string& attr = pos < m ? schema.temporal_name(pos)
                                      : schema.data_name(pos - m);
    keep.push_back(attr);
    renames.emplace_back(attr, var);
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation projected,
                        Project(rel, keep, algebra));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation renamed,
                        Rename(projected, renames));
  return Canonical(renamed);
}

namespace {

CmpOp ToCmpOp(QueryCmp cmp) {
  switch (cmp) {
    case QueryCmp::kEq:
      return CmpOp::kEq;
    case QueryCmp::kNe:
      return CmpOp::kNe;
    case QueryCmp::kLe:
      return CmpOp::kLe;
    case QueryCmp::kLt:
      return CmpOp::kLt;
    case QueryCmp::kGe:
      return CmpOp::kGe;
    case QueryCmp::kGt:
      return CmpOp::kGt;
  }
  return CmpOp::kEq;
}

bool EvalGroundCmp(std::int64_t lhs, QueryCmp cmp, std::int64_t rhs) {
  switch (cmp) {
    case QueryCmp::kEq:
      return lhs == rhs;
    case QueryCmp::kNe:
      return lhs != rhs;
    case QueryCmp::kLe:
      return lhs <= rhs;
    case QueryCmp::kLt:
      return lhs < rhs;
    case QueryCmp::kGe:
      return lhs >= rhs;
    case QueryCmp::kGt:
      return lhs > rhs;
  }
  return false;
}

GeneralizedRelation BooleanRelation(bool truth) {
  GeneralizedRelation out((Schema()));
  if (truth) {
    Status s = out.AddTuple(GeneralizedTuple(std::vector<Lrp>{}));
    (void)s;  // Cannot fail: arities match.
  }
  return out;
}

}  // namespace

Result<GeneralizedRelation> Evaluator::EvalCmp(const Query& q) const {
  const Term& l = q.lhs();
  const Term& r = q.rhs();
  const bool l_var = l.kind == Term::Kind::kVariable;
  const bool r_var = r.kind == Term::Kind::kVariable;
  // Ground comparisons.
  if (!l_var && !r_var) {
    if (l.kind == Term::Kind::kString || r.kind == Term::Kind::kString) {
      if (l.kind != r.kind) {
        return Status::InvalidArgument(
            "comparison between a string and an integer constant");
      }
      bool eq = l.text == r.text;
      return BooleanRelation(q.cmp() == QueryCmp::kEq ? eq : !eq);
    }
    return BooleanRelation(EvalGroundCmp(l.number, q.cmp(), r.number));
  }
  // Identify the sort from either variable.
  const std::string& probe = l_var ? l.var : r.var;
  if (SortOf(probe) == Sort::kTime) {
    if (l_var && r_var && l.var == r.var) {
      // (v + c1) op (v + c2): ground.
      bool truth = EvalGroundCmp(l.number, q.cmp(), r.number);
      if (truth) return Universe({l.var});
      GeneralizedRelation out(Schema({l.var}, {}, {}));
      return out;
    }
    if (l_var && r_var) {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation universe,
                            Universe({l.var, r.var}));
      int lpos = *universe.schema().FindTemporal(l.var);
      int rpos = *universe.schema().FindTemporal(r.var);
      // (v_l + cl) op (v_r + cr)  <=>  v_l op v_r + (cr - cl).
      ITDB_ASSIGN_OR_RETURN(std::int64_t delta,
                            CheckedSub(r.number, l.number));
      ITDB_ASSIGN_OR_RETURN(
          GeneralizedRelation selected,
          SelectTemporal(universe,
                         TemporalCondition{lpos, rpos, ToCmpOp(q.cmp()), delta},
                         algebra));
      return Canonical(selected);
    }
    // Variable vs integer constant.
    const Term& var_term = l_var ? l : r;
    const Term& const_term = l_var ? r : l;
    if (const_term.kind != Term::Kind::kInt) {
      return Status::InvalidArgument(
          "temporal variable compared with a string constant");
    }
    QueryCmp cmp = q.cmp();
    if (!l_var) {
      // const op var: flip.
      switch (cmp) {
        case QueryCmp::kLe:
          cmp = QueryCmp::kGe;
          break;
        case QueryCmp::kLt:
          cmp = QueryCmp::kGt;
          break;
        case QueryCmp::kGe:
          cmp = QueryCmp::kLe;
          break;
        case QueryCmp::kGt:
          cmp = QueryCmp::kLt;
          break;
        default:
          break;
      }
    }
    ITDB_ASSIGN_OR_RETURN(GeneralizedRelation universe, Universe({var_term.var}));
    // (v + c) op K  <=>  v op K - c.
    ITDB_ASSIGN_OR_RETURN(std::int64_t bound,
                          CheckedSub(const_term.number, var_term.number));
    return SelectTemporal(
        universe, TemporalCondition{0, kZeroVar, ToCmpOp(cmp), bound}, algebra);
  }
  // Data sort: only = and != are defined.
  if (q.cmp() != QueryCmp::kEq && q.cmp() != QueryCmp::kNe) {
    return Status::InvalidArgument(
        "order comparison on data-sorted variable \"" + probe + "\"");
  }
  const bool want_equal = q.cmp() == QueryCmp::kEq;
  DataType type = TypeOf(probe);
  if (l_var && r_var) {
    GeneralizedRelation out(
        Schema({}, {std::min(l.var, r.var), std::max(l.var, r.var)},
               {type, type}));
    if (l.var == r.var) {
      return Status::InvalidArgument("variable compared with itself");
    }
    for (const Value& a : adom.OfType(type)) {
      for (const Value& b : adom.OfType(type)) {
        if ((a == b) == want_equal) {
          ITDB_RETURN_IF_ERROR(
              out.AddTuple(GeneralizedTuple(std::vector<Lrp>{}, {a, b})));
        }
      }
    }
    return out;
  }
  const Term& var_term = l_var ? l : r;
  const Term& const_term = l_var ? r : l;
  Value constant = const_term.kind == Term::Kind::kString
                       ? Value(const_term.text)
                       : Value(const_term.number);
  GeneralizedRelation out(Schema({}, {var_term.var}, {type}));
  if (want_equal) {
    ITDB_RETURN_IF_ERROR(
        out.AddTuple(GeneralizedTuple(std::vector<Lrp>{}, {constant})));
    return out;
  }
  for (const Value& v : adom.OfType(type)) {
    if (v != constant) {
      ITDB_RETURN_IF_ERROR(
          out.AddTuple(GeneralizedTuple(std::vector<Lrp>{}, {v})));
    }
  }
  return out;
}

Result<GeneralizedRelation> Evaluator::EvalNot(
    const GeneralizedRelation& rel) const {
  std::vector<std::vector<Value>> domains;
  domains.reserve(static_cast<std::size_t>(rel.schema().data_arity()));
  for (int i = 0; i < rel.schema().data_arity(); ++i) {
    domains.push_back(adom.OfType(rel.schema().data_type(i)));
  }
  return ComplementWithDataDomains(rel, domains, algebra);
}

Result<GeneralizedRelation> Evaluator::EvalOr(const Query& q) const {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation l, Eval(*q.left()));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r, Eval(*q.right()));
  // Extend both sides to the union of their variables.
  std::vector<std::string> vars;
  for (const GeneralizedRelation* rel : {&l, &r}) {
    for (const std::string& v : rel->schema().temporal_names()) {
      vars.push_back(v);
    }
    for (const std::string& v : rel->schema().data_names()) vars.push_back(v);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation le, ExtendTo(l, vars));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation re, ExtendTo(r, vars));
  return Union(le, re, algebra);
}

Result<GeneralizedRelation> Evaluator::ExistsVar(GeneralizedRelation rel,
                                                 const std::string& var) const {
  bool present = rel.schema().FindTemporal(var).has_value() ||
                 rel.schema().FindData(var).has_value();
  if (!present) return rel;  // Vacuous quantification over a nonempty sort.
  std::vector<std::string> keep;
  for (const std::string& v : rel.schema().temporal_names()) {
    if (v != var) keep.push_back(v);
  }
  for (const std::string& v : rel.schema().data_names()) {
    if (v != var) keep.push_back(v);
  }
  return Project(rel, keep, algebra);
}

Result<GeneralizedRelation> Evaluator::Eval(const Query& q) const {
  // Per-plan-node deadline check: a query cancelled by the server's
  // per-request budget (util/thread_pool.h) unwinds here between nodes even
  // when no kernel below happens to hit its own stride check.
  ITDB_RETURN_IF_ERROR(CheckCancellation());
  if (tracer == nullptr) return EvalNode(q);
  // One span per plan node, reporting the subtree's output size and the
  // work-counter deltas accrued while it was open.  Pure observation: the
  // evaluation path is identical with tracer == nullptr.
  obs::Span span = obs::Span::Begin(tracer, PlanNodeLabel(q), "plan");
  CounterSnapshot before =
      SnapshotCounters(algebra.counters, algebra.normalize_cache);
  Result<GeneralizedRelation> result = EvalNode(q);
  CounterSnapshot after =
      SnapshotCounters(algebra.counters, algebra.normalize_cache);
  if (result.ok()) {
    span.AddArg("tuples_out",
                static_cast<std::int64_t>(result.value().size()));
  }
  // Planner estimate next to the actual, so `profile` reads as
  // estimate-vs-actual per node.
  if (estimates != nullptr) {
    auto it = estimates->find(&q);
    if (it != estimates->end()) {
      span.AddArg("est_rows", static_cast<std::int64_t>(std::llround(
                                  std::min(it->second.rows, 1e18))));
      span.AddArg("est_cost", static_cast<std::int64_t>(std::llround(
                                  std::min(it->second.cost, 1e18))));
    }
  }
  // Certified bounds next to the heuristics: `profile` shows the sound
  // ceiling alongside the guess and the actual.
  if (certificates != nullptr) {
    auto it = certificates->find(&q);
    if (it != certificates->end()) {
      if (it->second.rows.has_value()) {
        span.AddArg("cert_rows", *it->second.rows);
      }
      if (it->second.lcm.has_value()) {
        span.AddArg("cert_lcm", *it->second.lcm);
      }
    }
  }
  span.AddArg("pairs_candidate", after.pairs_candidate - before.pairs_candidate);
  span.AddArg("pairs_pruned_residue",
              after.pairs_pruned_residue - before.pairs_pruned_residue);
  span.AddArg("pairs_pruned_hull",
              after.pairs_pruned_hull - before.pairs_pruned_hull);
  span.AddArg("closures_incremental",
              after.closures_incremental - before.closures_incremental);
  span.AddArg("closures_full", after.closures_full - before.closures_full);
  span.AddArg("tuples_subsumed",
              after.tuples_subsumed - before.tuples_subsumed);
  span.AddArg("cache_hits", after.cache_hits - before.cache_hits);
  span.AddArg("cache_misses", after.cache_misses - before.cache_misses);
  span.AddArg("arena_bytes", after.arena_bytes - before.arena_bytes);
  span.AddArg("arena_allocs", after.arena_allocs - before.arena_allocs);
  return result;
}

Result<GeneralizedRelation> Evaluator::EvalNode(const Query& q) const {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      return EvalAtom(q);
    case Query::Kind::kCmp:
      return EvalCmp(q);
    case Query::Kind::kAnd: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation l, Eval(*q.left()));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r, Eval(*q.right()));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation joined, Join(l, r, algebra));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation canon, Canonical(joined));
      // Canonical tuple order: join results conjoin CLOSED constraint
      // systems, and closure is idempotent over entrywise min, so the tuple
      // multiset of a multi-way conjunction is association-invariant; only
      // the sequence depends on join order.  Sorting here makes planned and
      // written-order chains bit-identical (query/planner.h).
      canon.SortTuplesCanonical();
      return MaybePrune(std::move(canon));
    }
    case Query::Kind::kOr: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation merged, EvalOr(q));
      return MaybePrune(std::move(merged));
    }
    case Query::Kind::kNot: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation inner, Eval(*q.left()));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation negated, EvalNot(inner));
      return MaybePrune(std::move(negated));
    }
    case Query::Kind::kExists: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation inner, Eval(*q.left()));
      return ExistsVar(std::move(inner), q.quantified_var());
    }
    case Query::Kind::kForall: {
      // forall v. phi  ==  not exists v. not phi.
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation inner, Eval(*q.left()));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation negated, EvalNot(inner));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation dropped,
                            ExistsVar(std::move(negated), q.quantified_var()));
      return EvalNot(dropped);
    }
  }
  return Status::InvalidArgument("unreachable query kind");
}

/// Publishes the totals of a per-query KernelCounters instance into the
/// global metrics registry, so runs that never wire counters explicitly
/// still show up under `metrics` / --trace-json consumers.
void FlushKernelCounters(const KernelCounters& counters) {
  obs::AddGlobalCounter(
      "kernel.pairs_total",
      counters.pairs_total.load(std::memory_order_relaxed));
  obs::AddGlobalCounter(
      "kernel.pairs_candidate",
      counters.pairs_candidate.load(std::memory_order_relaxed));
  obs::AddGlobalCounter(
      "kernel.pairs_pruned_residue",
      counters.pairs_pruned_residue.load(std::memory_order_relaxed));
  obs::AddGlobalCounter(
      "kernel.pairs_pruned_hull",
      counters.pairs_pruned_hull.load(std::memory_order_relaxed));
  obs::AddGlobalCounter(
      "kernel.closures_incremental",
      counters.closures_incremental.load(std::memory_order_relaxed));
  obs::AddGlobalCounter(
      "kernel.closures_full",
      counters.closures_full.load(std::memory_order_relaxed));
  obs::AddGlobalCounter(
      "kernel.tuples_subsumed",
      counters.tuples_subsumed.load(std::memory_order_relaxed));
}

/// The Status an error-severity analysis turns into: the legacy code for
/// the FIRST error (NotFound for unknown relations, InvalidArgument
/// otherwise), with the whole diagnostic list in the message.
Status AnalysisFailure(const analysis::AnalysisResult& analysis) {
  std::string message =
      "static analysis failed:\n" + FormatDiagnosticList(analysis.diagnostics);
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (d.code == diag::kUnknownRelation) return Status::NotFound(message);
    break;
  }
  return Status::InvalidArgument(message);
}

/// The canonical empty result for `q`: the exact schema evaluation would
/// produce (free temporal then free data columns, each name-sorted) with
/// zero tuples -- which is also exactly what evaluating a provably-empty
/// query returns, keeping the short-circuit bit-identical.
GeneralizedRelation EmptyRelationFor(const Query& q, const SortMap& sorts) {
  std::vector<std::string> temporal;
  std::vector<std::string> data_names;
  std::vector<DataType> data_types;
  for (const std::string& v : q.FreeVariables()) {  // Sorted.
    auto it = sorts.find(v);
    if (it == sorts.end() || it->second == Sort::kTime) {
      temporal.push_back(v);
    } else {
      data_names.push_back(v);
      data_types.push_back(it->second == Sort::kDataInt ? DataType::kInt
                                                        : DataType::kString);
    }
  }
  return GeneralizedRelation(
      Schema(std::move(temporal), std::move(data_names), std::move(data_types)));
}

Result<GeneralizedRelation> EvalQueryImpl(
    const Database& db, const QueryPtr& q, const QueryOptions& options,
    obs::Profile* profile,
    const analysis::AnalysisResult* pre_analysis = nullptr) {
  // Static analysis front end: abort on error-severity findings, serve a
  // proven-empty root without evaluating, drop provably dead OR branches.
  QueryPtr base = q;
  if (options.analyze || pre_analysis != nullptr) {
    analysis::AnalysisResult own;
    const analysis::AnalysisResult* ar = pre_analysis;
    if (ar == nullptr) {
      analysis::AnalyzeOptions aopts = options.analysis;
      // Analysis spans follow the same opt-in as evaluation spans: only a
      // traced run forwards the tracer (an untraced eval opens no spans).
      if (aopts.tracer == nullptr && options.trace) {
        aopts.tracer = options.tracer != nullptr ? options.tracer
                                                 : options.algebra.tracer;
      }
      own = analysis::Analyze(db, q, aopts);
      ar = &own;
    }
    if (ar->HasErrors()) {
      obs::AddGlobalCounter("analysis.aborts", 1);
      return AnalysisFailure(*ar);
    }
    // Short-circuit only on a bit-level proof: the plain evaluation of a
    // merely set-empty root can return infeasible tuples, and analysis
    // must be representation-invisible.
    if (ar->root_proven_bit_empty) return EmptyRelationFor(*q, ar->sorts);
    base = analysis::ApplySoundRewrites(q, *ar);
  }
  QueryPtr target = options.optimize ? Optimize(base) : base;
  ITDB_ASSIGN_OR_RETURN(SortMap sorts, InferSorts(db, target));
  // Cost-based physical planning: reorder AND-chains on the statistics.
  // Planning preserves variable sets, so the sort inference above stays
  // valid for the planned tree.
  PlanEstimateMap estimates;
  analysis::CertificateMap certificates;
  if (options.cost_plan) {
    // Certified bounds: interpret the tree being planned so the planner can
    // clamp its heuristics (planner.h).  The active domain is seeded from
    // the ORIGINAL query for the same reason ComputeActiveDomain below uses
    // it: rewrites may drop constants, but the evaluator's data universes
    // are sized from the original.
    std::optional<analysis::AbstractInterpreter> interp;
    if (options.certified_bounds) {
      interp.emplace(db, sorts, options.stats_cache, options.analysis.budget);
      interp->SeedActiveDomain(*q);
      interp->Interpret(target);
    }
    PlannedQuery planned =
        PlanQuery(db, target, sorts, options.stats_cache,
                  interp.has_value() ? &*interp : nullptr);
    target = std::move(planned.query);
    estimates = std::move(planned.estimates);
    // Copy AFTER planning: the planner registers certificates for the AND
    // nodes it rebuilds, so the planned tree is fully annotated.
    if (interp.has_value()) certificates = interp->certificates();
    obs::AddGlobalCounter("query.cost_plans", 1);
  }
  // The active domain always comes from the ORIGINAL query: constants in an
  // eliminated dead branch still feed it, so analysis cannot shift data
  // quantifier ranges.  (Optimize preserves atoms and constants, so this
  // changes nothing for the plain path.)
  ActiveDomain adom = ComputeActiveDomain(db, *q);
  // One normalization memo-cache per query evaluation: subqueries repeatedly
  // renormalize the same base tuples (negation and quantifier elimination in
  // particular), so sharing the cache across the whole tree pays for itself.
  // A caller-provided cache (shared across queries) takes precedence.
  NormalizeCache query_cache;
  AlgebraOptions algebra = options.algebra;
  if (algebra.normalize_cache == nullptr) {
    algebra.normalize_cache = &query_cache;
  }
  // Per-query kernel counters when the caller wired none, so plan spans and
  // the global registry get the pairs_* / closures_* breakdown either way.
  KernelCounters own_counters;
  if (algebra.counters == nullptr) algebra.counters = &own_counters;
  // Tracer resolution (see QueryOptions::trace).  Profiled runs without an
  // explicit tracer use a private one so foreign spans in the global tracer
  // cannot leak into the profile.
  obs::Tracer local_tracer;
  obs::Tracer* tracer = nullptr;
  if (options.trace || profile != nullptr) {
    tracer = options.tracer != nullptr ? options.tracer : algebra.tracer;
    if (tracer == nullptr) {
      tracer = profile != nullptr ? &local_tracer : obs::GlobalTracer();
    }
  }
  if (tracer != nullptr) algebra.tracer = tracer;
  Evaluator evaluator{db,     sorts,  adom,
                      algebra, options.prune_intermediates,
                      tracer, options.cost_plan ? &estimates : nullptr,
                      certificates.empty() ? nullptr : &certificates};
  Result<GeneralizedRelation> result = [&]() {
    // Root span over the whole evaluation; scoped so it is committed (and
    // visible to BuildProfile) before the profile is folded.
    obs::Span root =
        obs::Span::Begin(tracer, "query " + target->ToString(), "plan");
    Result<GeneralizedRelation> r = evaluator.Eval(*target);
    if (r.ok()) {
      root.AddArg("tuples_out", static_cast<std::int64_t>(r.value().size()));
    }
    return r;
  }();
  obs::AddGlobalCounter("query.evaluations", 1);
  if (algebra.counters == &own_counters) FlushKernelCounters(own_counters);
  if (profile != nullptr && tracer != nullptr) {
    *profile = obs::BuildProfile(tracer->records(), "plan");
  }
  return result;
}

}  // namespace

Result<GeneralizedRelation> EvalQuery(const Database& db, const QueryPtr& q,
                                      const QueryOptions& options) {
  return EvalQueryImpl(db, q, options, /*profile=*/nullptr);
}

Result<AnalyzedResult> EvalQueryAnalyzed(const Database& db, const QueryPtr& q,
                                         const QueryOptions& options) {
  analysis::AnalyzeOptions aopts = options.analysis;
  if (aopts.tracer == nullptr && options.trace) {
    aopts.tracer =
        options.tracer != nullptr ? options.tracer : options.algebra.tracer;
  }
  AnalyzedResult out;
  out.analysis = analysis::Analyze(db, q, aopts);
  if (out.analysis.HasErrors()) {
    obs::AddGlobalCounter("analysis.aborts", 1);
    return out;  // The diagnostics are the result; relation stays nullopt.
  }
  ITDB_ASSIGN_OR_RETURN(
      GeneralizedRelation relation,
      EvalQueryImpl(db, q, options, /*profile=*/nullptr, &out.analysis));
  out.relation = std::move(relation);
  return out;
}

Result<AnalyzedResult> EvalQueryStringAnalyzed(const Database& db,
                                               std::string_view text,
                                               const QueryOptions& options) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr q, ParseQuery(text));
  return EvalQueryAnalyzed(db, q, options);
}

Result<ProfiledResult> EvalQueryProfiled(const Database& db, const QueryPtr& q,
                                         const QueryOptions& options) {
  obs::Profile profile;
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation relation,
                        EvalQueryImpl(db, q, options, &profile));
  return ProfiledResult{std::move(relation), std::move(profile)};
}

Result<ProfiledResult> EvalQueryStringProfiled(const Database& db,
                                               std::string_view text,
                                               const QueryOptions& options) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr q, ParseQuery(text));
  return EvalQueryProfiled(db, q, options);
}

Result<bool> EvalBooleanQuery(const Database& db, const QueryPtr& q,
                              const QueryOptions& options) {
  if (!q->FreeVariables().empty()) {
    std::string vars;
    for (const std::string& v : q->FreeVariables()) vars += " " + v;
    return Status::InvalidArgument(
        "yes/no query has free variables:" + vars);
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, EvalQuery(db, q, options));
  ITDB_ASSIGN_OR_RETURN(bool empty, IsEmpty(rel, options.algebra));
  return !empty;
}

Result<GeneralizedRelation> EvalQueryString(const Database& db,
                                            std::string_view text,
                                            const QueryOptions& options) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr q, ParseQuery(text));
  return EvalQuery(db, q, options);
}

Result<bool> EvalBooleanQueryString(const Database& db, std::string_view text,
                                    const QueryOptions& options) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr q, ParseQuery(text));
  return EvalBooleanQuery(db, q, options);
}

std::string FormatQueryPlan(const QueryPtr& q) {
  std::string out;
  // Preorder walk; two-space indent per level, matching Profile::ToText.
  auto walk = [&out](auto&& self, const Query& node, int depth) -> void {
    out.append(static_cast<std::size_t>(2 * depth), ' ');
    out += PlanNodeLabel(node);
    out += '\n';
    switch (node.kind()) {
      case Query::Kind::kAnd:
      case Query::Kind::kOr:
        self(self, *node.left(), depth + 1);
        self(self, *node.right(), depth + 1);
        break;
      case Query::Kind::kNot:
      case Query::Kind::kExists:
      case Query::Kind::kForall:
        self(self, *node.left(), depth + 1);
        break;
      case Query::Kind::kAtom:
      case Query::Kind::kCmp:
        break;
    }
  };
  walk(walk, *q, 0);
  return out;
}

}  // namespace query
}  // namespace itdb
