#include "query/sorts.h"

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace itdb {
namespace query {

namespace {

const char* SortName(Sort s) {
  return s == Sort::kTime ? "time" : s == Sort::kDataString ? "string" : "int";
}

/// One = / != edge whose endpoint sorts must agree.
struct SortLink {
  std::string a;
  std::string b;
  SourceSpan span;
};

struct InferenceState {
  const Database& db;
  SortMap sorts;
  std::vector<SortLink> links;
  std::vector<Diagnostic> diagnostics;
  std::map<std::string, SourceSpan> var_spans;
  // Variables that occur in an atom or comparison (vs. only a quantifier).
  std::set<std::string> used;

  void Report(std::string_view code, const SourceSpan& span,
              std::string message) {
    diagnostics.push_back(Diagnostic{Severity::kError, std::string(code), span,
                                     std::move(message), ""});
  }

  void SeeVariable(const std::string& var, const SourceSpan& span) {
    used.insert(var);
    var_spans.emplace(var, span);  // Keeps the first occurrence.
  }

  /// Records var: sort; on a clash emits `conflict_code` (A003 for atom- or
  /// offset-forced sorts, A004 for constant-forced ones).
  void Assign(const std::string& var, Sort sort, const SourceSpan& span,
              std::string_view conflict_code = diag::kConflictingSorts) {
    auto [it, inserted] = sorts.emplace(var, sort);
    if (!inserted && it->second != sort) {
      Report(conflict_code, span,
             "variable \"" + var + "\" used with conflicting sorts (" +
                 SortName(it->second) + " vs " + SortName(sort) + ")");
    }
  }
};

void CollectVariables(InferenceState& state, const Query& q,
                      std::set<std::string>& bound,
                      std::set<std::string>& seen_quantified,
                      std::set<std::string>& all,
                      std::vector<std::string>& quantified) {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      for (const Term& t : q.args()) {
        if (t.kind == Term::Kind::kVariable) all.insert(t.var);
      }
      return;
    case Query::Kind::kCmp:
      for (const Term* t : {&q.lhs(), &q.rhs()}) {
        if (t->kind == Term::Kind::kVariable) all.insert(t->var);
      }
      return;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CollectVariables(state, *q.left(), bound, seen_quantified, all,
                       quantified);
      CollectVariables(state, *q.right(), bound, seen_quantified, all,
                       quantified);
      return;
    case Query::Kind::kNot:
      CollectVariables(state, *q.left(), bound, seen_quantified, all,
                       quantified);
      return;
    case Query::Kind::kExists:
    case Query::Kind::kForall: {
      const std::string& var = q.quantified_var();
      if (!seen_quantified.insert(var).second || bound.contains(var)) {
        state.Report(
            diag::kShadowedVariable, q.span(),
            "variable \"" + var +
                "\" is quantified more than once (shadowing is not "
                "supported)");
      }
      quantified.push_back(var);
      state.var_spans.emplace(var, q.span());
      bool inserted = bound.insert(var).second;
      CollectVariables(state, *q.left(), bound, seen_quantified, all,
                       quantified);
      if (inserted) bound.erase(var);
      all.insert(var);
      return;
    }
  }
}

void Walk(InferenceState& state, const Query& q) {
  switch (q.kind()) {
    case Query::Kind::kAtom: {
      for (std::size_t i = 0; i < q.args().size(); ++i) {
        const Term& t = q.args()[i];
        if (t.kind == Term::Kind::kVariable) {
          state.SeeVariable(t.var, q.TermSpan(i));
        }
      }
      Result<GeneralizedRelation> rel = state.db.Get(q.relation());
      if (!rel.ok()) {
        state.Report(diag::kUnknownRelation, q.span(),
                     std::string(rel.status().message()));
        return;
      }
      const Schema& schema = rel.value().schema();
      int expected = schema.temporal_arity() + schema.data_arity();
      if (static_cast<int>(q.args().size()) != expected) {
        state.Report(diag::kArityMismatch, q.span(),
                     "relation \"" + q.relation() + "\" expects " +
                         std::to_string(expected) + " arguments, got " +
                         std::to_string(q.args().size()));
        return;
      }
      for (int i = 0; i < expected; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        const Term& t = q.args()[ui];
        const SourceSpan& span = q.TermSpan(ui);
        bool temporal_pos = i < schema.temporal_arity();
        Sort position_sort =
            temporal_pos ? Sort::kTime
            : schema.data_type(i - schema.temporal_arity()) == DataType::kInt
                ? Sort::kDataInt
                : Sort::kDataString;
        switch (t.kind) {
          case Term::Kind::kVariable:
            state.Assign(t.var, position_sort, span);
            if (t.number != 0 && position_sort != Sort::kTime) {
              state.Report(diag::kConflictingSorts, span,
                           "successor offset on non-temporal variable \"" +
                               t.var + "\"");
            }
            break;
          case Term::Kind::kInt:
            if (position_sort == Sort::kDataString) {
              state.Report(diag::kIncompatibleConstant, span,
                           "integer constant in string position of \"" +
                               q.relation() + "\"");
            }
            break;
          case Term::Kind::kString:
            if (position_sort != Sort::kDataString) {
              state.Report(diag::kIncompatibleConstant, span,
                           "string constant in non-string position of \"" +
                               q.relation() + "\"");
            }
            break;
        }
      }
      return;
    }
    case Query::Kind::kCmp: {
      bool order = q.cmp() == QueryCmp::kLe || q.cmp() == QueryCmp::kLt ||
                   q.cmp() == QueryCmp::kGe || q.cmp() == QueryCmp::kGt;
      const Term& l = q.lhs();
      const Term& r = q.rhs();
      for (std::size_t i = 0; i < 2; ++i) {
        const Term& t = i == 0 ? l : r;
        if (t.kind != Term::Kind::kVariable) continue;
        state.SeeVariable(t.var, q.TermSpan(i));
        if (order || t.number != 0) {
          state.Assign(t.var, Sort::kTime, q.TermSpan(i));
        }
      }
      // Constants force the sort of variable operands.
      if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kString) {
        state.Assign(l.var, Sort::kDataString, q.TermSpan(0),
                     diag::kIncompatibleConstant);
      }
      if (r.kind == Term::Kind::kVariable && l.kind == Term::Kind::kString) {
        state.Assign(r.var, Sort::kDataString, q.TermSpan(1),
                     diag::kIncompatibleConstant);
      }
      if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kInt) {
        state.Assign(l.var, Sort::kTime, q.TermSpan(0),
                     diag::kIncompatibleConstant);
      }
      if (r.kind == Term::Kind::kVariable && l.kind == Term::Kind::kInt) {
        state.Assign(r.var, Sort::kTime, q.TermSpan(1),
                     diag::kIncompatibleConstant);
      }
      if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kVariable) {
        state.links.push_back(SortLink{l.var, r.var, q.span()});
      }
      if (l.kind == Term::Kind::kString && r.kind == Term::Kind::kString &&
          order) {
        state.Report(diag::kIncompatibleConstant, q.span(),
                     "order comparison between string constants");
      }
      return;
    }
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      Walk(state, *q.left());
      Walk(state, *q.right());
      return;
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      Walk(state, *q.left());
      return;
  }
}

}  // namespace

SortDiagnostics InferSortsDiagnosed(const Database& db, const QueryPtr& q,
                                    bool strict_unused_quantified) {
  InferenceState state{db, {}, {}, {}, {}, {}};
  std::set<std::string> bound;
  std::set<std::string> seen_quantified;
  std::set<std::string> all;
  std::vector<std::string> quantified;
  // Reject shadowing first, so the single global SortMap is well defined.
  CollectVariables(state, *q, bound, seen_quantified, all, quantified);
  Walk(state, *q);
  // Propagate along = / != links to a fixpoint; propagation only fills in
  // unknowns, so it terminates and cannot introduce conflicts.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const SortLink& link : state.links) {
      auto ia = state.sorts.find(link.a);
      auto ib = state.sorts.find(link.b);
      if (ia != state.sorts.end() && ib == state.sorts.end()) {
        state.sorts.emplace(link.b, ia->second);
        changed = true;
      } else if (ib != state.sorts.end() && ia == state.sorts.end()) {
        state.sorts.emplace(link.a, ib->second);
        changed = true;
      }
    }
  }
  for (const SortLink& link : state.links) {
    auto ia = state.sorts.find(link.a);
    auto ib = state.sorts.find(link.b);
    if (ia != state.sorts.end() && ib != state.sorts.end() &&
        ia->second != ib->second) {
      state.Report(diag::kMixedSortComparison, link.span,
                   "variables \"" + link.a + "\" and \"" + link.b +
                       "\" compared but have different sorts");
    }
  }
  // Undetermined variables, only when nothing went wrong earlier (an
  // unknown relation already explains why its variables have no sort).
  if (!HasErrors(state.diagnostics)) {
    std::set<std::string> quantified_set(quantified.begin(), quantified.end());
    for (const std::string& var : all) {
      if (state.sorts.contains(var)) continue;
      if (!strict_unused_quantified && !state.used.contains(var) &&
          quantified_set.contains(var)) {
        continue;  // Vacuous quantifier; the analyzer reports A013 instead.
      }
      SourceSpan span;
      auto it = state.var_spans.find(var);
      if (it != state.var_spans.end()) span = it->second;
      state.Report(diag::kUndeterminedSort, span,
                   "cannot infer the sort of variable \"" + var + "\"");
    }
  }
  SortDiagnostics out;
  out.sorts = std::move(state.sorts);
  out.diagnostics = std::move(state.diagnostics);
  out.var_spans = std::move(state.var_spans);
  out.quantified = std::move(quantified);
  return out;
}

Result<SortMap> InferSorts(const Database& db, const QueryPtr& q) {
  SortDiagnostics d =
      InferSortsDiagnosed(db, q, /*strict_unused_quantified=*/true);
  for (const Diagnostic& diagnostic : d.diagnostics) {
    if (diagnostic.severity != Severity::kError) continue;
    if (diagnostic.code == diag::kUnknownRelation) {
      return Status::NotFound(diagnostic.message);
    }
    return Status::InvalidArgument(diagnostic.message);
  }
  return std::move(d.sorts);
}

}  // namespace query
}  // namespace itdb
