#include "query/sorts.h"

#include <optional>
#include <set>
#include <vector>

namespace itdb {
namespace query {

namespace {

struct InferenceState {
  const Database& db;
  SortMap sorts;
  // Equality/inequality edges between variables whose sorts must agree.
  std::vector<std::pair<std::string, std::string>> links;
};

Status Assign(InferenceState& state, const std::string& var, Sort sort) {
  auto [it, inserted] = state.sorts.emplace(var, sort);
  if (!inserted && it->second != sort) {
    auto name = [](Sort s) {
      return s == Sort::kTime ? "time"
             : s == Sort::kDataString ? "string"
                                      : "int";
    };
    return Status::InvalidArgument("variable \"" + var +
                                   "\" used with conflicting sorts (" +
                                   name(it->second) + " vs " + name(sort) +
                                   ")");
  }
  return Status::Ok();
}

Status CollectVariables(const Query& q, std::set<std::string>& bound,
                        std::set<std::string>& seen_quantified,
                        std::set<std::string>& all) {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      for (const Term& t : q.args()) {
        if (t.kind == Term::Kind::kVariable) all.insert(t.var);
      }
      return Status::Ok();
    case Query::Kind::kCmp:
      for (const Term* t : {&q.lhs(), &q.rhs()}) {
        if (t->kind == Term::Kind::kVariable) all.insert(t->var);
      }
      return Status::Ok();
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      ITDB_RETURN_IF_ERROR(
          CollectVariables(*q.left(), bound, seen_quantified, all));
      return CollectVariables(*q.right(), bound, seen_quantified, all);
    case Query::Kind::kNot:
      return CollectVariables(*q.left(), bound, seen_quantified, all);
    case Query::Kind::kExists:
    case Query::Kind::kForall: {
      const std::string& var = q.quantified_var();
      if (!seen_quantified.insert(var).second || bound.contains(var)) {
        return Status::InvalidArgument(
            "variable \"" + var +
            "\" is quantified more than once (shadowing is not supported)");
      }
      bound.insert(var);
      Status s = CollectVariables(*q.left(), bound, seen_quantified, all);
      bound.erase(var);
      all.insert(var);
      return s;
    }
  }
  return Status::Ok();
}

Status Walk(InferenceState& state, const Query& q) {
  switch (q.kind()) {
    case Query::Kind::kAtom: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel,
                            state.db.Get(q.relation()));
      const Schema& schema = rel.schema();
      int expected = schema.temporal_arity() + schema.data_arity();
      if (static_cast<int>(q.args().size()) != expected) {
        return Status::InvalidArgument(
            "relation \"" + q.relation() + "\" expects " +
            std::to_string(expected) + " arguments, got " +
            std::to_string(q.args().size()));
      }
      for (int i = 0; i < expected; ++i) {
        const Term& t = q.args()[static_cast<std::size_t>(i)];
        bool temporal_pos = i < schema.temporal_arity();
        Sort position_sort =
            temporal_pos ? Sort::kTime
            : schema.data_type(i - schema.temporal_arity()) == DataType::kInt
                ? Sort::kDataInt
                : Sort::kDataString;
        switch (t.kind) {
          case Term::Kind::kVariable:
            ITDB_RETURN_IF_ERROR(Assign(state, t.var, position_sort));
            if (t.number != 0 && position_sort != Sort::kTime) {
              return Status::InvalidArgument(
                  "successor offset on non-temporal variable \"" + t.var +
                  "\"");
            }
            break;
          case Term::Kind::kInt:
            if (position_sort == Sort::kDataString) {
              return Status::InvalidArgument(
                  "integer constant in string position of \"" + q.relation() +
                  "\"");
            }
            break;
          case Term::Kind::kString:
            if (position_sort != Sort::kDataString) {
              return Status::InvalidArgument(
                  "string constant in non-string position of \"" +
                  q.relation() + "\"");
            }
            break;
        }
      }
      return Status::Ok();
    }
    case Query::Kind::kCmp: {
      bool order = q.cmp() == QueryCmp::kLe || q.cmp() == QueryCmp::kLt ||
                   q.cmp() == QueryCmp::kGe || q.cmp() == QueryCmp::kGt;
      const Term& l = q.lhs();
      const Term& r = q.rhs();
      for (const Term* t : {&l, &r}) {
        if (t->kind != Term::Kind::kVariable) continue;
        if (order || t->number != 0) {
          ITDB_RETURN_IF_ERROR(Assign(state, t->var, Sort::kTime));
        }
      }
      // Constants force the sort of variable operands.
      if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kString) {
        ITDB_RETURN_IF_ERROR(Assign(state, l.var, Sort::kDataString));
      }
      if (r.kind == Term::Kind::kVariable && l.kind == Term::Kind::kString) {
        ITDB_RETURN_IF_ERROR(Assign(state, r.var, Sort::kDataString));
      }
      if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kInt) {
        ITDB_RETURN_IF_ERROR(Assign(state, l.var, Sort::kTime));
      }
      if (r.kind == Term::Kind::kVariable && l.kind == Term::Kind::kInt) {
        ITDB_RETURN_IF_ERROR(Assign(state, r.var, Sort::kTime));
      }
      if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kVariable) {
        state.links.emplace_back(l.var, r.var);
      }
      if (l.kind == Term::Kind::kString && r.kind == Term::Kind::kString &&
          order) {
        return Status::InvalidArgument(
            "order comparison between string constants");
      }
      return Status::Ok();
    }
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      ITDB_RETURN_IF_ERROR(Walk(state, *q.left()));
      return Walk(state, *q.right());
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      return Walk(state, *q.left());
  }
  return Status::Ok();
}

}  // namespace

Result<SortMap> InferSorts(const Database& db, const QueryPtr& q) {
  // Reject shadowing first, so the single global SortMap is well defined.
  std::set<std::string> bound;
  std::set<std::string> seen_quantified;
  std::set<std::string> all;
  ITDB_RETURN_IF_ERROR(CollectVariables(*q, bound, seen_quantified, all));

  InferenceState state{db, {}, {}};
  ITDB_RETURN_IF_ERROR(Walk(state, *q));
  // Propagate along = / != links to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : state.links) {
      auto ia = state.sorts.find(a);
      auto ib = state.sorts.find(b);
      if (ia != state.sorts.end() && ib == state.sorts.end()) {
        ITDB_RETURN_IF_ERROR(Assign(state, b, ia->second));
        changed = true;
      } else if (ib != state.sorts.end() && ia == state.sorts.end()) {
        ITDB_RETURN_IF_ERROR(Assign(state, a, ib->second));
        changed = true;
      } else if (ia != state.sorts.end() && ib != state.sorts.end() &&
                 ia->second != ib->second) {
        return Status::InvalidArgument("variables \"" + a + "\" and \"" + b +
                                       "\" compared but have different sorts");
      }
    }
  }
  for (const std::string& var : all) {
    if (!state.sorts.contains(var)) {
      return Status::InvalidArgument("cannot infer the sort of variable \"" +
                                     var + "\"");
    }
  }
  return state.sorts;
}

}  // namespace query
}  // namespace itdb
