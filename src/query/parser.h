// Parser for the textual query syntax.
//
// Grammar (precedence low to high; keywords accepted in UPPER or lower
// case):
//
//   query  := impl
//   impl   := or ("->" impl)?                      (right associative)
//   or     := and ("OR" and)*
//   and    := unary ("AND" unary)*
//   unary  := "NOT" unary
//           | "EXISTS" VAR "." impl    (quantifier scope extends maximally)
//           | "FORALL" VAR "." impl
//           | primary
//   primary:= "(" query ")" | NAME "(" terms ")" | chain
//   chain  := term (OP term)+                      (comparison chains:
//                                                   "t1 <= t2 <= t3" means
//                                                   t1 <= t2 AND t2 <= t3)
//   term   := VAR (("+"|"-") INT)? | INT | "-" INT | STRING
//   OP     := "<=" | "<" | ">=" | ">" | "=" | "!="
//
// Example (Example 4.1 of the paper):
//
//   EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
//     FORALL t3 . FORALL t4 . FORALL z .
//       (Perform(t1, t2, x, "task2") AND t1 <= t3 <= t4 <= t2
//          AND t1 + 5 <= t2)
//       -> NOT Perform(t3, t4, y, z)

#ifndef ITDB_QUERY_PARSER_H_
#define ITDB_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace itdb {
namespace query {

/// Parses one query.  Fails with kParseError on malformed input.
Result<QueryPtr> ParseQuery(std::string_view text);

}  // namespace query
}  // namespace itdb

#endif  // ITDB_QUERY_PARSER_H_
