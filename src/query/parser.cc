#include "query/parser.h"

#include <optional>
#include <utility>
#include <vector>

#include "storage/lexer.h"

namespace itdb {
namespace query {

namespace {

bool TryKeyword(TokenStream& ts, std::string_view upper,
                std::string_view lower) {
  return ts.TryIdent(upper) || ts.TryIdent(lower);
}

bool PeekIsKeyword(const TokenStream& ts) {
  if (ts.Peek().kind != TokenKind::kIdent) return false;
  const std::string& t = ts.Peek().text;
  return t == "AND" || t == "and" || t == "OR" || t == "or" || t == "NOT" ||
         t == "not" || t == "EXISTS" || t == "exists" || t == "FORALL" ||
         t == "forall";
}

/// Span from the first byte of `first` to the last byte consumed so far.
SourceSpan SpanFrom(const Token& first, const TokenStream& ts) {
  const Token& last = ts.LastConsumed();
  SourceSpan out = first.span();
  if (last.offset + last.length > out.end) out.end = last.offset + last.length;
  return out;
}

Result<QueryPtr> ParseImpl(TokenStream& ts);

Result<Term> ParseTerm(TokenStream& ts, SourceSpan* span) {
  const Token first = ts.Peek();
  auto finish = [&](Term t) {
    if (span != nullptr) *span = SpanFrom(first, ts);
    return t;
  };
  if (ts.Peek().kind == TokenKind::kString) {
    return finish(Term::String(ts.Next().text));
  }
  if (ts.Peek().kind == TokenKind::kInt ||
      (ts.Peek().kind == TokenKind::kSymbol && ts.Peek().text == "-")) {
    ITDB_ASSIGN_OR_RETURN(std::int64_t v, ts.ExpectInt());
    return finish(Term::Int(v));
  }
  if (ts.Peek().kind == TokenKind::kIdent && !PeekIsKeyword(ts)) {
    std::string name = ts.Next().text;
    std::int64_t offset = 0;
    if (ts.Peek().kind == TokenKind::kSymbol &&
        (ts.Peek().text == "+" || ts.Peek().text == "-") &&
        ts.Peek(1).kind == TokenKind::kInt) {
      bool negative = ts.Next().text == "-";
      std::int64_t v = ts.Next().int_value;
      offset = negative ? -v : v;
    }
    return finish(Term::Variable(std::move(name), offset));
  }
  return ts.ErrorHere("expected a term");
}

std::optional<QueryCmp> TryCmpOp(TokenStream& ts) {
  if (ts.TrySymbol("<=")) return QueryCmp::kLe;
  if (ts.TrySymbol(">=")) return QueryCmp::kGe;
  if (ts.TrySymbol("!=")) return QueryCmp::kNe;
  if (ts.TrySymbol("=")) return QueryCmp::kEq;
  if (ts.TrySymbol("<")) return QueryCmp::kLt;
  if (ts.TrySymbol(">")) return QueryCmp::kGt;
  return std::nullopt;
}

QueryPtr MakeCompare(Term lhs, QueryCmp op, Term rhs, SourceSpan lhs_span,
                     SourceSpan rhs_span) {
  QueryPtr out = Query::Compare(std::move(lhs), op, std::move(rhs));
  Query::SetSpans(out, SourceSpan::Cover(lhs_span, rhs_span),
                  {lhs_span, rhs_span});
  return out;
}

Result<QueryPtr> ParsePrimary(TokenStream& ts) {
  const Token first = ts.Peek();
  if (ts.TrySymbol("(")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr inner, ParseImpl(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return inner;
  }
  // Atom: NAME "(" ... ")".
  if (ts.Peek().kind == TokenKind::kIdent && !PeekIsKeyword(ts) &&
      ts.Peek(1).kind == TokenKind::kSymbol && ts.Peek(1).text == "(") {
    std::string name = ts.Next().text;
    ts.Next();  // "(".
    std::vector<Term> args;
    std::vector<SourceSpan> arg_spans;
    if (!ts.TrySymbol(")")) {
      while (true) {
        SourceSpan arg_span;
        ITDB_ASSIGN_OR_RETURN(Term t, ParseTerm(ts, &arg_span));
        args.push_back(std::move(t));
        arg_spans.push_back(arg_span);
        if (ts.TrySymbol(")")) break;
        ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
      }
    }
    QueryPtr atom = Query::Atom(std::move(name), std::move(args));
    Query::SetSpans(atom, SpanFrom(first, ts), std::move(arg_spans));
    return atom;
  }
  // Comparison chain: term (OP term)+.
  SourceSpan first_span;
  ITDB_ASSIGN_OR_RETURN(Term first_term, ParseTerm(ts, &first_span));
  std::optional<QueryCmp> op = TryCmpOp(ts);
  if (!op.has_value()) {
    return ts.ErrorHere("expected comparison operator");
  }
  SourceSpan second_span;
  ITDB_ASSIGN_OR_RETURN(Term second, ParseTerm(ts, &second_span));
  QueryPtr out = MakeCompare(first_term, *op, second, first_span, second_span);
  Term prev = second;
  SourceSpan prev_span = second_span;
  while (true) {
    std::optional<QueryCmp> next_op = TryCmpOp(ts);
    if (!next_op.has_value()) break;
    SourceSpan next_span;
    ITDB_ASSIGN_OR_RETURN(Term next, ParseTerm(ts, &next_span));
    QueryPtr cmp = MakeCompare(prev, *next_op, next, prev_span, next_span);
    out = Query::And(std::move(out), std::move(cmp));
    Query::SetSpans(out, SpanFrom(first, ts));
    prev = next;
    prev_span = next_span;
  }
  return out;
}

Result<QueryPtr> ParseUnary(TokenStream& ts) {
  const Token first = ts.Peek();
  if (TryKeyword(ts, "NOT", "not")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr inner, ParseUnary(ts));
    QueryPtr out = Query::Not(std::move(inner));
    Query::SetSpans(out, SpanFrom(first, ts));
    return out;
  }
  // Quantifier scope extends as far right as possible (standard logic
  // convention): the body is a full implication expression.
  if (TryKeyword(ts, "EXISTS", "exists")) {
    ITDB_ASSIGN_OR_RETURN(std::string var, ts.ExpectIdent());
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("."));
    ITDB_ASSIGN_OR_RETURN(QueryPtr body, ParseImpl(ts));
    QueryPtr out = Query::Exists(std::move(var), std::move(body));
    Query::SetSpans(out, SpanFrom(first, ts));
    return out;
  }
  if (TryKeyword(ts, "FORALL", "forall")) {
    ITDB_ASSIGN_OR_RETURN(std::string var, ts.ExpectIdent());
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("."));
    ITDB_ASSIGN_OR_RETURN(QueryPtr body, ParseImpl(ts));
    QueryPtr out = Query::Forall(std::move(var), std::move(body));
    Query::SetSpans(out, SpanFrom(first, ts));
    return out;
  }
  return ParsePrimary(ts);
}

Result<QueryPtr> ParseAnd(TokenStream& ts) {
  const Token first = ts.Peek();
  ITDB_ASSIGN_OR_RETURN(QueryPtr out, ParseUnary(ts));
  while (TryKeyword(ts, "AND", "and")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr rhs, ParseUnary(ts));
    out = Query::And(std::move(out), std::move(rhs));
    Query::SetSpans(out, SpanFrom(first, ts));
  }
  return out;
}

Result<QueryPtr> ParseOr(TokenStream& ts) {
  const Token first = ts.Peek();
  ITDB_ASSIGN_OR_RETURN(QueryPtr out, ParseAnd(ts));
  while (TryKeyword(ts, "OR", "or")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr rhs, ParseAnd(ts));
    out = Query::Or(std::move(out), std::move(rhs));
    Query::SetSpans(out, SpanFrom(first, ts));
  }
  return out;
}

Result<QueryPtr> ParseImpl(TokenStream& ts) {
  const Token first = ts.Peek();
  ITDB_ASSIGN_OR_RETURN(QueryPtr lhs, ParseOr(ts));
  if (ts.TrySymbol("->")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr rhs, ParseImpl(ts));
    // Implies desugars to (NOT lhs) OR rhs; give both derived nodes the
    // full source extent so diagnostics can still point somewhere useful.
    SourceSpan lhs_span = lhs->span();
    QueryPtr negated = Query::Not(std::move(lhs));
    Query::SetSpans(negated, lhs_span);
    QueryPtr out = Query::Or(std::move(negated), std::move(rhs));
    Query::SetSpans(out, SpanFrom(first, ts));
    return out;
  }
  return lhs;
}

}  // namespace

Result<QueryPtr> ParseQuery(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  ITDB_ASSIGN_OR_RETURN(QueryPtr out, ParseImpl(ts));
  if (!ts.AtEnd()) {
    return ts.ErrorHere("trailing input after query");
  }
  return out;
}

}  // namespace query
}  // namespace itdb
