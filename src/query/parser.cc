#include "query/parser.h"

#include <optional>
#include <vector>

#include "storage/lexer.h"

namespace itdb {
namespace query {

namespace {

bool TryKeyword(TokenStream& ts, std::string_view upper,
                std::string_view lower) {
  return ts.TryIdent(upper) || ts.TryIdent(lower);
}

bool PeekIsKeyword(const TokenStream& ts) {
  if (ts.Peek().kind != TokenKind::kIdent) return false;
  const std::string& t = ts.Peek().text;
  return t == "AND" || t == "and" || t == "OR" || t == "or" || t == "NOT" ||
         t == "not" || t == "EXISTS" || t == "exists" || t == "FORALL" ||
         t == "forall";
}

Result<QueryPtr> ParseImpl(TokenStream& ts);

Result<Term> ParseTerm(TokenStream& ts) {
  if (ts.Peek().kind == TokenKind::kString) {
    return Term::String(ts.Next().text);
  }
  if (ts.Peek().kind == TokenKind::kInt ||
      (ts.Peek().kind == TokenKind::kSymbol && ts.Peek().text == "-")) {
    ITDB_ASSIGN_OR_RETURN(std::int64_t v, ts.ExpectInt());
    return Term::Int(v);
  }
  if (ts.Peek().kind == TokenKind::kIdent && !PeekIsKeyword(ts)) {
    std::string name = ts.Next().text;
    std::int64_t offset = 0;
    if (ts.Peek().kind == TokenKind::kSymbol &&
        (ts.Peek().text == "+" || ts.Peek().text == "-") &&
        ts.Peek(1).kind == TokenKind::kInt) {
      bool negative = ts.Next().text == "-";
      std::int64_t v = ts.Next().int_value;
      offset = negative ? -v : v;
    }
    return Term::Variable(std::move(name), offset);
  }
  return ts.ErrorHere("expected a term");
}

std::optional<QueryCmp> TryCmpOp(TokenStream& ts) {
  if (ts.TrySymbol("<=")) return QueryCmp::kLe;
  if (ts.TrySymbol(">=")) return QueryCmp::kGe;
  if (ts.TrySymbol("!=")) return QueryCmp::kNe;
  if (ts.TrySymbol("=")) return QueryCmp::kEq;
  if (ts.TrySymbol("<")) return QueryCmp::kLt;
  if (ts.TrySymbol(">")) return QueryCmp::kGt;
  return std::nullopt;
}

Result<QueryPtr> ParsePrimary(TokenStream& ts) {
  if (ts.TrySymbol("(")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr inner, ParseImpl(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return inner;
  }
  // Atom: NAME "(" ... ")".
  if (ts.Peek().kind == TokenKind::kIdent && !PeekIsKeyword(ts) &&
      ts.Peek(1).kind == TokenKind::kSymbol && ts.Peek(1).text == "(") {
    std::string name = ts.Next().text;
    ts.Next();  // "(".
    std::vector<Term> args;
    if (!ts.TrySymbol(")")) {
      while (true) {
        ITDB_ASSIGN_OR_RETURN(Term t, ParseTerm(ts));
        args.push_back(std::move(t));
        if (ts.TrySymbol(")")) break;
        ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
      }
    }
    return Query::Atom(std::move(name), std::move(args));
  }
  // Comparison chain: term (OP term)+.
  ITDB_ASSIGN_OR_RETURN(Term first, ParseTerm(ts));
  std::optional<QueryCmp> op = TryCmpOp(ts);
  if (!op.has_value()) {
    return ts.ErrorHere("expected comparison operator");
  }
  ITDB_ASSIGN_OR_RETURN(Term second, ParseTerm(ts));
  QueryPtr out = Query::Compare(first, *op, second);
  Term prev = second;
  while (true) {
    std::optional<QueryCmp> next_op = TryCmpOp(ts);
    if (!next_op.has_value()) break;
    ITDB_ASSIGN_OR_RETURN(Term next, ParseTerm(ts));
    out = Query::And(std::move(out), Query::Compare(prev, *next_op, next));
    prev = next;
  }
  return out;
}

Result<QueryPtr> ParseUnary(TokenStream& ts) {
  if (TryKeyword(ts, "NOT", "not")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr inner, ParseUnary(ts));
    return Query::Not(std::move(inner));
  }
  // Quantifier scope extends as far right as possible (standard logic
  // convention): the body is a full implication expression.
  if (TryKeyword(ts, "EXISTS", "exists")) {
    ITDB_ASSIGN_OR_RETURN(std::string var, ts.ExpectIdent());
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("."));
    ITDB_ASSIGN_OR_RETURN(QueryPtr body, ParseImpl(ts));
    return Query::Exists(std::move(var), std::move(body));
  }
  if (TryKeyword(ts, "FORALL", "forall")) {
    ITDB_ASSIGN_OR_RETURN(std::string var, ts.ExpectIdent());
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("."));
    ITDB_ASSIGN_OR_RETURN(QueryPtr body, ParseImpl(ts));
    return Query::Forall(std::move(var), std::move(body));
  }
  return ParsePrimary(ts);
}

Result<QueryPtr> ParseAnd(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr out, ParseUnary(ts));
  while (TryKeyword(ts, "AND", "and")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr rhs, ParseUnary(ts));
    out = Query::And(std::move(out), std::move(rhs));
  }
  return out;
}

Result<QueryPtr> ParseOr(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr out, ParseAnd(ts));
  while (TryKeyword(ts, "OR", "or")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr rhs, ParseAnd(ts));
    out = Query::Or(std::move(out), std::move(rhs));
  }
  return out;
}

Result<QueryPtr> ParseImpl(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(QueryPtr lhs, ParseOr(ts));
  if (ts.TrySymbol("->")) {
    ITDB_ASSIGN_OR_RETURN(QueryPtr rhs, ParseImpl(ts));
    return Query::Implies(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

}  // namespace

Result<QueryPtr> ParseQuery(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  ITDB_ASSIGN_OR_RETURN(QueryPtr out, ParseImpl(ts));
  if (!ts.AtEnd()) {
    return ts.ErrorHere("trailing input after query");
  }
  return out;
}

}  // namespace query
}  // namespace itdb
