#include "sat/cnf.h"

#include <cassert>
#include <random>

namespace itdb {
namespace sat {

bool CnfFormula::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const Clause& clause : clauses_) {
    bool satisfied = false;
    for (const Literal& lit : clause.literals) {
      bool value = assignment[static_cast<std::size_t>(lit.var)];
      if (value != lit.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(";
    for (std::size_t j = 0; j < clauses_[i].literals.size(); ++j) {
      if (j > 0) out += " | ";
      const Literal& lit = clauses_[i].literals[j];
      if (lit.negated) out += "!";
      out += "x" + std::to_string(lit.var);
    }
    out += ")";
  }
  return out;
}

CnfFormula RandomThreeSat(std::uint32_t seed, int num_vars, int num_clauses) {
  assert(num_vars >= 3);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> var_pick(0, num_vars - 1);
  std::bernoulli_distribution sign_pick(0.5);
  CnfFormula out(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    int a = var_pick(rng);
    int b = var_pick(rng);
    while (b == a) b = var_pick(rng);
    int d = var_pick(rng);
    while (d == a || d == b) d = var_pick(rng);
    Clause clause;
    clause.literals = {Literal{a, sign_pick(rng)}, Literal{b, sign_pick(rng)},
                       Literal{d, sign_pick(rng)}};
    out.AddClause(std::move(clause));
  }
  return out;
}

}  // namespace sat
}  // namespace itdb
