// DPLL SAT solver: the classical baseline against which the Theorem 3.6
// reduction pipeline is cross-checked (every instance must get the same
// verdict from both) and benchmarked.

#ifndef ITDB_SAT_SOLVER_H_
#define ITDB_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "sat/cnf.h"
#include "util/status.h"

namespace itdb {
namespace sat {

struct SolveResult {
  bool satisfiable = false;
  /// A satisfying assignment when satisfiable.
  std::vector<bool> assignment;
  /// Branching decisions taken (a machine-independent work measure).
  std::int64_t decisions = 0;
};

/// Davis-Putnam-Logemann-Loveland with unit propagation and pure-literal
/// elimination.  Fails with kResourceExhausted after `max_decisions`
/// branching decisions.
Result<SolveResult> SolveDpll(const CnfFormula& formula,
                              std::int64_t max_decisions = std::int64_t{1}
                                                           << 24);

}  // namespace sat
}  // namespace itdb

#endif  // ITDB_SAT_SOLVER_H_
