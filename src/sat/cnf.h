// CNF formulas and random 3-SAT instances.
//
// Substrate for Theorem 3.6: the paper proves nonemptiness-of-complement
// NP-complete by reducing 3-SAT to it.  We implement the instance type, a
// reproducible random generator, a DPLL baseline solver (solver.h) and the
// reduction itself (reduction.h).

#ifndef ITDB_SAT_CNF_H_
#define ITDB_SAT_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace itdb {
namespace sat {

/// A literal: variable index plus polarity.
struct Literal {
  int var = 0;
  bool negated = false;

  friend bool operator==(const Literal& a, const Literal& b) = default;
};

/// A disjunction of literals.
struct Clause {
  std::vector<Literal> literals;
};

/// A conjunction of clauses over variables 0..num_vars-1.
class CnfFormula {
 public:
  explicit CnfFormula(int num_vars) : num_vars_(num_vars) {}

  int num_vars() const { return num_vars_; }
  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  const std::vector<Clause>& clauses() const { return clauses_; }

  void AddClause(Clause clause) { clauses_.push_back(std::move(clause)); }

  /// Whether `assignment` (size num_vars) satisfies every clause.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// "(x0 | !x1 | x2) & (...)".
  std::string ToString() const;

 private:
  int num_vars_;
  std::vector<Clause> clauses_;
};

/// Reproducible random 3-SAT: `num_clauses` clauses of three distinct
/// variables with random polarities.  Requires num_vars >= 3.
CnfFormula RandomThreeSat(std::uint32_t seed, int num_vars, int num_clauses);

}  // namespace sat
}  // namespace itdb

#endif  // ITDB_SAT_CNF_H_
