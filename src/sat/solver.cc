#include "sat/solver.h"

#include <optional>

namespace itdb {
namespace sat {

namespace {

// -1 = unassigned, 0 = false, 1 = true.
using Assignment = std::vector<int>;

enum class ClauseState {
  kSatisfied,
  kConflict,
  kUnit,
  kUnresolved,
};

ClauseState Inspect(const Clause& clause, const Assignment& assignment,
                    Literal* unit) {
  int unassigned = 0;
  for (const Literal& lit : clause.literals) {
    int v = assignment[static_cast<std::size_t>(lit.var)];
    if (v < 0) {
      ++unassigned;
      *unit = lit;
    } else if ((v == 1) != lit.negated) {
      return ClauseState::kSatisfied;
    }
  }
  if (unassigned == 0) return ClauseState::kConflict;
  if (unassigned == 1) return ClauseState::kUnit;
  return ClauseState::kUnresolved;
}

// Unit propagation; returns false on conflict.
bool Propagate(const CnfFormula& formula, Assignment& assignment) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : formula.clauses()) {
      Literal unit;
      switch (Inspect(clause, assignment, &unit)) {
        case ClauseState::kConflict:
          return false;
        case ClauseState::kUnit:
          assignment[static_cast<std::size_t>(unit.var)] =
              unit.negated ? 0 : 1;
          changed = true;
          break;
        default:
          break;
      }
    }
  }
  return true;
}

// Assigns pure literals (appearing with one polarity among clauses not yet
// satisfied).  Sound: it can only help satisfiability.
void AssignPureLiterals(const CnfFormula& formula, Assignment& assignment) {
  int n = formula.num_vars();
  std::vector<bool> pos(static_cast<std::size_t>(n), false);
  std::vector<bool> neg(static_cast<std::size_t>(n), false);
  for (const Clause& clause : formula.clauses()) {
    Literal unit;
    if (Inspect(clause, assignment, &unit) == ClauseState::kSatisfied) {
      continue;
    }
    for (const Literal& lit : clause.literals) {
      if (assignment[static_cast<std::size_t>(lit.var)] >= 0) continue;
      (lit.negated ? neg : pos)[static_cast<std::size_t>(lit.var)] = true;
    }
  }
  for (int v = 0; v < n; ++v) {
    std::size_t uv = static_cast<std::size_t>(v);
    if (assignment[uv] >= 0) continue;
    if (pos[uv] && !neg[uv]) assignment[uv] = 1;
    if (neg[uv] && !pos[uv]) assignment[uv] = 0;
  }
}

struct DpllContext {
  const CnfFormula& formula;
  std::int64_t decisions = 0;
  std::int64_t max_decisions = 0;
  bool exhausted = false;
  Assignment found;
};

bool Dpll(DpllContext& ctx, Assignment assignment) {
  if (!Propagate(ctx.formula, assignment)) return false;
  AssignPureLiterals(ctx.formula, assignment);
  if (!Propagate(ctx.formula, assignment)) return false;
  // Pick the first unassigned variable of an unsatisfied clause.
  std::optional<int> branch_var;
  bool all_satisfied = true;
  for (const Clause& clause : ctx.formula.clauses()) {
    Literal unit;
    ClauseState state = Inspect(clause, assignment, &unit);
    if (state == ClauseState::kSatisfied) continue;
    all_satisfied = false;
    if (state == ClauseState::kConflict) return false;
    if (!branch_var.has_value()) branch_var = unit.var;
  }
  if (all_satisfied) {
    // Complete the assignment arbitrarily and report it through the context.
    for (int& v : assignment) {
      if (v < 0) v = 0;
    }
    ctx.found = std::move(assignment);
    return true;
  }
  if (++ctx.decisions > ctx.max_decisions) {
    ctx.exhausted = true;
    return false;
  }
  for (int value : {1, 0}) {
    Assignment next = assignment;
    next[static_cast<std::size_t>(*branch_var)] = value;
    if (Dpll(ctx, std::move(next))) return true;
    if (ctx.exhausted) return false;
  }
  return false;
}

}  // namespace

Result<SolveResult> SolveDpll(const CnfFormula& formula,
                              std::int64_t max_decisions) {
  DpllContext ctx{formula, 0, max_decisions, false, {}};
  Assignment initial(static_cast<std::size_t>(formula.num_vars()), -1);
  bool satisfiable = Dpll(ctx, std::move(initial));
  if (ctx.exhausted) {
    return Status::ResourceExhausted("DPLL exceeded the decision budget");
  }
  SolveResult out;
  out.satisfiable = satisfiable;
  out.decisions = ctx.decisions;
  if (satisfiable) {
    out.assignment.reserve(ctx.found.size());
    for (int v : ctx.found) out.assignment.push_back(v == 1);
  }
  return out;
}

}  // namespace sat
}  // namespace itdb
