// The Theorem 3.6 reduction: 3-SAT -> nonemptiness of complement.
//
// Given a CNF over variables u_0..u_{m-1}, build a generalized relation r
// with one temporal column per variable and one generalized tuple per
// clause; the tuple's free extension is [n_0, ..., n_{m-1}] (all of Z) and
// its constraints encode the clause being FALSIFIED:
//
//     u_i     in the clause  ->  X_i <  0   (u_i assigned false)
//     not u_i in the clause  ->  X_i >= 0   (u_i assigned true)
//
// A point of Z^m then encodes an assignment (X_i >= 0 <=> u_i true), and it
// lies in r iff it falsifies some clause.  Hence the complement of r is
// nonempty iff the formula is satisfiable.

#ifndef ITDB_SAT_REDUCTION_H_
#define ITDB_SAT_REDUCTION_H_

#include <vector>

#include "core/algebra.h"
#include "core/relation.h"
#include "sat/cnf.h"
#include "util/status.h"

namespace itdb {
namespace sat {

/// Builds the Theorem 3.6 relation for `formula`.
Result<GeneralizedRelation> ReductionToRelation(const CnfFormula& formula);

struct ComplementSatResult {
  bool satisfiable = false;
  /// Decoded witness assignment when satisfiable.
  std::vector<bool> assignment;
  /// Number of generalized tuples in the computed complement (the paper's
  /// size measure for the negation, Appendix A.6).
  int complement_tuples = 0;
};

/// Decides satisfiability of `formula` entirely through the generalized
/// database pipeline: build the reduction relation, complement it
/// (Appendix A.6 algorithm), test nonemptiness (Theorem 3.5), and decode a
/// witness point into an assignment.
Result<ComplementSatResult> SolveViaComplement(
    const CnfFormula& formula, const AlgebraOptions& options = {});

}  // namespace sat
}  // namespace itdb

#endif  // ITDB_SAT_REDUCTION_H_
