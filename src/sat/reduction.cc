#include "sat/reduction.h"

namespace itdb {
namespace sat {

Result<GeneralizedRelation> ReductionToRelation(const CnfFormula& formula) {
  const int m = formula.num_vars();
  GeneralizedRelation r(Schema::Temporal(m));
  for (const Clause& clause : formula.clauses()) {
    std::vector<Lrp> lrps(static_cast<std::size_t>(m), Lrp::Make(0, 1));
    GeneralizedTuple t(std::move(lrps));
    for (const Literal& lit : clause.literals) {
      if (lit.negated) {
        // not u_i in clause: falsified when u_i is true, i.e. X_i >= 0.
        t.mutable_constraints().AddLowerBound(lit.var, 0);
      } else {
        // u_i in clause: falsified when u_i is false, i.e. X_i <= -1.
        t.mutable_constraints().AddUpperBound(lit.var, -1);
      }
    }
    ITDB_RETURN_IF_ERROR(r.AddTuple(std::move(t)));
  }
  return r;
}

Result<ComplementSatResult> SolveViaComplement(const CnfFormula& formula,
                                               const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r, ReductionToRelation(formula));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation complement,
                        Complement(r, options));
  ComplementSatResult out;
  out.complement_tuples = complement.size();
  ITDB_ASSIGN_OR_RETURN(std::optional<ConcreteRow> witness,
                        FindWitness(complement, options));
  if (!witness.has_value()) return out;  // Unsatisfiable.
  out.satisfiable = true;
  out.assignment.reserve(witness->temporal.size());
  for (std::int64_t x : witness->temporal) {
    out.assignment.push_back(x >= 0);
  }
  return out;
}

}  // namespace sat
}  // namespace itdb
