// The fuzzer's correctness oracles.
//
// Three independent checks per generated case (database + expression):
//
//   * differential -- the expression is evaluated through the generalized
//     algebra AND through the finite-materialization baseline (leaves
//     materialized on an outer window); the two must agree on an inner
//     observation window.  Soundness of the window argument: all generated
//     periods/offsets/bounds/shifts are tiny compared to the outer-inner
//     slack, so every projection witness and shift image lives inside the
//     outer window (the same argument the query property tests make).  A
//     mismatch is re-verified on a doubled outer window before being
//     reported, which eliminates window artifacts entirely.
//
//   * determinism -- the engine result must be bit-identical at 1 thread
//     and N threads, with the normalization memo-cache off and on (the two
//     PR-1 features most likely to produce nondeterministic wrong answers).
//
//   * metamorphic -- paper-sound rewrites of the expression (mutate.h) must
//     produce equivalent results: equal materializations on the inner
//     window, plus the exact symbolic Equivalent() test (coalesced normal
//     form, Theorem 3.5 emptiness both directions) when the operands are
//     small enough for it to be affordable.

#ifndef ITDB_FUZZ_ORACLE_H_
#define ITDB_FUZZ_ORACLE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "fuzz/expr.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

struct OracleOptions {
  /// Observation window for differential comparison: [-inner, inner].
  std::int64_t inner_window = 4;
  /// Materialization window for finite-baseline leaves: [-outer, outer].
  std::int64_t outer_window = 28;
  /// Row budget for finite-baseline intermediates; beyond it the
  /// differential check is skipped (counted, never silent).
  std::int64_t max_finite_rows = 200000;
  /// The "N" of the 1-vs-N thread determinism matrix (0 = hardware).
  int threads = 0;
  /// Metamorphic rewrites checked per case (random subset)...
  int max_mutants = 3;
  /// ...unless this asks for every enumerable rewrite (used when shrinking
  /// and replaying, where determinism matters more than speed).
  bool exhaustive_metamorphic = false;
  /// Tuple-count cap on the symbolic Equivalent() check; larger operands
  /// fall back to the materialization comparison only.
  std::int64_t max_equiv_tuples = 60;
  /// Deliberate engine corruption (demo / self-test).
  InjectedBug bug = InjectedBug::kNone;
  /// Budgets for the engine under test.
  AlgebraOptions algebra;
};

struct OracleFailure {
  std::string oracle;  // "differential" | "determinism" | "metamorphic".
  std::string rule;    // Metamorphic identity name, empty otherwise.
  std::string detail;  // Human-readable mismatch description.
  ExprPtr mutant;      // Metamorphic only: the rewritten expression.
};

struct CaseOutcome {
  /// Nothing could be checked (engine budget/overflow on the reference
  /// evaluation).  Never set when any oracle ran.
  bool skipped = false;
  std::string skip_reason;
  /// The differential check was skipped (finite row budget).
  bool diff_skipped = false;
  int metamorphic_checked = 0;
  std::optional<OracleFailure> failure;
};

/// Runs all three oracles.  `mutant_seed` selects the random subset of
/// metamorphic rewrites (ignored under exhaustive_metamorphic).
CaseOutcome CheckCase(const Database& db, const ExprPtr& expr,
                      const OracleOptions& options, std::uint32_t mutant_seed);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_ORACLE_H_
