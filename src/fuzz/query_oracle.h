// Soundness oracles for the static analyzer (analysis/analyzer.h), driven
// by random queries from query_gen.h.
//
// Three properties, checked per case:
//   * Bit-identity: evaluating with analysis on must give the SAME
//     representation (schema plus tuple sequence) as evaluating with it
//     off, at one thread and at N threads -- a matrix against the
//     (analyze=off, threads=1) baseline that also covers cost_plan and
//     certified_bounds (certificate-clamped planning must not change the
//     representation either).  When the baseline fails, every variant must
//     fail with the same status code (the analyzer may turn an eval-time
//     type error into an analysis error, but both surface as
//     kInvalidArgument / kNotFound consistently).
//   * Proven-empty => actually empty: every subplan the analyzer marks
//     proven-empty is evaluated standalone (analysis off) and must have an
//     empty extension.  Quantified variables of enclosing scopes become
//     free variables of the subplan; emptiness is preserved either way.
//   * Certificate soundness (the analysis/absint.h contract): the query is
//     evaluated PLAIN (analyze / optimize / cost_plan all off, so the
//     evaluated tree is exactly the analyzed one) and the result must
//     respect the root certificate -- tuple count <= cert rows, every lrp
//     period divides cert lcm, and the feasible hull of every temporal
//     column lies inside the certified hull interval.
//
// Cases whose baseline fails with kOverflow / kResourceExhausted are
// budget-skips, mirroring the algebra fuzzer's convention (oracle.h).
// Failing cases are shrunk greedily to the smallest failing subtree before
// reporting, and each failure carries the database text so the repro is
// self-contained (tools/itdb_fuzz.cc writes it to a file).

#ifndef ITDB_FUZZ_QUERY_ORACLE_H_
#define ITDB_FUZZ_QUERY_ORACLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/query_gen.h"
#include "query/ast.h"
#include "query/eval.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

struct QueryOracleOptions {
  /// Thread count for the parallel variants (0 = hardware concurrency).
  int threads = 0;
  /// Cap on standalone evaluations of proven-empty subplans per case.
  std::int64_t max_empty_checks = 8;
};

struct QueryCaseOutcome {
  bool skipped = false;        // Baseline over budget; nothing checked.
  std::string skip_reason;
  int variants_checked = 0;    // Matrix variants compared to the baseline.
  int empties_checked = 0;     // Proven-empty subplans evaluated standalone.
  int empties_skipped = 0;     // Standalone evaluation failed (e.g. sorts).
  int certificates_checked = 0;  // Root certificates verified against plain
                                 // evaluation (0 when it failed or the
                                 // certificate was fully unbounded).
  /// Unset = the case passed.
  std::optional<std::string> failure;
};

/// Runs all three oracles on one (database, query) pair.
QueryCaseOutcome CheckQueryCase(const Database& db, const query::QueryPtr& q,
                                const QueryOracleOptions& options = {});

/// Greedy structural shrink of a failing case: repeatedly descends into the
/// first direct subtree that still fails CheckQueryCase, so the reported
/// repro is the smallest failing subquery on that path.  Returns `q` itself
/// when no subtree reproduces the failure.
query::QueryPtr ShrinkFailingQuery(const Database& db, query::QueryPtr q,
                                   const QueryOracleOptions& options = {});

struct QueryFuzzConfig {
  std::uint64_t seed = 1;
  int cases = 500;
  int max_failures = 5;
  DatabaseConfig database;
  QueryGenConfig query;
  QueryOracleOptions oracle;
};

struct QueryFuzzFailure {
  std::uint64_t case_seed = 0;
  std::string description;
  std::string query;         // Query::ToString of the failing case.
  std::string shrunk_query;  // Smallest failing subtree (greedy shrink).
  std::string shrunk_description;  // The shrunk case's failure.
  std::string database;      // Database::ToText: the repro is standalone.
};

struct QueryFuzzReport {
  int cases = 0;
  int skipped = 0;
  std::int64_t variants_checked = 0;
  std::int64_t empties_checked = 0;
  std::int64_t empties_skipped = 0;
  std::int64_t certificates_checked = 0;
  std::vector<QueryFuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// One-line human-readable summary.
  std::string Summary() const;
};

/// The loop: per case, derive a sub-seed (splitmix64, same idiom as
/// fuzzer.cc), generate a database and a query, and run CheckQueryCase.
QueryFuzzReport RunQueryFuzz(const QueryFuzzConfig& config);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_QUERY_ORACLE_H_
