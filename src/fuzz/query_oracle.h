// Soundness oracles for the static analyzer (analysis/analyzer.h), driven
// by random queries from query_gen.h.
//
// Two properties, checked per case:
//   * Bit-identity: evaluating with analysis on must give the SAME
//     representation (schema plus tuple sequence) as evaluating with it
//     off, at one thread and at N threads -- a 2x2 matrix against the
//     (analyze=off, threads=1) baseline.  When the baseline fails, every
//     variant must fail with the same status code (the analyzer may turn
//     an eval-time type error into an analysis error, but both surface as
//     kInvalidArgument / kNotFound consistently).
//   * Proven-empty => actually empty: every subplan the analyzer marks
//     proven-empty is evaluated standalone (analysis off) and must have an
//     empty extension.  Quantified variables of enclosing scopes become
//     free variables of the subplan; emptiness is preserved either way.
//
// Cases whose baseline fails with kOverflow / kResourceExhausted are
// budget-skips, mirroring the algebra fuzzer's convention (oracle.h).

#ifndef ITDB_FUZZ_QUERY_ORACLE_H_
#define ITDB_FUZZ_QUERY_ORACLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/query_gen.h"
#include "query/ast.h"
#include "query/eval.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

struct QueryOracleOptions {
  /// Thread count for the parallel variants (0 = hardware concurrency).
  int threads = 0;
  /// Cap on standalone evaluations of proven-empty subplans per case.
  std::int64_t max_empty_checks = 8;
};

struct QueryCaseOutcome {
  bool skipped = false;        // Baseline over budget; nothing checked.
  std::string skip_reason;
  int variants_checked = 0;    // Matrix variants compared to the baseline.
  int empties_checked = 0;     // Proven-empty subplans evaluated standalone.
  int empties_skipped = 0;     // Standalone evaluation failed (e.g. sorts).
  /// Unset = the case passed.
  std::optional<std::string> failure;
};

/// Runs both oracles on one (database, query) pair.
QueryCaseOutcome CheckQueryCase(const Database& db, const query::QueryPtr& q,
                                const QueryOracleOptions& options = {});

struct QueryFuzzConfig {
  std::uint64_t seed = 1;
  int cases = 500;
  int max_failures = 5;
  DatabaseConfig database;
  QueryGenConfig query;
  QueryOracleOptions oracle;
};

struct QueryFuzzFailure {
  std::uint64_t case_seed = 0;
  std::string description;
  std::string query;  // Query::ToString of the failing case.
};

struct QueryFuzzReport {
  int cases = 0;
  int skipped = 0;
  std::int64_t variants_checked = 0;
  std::int64_t empties_checked = 0;
  std::int64_t empties_skipped = 0;
  std::vector<QueryFuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// One-line human-readable summary.
  std::string Summary() const;
};

/// The loop: per case, derive a sub-seed (splitmix64, same idiom as
/// fuzzer.cc), generate a database and a query, and run CheckQueryCase.
QueryFuzzReport RunQueryFuzz(const QueryFuzzConfig& config);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_QUERY_ORACLE_H_
