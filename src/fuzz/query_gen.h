// Random first-order queries over a generated database (query_oracle.h's
// input side).
//
// Queries are sort-disciplined by construction: atoms draw variables from
// per-sort pools, comparisons only mention variables an atom already
// binds (or constants), and quantifier names never shadow.  On top of the
// well-formed core the generator deliberately injects, at low rates,
//   * contradictions (t > c AND t < c, ground-false comparisons) so the
//     emptiness prover has something to prove, and
//   * ill-formed constructs (unknown relations, arity mismatches, sort
//     conflicts, string-vs-int comparisons) so the oracle can pin that
//     analysis-on and analysis-off agree on FAILING too.
// OR nodes get a structurally fresh clone of the other branch plus a
// contradiction, so dead-branch elimination actually fires (the free-var
// subset condition holds by construction).

#ifndef ITDB_FUZZ_QUERY_GEN_H_
#define ITDB_FUZZ_QUERY_GEN_H_

#include <cstdint>

#include "query/ast.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

struct QueryGenConfig {
  int max_atoms = 3;
  int max_cmps = 2;
  int max_quantifiers = 2;
  /// Chance (percent) of conjoining a temporal contradiction.
  int contradiction_percent = 30;
  /// Chance (percent) of wrapping the core in OR with a dead clone branch.
  int dead_branch_percent = 35;
  /// Chance (percent) of one deliberate ill-formed construct.
  int illformed_percent = 10;
  std::int64_t const_range = 5;   // Comparison constants in [-range, range].
  std::int64_t offset_range = 2;  // Successor offsets in [-range, range].
};

/// Deterministic: same (seed, db, cfg) => same query.  `db` is typically a
/// MakeRandomDatabase catalog but any database works.
query::QueryPtr MakeRandomQuery(std::uint32_t seed, const Database& db,
                                const QueryGenConfig& cfg);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_QUERY_GEN_H_
