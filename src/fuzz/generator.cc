#include "fuzz/generator.h"

#include <random>
#include <utility>

namespace itdb {
namespace fuzz {

GeneralizedRelation MakeRandomRelation(std::uint32_t seed,
                                       const RandomRelationConfig& cfg) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> period_pick(
      0, cfg.periods.size() - 1);
  std::uniform_int_distribution<std::int64_t> offset_pick(-cfg.offset_range,
                                                          cfg.offset_range);
  std::uniform_int_distribution<std::int64_t> bound_pick(-cfg.bound_range,
                                                         cfg.bound_range);
  std::uniform_int_distribution<int> count_pick(0, cfg.max_constraints);
  std::uniform_int_distribution<int> col_pick(0, cfg.temporal_arity - 1);
  std::uniform_int_distribution<int> kind_pick(0, 3);

  Schema schema = cfg.data_values.empty()
                      ? Schema::Temporal(cfg.temporal_arity)
                      : Schema(Schema::Temporal(cfg.temporal_arity)
                                   .temporal_names(),
                               {"d"},
                               {cfg.data_values[0].IsInt()
                                    ? DataType::kInt
                                    : DataType::kString});
  GeneralizedRelation r(schema);
  for (int t = 0; t < cfg.num_tuples; ++t) {
    std::vector<Lrp> lrps;
    for (int i = 0; i < cfg.temporal_arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng),
                               cfg.periods[period_pick(rng)]));
    }
    std::vector<Value> data;
    if (!cfg.data_values.empty()) {
      std::uniform_int_distribution<std::size_t> value_pick(
          0, cfg.data_values.size() - 1);
      data.push_back(cfg.data_values[value_pick(rng)]);
    }
    GeneralizedTuple tuple(std::move(lrps), std::move(data));
    int n_constraints = count_pick(rng);
    for (int c = 0; c < n_constraints; ++c) {
      int kind = kind_pick(rng);
      int i = col_pick(rng);
      std::int64_t b = bound_pick(rng);
      switch (kind) {
        case 0:
          tuple.mutable_constraints().AddUpperBound(i, b);
          break;
        case 1:
          tuple.mutable_constraints().AddLowerBound(i, b);
          break;
        case 2: {
          if (cfg.temporal_arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % cfg.temporal_arity;
          tuple.mutable_constraints().AddDifferenceUpperBound(i, j, b);
          break;
        }
        case 3: {
          if (cfg.temporal_arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % cfg.temporal_arity;
          tuple.mutable_constraints().AddDifferenceEquality(i, j, b);
          break;
        }
      }
    }
    // Arities match the schema by construction, so AddTuple cannot fail.
    (void)r.AddTuple(std::move(tuple));
  }
  return r;
}

// ---------------------------------------------------------------------------
// Databases.

namespace {

GeneralizedRelation MakeGroupRelation(std::mt19937& rng,
                                      const DatabaseConfig& cfg,
                                      const Schema& schema) {
  std::uniform_int_distribution<std::size_t> period_pick(
      0, cfg.periods.size() - 1);
  std::uniform_int_distribution<std::int64_t> offset_pick(-cfg.offset_range,
                                                          cfg.offset_range);
  std::uniform_int_distribution<std::int64_t> bound_pick(-cfg.bound_range,
                                                         cfg.bound_range);
  std::uniform_int_distribution<int> tuples_pick(1, cfg.max_tuples);
  std::uniform_int_distribution<int> count_pick(0, cfg.max_constraints);
  std::uniform_int_distribution<int> kind_pick(0, 3);
  const int arity = schema.temporal_arity();
  static const char* kStrings[3] = {"x", "y", "z"};

  GeneralizedRelation r(schema);
  int n = tuples_pick(rng);
  for (int t = 0; t < n; ++t) {
    std::vector<Lrp> lrps;
    for (int i = 0; i < arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng),
                               cfg.periods[period_pick(rng)]));
    }
    std::vector<Value> data;
    for (int i = 0; i < schema.data_arity(); ++i) {
      data.push_back(Value(kStrings[rng() % 3]));
    }
    GeneralizedTuple tuple(std::move(lrps), std::move(data));
    int n_constraints = count_pick(rng);
    for (int c = 0; c < n_constraints; ++c) {
      std::uniform_int_distribution<int> col_pick(0, arity - 1);
      int kind = kind_pick(rng);
      int i = col_pick(rng);
      std::int64_t b = bound_pick(rng);
      switch (kind) {
        case 0:
          tuple.mutable_constraints().AddUpperBound(i, b);
          break;
        case 1:
          tuple.mutable_constraints().AddLowerBound(i, b);
          break;
        case 2: {
          if (arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % arity;
          tuple.mutable_constraints().AddDifferenceUpperBound(i, j, b);
          break;
        }
        case 3: {
          if (arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % arity;
          tuple.mutable_constraints().AddDifferenceEquality(i, j, b);
          break;
        }
      }
    }
    (void)r.AddTuple(std::move(tuple));
  }
  return r;
}

}  // namespace

Database MakeRandomDatabase(std::uint32_t seed, const DatabaseConfig& cfg) {
  std::mt19937 rng(seed);
  Database db;
  Schema ab({"A", "B"}, {}, {});
  Schema bc({"B", "C"}, {}, {});
  Schema t({"T"}, {}, {});
  db.Put("R0", MakeGroupRelation(rng, cfg, ab));
  db.Put("R1", MakeGroupRelation(rng, cfg, ab));
  db.Put("S0", MakeGroupRelation(rng, cfg, bc));
  db.Put("S1", MakeGroupRelation(rng, cfg, bc));
  db.Put("U0", MakeGroupRelation(rng, cfg, t));
  db.Put("U1", MakeGroupRelation(rng, cfg, t));
  if (cfg.with_data_group) {
    Schema td({"T"}, {"D"}, {DataType::kString});
    db.Put("W0", MakeGroupRelation(rng, cfg, td));
  }
  return db;
}

// ---------------------------------------------------------------------------
// Expressions.

namespace {

struct ExprGen {
  std::mt19937 rng;
  const ExprConfig* cfg;
  int complements_left;

  std::int64_t PickConst(std::int64_t range) {
    std::uniform_int_distribution<std::int64_t> pick(-range, range);
    return pick(rng);
  }

  TemporalCondition RandomCondition(int arity) {
    TemporalCondition cond;
    std::uniform_int_distribution<int> col_pick(0, arity - 1);
    cond.lhs = col_pick(rng);
    if (arity >= 2 && rng() % 2 == 0) {
      cond.rhs = col_pick(rng);
      if (cond.rhs == cond.lhs) cond.rhs = (cond.lhs + 1) % arity;
    } else {
      cond.rhs = kZeroVar;
    }
    static const CmpOp kOps[6] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                  CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
    cond.op = kOps[rng() % 6];
    cond.c = PickConst(cfg->select_const_range);
    return cond;
  }

  /// A same-schema operator tree over one schema group.  `names` are the
  /// leaf relations of the group; all listed schemas are identical.
  ExprPtr GenGroupTree(const std::vector<std::string>& names,
                       const Schema& schema, int depth) {
    if (depth <= 0 || rng() % 4 == 0) {
      return Expr::Leaf(names[rng() % names.size()]);
    }
    const bool purely_temporal = schema.data_arity() == 0;
    // Weighted choice of operator.
    int choice = static_cast<int>(rng() % 8);
    switch (choice) {
      case 0:
      case 1: {
        ExprPtr a = GenGroupTree(names, schema, depth - 1);
        ExprPtr b = GenGroupTree(names, schema, depth - 1);
        int which = static_cast<int>(rng() % 3);
        if (which == 0) return Expr::Union(std::move(a), std::move(b));
        if (which == 1) return Expr::Intersect(std::move(a), std::move(b));
        return Expr::Subtract(std::move(a), std::move(b));
      }
      case 2:
      case 3:
        return Expr::Select(GenGroupTree(names, schema, depth - 1),
                            RandomCondition(schema.temporal_arity()));
      case 4: {
        std::uniform_int_distribution<int> col_pick(
            0, schema.temporal_arity() - 1);
        std::int64_t delta = PickConst(cfg->shift_range);
        return Expr::Shift(GenGroupTree(names, schema, depth - 1),
                           col_pick(rng), delta);
      }
      case 5:
        if (purely_temporal && schema.temporal_arity() <= 2 &&
            complements_left > 0) {
          --complements_left;
          return Expr::Complement(GenGroupTree(names, schema, depth - 1));
        }
        return Expr::Leaf(names[rng() % names.size()]);
      case 6:
        if (schema.data_arity() > 0) {
          static const char* kStrings[3] = {"x", "y", "z"};
          CmpOp op = rng() % 2 == 0 ? CmpOp::kEq : CmpOp::kNe;
          return Expr::SelectData(GenGroupTree(names, schema, depth - 1), 0,
                                  op, Value(kStrings[rng() % 3]));
        }
        [[fallthrough]];
      default: {
        ExprPtr a = GenGroupTree(names, schema, depth - 1);
        ExprPtr b = GenGroupTree(names, schema, depth - 1);
        return Expr::Union(std::move(a), std::move(b));
      }
    }
  }
};

}  // namespace

ExprPtr MakeRandomExpr(std::uint32_t seed, const Database& db,
                       const ExprConfig& cfg) {
  ExprGen gen{std::mt19937(seed), &cfg, cfg.max_complements};
  std::mt19937& rng = gen.rng;

  struct Group {
    std::vector<std::string> names;
    Schema schema;
  };
  std::vector<Group> groups;
  groups.push_back({{"R0", "R1"}, Schema({"A", "B"}, {}, {})});
  groups.push_back({{"S0", "S1"}, Schema({"B", "C"}, {}, {})});
  groups.push_back({{"U0", "U1"}, Schema({"T"}, {}, {})});
  if (db.Has("W0")) {
    groups.push_back({{"W0"}, Schema({"T"}, {"D"}, {DataType::kString})});
  }

  const Group& g1 = groups[rng() % groups.size()];
  ExprPtr e = gen.GenGroupTree(g1.names, g1.schema, cfg.max_depth);
  Schema schema = g1.schema;

  // Optionally join with a tree over a second (possibly the same) group.
  if (cfg.allow_join && rng() % 2 == 0) {
    const Group& g2 = groups[rng() % groups.size()];
    ExprPtr other = gen.GenGroupTree(g2.names, g2.schema, cfg.max_depth - 1);
    e = Expr::Join(std::move(e), std::move(other));
    // Join schema: g1's attributes then g2's new ones (data merged by name;
    // the only data attribute is "D", so merging never clashes on type).
    std::vector<std::string> temporal = schema.temporal_names();
    for (const std::string& n : g2.schema.temporal_names()) {
      if (!schema.FindTemporal(n).has_value()) temporal.push_back(n);
    }
    std::vector<std::string> data = schema.data_names();
    std::vector<DataType> types = schema.data_types();
    for (int j = 0; j < g2.schema.data_arity(); ++j) {
      if (!schema.FindData(g2.schema.data_name(j)).has_value()) {
        data.push_back(g2.schema.data_name(j));
        types.push_back(g2.schema.data_type(j));
      }
    }
    schema = Schema(std::move(temporal), std::move(data), std::move(types));
  }

  // Optionally a top-level selection or shift on the combined schema.
  if (rng() % 2 == 0) {
    e = Expr::Select(std::move(e),
                     gen.RandomCondition(schema.temporal_arity()));
  } else if (rng() % 2 == 0) {
    std::uniform_int_distribution<int> col_pick(0,
                                                schema.temporal_arity() - 1);
    e = Expr::Shift(std::move(e), col_pick(rng),
                    gen.PickConst(cfg.shift_range));
  }

  // Optionally project onto a random subset keeping >= 1 temporal column.
  if (cfg.allow_project && rng() % 2 == 0) {
    std::vector<std::string> attrs;
    for (const std::string& n : schema.temporal_names()) {
      if (rng() % 2 == 0) attrs.push_back(n);
    }
    if (attrs.empty()) {
      attrs.push_back(
          schema.temporal_name(static_cast<int>(
              rng() % static_cast<std::uint32_t>(schema.temporal_arity()))));
    }
    for (const std::string& n : schema.data_names()) {
      if (rng() % 2 == 0) attrs.push_back(n);
    }
    if (static_cast<int>(attrs.size()) <
        schema.temporal_arity() + schema.data_arity()) {
      e = Expr::Project(std::move(e), std::move(attrs));
    }
  }
  return e;
}

}  // namespace fuzz
}  // namespace itdb
