// Seeded, size-bounded generators for the fuzzing subsystem.
//
// Three layers, all deterministic (same seed => same output, given one
// standard library implementation):
//   * MakeRandomRelation  -- one generalized relation from a shape config.
//     This is the single shared implementation behind both the fuzzer and
//     the property tests (tests/common/random_relations.h re-exports it).
//   * MakeRandomDatabase  -- a catalog of relations over a few fixed schema
//     groups, so that generated algebra expressions can combine relations
//     with equal schemas (union/intersect/subtract) and overlapping
//     attribute names (join).
//   * MakeRandomExpr      -- a random algebra expression over the catalog;
//     see expr.h for the expression language.
//
// All constants are deliberately small: the differential oracle compares
// materializations on a bounded window, and its soundness for projection
// (witnesses must lie inside the outer window) rests on periods, offsets,
// bounds and shifts being far smaller than the window slack -- the same
// argument the query property tests already make.

#ifndef ITDB_FUZZ_GENERATOR_H_
#define ITDB_FUZZ_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/relation.h"
#include "fuzz/expr.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

struct RandomRelationConfig {
  int temporal_arity = 2;
  int num_tuples = 3;
  /// Periods are drawn from this list (0 = singleton column).
  std::vector<std::int64_t> periods = {0, 1, 2, 3, 4, 6};
  std::int64_t offset_range = 8;     // Offsets in [-range, range].
  int max_constraints = 2;           // Per tuple.
  std::int64_t bound_range = 6;      // Constraint bounds in [-range, range].
  std::vector<Value> data_values;    // Empty => purely temporal.
};

/// Builds a reproducible random relation; same seed => same relation.
GeneralizedRelation MakeRandomRelation(std::uint32_t seed,
                                       const RandomRelationConfig& cfg);

/// Shape of a generated database.  The catalog always holds four schema
/// groups (attribute names fixed so joins share columns by construction):
///   R0, R1   (A: time, B: time)
///   S0, S1   (B: time, C: time)
///   U0, U1   (T: time)
///   W0       (T: time, D: string)     -- only when with_data_group
struct DatabaseConfig {
  int max_tuples = 3;  // 1..max per relation.
  std::vector<std::int64_t> periods = {0, 2, 3, 4, 6};
  std::int64_t offset_range = 5;
  std::int64_t bound_range = 5;
  int max_constraints = 2;
  bool with_data_group = true;
};

Database MakeRandomDatabase(std::uint32_t seed, const DatabaseConfig& cfg);

/// Shape of a generated expression.
struct ExprConfig {
  int max_depth = 3;           // Of each same-schema subtree.
  int max_complements = 1;     // Complements are exponential; ration them.
  std::int64_t shift_range = 2;
  std::int64_t select_const_range = 4;
  bool allow_join = true;
  bool allow_project = true;
};

/// A random expression valid over `db` (as produced by MakeRandomDatabase).
/// Structure: a same-schema operator tree per schema group, optionally
/// joined pairwise, optionally topped by selection/shift/projection.
ExprPtr MakeRandomExpr(std::uint32_t seed, const Database& db,
                       const ExprConfig& cfg);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_GENERATOR_H_
