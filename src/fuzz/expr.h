// Algebra expressions over a named catalog -- the test subject language of
// the fuzzer.
//
// An Expr is a small immutable tree over the Section 3 operations.  It can
// be evaluated two independent ways:
//   * EvalExpr        -- through the generalized algebra (the engine under
//     test), optionally with a deliberately injected bug for exercising the
//     oracle/shrinker pipeline end to end;
//   * EvalExprFinite  -- through the finite-materialization baseline of
//     src/finite, with every leaf materialized on a window.  This is the
//     differential oracle's reference.
//
// Expressions print to a compact functional syntax (ParseExpr round-trips)
// so failing cases can be dumped to and replayed from text:
//
//   subtract(R0, project(select(join(R0, S0), X1 <= X3 + 2), [A, C]))
//
// Temporal selection columns are written X1..Xk (1-based, paper style) so
// the syntax needs no schema context.

#ifndef ITDB_FUZZ_EXPR_H_
#define ITDB_FUZZ_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/algebra.h"
#include "finite/finite_relation.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {
namespace fuzz {

/// Deliberate engine corruptions, used to demonstrate (and test) that the
/// oracles catch wrong-answer bugs and that the shrinker minimizes them.
enum class InjectedBug {
  kNone = 0,
  /// Join forgets the operands' constraints on its output tuples.
  kJoinDropConstraint,
  /// Union ignores the last tuple of its right operand.
  kUnionDropTuple,
  /// ShiftTemporalColumn shifts by delta + 1.
  kShiftOffByOne,
};

/// Parses a bug name ("none", "join-drop-constraint", "union-drop-tuple",
/// "shift-off-by-one").
Result<InjectedBug> ParseInjectedBug(std::string_view name);
std::string_view InjectedBugName(InjectedBug bug);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One node of an algebra expression.  Treat as immutable once built.
struct Expr {
  enum class Kind {
    kLeaf,        // A named relation of the database.
    kUnion,
    kIntersect,
    kSubtract,
    kJoin,        // Natural join (degenerates to cross product).
    kComplement,  // Purely temporal operand only.
    kProject,
    kSelect,      // Temporal selection.
    kSelectData,
    kShift,       // Iterated successor on one temporal column.
  };

  Kind kind = Kind::kLeaf;
  std::string leaf;                  // kLeaf: relation name.
  ExprPtr left;
  ExprPtr right;                     // Binary kinds only.
  std::vector<std::string> attrs;    // kProject.
  TemporalCondition cond;            // kSelect.
  int data_col = 0;                  // kSelectData.
  CmpOp data_op = CmpOp::kEq;        // kSelectData.
  Value data_value;                  // kSelectData.
  int shift_col = 0;                 // kShift.
  std::int64_t shift_delta = 0;      // kShift.

  static ExprPtr Leaf(std::string name);
  static ExprPtr Union(ExprPtr a, ExprPtr b);
  static ExprPtr Intersect(ExprPtr a, ExprPtr b);
  static ExprPtr Subtract(ExprPtr a, ExprPtr b);
  static ExprPtr Join(ExprPtr a, ExprPtr b);
  static ExprPtr Complement(ExprPtr a);
  static ExprPtr Project(ExprPtr a, std::vector<std::string> attrs);
  static ExprPtr Select(ExprPtr a, TemporalCondition cond);
  static ExprPtr SelectData(ExprPtr a, int col, CmpOp op, Value value);
  static ExprPtr Shift(ExprPtr a, int col, std::int64_t delta);

  int NodeCount() const;
  std::string ToString() const;
};

/// Relation names referenced by leaves, sorted and deduplicated.
std::vector<std::string> LeafNames(const ExprPtr& e);

struct EvalExprOptions {
  AlgebraOptions algebra;
  InjectedBug bug = InjectedBug::kNone;
};

/// Evaluates through the generalized algebra (the engine under test).
Result<GeneralizedRelation> EvalExpr(const ExprPtr& e, const Database& db,
                                     const EvalExprOptions& options = {});

/// A finite evaluation result together with the window on which it is
/// exact.  Operations on window-materialized relations suffer boundary
/// artifacts -- a shifted row drifts past the window edge and then survives
/// a subtraction it should not, projection pulls an out-of-window witness
/// inward -- so each node tracks the interval [valid_lo, valid_hi] on which
/// its rows provably agree with the true infinite extension:
///   rel restricted to [valid_lo, valid_hi]^k  ==  true extension likewise.
/// Leaves are exact on the materialization window; set operations intersect
/// their operands' windows (membership is pointwise); shift translates the
/// window along with the rows; projection shrinks it by a witness-distance
/// slack.  Rows outside the window may be garbage and must be ignored.
struct FiniteEval {
  FiniteRelation rel;
  std::int64_t valid_lo = 0;
  std::int64_t valid_hi = 0;
};

/// Evaluates through the finite baseline: leaves are materialized on
/// [lo, hi] (and complements taken relative to that window).  Fails with
/// kResourceExhausted when any intermediate exceeds `max_rows` rows, so a
/// pathological case degrades into a skipped check instead of a hang.
Result<FiniteEval> EvalExprFinite(const ExprPtr& e, const Database& db,
                                  std::int64_t lo, std::int64_t hi,
                                  std::int64_t max_rows);

/// The output schema of `e` over `db`, computed structurally (mirrors the
/// algebra's schema conventions; no evaluation).
Result<Schema> InferSchema(const ExprPtr& e, const Database& db);

/// Parses the ToString syntax back into a tree.
Result<ExprPtr> ParseExpr(std::string_view text);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_EXPR_H_
