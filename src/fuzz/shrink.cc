#include "fuzz/shrink.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace itdb {
namespace fuzz {

namespace {

/// One-step expression reductions: every tree obtained by replacing a node
/// with one of its children or zeroing/halving one of its constants.
/// Ordered most-aggressive-first so the greedy loop takes big bites early.
void ExprReductions(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;

  // Hoist a child over this node (drops the node entirely).
  if (e->left) out->push_back(e->left);
  if (e->right) out->push_back(e->right);

  // Shrink node-local constants.
  if (e->kind == Expr::Kind::kSelect && e->cond.c != 0) {
    Expr copy = *e;
    copy.cond.c = 0;
    out->push_back(std::make_shared<const Expr>(copy));
    if (e->cond.c > 1 || e->cond.c < -1) {
      copy.cond.c = e->cond.c / 2;
      out->push_back(std::make_shared<const Expr>(copy));
    }
  }
  if (e->kind == Expr::Kind::kShift && e->shift_delta != 0) {
    Expr copy = *e;
    copy.shift_delta = 0;
    out->push_back(std::make_shared<const Expr>(copy));
  }

  // Same reductions inside the children, re-wrapped at this node.
  for (bool right_child : {false, true}) {
    const ExprPtr& child = right_child ? e->right : e->left;
    if (!child) continue;
    std::vector<ExprPtr> inner;
    ExprReductions(child, &inner);
    for (ExprPtr& reduced : inner) {
      Expr copy = *e;
      (right_child ? copy.right : copy.left) = std::move(reduced);
      out->push_back(std::make_shared<const Expr>(std::move(copy)));
    }
  }
}

GeneralizedRelation WithTuples(const Schema& schema,
                               std::vector<GeneralizedTuple> tuples) {
  GeneralizedRelation r(schema);
  for (GeneralizedTuple& t : tuples) (void)r.AddTuple(std::move(t));
  return r;
}

/// The tuple's constraints as an irredundant atomic list, or nullopt when
/// they are unconstrained / unclosable (nothing to drop then).
std::optional<std::vector<AtomicConstraint>> TupleAtomics(
    const GeneralizedTuple& t) {
  Dbm closed = t.constraints();
  if (!closed.Close().ok() || !closed.feasible()) return std::nullopt;
  std::vector<AtomicConstraint> atomics = closed.MinimalAtomics();
  if (atomics.empty()) return std::nullopt;
  return atomics;
}

GeneralizedTuple WithAtomics(const GeneralizedTuple& t,
                             const std::vector<AtomicConstraint>& atomics) {
  GeneralizedTuple copy = t;
  Dbm dbm(t.temporal_arity());
  for (const AtomicConstraint& c : atomics) dbm.AddAtomic(c);
  copy.set_constraints(std::move(dbm));
  return copy;
}

/// One-step reductions of a single tuple: clear all constraints, drop one
/// constraint, zero/halve one bound, simplify one lrp.
void TupleReductions(const GeneralizedTuple& t,
                     std::vector<GeneralizedTuple>* out) {
  std::optional<std::vector<AtomicConstraint>> atomics = TupleAtomics(t);
  if (atomics) {
    out->push_back(WithAtomics(t, {}));  // Clear every constraint.
    for (std::size_t i = 0; i < atomics->size(); ++i) {
      std::vector<AtomicConstraint> fewer = *atomics;
      fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(i));
      out->push_back(WithAtomics(t, fewer));
      if ((*atomics)[i].bound != 0) {
        std::vector<AtomicConstraint> smaller = *atomics;
        smaller[i].bound = 0;
        out->push_back(WithAtomics(t, smaller));
      }
    }
  }

  for (int i = 0; i < t.temporal_arity(); ++i) {
    const Lrp& lrp = t.lrp(i);
    auto with_lrp = [&](Lrp replacement) {
      std::vector<Lrp> temporal = t.temporal();
      temporal[static_cast<std::size_t>(i)] = replacement;
      GeneralizedTuple copy(std::move(temporal), t.data());
      copy.set_constraints(t.constraints());
      out->push_back(std::move(copy));
    };
    if (lrp.period() != 0) with_lrp(Lrp::Singleton(0));
    if (lrp.offset() != 0) with_lrp(Lrp::Make(0, lrp.period()));
  }
}

}  // namespace

ShrinkCase Shrink(ShrinkCase start, const FailPredicate& fails,
                  const ShrinkOptions& options, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  st = ShrinkStats{};

  auto try_accept = [&](ShrinkCase candidate) -> bool {
    if (st.attempts >= options.max_attempts) return false;
    ++st.attempts;
    if (!fails(candidate)) return false;
    ++st.accepted;
    start = std::move(candidate);
    return true;
  };

  bool progress = true;
  while (progress && st.attempts < options.max_attempts) {
    progress = false;

    // Drop relations the expression no longer references (one attempt).
    {
      std::vector<std::string> used = LeafNames(start.expr);
      Database trimmed;
      bool smaller = false;
      for (const std::string& name : start.db.Names()) {
        if (std::binary_search(used.begin(), used.end(), name)) {
          trimmed.Put(name, *start.db.Get(name));
        } else {
          smaller = true;
        }
      }
      if (smaller && try_accept({std::move(trimmed), start.expr})) {
        progress = true;
        continue;
      }
    }

    // Expression reductions.
    {
      std::vector<ExprPtr> exprs;
      ExprReductions(start.expr, &exprs);
      bool accepted = false;
      for (ExprPtr& e : exprs) {
        if (try_accept({start.db, std::move(e)})) {
          accepted = true;
          break;
        }
      }
      if (accepted) {
        progress = true;
        continue;
      }
    }

    // Database reductions: drop a tuple, then shrink a tuple in place.
    for (const std::string& name : start.db.Names()) {
      const GeneralizedRelation rel = *start.db.Get(name);
      bool accepted = false;
      for (std::int64_t i = 0; i < rel.size() && !accepted; ++i) {
        std::vector<GeneralizedTuple> fewer = rel.tuples();
        fewer.erase(fewer.begin() + i);
        Database smaller = start.db;
        smaller.Put(name, WithTuples(rel.schema(), std::move(fewer)));
        accepted = try_accept({std::move(smaller), start.expr});
      }
      for (std::int64_t i = 0; i < rel.size() && !accepted; ++i) {
        std::vector<GeneralizedTuple> variants;
        TupleReductions(rel.tuples()[static_cast<std::size_t>(i)], &variants);
        for (GeneralizedTuple& v : variants) {
          std::vector<GeneralizedTuple> tuples = rel.tuples();
          tuples[static_cast<std::size_t>(i)] = std::move(v);
          Database changed = start.db;
          changed.Put(name, WithTuples(rel.schema(), std::move(tuples)));
          if (try_accept({std::move(changed), start.expr})) {
            accepted = true;
            break;
          }
        }
      }
      if (accepted) {
        progress = true;
        break;
      }
    }
  }

  return start;
}

}  // namespace fuzz
}  // namespace itdb
