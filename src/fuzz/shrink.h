// Greedy test-case minimization.
//
// Given a failing (database, expression) pair and a predicate that re-runs
// the oracles, the shrinker repeatedly tries smaller variants -- replacing
// expression nodes by their children, zeroing constants, dropping unused
// relations, dropping tuples, clearing or dropping single constraints,
// shrinking lrp offsets/periods and constraint bounds -- and keeps any
// variant on which the failure reproduces.  The result is the fixpoint:
// no single reduction step preserves the failure (1-minimal in the
// delta-debugging sense), or the attempt budget ran out.

#ifndef ITDB_FUZZ_SHRINK_H_
#define ITDB_FUZZ_SHRINK_H_

#include <functional>

#include "fuzz/expr.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

/// A candidate test case: catalog plus expression over it.
struct ShrinkCase {
  Database db;
  ExprPtr expr;
};

/// Re-runs the oracles on a candidate; true = the failure still reproduces.
/// The predicate must be deterministic, or the shrink result is meaningless.
using FailPredicate = std::function<bool(const ShrinkCase&)>;

struct ShrinkOptions {
  /// Total predicate evaluations allowed.  Each evaluation re-runs the
  /// oracles, so this bounds shrinking time.
  int max_attempts = 500;
};

struct ShrinkStats {
  int attempts = 0;  // Predicate evaluations spent.
  int accepted = 0;  // Reductions that kept the failure.
};

/// Pre: fails(start) is true.  Returns a case at least as small on which
/// `fails` still holds.
ShrinkCase Shrink(ShrinkCase start, const FailPredicate& fails,
                  const ShrinkOptions& options = {},
                  ShrinkStats* stats = nullptr);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_SHRINK_H_
