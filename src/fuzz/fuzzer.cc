#include "fuzz/fuzzer.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace itdb {
namespace fuzz {

namespace {

/// splitmix64: statistically independent sub-seeds from sequential inputs.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

std::string FuzzReport::Summary() const {
  std::ostringstream os;
  os << cases << " cases: " << failures.size() << " failures, " << skipped
     << " skipped, " << diff_skipped << " diff-skipped, "
     << metamorphic_checks << " metamorphic checks";
  return os.str();
}

FuzzReport RunFuzz(const FuzzConfig& config) {
  FuzzReport report;
  const std::uint64_t stream = SplitMix64(config.seed);
  for (int i = 0; i < config.cases; ++i) {
    // Double mixing, so that master seeds S and S+k do not share cases.
    const std::uint64_t case_seed =
        SplitMix64(stream + static_cast<std::uint64_t>(i));
    const auto db_seed = static_cast<std::uint32_t>(case_seed);
    const auto expr_seed = static_cast<std::uint32_t>(case_seed >> 32);

    Database db = MakeRandomDatabase(db_seed, config.database);
    ExprPtr expr = MakeRandomExpr(expr_seed, db, config.expr);

    // One span per case so --trace-json output groups the kernel spans a
    // case triggers under its sub-seed.
    obs::Span case_span = obs::Span::Begin(
        obs::ResolveTracer(config.tracer),
        "case " + std::to_string(case_seed), "fuzz");
    CaseOutcome outcome =
        CheckCase(db, expr, config.oracle, db_seed ^ expr_seed);
    case_span.End();
    ++report.cases;
    if (outcome.skipped) ++report.skipped;
    if (outcome.diff_skipped) ++report.diff_skipped;
    report.metamorphic_checks += outcome.metamorphic_checked;
    if (!outcome.failure) continue;

    FuzzFailure fail;
    fail.case_seed = case_seed;
    fail.failure = *outcome.failure;
    fail.repro = {std::move(db), std::move(expr)};
    if (config.shrink) {
      // Replay with exhaustive metamorphic rewrites so the predicate is
      // deterministic, and pin to the original oracle so shrinking cannot
      // slide onto a different bug.
      OracleOptions replay = config.oracle;
      replay.exhaustive_metamorphic = true;
      const std::string oracle = fail.failure.oracle;
      auto still_fails = [&](const ShrinkCase& c) {
        CaseOutcome o = CheckCase(c.db, c.expr, replay, 0);
        return o.failure.has_value() && o.failure->oracle == oracle;
      };
      fail.repro = Shrink(std::move(fail.repro), still_fails,
                          config.shrink_options, &fail.shrink_stats);
      // Report the failure as it manifests on the SHRUNK case.
      CaseOutcome o = CheckCase(fail.repro.db, fail.repro.expr, replay, 0);
      if (o.failure) fail.failure = *o.failure;
    }
    report.failures.push_back(std::move(fail));
    if (static_cast<int>(report.failures.size()) >= config.max_failures) {
      break;
    }
  }
  return report;
}

std::string FormatRepro(const ShrinkCase& c, const OracleFailure& failure,
                        std::uint64_t case_seed) {
  std::vector<std::string> headers;
  headers.push_back("itdb_fuzz repro v1");
  headers.push_back("seed: " + std::to_string(case_seed));
  headers.push_back("oracle: " + failure.oracle);
  if (!failure.rule.empty()) headers.push_back("rule: " + failure.rule);
  if (!failure.detail.empty()) {
    headers.push_back("detail: " + OneLine(failure.detail));
  }
  if (failure.mutant) {
    headers.push_back("mutant: " + failure.mutant->ToString());
  }
  headers.push_back("expr: " + c.expr->ToString());
  return c.db.ToText(headers);
}

Result<Repro> ParseRepro(std::string_view text) {
  std::string expr_text;
  std::string oracle;
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    constexpr std::string_view kExpr = "# expr: ";
    constexpr std::string_view kOracle = "# oracle: ";
    if (line.starts_with(kExpr)) expr_text = line.substr(kExpr.size());
    if (line.starts_with(kOracle)) oracle = line.substr(kOracle.size());
  }
  if (expr_text.empty()) {
    return Status::ParseError("repro has no '# expr:' header");
  }
  ITDB_ASSIGN_OR_RETURN(Database db, Database::FromText(text));
  ITDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(expr_text));
  for (const std::string& name : LeafNames(expr)) {
    if (!db.Has(name)) {
      return Status::NotFound("repro expression references relation '" +
                              name + "' not defined in the dump");
    }
  }
  return Repro{std::move(db), std::move(expr), std::move(oracle)};
}

Result<CaseOutcome> ReplayRepro(std::string_view text,
                                OracleOptions options) {
  ITDB_ASSIGN_OR_RETURN(Repro repro, ParseRepro(text));
  options.exhaustive_metamorphic = true;
  return CheckCase(repro.db, repro.expr, options, 0);
}

}  // namespace fuzz
}  // namespace itdb
