// The fuzzing loop: generate -> check -> shrink -> dump.
//
// RunFuzz derives one sub-seed per case from the master seed (splitmix64,
// so nearby master seeds give unrelated streams), generates a database and
// an expression, and runs the three oracles of oracle.h.  On failure it
// greedily shrinks the case (shrink.h) against a predicate that replays the
// oracles, and records a minimal repro.
//
// Repros serialize to the text_format database syntax plus `#`-comment
// headers carrying the expression and metadata:
//
//   # itdb_fuzz repro v1
//   # seed: 42
//   # oracle: differential
//   # expr: subtract(U0, shift(U0, X1, 1))
//   relation U0 (T: time) {
//     [0+2n]
//   }
//
// ParseRepro/ReplayRepro read such a dump back and re-run the oracles on
// it, which is how `itdb_fuzz --replay` and the checked-in regression
// corpus (tests/fuzz/corpus) work.

#ifndef ITDB_FUZZ_FUZZER_H_
#define ITDB_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "obs/trace.h"

namespace itdb {
namespace fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  int cases = 1000;
  /// Stop after this many failures (each failure costs a shrink run).
  int max_failures = 5;
  bool shrink = true;
  DatabaseConfig database;
  ExprConfig expr;
  OracleOptions oracle;
  ShrinkOptions shrink_options;
  /// Optional span tracer (obs/trace.h): one "fuzz"-category span per case,
  /// named by its sub-seed, over whatever the algebra kernels record via the
  /// global tracer.  Not owned; null falls back to the global tracer, and
  /// when that is also unset the per-case spans are skipped.
  obs::Tracer* tracer = nullptr;
};

struct FuzzFailure {
  std::uint64_t case_seed = 0;  // Sub-seed of the failing case.
  OracleFailure failure;        // From the ORIGINAL (pre-shrink) case.
  ShrinkCase repro;             // Shrunk when config.shrink, else original.
  ShrinkStats shrink_stats;
};

struct FuzzReport {
  int cases = 0;
  int skipped = 0;               // Reference evaluation over budget.
  int diff_skipped = 0;          // Differential oracle over finite budget.
  std::int64_t metamorphic_checks = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// One-line human-readable summary.
  std::string Summary() const;
};

FuzzReport RunFuzz(const FuzzConfig& config);

/// Serializes a failing case as a replayable text dump (format above).
std::string FormatRepro(const ShrinkCase& c, const OracleFailure& failure,
                        std::uint64_t case_seed);

struct Repro {
  Database db;
  ExprPtr expr;
  std::string oracle;  // From the "# oracle:" header, may be empty.
};

Result<Repro> ParseRepro(std::string_view text);

/// Parses a repro dump and re-runs the oracles on it (exhaustive
/// metamorphic mode, so replay is deterministic).
Result<CaseOutcome> ReplayRepro(std::string_view text,
                                OracleOptions options = {});

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_FUZZER_H_
