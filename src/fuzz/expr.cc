#include "fuzz/expr.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "storage/lexer.h"

namespace itdb {
namespace fuzz {

namespace {

ExprPtr MakeNode(Expr node) { return std::make_shared<const Expr>(std::move(node)); }

ExprPtr MakeBinary(Expr::Kind kind, ExprPtr a, ExprPtr b) {
  Expr e;
  e.kind = kind;
  e.left = std::move(a);
  e.right = std::move(b);
  return MakeNode(std::move(e));
}

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

Result<InjectedBug> ParseInjectedBug(std::string_view name) {
  if (name == "none") return InjectedBug::kNone;
  if (name == "join-drop-constraint") return InjectedBug::kJoinDropConstraint;
  if (name == "union-drop-tuple") return InjectedBug::kUnionDropTuple;
  if (name == "shift-off-by-one") return InjectedBug::kShiftOffByOne;
  return Status::InvalidArgument("unknown injected bug \"" +
                                 std::string(name) + "\"");
}

std::string_view InjectedBugName(InjectedBug bug) {
  switch (bug) {
    case InjectedBug::kNone:
      return "none";
    case InjectedBug::kJoinDropConstraint:
      return "join-drop-constraint";
    case InjectedBug::kUnionDropTuple:
      return "union-drop-tuple";
    case InjectedBug::kShiftOffByOne:
      return "shift-off-by-one";
  }
  return "none";
}

ExprPtr Expr::Leaf(std::string name) {
  Expr e;
  e.kind = Kind::kLeaf;
  e.leaf = std::move(name);
  return MakeNode(std::move(e));
}

ExprPtr Expr::Union(ExprPtr a, ExprPtr b) {
  return MakeBinary(Kind::kUnion, std::move(a), std::move(b));
}
ExprPtr Expr::Intersect(ExprPtr a, ExprPtr b) {
  return MakeBinary(Kind::kIntersect, std::move(a), std::move(b));
}
ExprPtr Expr::Subtract(ExprPtr a, ExprPtr b) {
  return MakeBinary(Kind::kSubtract, std::move(a), std::move(b));
}
ExprPtr Expr::Join(ExprPtr a, ExprPtr b) {
  return MakeBinary(Kind::kJoin, std::move(a), std::move(b));
}

ExprPtr Expr::Complement(ExprPtr a) {
  Expr e;
  e.kind = Kind::kComplement;
  e.left = std::move(a);
  return MakeNode(std::move(e));
}

ExprPtr Expr::Project(ExprPtr a, std::vector<std::string> attrs) {
  Expr e;
  e.kind = Kind::kProject;
  e.left = std::move(a);
  e.attrs = std::move(attrs);
  return MakeNode(std::move(e));
}

ExprPtr Expr::Select(ExprPtr a, TemporalCondition cond) {
  Expr e;
  e.kind = Kind::kSelect;
  e.left = std::move(a);
  e.cond = cond;
  return MakeNode(std::move(e));
}

ExprPtr Expr::SelectData(ExprPtr a, int col, CmpOp op, Value value) {
  Expr e;
  e.kind = Kind::kSelectData;
  e.left = std::move(a);
  e.data_col = col;
  e.data_op = op;
  e.data_value = std::move(value);
  return MakeNode(std::move(e));
}

ExprPtr Expr::Shift(ExprPtr a, int col, std::int64_t delta) {
  Expr e;
  e.kind = Kind::kShift;
  e.left = std::move(a);
  e.shift_col = col;
  e.shift_delta = delta;
  return MakeNode(std::move(e));
}

int Expr::NodeCount() const {
  int n = 1;
  if (left) n += left->NodeCount();
  if (right) n += right->NodeCount();
  return n;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLeaf:
      return leaf;
    case Kind::kUnion:
      return "union(" + left->ToString() + ", " + right->ToString() + ")";
    case Kind::kIntersect:
      return "intersect(" + left->ToString() + ", " + right->ToString() + ")";
    case Kind::kSubtract:
      return "subtract(" + left->ToString() + ", " + right->ToString() + ")";
    case Kind::kJoin:
      return "join(" + left->ToString() + ", " + right->ToString() + ")";
    case Kind::kComplement:
      return "complement(" + left->ToString() + ")";
    case Kind::kProject: {
      std::string out = "project(" + left->ToString() + ", [";
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += attrs[i];
      }
      return out + "])";
    }
    case Kind::kSelect: {
      std::string out = "select(" + left->ToString() + ", X" +
                        std::to_string(cond.lhs + 1) + " " +
                        std::string(CmpOpToString(cond.op)) + " ";
      if (cond.rhs == kZeroVar) {
        out += std::to_string(cond.c);
      } else {
        out += "X" + std::to_string(cond.rhs + 1);
        if (cond.c > 0) out += " + " + std::to_string(cond.c);
        if (cond.c < 0) out += " - " + std::to_string(-cond.c);
      }
      return out + ")";
    }
    case Kind::kSelectData:
      return "selectdata(" + left->ToString() + ", D" +
             std::to_string(data_col + 1) + " " +
             std::string(CmpOpToString(data_op)) + " " +
             data_value.ToString() + ")";
    case Kind::kShift:
      return "shift(" + left->ToString() + ", X" +
             std::to_string(shift_col + 1) + ", " +
             std::to_string(shift_delta) + ")";
  }
  return "?";
}

std::vector<std::string> LeafNames(const ExprPtr& e) {
  std::set<std::string> names;
  std::vector<const Expr*> stack = {e.get()};
  while (!stack.empty()) {
    const Expr* n = stack.back();
    stack.pop_back();
    if (n->kind == Expr::Kind::kLeaf) names.insert(n->leaf);
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
  return {names.begin(), names.end()};
}

// ---------------------------------------------------------------------------
// Evaluation through the generalized algebra.

Result<GeneralizedRelation> EvalExpr(const ExprPtr& e, const Database& db,
                                     const EvalExprOptions& options) {
  switch (e->kind) {
    case Expr::Kind::kLeaf:
      return db.Get(e->leaf);
    case Expr::Kind::kUnion: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation b,
                            EvalExpr(e->right, db, options));
      if (options.bug == InjectedBug::kUnionDropTuple && b.size() > 0) {
        GeneralizedRelation dropped(b.schema());
        for (std::int64_t i = 0; i + 1 < b.size(); ++i) {
          ITDB_RETURN_IF_ERROR(
              dropped.AddTuple(b.tuples()[static_cast<std::size_t>(i)]));
        }
        b = std::move(dropped);
      }
      return ::itdb::Union(a, b, options.algebra);
    }
    case Expr::Kind::kIntersect: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation b,
                            EvalExpr(e->right, db, options));
      return ::itdb::Intersect(a, b, options.algebra);
    }
    case Expr::Kind::kSubtract: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation b,
                            EvalExpr(e->right, db, options));
      return ::itdb::Subtract(a, b, options.algebra);
    }
    case Expr::Kind::kJoin: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation b,
                            EvalExpr(e->right, db, options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation j,
                            ::itdb::Join(a, b, options.algebra));
      if (options.bug == InjectedBug::kJoinDropConstraint) {
        GeneralizedRelation buggy(j.schema());
        for (const GeneralizedTuple& t : j.tuples()) {
          GeneralizedTuple free = t.FreeExtension();
          ITDB_RETURN_IF_ERROR(buggy.AddTuple(std::move(free)));
        }
        return buggy;
      }
      return j;
    }
    case Expr::Kind::kComplement: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      return ::itdb::Complement(a, options.algebra);
    }
    case Expr::Kind::kProject: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      return ::itdb::Project(a, e->attrs, options.algebra);
    }
    case Expr::Kind::kSelect: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      return ::itdb::SelectTemporal(a, e->cond, options.algebra);
    }
    case Expr::Kind::kSelectData: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      return ::itdb::SelectData(a, e->data_col, e->data_op, e->data_value);
    }
    case Expr::Kind::kShift: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a,
                            EvalExpr(e->left, db, options));
      std::int64_t delta = e->shift_delta;
      if (options.bug == InjectedBug::kShiftOffByOne) delta += 1;
      return ::itdb::ShiftTemporalColumn(a, e->shift_col, delta);
    }
  }
  return Status::InvalidArgument("EvalExpr: corrupt expression node");
}

// ---------------------------------------------------------------------------
// Evaluation through the finite baseline.

namespace {

/// Witness-distance slack for projection (see FiniteEval in the header).
/// A projected row is only trusted this far from the child's window edge:
/// if the true extension contains a row there, some witness for it lies
/// within the child window, because generated constraint bounds, periods
/// and shift deltas are all far smaller than this.
constexpr std::int64_t kProjectWitnessSlack = 16;

Status CheckRows(const FiniteRelation& r, std::int64_t max_rows,
                 const char* what) {
  if (r.size() > max_rows) {
    return Status::ResourceExhausted(
        std::string("EvalExprFinite: ") + what + " exceeds " +
        std::to_string(max_rows) + " rows");
  }
  return Status::Ok();
}

/// Drops rows with any temporal coordinate outside [vlo, vhi] -- the
/// possibly-garbage boundary rows a window-tracked operand may carry.
FiniteRelation DropOutsideWindow(const FiniteRelation& r, std::int64_t vlo,
                                 std::int64_t vhi) {
  FiniteRelation out(r.schema());
  for (const ConcreteRow& row : r.rows()) {
    bool inside = true;
    for (std::int64_t t : row.temporal) {
      if (t < vlo || t > vhi) {
        inside = false;
        break;
      }
    }
    if (inside) (void)out.AddRow(row);
  }
  return out;
}

FiniteEval Windowed(FiniteRelation rel, std::int64_t vlo, std::int64_t vhi) {
  return FiniteEval{std::move(rel), vlo, vhi};
}

/// Combines two operands' windows for a pointwise operation (membership of
/// a row depends only on that row's membership in each operand).
void MeetWindows(const FiniteEval& a, const FiniteEval& b, std::int64_t* vlo,
                 std::int64_t* vhi) {
  *vlo = std::max(a.valid_lo, b.valid_lo);
  *vhi = std::min(a.valid_hi, b.valid_hi);
}

}  // namespace

Result<FiniteEval> EvalExprFinite(const ExprPtr& e, const Database& db,
                                  std::int64_t lo, std::int64_t hi,
                                  std::int64_t max_rows) {
  Result<FiniteEval> out = [&]() -> Result<FiniteEval> {
    switch (e->kind) {
      case Expr::Kind::kLeaf: {
        ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r, db.Get(e->leaf));
        return Windowed(FiniteRelation::Materialize(r, lo, hi), lo, hi);
      }
      case Expr::Kind::kUnion: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(FiniteEval b,
                              EvalExprFinite(e->right, db, lo, hi, max_rows));
        std::int64_t vlo, vhi;
        MeetWindows(a, b, &vlo, &vhi);
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r,
                              FiniteRelation::Union(a.rel, b.rel));
        return Windowed(std::move(r), vlo, vhi);
      }
      case Expr::Kind::kIntersect: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(FiniteEval b,
                              EvalExprFinite(e->right, db, lo, hi, max_rows));
        std::int64_t vlo, vhi;
        MeetWindows(a, b, &vlo, &vhi);
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r,
                              FiniteRelation::Intersect(a.rel, b.rel));
        return Windowed(std::move(r), vlo, vhi);
      }
      case Expr::Kind::kSubtract: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(FiniteEval b,
                              EvalExprFinite(e->right, db, lo, hi, max_rows));
        std::int64_t vlo, vhi;
        MeetWindows(a, b, &vlo, &vhi);
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r,
                              FiniteRelation::Subtract(a.rel, b.rel));
        return Windowed(std::move(r), vlo, vhi);
      }
      case Expr::Kind::kJoin: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(FiniteEval b,
                              EvalExprFinite(e->right, db, lo, hi, max_rows));
        // The nested-loop baseline join is quadratic; bound the work, not
        // just the output.
        if (a.rel.size() > 0 && b.rel.size() > max_rows / a.rel.size()) {
          return Status::ResourceExhausted(
              "EvalExprFinite: join operand product exceeds " +
              std::to_string(max_rows));
        }
        std::int64_t vlo, vhi;
        MeetWindows(a, b, &vlo, &vhi);
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r,
                              FiniteRelation::Join(a.rel, b.rel));
        return Windowed(std::move(r), vlo, vhi);
      }
      case Expr::Kind::kComplement: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        if (a.rel.schema().data_arity() > 0) {
          return Status::Unimplemented(
              "EvalExprFinite: complement over data attributes");
        }
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r, a.rel.Complement(lo, hi, {}));
        return Windowed(std::move(r), a.valid_lo, a.valid_hi);
      }
      case Expr::Kind::kProject: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        // Garbage rows outside the child's window would act as spurious
        // projection witnesses; drop them before projecting.
        FiniteRelation trusted =
            DropOutsideWindow(a.rel, a.valid_lo, a.valid_hi);
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r, trusted.Project(e->attrs));
        return Windowed(std::move(r), a.valid_lo + kProjectWitnessSlack,
                        a.valid_hi - kProjectWitnessSlack);
      }
      case Expr::Kind::kSelect: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(FiniteRelation r,
                              a.rel.SelectTemporal(e->cond));
        return Windowed(std::move(r), a.valid_lo, a.valid_hi);
      }
      case Expr::Kind::kSelectData: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(
            FiniteRelation r,
            a.rel.SelectData(e->data_col, e->data_op, e->data_value));
        return Windowed(std::move(r), a.valid_lo, a.valid_hi);
      }
      case Expr::Kind::kShift: {
        ITDB_ASSIGN_OR_RETURN(FiniteEval a,
                              EvalExprFinite(e->left, db, lo, hi, max_rows));
        ITDB_ASSIGN_OR_RETURN(
            FiniteRelation r,
            a.rel.ShiftTemporalColumn(e->shift_col, e->shift_delta));
        // The shifted column is exact on the translated window, the other
        // columns on the original one; meet conservatively.
        return Windowed(std::move(r),
                        a.valid_lo + std::max<std::int64_t>(e->shift_delta, 0),
                        a.valid_hi + std::min<std::int64_t>(e->shift_delta, 0));
      }
    }
    return Status::InvalidArgument("EvalExprFinite: corrupt expression node");
  }();
  if (!out.ok()) return out;
  ITDB_RETURN_IF_ERROR(CheckRows(out.value().rel, max_rows, "intermediate"));
  return out;
}

// ---------------------------------------------------------------------------
// Schema inference.

Result<Schema> InferSchema(const ExprPtr& e, const Database& db) {
  switch (e->kind) {
    case Expr::Kind::kLeaf: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r, db.Get(e->leaf));
      return r.schema();
    }
    case Expr::Kind::kUnion:
    case Expr::Kind::kIntersect:
    case Expr::Kind::kSubtract: {
      ITDB_ASSIGN_OR_RETURN(Schema a, InferSchema(e->left, db));
      ITDB_ASSIGN_OR_RETURN(Schema b, InferSchema(e->right, db));
      if (a != b) {
        return Status::InvalidArgument("InferSchema: operand schema mismatch");
      }
      return a;
    }
    case Expr::Kind::kJoin: {
      // Mirrors the algebra's Join: a's attributes, then b's new ones.
      ITDB_ASSIGN_OR_RETURN(Schema a, InferSchema(e->left, db));
      ITDB_ASSIGN_OR_RETURN(Schema b, InferSchema(e->right, db));
      std::vector<std::string> temporal = a.temporal_names();
      for (const std::string& n : b.temporal_names()) {
        if (!a.FindTemporal(n).has_value()) temporal.push_back(n);
      }
      std::vector<std::string> data = a.data_names();
      std::vector<DataType> types = a.data_types();
      for (int j = 0; j < b.data_arity(); ++j) {
        if (!a.FindData(b.data_name(j)).has_value()) {
          data.push_back(b.data_name(j));
          types.push_back(b.data_type(j));
        }
      }
      return Schema(std::move(temporal), std::move(data), std::move(types));
    }
    case Expr::Kind::kComplement:
    case Expr::Kind::kSelect:
    case Expr::Kind::kSelectData:
    case Expr::Kind::kShift:
      return InferSchema(e->left, db);
    case Expr::Kind::kProject: {
      ITDB_ASSIGN_OR_RETURN(Schema a, InferSchema(e->left, db));
      std::vector<std::string> temporal;
      std::vector<std::string> data;
      std::vector<DataType> types;
      for (const std::string& n : e->attrs) {
        if (a.FindTemporal(n).has_value()) {
          temporal.push_back(n);
        } else if (std::optional<int> d = a.FindData(n)) {
          data.push_back(n);
          types.push_back(a.data_type(*d));
        } else {
          return Status::NotFound("InferSchema: unknown attribute \"" + n +
                                  "\"");
        }
      }
      return Schema(std::move(temporal), std::move(data), std::move(types));
    }
  }
  return Status::InvalidArgument("InferSchema: corrupt expression node");
}

// ---------------------------------------------------------------------------
// Parsing.

namespace {

/// Parses "X<k>" (1-based) into a 0-based column index.
Result<int> ParseColumnRef(TokenStream& ts, char prefix) {
  ITDB_ASSIGN_OR_RETURN(std::string name, ts.ExpectIdent());
  if (name.size() < 2 || name[0] != prefix) {
    return ts.ErrorHere(std::string("expected ") + prefix +
                        "<k> column reference");
  }
  int idx = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return ts.ErrorHere("bad column reference \"" + name + "\"");
    }
    idx = idx * 10 + (name[i] - '0');
  }
  if (idx < 1) return ts.ErrorHere("column references are 1-based");
  return idx - 1;
}

Result<CmpOp> ParseCmpOp(TokenStream& ts) {
  if (ts.TrySymbol("<=")) return CmpOp::kLe;
  if (ts.TrySymbol(">=")) return CmpOp::kGe;
  if (ts.TrySymbol("!=")) return CmpOp::kNe;
  if (ts.TrySymbol("=")) return CmpOp::kEq;
  if (ts.TrySymbol("<")) return CmpOp::kLt;
  if (ts.TrySymbol(">")) return CmpOp::kGt;
  return ts.ErrorHere("expected comparison operator");
}

Result<ExprPtr> ParseExprNode(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(std::string head, ts.ExpectIdent());
  // A leaf is any identifier not followed by '('.
  if (!(ts.Peek().kind == TokenKind::kSymbol && ts.Peek().text == "(")) {
    return Expr::Leaf(std::move(head));
  }
  ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("("));
  auto binary = [&](ExprPtr (*make)(ExprPtr, ExprPtr)) -> Result<ExprPtr> {
    ITDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    ITDB_ASSIGN_OR_RETURN(ExprPtr b, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return make(std::move(a), std::move(b));
  };
  if (head == "union") return binary(&Expr::Union);
  if (head == "intersect") return binary(&Expr::Intersect);
  if (head == "subtract") return binary(&Expr::Subtract);
  if (head == "join") return binary(&Expr::Join);
  if (head == "complement") {
    ITDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return Expr::Complement(std::move(a));
  }
  if (head == "project") {
    ITDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("["));
    std::vector<std::string> attrs;
    if (!ts.TrySymbol("]")) {
      do {
        ITDB_ASSIGN_OR_RETURN(std::string attr, ts.ExpectIdent());
        attrs.push_back(std::move(attr));
      } while (ts.TrySymbol(","));
      ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("]"));
    }
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return Expr::Project(std::move(a), std::move(attrs));
  }
  if (head == "select") {
    ITDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    TemporalCondition cond;
    ITDB_ASSIGN_OR_RETURN(cond.lhs, ParseColumnRef(ts, 'X'));
    ITDB_ASSIGN_OR_RETURN(cond.op, ParseCmpOp(ts));
    if (ts.Peek().kind == TokenKind::kIdent) {
      ITDB_ASSIGN_OR_RETURN(cond.rhs, ParseColumnRef(ts, 'X'));
      if (ts.TrySymbol("+")) {
        ITDB_ASSIGN_OR_RETURN(cond.c, ts.ExpectInt());
      } else if (ts.TrySymbol("-")) {
        ITDB_ASSIGN_OR_RETURN(std::int64_t c, ts.ExpectInt());
        cond.c = -c;
      }
    } else {
      cond.rhs = kZeroVar;
      ITDB_ASSIGN_OR_RETURN(cond.c, ts.ExpectInt());
    }
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return Expr::Select(std::move(a), cond);
  }
  if (head == "selectdata") {
    ITDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    ITDB_ASSIGN_OR_RETURN(int col, ParseColumnRef(ts, 'D'));
    ITDB_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp(ts));
    Value value;
    if (ts.Peek().kind == TokenKind::kString) {
      value = Value(ts.Next().text);
    } else {
      ITDB_ASSIGN_OR_RETURN(std::int64_t v, ts.ExpectInt());
      value = Value(v);
    }
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return Expr::SelectData(std::move(a), col, op, std::move(value));
  }
  if (head == "shift") {
    ITDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExprNode(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    ITDB_ASSIGN_OR_RETURN(int col, ParseColumnRef(ts, 'X'));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    ITDB_ASSIGN_OR_RETURN(std::int64_t delta, ts.ExpectInt());
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return Expr::Shift(std::move(a), col, delta);
  }
  return ts.ErrorHere("unknown operator \"" + head + "\"");
}

}  // namespace

Result<ExprPtr> ParseExpr(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  ITDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExprNode(ts));
  if (!ts.AtEnd()) return ts.ErrorHere("trailing input after expression");
  return e;
}

}  // namespace fuzz
}  // namespace itdb
