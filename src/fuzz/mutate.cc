#include "fuzz/mutate.h"

#include <utility>

namespace itdb {
namespace fuzz {

namespace {

/// Whether complement(e) is cheap enough to introduce: purely temporal,
/// arity <= 2 (the A.6 residue universe is k^m).
bool ComplementableSchema(const Schema& s) {
  return s.data_arity() == 0 && s.temporal_arity() >= 1 &&
         s.temporal_arity() <= 2;
}

/// All attribute names of `s`, temporal first -- the identity projection.
std::vector<std::string> AllAttrs(const Schema& s) {
  std::vector<std::string> attrs = s.temporal_names();
  for (const std::string& n : s.data_names()) attrs.push_back(n);
  return attrs;
}

/// Rewrites applicable at the root of `e` (not inside it).  The two
/// term-growing rules (double-complement introduction, union idempotence)
/// only fire when `at_root`: applied at arbitrary depth they would multiply
/// the cost of every enclosing operator.
Status LocalRewrites(const ExprPtr& e, const Database& db, bool at_root,
                     std::vector<Rewrite>* out) {
  ITDB_ASSIGN_OR_RETURN(Schema schema, InferSchema(e, db));

  if (at_root) {
    // Complement-introduction: r = not(not(r)).
    if (ComplementableSchema(schema)) {
      out->push_back({"double-complement",
                      Expr::Complement(Expr::Complement(e))});
    }
    // Union idempotence: r = r U r.
    out->push_back({"union-idempotent", Expr::Union(e, e)});
  }

  switch (e->kind) {
    case Expr::Kind::kUnion:
      out->push_back({"union-commute", Expr::Union(e->right, e->left)});
      if (e->left->kind == Expr::Kind::kUnion) {
        out->push_back(
            {"union-assoc",
             Expr::Union(e->left->left,
                         Expr::Union(e->left->right, e->right))});
      }
      break;
    case Expr::Kind::kIntersect:
      out->push_back({"intersect-commute",
                      Expr::Intersect(e->right, e->left)});
      if (e->left->kind == Expr::Kind::kIntersect) {
        out->push_back(
            {"intersect-assoc",
             Expr::Intersect(e->left->left,
                             Expr::Intersect(e->left->right, e->right))});
      }
      out->push_back(
          {"intersect-as-subtract",
           Expr::Subtract(e->left, Expr::Subtract(e->left, e->right))});
      break;
    case Expr::Kind::kSubtract: {
      ITDB_ASSIGN_OR_RETURN(Schema rschema, InferSchema(e->right, db));
      if (ComplementableSchema(rschema)) {
        out->push_back(
            {"subtract-as-complement",
             Expr::Intersect(e->left, Expr::Complement(e->right))});
      }
      break;
    }
    case Expr::Kind::kJoin:
      // a |x| b = project(b |x| a, attrs of a |x| b).
      out->push_back({"join-commute",
                      Expr::Project(Expr::Join(e->right, e->left),
                                    AllAttrs(schema))});
      if (e->left->kind == Expr::Kind::kJoin) {
        out->push_back(
            {"join-assoc",
             Expr::Join(e->left->left,
                        Expr::Join(e->left->right, e->right))});
      }
      break;
    case Expr::Kind::kComplement:
      if (e->left->kind == Expr::Kind::kComplement) {
        out->push_back({"double-complement", e->left->left});
      }
      if (e->left->kind == Expr::Kind::kUnion) {
        out->push_back(
            {"demorgan-union",
             Expr::Intersect(Expr::Complement(e->left->left),
                             Expr::Complement(e->left->right))});
      }
      if (e->left->kind == Expr::Kind::kIntersect) {
        out->push_back(
            {"demorgan-intersect",
             Expr::Union(Expr::Complement(e->left->left),
                         Expr::Complement(e->left->right))});
      }
      break;
    case Expr::Kind::kProject:
      if (e->left->kind == Expr::Kind::kUnion) {
        out->push_back(
            {"project-pushdown",
             Expr::Union(Expr::Project(e->left->left, e->attrs),
                         Expr::Project(e->left->right, e->attrs))});
      }
      break;
    case Expr::Kind::kSelect: {
      if (e->left->kind == Expr::Kind::kUnion) {
        out->push_back(
            {"select-pushdown",
             Expr::Union(Expr::Select(e->left->left, e->cond),
                         Expr::Select(e->left->right, e->cond))});
      }
      if (e->left->kind == Expr::Kind::kSelect) {
        out->push_back(
            {"select-commute",
             Expr::Select(Expr::Select(e->left->left, e->cond),
                          e->left->cond)});
      }
      if (e->cond.op == CmpOp::kNe) {
        TemporalCondition lt = e->cond;
        lt.op = CmpOp::kLt;
        TemporalCondition gt = e->cond;
        gt.op = CmpOp::kGt;
        out->push_back({"select-split-ne",
                        Expr::Union(Expr::Select(e->left, lt),
                                    Expr::Select(e->left, gt))});
      }
      if (e->cond.op == CmpOp::kLe) {
        TemporalCondition lt = e->cond;
        lt.op = CmpOp::kLt;
        TemporalCondition eq = e->cond;
        eq.op = CmpOp::kEq;
        out->push_back({"select-split-le",
                        Expr::Union(Expr::Select(e->left, lt),
                                    Expr::Select(e->left, eq))});
      }
      break;
    }
    case Expr::Kind::kLeaf:
    case Expr::Kind::kSelectData:
    case Expr::Kind::kShift:
      break;
  }
  return Status::Ok();
}

/// Rebuilds `e` with its left (or right) child replaced.
ExprPtr WithChild(const ExprPtr& e, bool right_child, ExprPtr child) {
  Expr copy = *e;
  if (right_child) {
    copy.right = std::move(child);
  } else {
    copy.left = std::move(child);
  }
  return std::make_shared<const Expr>(std::move(copy));
}

Status Collect(const ExprPtr& e, const Database& db, bool at_root, int limit,
               std::vector<Rewrite>* out) {
  if (static_cast<int>(out->size()) >= limit) return Status::Ok();
  ITDB_RETURN_IF_ERROR(LocalRewrites(e, db, at_root, out));
  if (static_cast<int>(out->size()) > limit) out->resize(limit);

  // Rewrites inside the children, re-wrapped at this node.
  for (bool right_child : {false, true}) {
    const ExprPtr& child = right_child ? e->right : e->left;
    if (!child) continue;
    std::vector<Rewrite> inner;
    ITDB_RETURN_IF_ERROR(Collect(child, db, false, limit, &inner));
    for (Rewrite& r : inner) {
      if (static_cast<int>(out->size()) >= limit) break;
      out->push_back({std::move(r.rule),
                      WithChild(e, right_child, std::move(r.expr))});
    }
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Rewrite>> EnumerateRewrites(const ExprPtr& e,
                                               const Database& db,
                                               int limit) {
  std::vector<Rewrite> out;
  ITDB_RETURN_IF_ERROR(Collect(e, db, true, limit, &out));
  return out;
}

}  // namespace fuzz
}  // namespace itdb
