#include "fuzz/query_gen.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace itdb {
namespace fuzz {

namespace {

using query::Query;
using query::QueryCmp;
using query::QueryPtr;
using query::Term;

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Rng {
  std::uint64_t state;

  std::uint64_t Next() {
    state = SplitMix64(state);
    return state;
  }
  std::uint32_t Below(std::uint32_t n) {
    return n == 0 ? 0 : static_cast<std::uint32_t>(Next() % n);
  }
  bool Percent(int p) { return Below(100) < static_cast<std::uint32_t>(p); }
  std::int64_t IntIn(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

constexpr QueryCmp kAllCmps[] = {QueryCmp::kEq, QueryCmp::kNe, QueryCmp::kLe,
                                 QueryCmp::kLt, QueryCmp::kGe, QueryCmp::kGt};

/// Structural deep copy, so OR branches never share nodes (the analyzer
/// keys proven-empty nodes by pointer identity).
QueryPtr Clone(const QueryPtr& q) {
  switch (q->kind()) {
    case Query::Kind::kAtom:
      return Query::Atom(q->relation(), q->args());
    case Query::Kind::kCmp:
      return Query::Compare(q->lhs(), q->cmp(), q->rhs());
    case Query::Kind::kAnd:
      return Query::And(Clone(q->left()), Clone(q->right()));
    case Query::Kind::kOr:
      return Query::Or(Clone(q->left()), Clone(q->right()));
    case Query::Kind::kNot:
      return Query::Not(Clone(q->left()));
    case Query::Kind::kExists:
      return Query::Exists(q->quantified_var(), Clone(q->left()));
    case Query::Kind::kForall:
      return Query::Forall(q->quantified_var(), Clone(q->left()));
  }
  return q;
}

struct Generator {
  Rng& rng;
  const Database& db;
  const QueryGenConfig& cfg;
  std::vector<std::string> relations;
  // Variables an atom has used so far, by sort (insertion-ordered).
  std::vector<std::string> temporal_vars;
  std::vector<std::string> string_vars;

  std::string PickTemporalVar() {
    // Reuse an existing variable 2/3 of the time (joins need shared vars).
    if (!temporal_vars.empty() && !rng.Percent(33)) {
      return temporal_vars[rng.Below(
          static_cast<std::uint32_t>(temporal_vars.size()))];
    }
    std::string var = "t" + std::to_string(temporal_vars.size());
    temporal_vars.push_back(var);
    return var;
  }

  std::string PickStringVar() {
    if (!string_vars.empty() && !rng.Percent(50)) {
      return string_vars[rng.Below(
          static_cast<std::uint32_t>(string_vars.size()))];
    }
    std::string var = "d" + std::to_string(string_vars.size());
    string_vars.push_back(var);
    return var;
  }

  std::string PickStringConst() { return rng.Percent(50) ? "a" : "b"; }

  QueryPtr MakeAtom() {
    const std::string& name =
        relations[rng.Below(static_cast<std::uint32_t>(relations.size()))];
    Result<GeneralizedRelation> rel = db.Get(name);
    const Schema& schema = rel.value().schema();
    std::vector<Term> args;
    for (int i = 0; i < schema.temporal_arity(); ++i) {
      if (rng.Percent(10)) {
        args.push_back(Term::Int(rng.IntIn(-cfg.const_range, cfg.const_range)));
      } else {
        std::int64_t offset =
            rng.Percent(25) ? rng.IntIn(-cfg.offset_range, cfg.offset_range)
                            : 0;
        args.push_back(Term::Variable(PickTemporalVar(), offset));
      }
    }
    for (int i = 0; i < schema.data_arity(); ++i) {
      if (schema.data_type(i) == DataType::kString) {
        if (rng.Percent(35)) {
          args.push_back(Term::String(PickStringConst()));
        } else {
          args.push_back(Term::Variable(PickStringVar()));
        }
      } else {
        args.push_back(Term::Int(rng.IntIn(-cfg.const_range, cfg.const_range)));
      }
    }
    return Query::Atom(name, std::move(args));
  }

  QueryPtr MakeCmp() {
    if (!string_vars.empty() && rng.Percent(25)) {
      const std::string& var =
          string_vars[rng.Below(static_cast<std::uint32_t>(string_vars.size()))];
      QueryCmp op = rng.Percent(50) ? QueryCmp::kEq : QueryCmp::kNe;
      return Query::Compare(Term::Variable(var), op,
                            Term::String(PickStringConst()));
    }
    if (temporal_vars.empty()) {
      // Ground comparison; sometimes false on purpose.
      std::int64_t a = rng.IntIn(-cfg.const_range, cfg.const_range);
      std::int64_t b = rng.IntIn(-cfg.const_range, cfg.const_range);
      return Query::Compare(Term::Int(a), kAllCmps[rng.Below(6)], Term::Int(b));
    }
    const std::string& a = temporal_vars[rng.Below(
        static_cast<std::uint32_t>(temporal_vars.size()))];
    std::int64_t off = rng.Percent(40)
                           ? rng.IntIn(-cfg.offset_range, cfg.offset_range)
                           : 0;
    QueryCmp op = kAllCmps[rng.Below(6)];
    if (temporal_vars.size() > 1 && rng.Percent(50)) {
      const std::string& b = temporal_vars[rng.Below(
          static_cast<std::uint32_t>(temporal_vars.size()))];
      return Query::Compare(Term::Variable(a, off), op, Term::Variable(b));
    }
    return Query::Compare(Term::Variable(a, off), op,
                          Term::Int(rng.IntIn(-cfg.const_range,
                                              cfg.const_range)));
  }

  /// t > c AND t < c: infeasible by a one-variable DBM argument.
  QueryPtr MakeContradiction() {
    if (temporal_vars.empty() || rng.Percent(30)) {
      return Query::And(
          Query::Compare(Term::Int(3), QueryCmp::kLt, Term::Int(2)),
          Query::Compare(Term::Int(0), QueryCmp::kEq, Term::Int(0)));
    }
    const std::string& var = temporal_vars[rng.Below(
        static_cast<std::uint32_t>(temporal_vars.size()))];
    std::int64_t c = rng.IntIn(-cfg.const_range, cfg.const_range);
    return Query::And(
        Query::Compare(Term::Variable(var), QueryCmp::kGt, Term::Int(c)),
        Query::Compare(Term::Variable(var), QueryCmp::kLt, Term::Int(c)));
  }

  /// One deliberately ill-formed conjunct; the oracle checks that analysis
  /// on/off FAIL consistently, not that they succeed.
  QueryPtr MakeIllFormed() {
    switch (rng.Below(3)) {
      case 0:  // Unknown relation.
        return Query::Atom("Zq", {Term::Variable(PickTemporalVar())});
      case 1:  // Arity mismatch.
        return Query::Atom(relations[0], {Term::Variable(PickTemporalVar()),
                                          Term::Variable(PickTemporalVar()),
                                          Term::Variable(PickTemporalVar()),
                                          Term::Variable(PickTemporalVar())});
      default:  // Mixed constant sorts.
        return Query::Compare(Term::String("a"), QueryCmp::kEq, Term::Int(3));
    }
  }

  QueryPtr Generate() {
    std::vector<QueryPtr> conjuncts;
    int atoms = 1 + static_cast<int>(rng.Below(
                        static_cast<std::uint32_t>(cfg.max_atoms)));
    for (int i = 0; i < atoms; ++i) conjuncts.push_back(MakeAtom());
    int cmps = static_cast<int>(
        rng.Below(static_cast<std::uint32_t>(cfg.max_cmps + 1)));
    for (int i = 0; i < cmps; ++i) conjuncts.push_back(MakeCmp());
    if (rng.Percent(cfg.contradiction_percent)) {
      conjuncts.push_back(MakeContradiction());
    }
    if (rng.Percent(cfg.illformed_percent)) {
      conjuncts.push_back(MakeIllFormed());
    }
    // Occasionally negate one atom conjunct (never the only one).
    if (conjuncts.size() > 1 && rng.Percent(20)) {
      std::size_t i = rng.Below(static_cast<std::uint32_t>(conjuncts.size()));
      conjuncts[i] = Query::Not(std::move(conjuncts[i]));
    }
    QueryPtr out = std::move(conjuncts[0]);
    for (std::size_t i = 1; i < conjuncts.size(); ++i) {
      out = Query::And(std::move(out), std::move(conjuncts[i]));
    }
    // A dead OR branch: a clone of the core conjoined with a contradiction
    // has the same free variables, so the subset condition for elimination
    // holds by construction.
    if (rng.Percent(cfg.dead_branch_percent)) {
      QueryPtr dead = Query::And(Clone(out), MakeContradiction());
      out = rng.Percent(50) ? Query::Or(std::move(out), std::move(dead))
                            : Query::Or(std::move(dead), std::move(out));
    }
    // Quantify a prefix of the variable pools (distinct names: no
    // shadowing by construction).
    int quantifiers = 0;
    std::vector<std::string> candidates = temporal_vars;
    candidates.insert(candidates.end(), string_vars.begin(),
                      string_vars.end());
    std::set<std::string> quantified;
    while (quantifiers < cfg.max_quantifiers && !candidates.empty() &&
           rng.Percent(55)) {
      const std::string var = candidates[rng.Below(
          static_cast<std::uint32_t>(candidates.size()))];
      if (!quantified.insert(var).second) break;
      out = rng.Percent(85) ? Query::Exists(var, std::move(out))
                            : Query::Forall(var, std::move(out));
      ++quantifiers;
    }
    return out;
  }
};

}  // namespace

QueryPtr MakeRandomQuery(std::uint32_t seed, const Database& db,
                         const QueryGenConfig& cfg) {
  Rng rng{SplitMix64(0x51c5a9a3u ^ static_cast<std::uint64_t>(seed))};
  Generator gen{rng, db, cfg, db.Names(), {}, {}};
  if (gen.relations.empty()) {
    return Query::Compare(Term::Int(1), QueryCmp::kEq, Term::Int(1));
  }
  return gen.Generate();
}

}  // namespace fuzz
}  // namespace itdb
