#include "fuzz/query_oracle.h"

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include "analysis/analyzer.h"
#include "core/index.h"
#include "core/simplify.h"
#include "fuzz/generator.h"
#include "fuzz/query_gen.h"
#include "query/eval.h"

namespace itdb {
namespace fuzz {

namespace {

using query::Query;
using query::QueryOptions;
using query::QueryPtr;

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Exact representation equality, the bit-identity contract (same idiom as
/// the algebra oracle).
bool SameRepresentation(const GeneralizedRelation& a,
                        const GeneralizedRelation& b) {
  return a.schema() == b.schema() && a.tuples() == b.tuples();
}

bool IsBudgetFailure(const Status& s) {
  return s.code() == StatusCode::kOverflow ||
         s.code() == StatusCode::kResourceExhausted;
}

struct Variant {
  const char* name;
  bool analyze;
  bool parallel;
  bool cost_plan;
  bool certified_bounds = true;
};

constexpr Variant kVariants[] = {
    {"analyze=off threads=N cost_plan=off", false, true, false},
    {"analyze=on threads=1 cost_plan=off", true, false, false},
    {"analyze=on threads=N cost_plan=off", true, true, false},
    {"analyze=off threads=1 cost_plan=on", false, false, true},
    {"analyze=on threads=N cost_plan=on", true, true, true},
    // Certificate-clamped planning off vs the default-on variants above:
    // clamping may only change join ORDER, never the representation.
    {"analyze=on threads=1 cost_plan=on certified_bounds=off", true, false,
     true, false},
};

QueryOptions MakeOptions(bool analyze, bool parallel, bool cost_plan,
                         int threads, bool certified_bounds = true) {
  QueryOptions options;
  options.analyze = analyze;
  options.algebra.threads = parallel ? threads : 1;
  options.cost_plan = cost_plan;
  options.certified_bounds = certified_bounds;
  return options;
}

/// Pre-order walk collecting the subplans the analyzer proved empty, in a
/// deterministic order (the pointer set itself iterates by address).
void CollectProvenEmpty(const QueryPtr& q,
                        const std::set<const Query*>& proven,
                        std::vector<QueryPtr>* out) {
  if (proven.count(q.get()) > 0) out->push_back(q);
  switch (q->kind()) {
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CollectProvenEmpty(q->left(), proven, out);
      CollectProvenEmpty(q->right(), proven, out);
      break;
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      CollectProvenEmpty(q->left(), proven, out);
      break;
    default:
      break;
  }
}

}  // namespace

QueryCaseOutcome CheckQueryCase(const Database& db, const QueryPtr& q,
                                const QueryOracleOptions& options) {
  QueryCaseOutcome outcome;

  // --- Oracle 1: the analyze/threads/cost_plan matrix vs the baseline. ---
  Result<GeneralizedRelation> baseline =
      EvalQuery(db, q, MakeOptions(/*analyze=*/false, /*parallel=*/false,
                                   /*cost_plan=*/false, options.threads));
  if (!baseline.ok() && IsBudgetFailure(baseline.status())) {
    outcome.skipped = true;
    outcome.skip_reason = "baseline over budget: " +
                          baseline.status().ToString();
    return outcome;
  }
  for (const Variant& v : kVariants) {
    Result<GeneralizedRelation> got = EvalQuery(
        db, q,
        MakeOptions(v.analyze, v.parallel, v.cost_plan, options.threads,
                    v.certified_bounds));
    ++outcome.variants_checked;
    // Planned and written join orders can exhaust resource budgets
    // differently (the documented exception in query/planner.h): a budget
    // failure on either side of a cost_plan-differing comparison is a skip,
    // the same convention as a baseline over budget.
    if (v.cost_plan && baseline.ok() != got.ok() &&
        IsBudgetFailure((baseline.ok() ? got : baseline).status())) {
      --outcome.variants_checked;
      continue;
    }
    if (baseline.ok() != got.ok()) {
      std::ostringstream os;
      os << v.name << ": baseline "
         << (baseline.ok() ? "succeeded" : "failed") << " but variant "
         << (got.ok() ? "succeeded: did analysis change the result?"
                      : "failed: " + got.status().ToString());
      outcome.failure = os.str();
      return outcome;
    }
    if (!baseline.ok()) {
      if (v.cost_plan &&
          baseline.status().code() != got.status().code() &&
          IsBudgetFailure(got.status())) {
        --outcome.variants_checked;
        continue;  // Same budget-divergence skip as above.
      }
      if (baseline.status().code() != got.status().code()) {
        std::ostringstream os;
        os << v.name << ": status code diverged: baseline "
           << baseline.status().ToString() << " vs "
           << got.status().ToString();
        outcome.failure = os.str();
        return outcome;
      }
      continue;
    }
    if (!SameRepresentation(*baseline, *got)) {
      std::ostringstream os;
      os << v.name << ": representation diverged from baseline: "
         << baseline->size() << " vs " << got->size() << " tuples";
      outcome.failure = os.str();
      return outcome;
    }
  }

  // --- Oracle 2: proven-empty subplans must evaluate to empty. ---
  analysis::AnalysisResult analyzed = analysis::Analyze(db, q);
  if (analyzed.HasErrors()) return outcome;
  std::vector<QueryPtr> empties;
  CollectProvenEmpty(q, analyzed.proven_empty, &empties);
  for (const QueryPtr& node : empties) {
    if (outcome.empties_checked + outcome.empties_skipped >=
        options.max_empty_checks) {
      break;
    }
    // Standalone evaluation: enclosing quantified variables become free.
    // Sort inference can legitimately fail out of context; that is a skip,
    // not a finding.
    Result<GeneralizedRelation> sub = EvalQuery(
        db, node,
        MakeOptions(/*analyze=*/false, /*parallel=*/false,
                    /*cost_plan=*/false, options.threads));
    if (!sub.ok()) {
      ++outcome.empties_skipped;
      continue;
    }
    // Exact emptiness: normalize away tuples with empty extensions first.
    Result<GeneralizedRelation> simplified = Simplify(*sub);
    if (!simplified.ok()) {
      ++outcome.empties_skipped;
      continue;
    }
    ++outcome.empties_checked;
    if (!simplified->tuples().empty()) {
      std::ostringstream os;
      os << "proven-empty subplan is nonempty: " << node->ToString()
         << " has " << simplified->size() << " tuple(s)";
      outcome.failure = os.str();
      return outcome;
    }
  }

  // --- Oracle 3: the root certificate bounds the plain evaluation. ---
  // The certificate was computed for the analyzed tree, so the check
  // evaluates exactly that tree: analyze / optimize / cost_plan all off.
  const analysis::Certificate& cert = analyzed.root_certificate;
  if (cert.rows.has_value() || cert.lcm.has_value() || !cert.hull.empty()) {
    QueryOptions plain = MakeOptions(/*analyze=*/false, /*parallel=*/false,
                                     /*cost_plan=*/false, options.threads);
    plain.optimize = false;
    Result<GeneralizedRelation> got = EvalQuery(db, q, plain);
    if (got.ok()) {
      ++outcome.certificates_checked;
      if (cert.rows.has_value() &&
          static_cast<std::int64_t>(got->size()) > *cert.rows) {
        std::ostringstream os;
        os << "cardinality certificate violated: result has " << got->size()
           << " tuple(s), certified <= " << *cert.rows;
        outcome.failure = os.str();
        return outcome;
      }
      if (cert.lcm.has_value()) {
        for (const GeneralizedTuple& t : got->tuples()) {
          for (const Lrp& lrp : t.temporal()) {
            if (lrp.period() > 0 && *cert.lcm % lrp.period() != 0) {
              std::ostringstream os;
              os << "period certificate violated: lrp period "
                 << lrp.period() << " does not divide certified lcm "
                 << *cert.lcm;
              outcome.failure = os.str();
              return outcome;
            }
          }
        }
      }
      if (!cert.hull.empty()) {
        // The feasible per-column hull of the result must lie inside every
        // certified interval (an empty certified interval means the result
        // must have no feasible tuples at all).  Aggregated per tuple:
        // infeasible tuples denote {}, and so does any tuple whose
        // singleton lrp falls outside its own DBM bounds on some column --
        // neither contributes feasible values.
        const std::vector<std::string>& names =
            got->schema().temporal_names();
        const std::size_t m = names.size();
        std::vector<std::int64_t> lo(m, Dbm::kInf);
        std::vector<std::int64_t> hi(m, -Dbm::kInf);
        bool any_feasible = false;
        for (const GeneralizedTuple& t : got->tuples()) {
          TemporalHull h = TemporalHull::Of(t);
          if (h.infeasible) continue;
          std::vector<std::int64_t> tlo(m), thi(m);
          bool tuple_empty = false;
          for (std::size_t i = 0; i < m; ++i) {
            std::int64_t l = h.usable() ? h.lo[i] : -Dbm::kInf;
            std::int64_t r = h.usable() ? h.hi[i] : Dbm::kInf;
            const Lrp& lrp = t.lrp(static_cast<int>(i));
            if (lrp.period() == 0) {
              l = std::max(l, lrp.offset());
              r = std::min(r, lrp.offset());
            }
            if (l > r) {
              tuple_empty = true;
              break;
            }
            tlo[i] = l;
            thi[i] = r;
          }
          if (tuple_empty) continue;
          any_feasible = true;
          for (std::size_t i = 0; i < m; ++i) {
            lo[i] = std::min(lo[i], tlo[i]);
            hi[i] = std::max(hi[i], thi[i]);
          }
        }
        if (any_feasible) {
          for (std::size_t i = 0; i < m; ++i) {
            auto it = cert.hull.find(names[i]);
            if (it == cert.hull.end()) continue;
            if (lo[i] < it->second.lo || hi[i] > it->second.hi) {
              std::ostringstream os;
              os << "hull certificate violated: column \"" << names[i]
                 << "\" spans [" << lo[i] << ", " << hi[i]
                 << "], certified "
                 << analysis::FormatInterval(it->second);
              outcome.failure = os.str();
              return outcome;
            }
          }
        }
      }
    }
  }
  return outcome;
}

QueryPtr ShrinkFailingQuery(const Database& db, QueryPtr q,
                            const QueryOracleOptions& options) {
  // Bounded descent: each round tries the direct subtrees in order and
  // recurses into the first that still fails.  The bound only guards
  // against pathological depth; real queries shrink in a handful of steps.
  for (int round = 0; round < 64; ++round) {
    std::vector<QueryPtr> children;
    switch (q->kind()) {
      case Query::Kind::kAnd:
      case Query::Kind::kOr:
        children = {q->left(), q->right()};
        break;
      case Query::Kind::kNot:
      case Query::Kind::kExists:
      case Query::Kind::kForall:
        children = {q->left()};
        break;
      default:
        return q;
    }
    QueryPtr next;
    for (const QueryPtr& child : children) {
      if (CheckQueryCase(db, child, options).failure.has_value()) {
        next = child;
        break;
      }
    }
    if (next == nullptr) return q;
    q = std::move(next);
  }
  return q;
}

std::string QueryFuzzReport::Summary() const {
  std::ostringstream os;
  os << "query fuzz: " << cases << " case(s), " << skipped << " skipped, "
     << variants_checked << " variant check(s), " << empties_checked
     << " emptiness check(s) (" << empties_skipped << " skipped), "
     << certificates_checked << " certificate check(s), " << failures.size()
     << " failure(s)";
  return os.str();
}

QueryFuzzReport RunQueryFuzz(const QueryFuzzConfig& config) {
  QueryFuzzReport report;
  const std::uint64_t stream = SplitMix64(config.seed);
  for (int i = 0; i < config.cases; ++i) {
    const std::uint64_t case_seed =
        SplitMix64(stream + static_cast<std::uint64_t>(i));
    const auto db_seed = static_cast<std::uint32_t>(case_seed);
    const auto query_seed = static_cast<std::uint32_t>(case_seed >> 32);
    Database db = MakeRandomDatabase(db_seed, config.database);
    QueryPtr q = MakeRandomQuery(query_seed, db, config.query);
    QueryCaseOutcome outcome = CheckQueryCase(db, q, config.oracle);
    ++report.cases;
    if (outcome.skipped) ++report.skipped;
    report.variants_checked += outcome.variants_checked;
    report.empties_checked += outcome.empties_checked;
    report.empties_skipped += outcome.empties_skipped;
    report.certificates_checked += outcome.certificates_checked;
    if (outcome.failure.has_value()) {
      QueryFuzzFailure f;
      f.case_seed = case_seed;
      f.description = *outcome.failure;
      f.query = q->ToString();
      QueryPtr shrunk = ShrinkFailingQuery(db, q, config.oracle);
      f.shrunk_query = shrunk->ToString();
      QueryCaseOutcome small = CheckQueryCase(db, shrunk, config.oracle);
      f.shrunk_description =
          small.failure.has_value() ? *small.failure : *outcome.failure;
      f.database = db.ToText();
      report.failures.push_back(std::move(f));
      if (static_cast<int>(report.failures.size()) >= config.max_failures) {
        break;
      }
    }
  }
  return report;
}

}  // namespace fuzz
}  // namespace itdb
