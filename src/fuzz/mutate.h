// Metamorphic rewrites: paper-sound equivalent-expression transformations
// (the EET technique applied to the Section 3 algebra).
//
// Every rule rewrites an expression into one that denotes the SAME set of
// concrete rows over the infinite extension, with the SAME output schema.
// The metamorphic oracle evaluates original and rewrite through the engine
// and requires equivalence (symbolically via Equivalent(), i.e. both
// directions of the Section 3.3/Theorem 3.5 subset test on coalesced
// normal forms, plus a window materialization cross-check).
//
// Identity list (citations refer to the paper):
//   double-complement        r = not(not(r))                  (A.6 closure)
//   demorgan-union           not(a U b) = not(a) ^ not(b)     (boolean alg.)
//   demorgan-intersect       not(a ^ b) = not(a) U not(b)
//   union-commute            a U b = b U a                    (3.1)
//   intersect-commute        a ^ b = b ^ a                    (3.2)
//   join-commute             a |x| b = project(b |x| a, attrs(a |x| b))
//   union-assoc              (a U b) U c = a U (b U c)
//   intersect-assoc          (a ^ b) ^ c = a ^ (b ^ c)
//   join-assoc               (a |x| b) |x| c = a |x| (b |x| c)
//   union-idempotent         r = r U r                        (3.1)
//   project-pushdown         project(a U b) = project(a) U project(b)  (3.4)
//   select-pushdown          select(a U b) = select(a) U select(b)     (3.5)
//   select-split-ne          sel[X != t] r = sel[X < t] r U sel[X > t] r
//                            (the paper's kNe disjunction-splitting, 3.5)
//   select-split-le          sel[X <= t] r = sel[X < t] r U sel[X = t] r
//   select-commute           sel[c1] sel[c2] r = sel[c2] sel[c1] r
//   intersect-as-subtract    a ^ b = a - (a - b)              (3.3)
//   subtract-as-complement   a - b = a ^ not(b)               (3.3, Fig. 1)

#ifndef ITDB_FUZZ_MUTATE_H_
#define ITDB_FUZZ_MUTATE_H_

#include <string>
#include <vector>

#include "fuzz/expr.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {

struct Rewrite {
  std::string rule;  // Identity name from the list above.
  ExprPtr expr;      // Whole rewritten expression.
};

/// All single-step rewrites of `e`, at any position in the tree, capped at
/// `limit`.  Complement-introducing rules are only applied to purely
/// temporal subexpressions of arity <= 2 (complement cost is exponential in
/// the arity).  `db` supplies leaf schemas for those applicability checks.
Result<std::vector<Rewrite>> EnumerateRewrites(const ExprPtr& e,
                                               const Database& db,
                                               int limit = 64);

}  // namespace fuzz
}  // namespace itdb

#endif  // ITDB_FUZZ_MUTATE_H_
