#include "fuzz/oracle.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>
#include <utility>
#include <vector>

#include "core/normalize_cache.h"
#include "fuzz/mutate.h"

namespace itdb {
namespace fuzz {

namespace {

/// Budget-class failures degrade a check into a counted skip; anything else
/// is a real answer (or a real bug).
bool IsBudgetError(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kOverflow;
}

std::string DescribeRows(const std::vector<ConcreteRow>& rows,
                         std::size_t max_shown = 4) {
  std::ostringstream os;
  os << rows.size() << " rows";
  if (!rows.empty()) {
    os << " {";
    for (std::size_t i = 0; i < rows.size() && i < max_shown; ++i) {
      if (i > 0) os << ", ";
      os << rows[i].ToString();
    }
    if (rows.size() > max_shown) os << ", ...";
    os << "}";
  }
  return os.str();
}

/// First row present in `a` but not `b` (both sorted), if any.
const ConcreteRow* FirstMissing(const std::vector<ConcreteRow>& a,
                                const std::vector<ConcreteRow>& b) {
  for (const ConcreteRow& row : a) {
    if (!std::binary_search(b.begin(), b.end(), row)) return &row;
  }
  return nullptr;
}

std::string DiffRows(const std::vector<ConcreteRow>& expected,
                     const std::vector<ConcreteRow>& actual) {
  std::ostringstream os;
  os << "expected " << DescribeRows(expected) << "; got "
     << DescribeRows(actual);
  if (const ConcreteRow* m = FirstMissing(expected, actual)) {
    os << "; missing " << m->ToString();
  }
  if (const ConcreteRow* e = FirstMissing(actual, expected)) {
    os << "; extra " << e->ToString();
  }
  return os.str();
}

/// Rows of `fin` whose temporal coordinates all lie in [-w, w], sorted
/// (input is already sorted; filtering preserves order).
std::vector<ConcreteRow> RestrictToWindow(const FiniteRelation& fin,
                                          std::int64_t w) {
  std::vector<ConcreteRow> out;
  for (const ConcreteRow& row : fin.rows()) {
    bool inside = true;
    for (std::int64_t t : row.temporal) {
      if (t < -w || t > w) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(row);
  }
  return out;
}

/// Exact representation equality: schema plus tuple sequence.  This is the
/// determinism contract -- bit-identical output, not just equivalence.
bool SameRepresentation(const GeneralizedRelation& a,
                        const GeneralizedRelation& b) {
  return a.schema() == b.schema() && a.tuples() == b.tuples();
}

struct EvalConfig {
  const char* name;
  int threads;
  bool cache;
  bool index;
  /// Flat layout: batched-slab normalization sweep (NormalizeOptions::batch)
  /// plus columnar hoisting in the indexed kernels
  /// (AlgebraOptions::use_columnar).  false = legacy per-tuple layout.
  bool flat_layout;
};

}  // namespace

CaseOutcome CheckCase(const Database& db, const ExprPtr& expr,
                      const OracleOptions& options,
                      std::uint32_t mutant_seed) {
  CaseOutcome outcome;

  EvalExprOptions eval;
  eval.algebra = options.algebra;
  eval.algebra.threads = 1;
  eval.algebra.normalize_cache = nullptr;
  eval.algebra.use_index = false;
  eval.algebra.use_columnar = false;
  eval.algebra.normalize.batch = false;
  eval.bug = options.bug;

  // ---- Reference evaluation: 1 thread, no memo-cache, naive kernels,
  // legacy (per-tuple) layout. ----
  Result<GeneralizedRelation> ref = EvalExpr(expr, db, eval);
  if (!ref.ok()) {
    if (IsBudgetError(ref.status())) {
      outcome.skipped = true;
      outcome.skip_reason = ref.status().ToString();
      return outcome;
    }
    outcome.failure = {"differential", "",
                       "reference evaluation failed: " + ref.status().ToString(),
                       nullptr};
    return outcome;
  }

  // ---- Determinism matrix: {1, N} threads x {off, on} memo-cache x
  // {naive, indexed} kernels x {legacy, flat} layout.  The indexed configs
  // pin the bit-identity contract of the hash-partitioned Join / Intersect /
  // Subtract kernels with prefilters and incremental closures; the flat
  // configs pin the batched-slab normalization sweep and the columnar /
  // arena hoisting against the legacy per-tuple layout.  Indexed budgets
  // charge candidate pairs, a lower bound of the naive raw product, so an
  // indexed config can never exhaust a budget the naive reference
  // survived. ----
  const EvalConfig configs[] = {
      {"threads=N cache=off index=naive layout=legacy", options.threads, false,
       false, false},
      {"threads=1 cache=off index=naive layout=flat", 1, false, false, true},
      {"threads=1 cache=off index=on layout=legacy", 1, false, true, false},
      {"threads=N cache=off index=on layout=flat", options.threads, false,
       true, true},
      {"threads=1 cache=on index=on layout=flat", 1, true, true, true},
      {"threads=N cache=on index=on layout=flat", options.threads, true, true,
       true},
  };
  for (const EvalConfig& cfg : configs) {
    NormalizeCache cache;
    EvalExprOptions alt = eval;
    alt.algebra.threads = cfg.threads;
    alt.algebra.normalize_cache = cfg.cache ? &cache : nullptr;
    alt.algebra.use_index = cfg.index;
    alt.algebra.use_columnar = cfg.flat_layout;
    alt.algebra.normalize.batch = cfg.flat_layout;
    Result<GeneralizedRelation> got = EvalExpr(expr, db, alt);
    if (!got.ok()) {
      outcome.failure = {"determinism", "",
                         std::string(cfg.name) + " failed where reference "
                         "succeeded: " + got.status().ToString(),
                         nullptr};
      return outcome;
    }
    if (!SameRepresentation(*ref, *got)) {
      std::ostringstream os;
      os << cfg.name << " diverged from reference: " << ref->size()
         << " vs " << got->size() << " tuples";
      outcome.failure = {"determinism", "", os.str(), nullptr};
      return outcome;
    }
  }

  // ---- Differential: engine vs finite baseline on the inner window. ----
  const std::vector<ConcreteRow> engine_rows =
      FiniteRelation::Materialize(*ref, -options.inner_window,
                                  options.inner_window)
          .rows();
  bool diff_checked = false;
  for (std::int64_t outer : {options.outer_window, 2 * options.outer_window}) {
    const bool last = outer != options.outer_window;
    Result<FiniteEval> fin =
        EvalExprFinite(expr, db, -outer, outer, options.max_finite_rows);
    if (!fin.ok()) {
      if (IsBudgetError(fin.status())) break;  // Skip; counted below.
      outcome.failure = {"differential", "",
                         "finite baseline failed: " + fin.status().ToString(),
                         nullptr};
      return outcome;
    }
    // The baseline is only exact inside its validity window; when shifts /
    // projections shrank it below the comparison window, retry with the
    // doubled materialization window (the validity window grows with it)
    // and skip if that is still not enough.
    if (fin->valid_lo > -options.inner_window ||
        fin->valid_hi < options.inner_window) {
      continue;
    }
    diff_checked = true;
    std::vector<ConcreteRow> base_rows =
        RestrictToWindow(fin->rel, options.inner_window);
    if (engine_rows == base_rows) break;
    if (last) {
      // Mismatch persists on the doubled window: not a window artifact.
      outcome.failure = {"differential", "",
                         "engine vs finite baseline on window [-" +
                             std::to_string(options.inner_window) + ", " +
                             std::to_string(options.inner_window) + "]: " +
                             DiffRows(base_rows, engine_rows),
                         nullptr};
      return outcome;
    }
  }
  outcome.diff_skipped = !diff_checked;

  // ---- Metamorphic: paper-sound rewrites must stay equivalent. ----
  Result<std::vector<Rewrite>> rewrites = EnumerateRewrites(expr, db);
  if (!rewrites.ok()) {
    outcome.failure = {"metamorphic", "",
                       "rewrite enumeration failed: " +
                           rewrites.status().ToString(),
                       nullptr};
    return outcome;
  }
  std::vector<std::size_t> order(rewrites->size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::size_t take = order.size();
  if (!options.exhaustive_metamorphic &&
      take > static_cast<std::size_t>(options.max_mutants)) {
    std::mt19937 rng(mutant_seed);
    std::shuffle(order.begin(), order.end(), rng);
    take = static_cast<std::size_t>(options.max_mutants);
  }

  for (std::size_t i = 0; i < take; ++i) {
    const Rewrite& rw = (*rewrites)[order[i]];
    Result<GeneralizedRelation> got = EvalExpr(rw.expr, db, eval);
    if (!got.ok()) {
      if (IsBudgetError(got.status())) continue;  // Mutant too expensive.
      outcome.failure = {"metamorphic", rw.rule,
                         "rewrite failed to evaluate: " +
                             got.status().ToString(),
                         rw.expr};
      return outcome;
    }
    ++outcome.metamorphic_checked;

    // Window cross-check (always).
    const std::vector<ConcreteRow> mutant_rows =
        FiniteRelation::Materialize(*got, -options.inner_window,
                                    options.inner_window)
            .rows();
    if (mutant_rows != engine_rows) {
      outcome.failure = {"metamorphic", rw.rule,
                         "rewrite disagrees on window [-" +
                             std::to_string(options.inner_window) + ", " +
                             std::to_string(options.inner_window) + "]: " +
                             DiffRows(engine_rows, mutant_rows),
                         rw.expr};
      return outcome;
    }

    // Exact symbolic check when affordable.  Some operand shapes are not
    // supported by the symbolic subtraction (data attributes under
    // complement); those fall back to the window check silently.
    if (ref->size() <= options.max_equiv_tuples &&
        got->size() <= options.max_equiv_tuples) {
      Result<bool> equiv = Equivalent(*ref, *got, eval.algebra);
      if (!equiv.ok()) continue;
      if (!*equiv) {
        outcome.failure = {"metamorphic", rw.rule,
                           "Equivalent() == false for a sound rewrite",
                           rw.expr};
        return outcome;
      }
    }
  }

  return outcome;
}

}  // namespace fuzz
}  // namespace itdb
