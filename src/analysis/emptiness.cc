#include "analysis/emptiness.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/dbm.h"
#include "util/numeric.h"

namespace itdb {
namespace analysis {

namespace {

using query::Query;
using query::QueryCmp;
using query::Sort;
using query::SortMap;
using query::Term;

bool IsTemporalVar(const Term& t, const SortMap& sorts) {
  if (t.kind != Term::Kind::kVariable) return false;
  auto it = sorts.find(t.var);
  return it != sorts.end() && it->second == Sort::kTime;
}

bool CmpHolds(std::int64_t l, QueryCmp op, std::int64_t r) {
  switch (op) {
    case QueryCmp::kEq:
      return l == r;
    case QueryCmp::kNe:
      return l != r;
    case QueryCmp::kLe:
      return l <= r;
    case QueryCmp::kLt:
      return l < r;
    case QueryCmp::kGe:
      return l >= r;
    case QueryCmp::kGt:
      return l > r;
  }
  return false;
}

/// Truth value of a comparison with no degrees of freedom, or nullopt.
/// Same-variable comparisons are only ground over the temporal sort
/// ((t + a) op (t + b) reduces to a op b); the evaluator rejects a data
/// variable compared with itself, so claiming a truth value there would
/// let the rewriter hide an evaluation error.
std::optional<bool> GroundCmpTruth(const Query& q, const SortMap& sorts) {
  const Term& l = q.lhs();
  const Term& r = q.rhs();
  if (l.kind == Term::Kind::kVariable && r.kind == Term::Kind::kVariable) {
    if (l.var == r.var && IsTemporalVar(l, sorts)) {
      return CmpHolds(l.number, q.cmp(), r.number);
    }
    return std::nullopt;
  }
  if (l.kind == Term::Kind::kInt && r.kind == Term::Kind::kInt) {
    return CmpHolds(l.number, q.cmp(), r.number);
  }
  if (l.kind == Term::Kind::kString && r.kind == Term::Kind::kString &&
      (q.cmp() == QueryCmp::kEq || q.cmp() == QueryCmp::kNe)) {
    bool eq = l.text == r.text;
    return q.cmp() == QueryCmp::kEq ? eq : !eq;
  }
  return std::nullopt;
}

/// Collects the conjuncts of a maximal AND-chain.
void FlattenConjuncts(const Query& q, std::vector<const Query*>& out) {
  if (q.kind() == Query::Kind::kAnd) {
    FlattenConjuncts(*q.left(), out);
    FlattenConjuncts(*q.right(), out);
    return;
  }
  out.push_back(&q);
}

/// Per-node proof strength (see EmptinessProof in the header).
struct Proof {
  bool empty = false;
  bool bit = false;
};

struct EmptinessProver {
  const Database& db;
  const SortMap& sorts;
  EmptinessProof out;

  Proof Mark(const Query& q, Proof p) {
    if (p.empty) out.empty.insert(&q);
    if (p.bit) out.bit_empty.insert(&q);
    return p;
  }

  /// Difference constraints implied by the purely constant temporal
  /// comparisons among `conjuncts`; infeasibility of their closure proves
  /// the conjunction empty.  Comparisons that do not fit the difference
  /// form (data sort, !=, overflow) are simply skipped -- dropping a
  /// constraint can only make the system MORE feasible, so skipping is
  /// sound.
  bool ConjunctionInfeasible(const std::vector<const Query*>& conjuncts) {
    std::map<std::string, int> index;
    auto var_index = [&](const std::string& name) {
      return index.emplace(name, static_cast<int>(index.size())).first->second;
    };
    auto sub = [](std::int64_t a, std::int64_t b) -> std::optional<std::int64_t> {
      Result<std::int64_t> r = CheckedSub(a, b);
      if (!r.ok()) return std::nullopt;
      return r.value();
    };
    std::vector<AtomicConstraint> constraints;
    // Turns `x op bound` (x a difference of nodes) into <= constraints;
    // kEq contributes both directions, kNe nothing.
    auto push = [&](int i, int j, QueryCmp op, std::int64_t bound) -> bool {
      switch (op) {
        case QueryCmp::kLe:
          constraints.push_back({i, j, bound});
          return true;
        case QueryCmp::kLt: {
          std::optional<std::int64_t> b = sub(bound, 1);
          if (!b.has_value()) return true;
          constraints.push_back({i, j, *b});
          return true;
        }
        case QueryCmp::kGe: {
          std::optional<std::int64_t> b = sub(0, bound);
          if (!b.has_value()) return true;
          constraints.push_back({j, i, *b});
          return true;
        }
        case QueryCmp::kGt: {
          std::optional<std::int64_t> b = sub(-1, bound);
          if (!b.has_value()) return true;
          constraints.push_back({j, i, *b});
          return true;
        }
        case QueryCmp::kEq: {
          constraints.push_back({i, j, bound});
          std::optional<std::int64_t> b = sub(0, bound);
          if (!b.has_value()) return true;
          constraints.push_back({j, i, *b});
          return true;
        }
        case QueryCmp::kNe:
          return true;
      }
      return true;
    };
    for (const Query* c : conjuncts) {
      if (c->kind() != Query::Kind::kCmp || c->cmp() == QueryCmp::kNe) {
        continue;
      }
      const Term& l = c->lhs();
      const Term& r = c->rhs();
      bool l_temporal = IsTemporalVar(l, sorts);
      bool r_temporal = IsTemporalVar(r, sorts);
      if (l_temporal && r_temporal && l.var != r.var) {
        // (vl + cl) op (vr + cr)  <=>  vl - vr op cr - cl.
        std::optional<std::int64_t> delta = sub(r.number, l.number);
        if (!delta.has_value()) continue;
        push(var_index(l.var), var_index(r.var), c->cmp(), *delta);
      } else if (l_temporal && r.kind == Term::Kind::kInt) {
        // (v + cl) op k  <=>  v op k - cl.
        std::optional<std::int64_t> bound = sub(r.number, l.number);
        if (!bound.has_value()) continue;
        push(var_index(l.var), kZeroVar, c->cmp(), *bound);
      } else if (r_temporal && l.kind == Term::Kind::kInt) {
        // k op (v + cr)  <=>  v flip(op) k - cr.
        std::optional<std::int64_t> bound = sub(l.number, r.number);
        if (!bound.has_value()) continue;
        QueryCmp flipped = c->cmp();
        switch (c->cmp()) {
          case QueryCmp::kLe:
            flipped = QueryCmp::kGe;
            break;
          case QueryCmp::kLt:
            flipped = QueryCmp::kGt;
            break;
          case QueryCmp::kGe:
            flipped = QueryCmp::kLe;
            break;
          case QueryCmp::kGt:
            flipped = QueryCmp::kLt;
            break;
          case QueryCmp::kEq:
          case QueryCmp::kNe:
            break;
        }
        push(var_index(r.var), kZeroVar, flipped, *bound);
      }
    }
    if (constraints.empty()) return false;
    Dbm dbm(static_cast<int>(index.size()));
    if (!dbm.Close().ok()) return false;
    for (const AtomicConstraint& c : constraints) {
      switch (dbm.TightenAndClose(c)) {
        case Dbm::TightenResult::kInfeasible:
          return true;
        case Dbm::TightenResult::kFallbackNeeded:
          // Skipping the constraint keeps the check sound (see above).
          break;
        case Dbm::TightenResult::kClosed:
          break;
      }
    }
    return false;
  }

  /// Recurses over the whole tree (so nodes inside negations still get
  /// marked for diagnostics) and returns the proof strength of `q`.
  /// Bit-level emptiness descends only from leaves the evaluator renders
  /// with zero tuples: an empty atom, a ground-false comparison (every
  /// ground branch of EvalCmp returns a zero-tuple relation on false).
  /// DBM conjunction proofs are set-level only -- a chain of selections
  /// can keep tuples whose constraint sets are infeasible -- as are
  /// FORALL proofs, whose double complement rebuilds a representation.
  Proof Prove(const Query& q) {
    switch (q.kind()) {
      case Query::Kind::kAtom: {
        Result<GeneralizedRelation> rel = db.Get(q.relation());
        bool empty = rel.ok() && rel.value().tuples().empty();
        return Mark(q, {empty, empty});
      }
      case Query::Kind::kCmp: {
        std::optional<bool> truth = GroundCmpTruth(q, sorts);
        bool empty = truth.has_value() && !truth.value();
        return Mark(q, {empty, empty});
      }
      case Query::Kind::kAnd: {
        Proof left = Prove(*q.left());
        Proof right = Prove(*q.right());
        // A join with a zero-tuple operand yields zero tuples.
        Proof p{left.empty || right.empty, left.bit || right.bit};
        if (!p.empty) {
          std::vector<const Query*> conjuncts;
          FlattenConjuncts(q, conjuncts);
          p.empty = ConjunctionInfeasible(conjuncts);
        }
        return Mark(q, p);
      }
      case Query::Kind::kOr: {
        Proof left = Prove(*q.left());
        Proof right = Prove(*q.right());
        return Mark(q, {left.empty && right.empty, left.bit && right.bit});
      }
      case Query::Kind::kNot:
        Prove(*q.left());
        return {};
      case Query::Kind::kExists: {
        // Projection of zero tuples is zero tuples.
        return Mark(q, Prove(*q.left()));
      }
      case Query::Kind::kForall: {
        Proof child = Prove(*q.left());
        auto it = sorts.find(q.quantified_var());
        bool safe_var = it == sorts.end() || it->second == Sort::kTime;
        return Mark(q, {child.empty && safe_var, false});
      }
    }
    return {};
  }
};

}  // namespace

EmptinessProof ProveEmptySubplans(const Database& db, const Query& q,
                                  const SortMap& sorts) {
  EmptinessProver prover{db, sorts, {}};
  prover.Prove(q);
  return std::move(prover.out);
}

}  // namespace analysis
}  // namespace itdb
