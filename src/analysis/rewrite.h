// Analyzer-driven sound rewrites (dead-branch elimination).
//
// The only rewrite applied is the one with a bit-identical justification:
// in OR(a, b) where b is proven BIT-empty (evaluation yields zero tuples,
// not merely the empty set -- see emptiness.h) and free(b) is a subset of
// free(a), the evaluator would compute Union(Eval(a), ExtendTo(Eval(b),
// schema)) -- and appending ZERO tuples to a relation returns the exact
// same representation, so OR(a, b) can be replaced by a outright
// (symmetrically for an empty a).  The free-variable condition matters:
// if b contributed a column that a lacks, dropping b would change the
// result SCHEMA even though b has no tuples.  Set-level proofs (a
// DBM-refuted selection chain) are NOT enough: evaluating such a branch
// can yield infeasible-but-present tuples, and dropping them would be
// visible in the union's representation.
//
// Proven-empty nodes that are not OR branches are left alone -- replacing
// e.g. an AND with a literal "empty" node could skip evaluation work but
// would need a canonical-empty constructor in the AST; the evaluator's
// root short-circuit (eval.cc) covers the root case instead.

#ifndef ITDB_ANALYSIS_REWRITE_H_
#define ITDB_ANALYSIS_REWRITE_H_

#include <set>

#include "query/ast.h"

namespace itdb {
namespace analysis {

/// Drops provably-dead OR branches of `q` (per `empty`, which must point
/// into `q`'s tree).  Returns `q` itself when nothing applies; shares
/// untouched subtrees otherwise.  `removed` counts dropped branches.
query::QueryPtr EliminateDeadBranches(const query::QueryPtr& q,
                                      const std::set<const query::Query*>& empty,
                                      int* removed);

}  // namespace analysis
}  // namespace itdb

#endif  // ITDB_ANALYSIS_REWRITE_H_
