// Static satisfiability prechecks (analysis pass 3).
//
// Proves subplans empty without evaluating them, from three kinds of
// leaves -- atoms over relations with zero tuples, comparisons that are
// ground-false over the temporal sort, and conjunctions whose constant
// temporal constraints close to an infeasible DBM -- and propagates
// emptiness up the tree:
//
//   AND:     either operand empty  -> empty
//   OR:      both operands empty   -> empty
//   EXISTS:  operand empty         -> empty (projection of nothing)
//   FORALL:  operand empty AND the quantified variable is temporal or
//            vacuous -> empty (a data-sorted FORALL over an empty active
//            domain is vacuously true, so its emptiness cannot be decided
//            statically)
//   NOT:     never claimed empty (the complement of the empty relation is
//            the universe, which itself collapses to empty only when a
//            data domain is empty -- not a static fact)
//
// Everything here is conservative: a node is only included when its
// denotation is provably the empty relation for THIS database instance.
// The fuzz oracle (fuzz/query_oracle.h) checks exactly that.
//
// Two strengths of proof are kept apart.  `empty` is set-level: the
// denotation is the empty set, but the evaluator may still represent it
// with tuples whose constraint sets are infeasible (e.g. a DBM-refuted
// selection chain), so it feeds diagnostics and the fuzz oracle only.
// `bit_empty` is representation-level: evaluation provably returns ZERO
// tuples, because the proof descends from leaves the evaluator itself
// renders bit-empty (zero-tuple atoms, ground-false comparisons) through
// operators that preserve that (join with a zero-tuple operand, union of
// zero-tuple operands, projection of zero tuples).  DBM conjunction
// proofs and FORALL proofs are deliberately excluded -- complements and
// fallback selections can resurface tuples.  Only bit_empty proofs may
// drive rewrites or short-circuits, or analysis would change results.

#ifndef ITDB_ANALYSIS_EMPTINESS_H_
#define ITDB_ANALYSIS_EMPTINESS_H_

#include <set>

#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"

namespace itdb {
namespace analysis {

struct EmptinessProof {
  /// Every node whose denotation is provably the empty set.
  std::set<const query::Query*> empty;
  /// The subset whose EVALUATION provably yields zero tuples
  /// (representation-preserving to act on).  Always a subset of `empty`.
  std::set<const query::Query*> bit_empty;
};

/// Proves subplans of `q` empty.  `sorts` must be the error-free result
/// of sort inference for `q`.
EmptinessProof ProveEmptySubplans(const Database& db, const query::Query& q,
                                  const query::SortMap& sorts);

}  // namespace analysis
}  // namespace itdb

#endif  // ITDB_ANALYSIS_EMPTINESS_H_
