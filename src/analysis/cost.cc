#include "analysis/cost.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "core/lrp.h"
#include "core/relation.h"
#include "core/tuple.h"
#include "util/numeric.h"

namespace itdb {
namespace analysis {

namespace {

using query::Query;
using query::Sort;
using query::SortMap;

void Warn(std::vector<Diagnostic>* out, std::string_view code,
          const SourceSpan& span, std::string message, std::string fixit = "") {
  out->push_back(Diagnostic{Severity::kWarning, std::string(code), span,
                            std::move(message), std::move(fixit)});
}

int FreeTemporalWidth(const Query& q, const SortMap& sorts) {
  int width = 0;
  for (const std::string& var : q.FreeVariables()) {
    auto it = sorts.find(var);
    if (it != sorts.end() && it->second == Sort::kTime) ++width;
  }
  return width;
}

struct CostWalker {
  const Database& db;
  const SortMap& sorts;
  const CostOptions& options;
  std::vector<Diagnostic>* out;

  /// True when the variable-sharing graph over the conjuncts of the
  /// AND-chain rooted at `q` is disconnected: some group of conjuncts
  /// shares no variable with the rest, so their join degenerates to a
  /// cross product.  Checked over the MAXIMAL chain -- a comparison
  /// elsewhere in the chain can connect two otherwise-disjoint atoms.
  static bool ChainIsCrossProduct(const Query& q) {
    std::vector<const Query*> conjuncts;
    FlattenConjuncts(q, conjuncts);
    std::vector<std::set<std::string>> components;
    for (const Query* c : conjuncts) {
      std::vector<std::string> fv = c->FreeVariables();
      if (fv.empty()) continue;
      std::set<std::string> merged(fv.begin(), fv.end());
      std::vector<std::set<std::string>> rest;
      for (std::set<std::string>& comp : components) {
        bool touches =
            std::any_of(merged.begin(), merged.end(),
                        [&](const std::string& v) { return comp.count(v); });
        if (touches) {
          merged.insert(comp.begin(), comp.end());
        } else {
          rest.push_back(std::move(comp));
        }
      }
      rest.push_back(std::move(merged));
      components = std::move(rest);
    }
    return components.size() > 1;
  }

  static void FlattenConjuncts(const Query& q, std::vector<const Query*>& out) {
    if (q.kind() == Query::Kind::kAnd) {
      FlattenConjuncts(*q.left(), out);
      FlattenConjuncts(*q.right(), out);
      return;
    }
    out.push_back(&q);
  }

  /// Returns the lcm of all relation periods reachable from `q`, or
  /// nullopt once the lcm has overflowed int64 (treated as "huge").
  /// `in_chain` is true when the parent node is already part of the same
  /// AND-chain, so the cross-product check only runs at the chain root.
  std::optional<std::int64_t> Walk(const Query& q, bool in_chain = false) {
    switch (q.kind()) {
      case Query::Kind::kAtom: {
        std::optional<std::int64_t> lcm = 1;
        Result<GeneralizedRelation> rel = db.Get(q.relation());
        if (!rel.ok()) return lcm;
        for (const GeneralizedTuple& t : rel.value().tuples()) {
          for (const Lrp& lrp : t.temporal()) {
            if (lrp.period() == 0) continue;
            if (!lcm.has_value()) return std::nullopt;
            Result<std::int64_t> next = Lcm(*lcm, lrp.period());
            lcm = next.ok() ? std::optional<std::int64_t>(next.value())
                            : std::nullopt;
          }
        }
        return lcm;
      }
      case Query::Kind::kCmp:
        return 1;
      case Query::Kind::kAnd: {
        std::optional<std::int64_t> left = Walk(*q.left(), /*in_chain=*/true);
        std::optional<std::int64_t> right = Walk(*q.right(), /*in_chain=*/true);
        if (!in_chain && ChainIsCrossProduct(q)) {
          Warn(out, diag::kCrossProduct, q.span(),
               "conjunction operands share no attributes; the join "
               "degenerates to a cross product",
               "join the operands on a shared variable, or evaluate them "
               "separately");
        }
        return Combine(left, right);
      }
      case Query::Kind::kOr:
        return Combine(Walk(*q.left()), Walk(*q.right()));
      case Query::Kind::kNot: {
        WarnComplement(q, "complement");
        return Walk(*q.left());
      }
      case Query::Kind::kExists:
        return Walk(*q.left());
      case Query::Kind::kForall: {
        WarnComplement(q, "universal quantifier (two complements)");
        return Walk(*q.left());
      }
    }
    return 1;
  }

  void WarnComplement(const Query& q, std::string_view what) {
    int width = FreeTemporalWidth(*q.left(), sorts);
    if (width < options.complement_width_threshold) return;
    Warn(out, diag::kExpensiveComplement, q.span(),
         std::string(what) + " over " + std::to_string(width) +
             " temporal columns: nonemptiness of complements is NP-complete "
             "(Theorem 3.5) and the normal form can grow exponentially");
  }

  static std::optional<std::int64_t> Combine(std::optional<std::int64_t> a,
                                             std::optional<std::int64_t> b) {
    if (!a.has_value() || !b.has_value()) return std::nullopt;
    Result<std::int64_t> lcm = Lcm(*a, *b);
    if (!lcm.ok()) return std::nullopt;
    return lcm.value();
  }
};

}  // namespace

void CostDiagnostics(const Database& db, const Query& q, const SortMap& sorts,
                     const CostOptions& options, std::vector<Diagnostic>* out) {
  CostWalker walker{db, sorts, options, out};
  std::optional<std::int64_t> lcm = walker.Walk(q);
  if (!lcm.has_value()) {
    Warn(out, diag::kPeriodBlowup, q.span(),
         "the periods reachable from this query compose to an lcm beyond "
         "int64; normalization may expand tuples massively");
  } else if (*lcm > options.period_blowup_threshold) {
    Warn(out, diag::kPeriodBlowup, q.span(),
         "the periods reachable from this query compose to lcm " +
             std::to_string(*lcm) + " (threshold " +
             std::to_string(options.period_blowup_threshold) +
             "); normalization may expand each tuple by that factor");
  }
}

}  // namespace analysis
}  // namespace itdb
