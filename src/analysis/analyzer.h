// Static query analysis (the front end of EvalQuery).
//
// Analyze runs a fixed sequence of passes over a parsed query AST, before
// any algebra executes, and reports findings as coded Diagnostics
// (util/diagnostic.h):
//
//   1. sort/type checking of the two-sorted language (query/sorts.h,
//      collecting form) plus structural checks: mixed-constant
//      comparisons (A004), data self-comparison (A007), vacuous
//      quantifiers (A013);
//   2. safety / range restriction: a data variable not bound by a positive
//      atom (or a positive equality with a constant) ranges over the whole
//      active domain (A008);
//   3. satisfiability prechecks (emptiness.h): constant temporal
//      constraints of each conjunction are closed with
//      Dbm::TightenAndClose; an infeasible conjunction, an empty relation,
//      or a ground-false comparison proves a subplan empty, and emptiness
//      propagates up the plan (A-and-empty = empty, or of empties = empty,
//      exists of empty = empty, ...) -- reported as A009 on maximal empty
//      nodes;
//   4. complexity / cost estimates (cost.h): complements over wide
//      operands (NP-complete regime, Theorem 3.5; A010), conjunctions with
//      no shared attributes (cross products; A011), and period-blowup
//      estimates from the lcm of operand periods (A012).
//
// Passes 2-4 only run when pass 1 found no errors (their inputs -- the
// SortMap -- would be meaningless otherwise).
//
// Soundness contract (pinned by the fuzz oracle, fuzz/query_oracle.h):
// every node in `proven_empty` denotes the empty relation, and
// ApplySoundRewrites never changes the evaluation result -- bit-identical
// output at any thread count, analysis on or off.  Only the
// `proven_bit_empty` subset (evaluation provably yields ZERO tuples, not
// just the empty set -- see emptiness.h) may drive rewrites or
// short-circuits; DBM-refuted subplans stay diagnostics-only because the
// evaluator may represent them with infeasible tuples.

#ifndef ITDB_ANALYSIS_ANALYZER_H_
#define ITDB_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/absint.h"
#include "obs/trace.h"
#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"
#include "util/diagnostic.h"

namespace itdb {
namespace analysis {

struct AnalyzeOptions {
  bool check_safety = true;
  bool check_emptiness = true;
  bool check_cost = true;
  /// Pass 5: abstract interpretation (absint.h).  Fills
  /// AnalysisResult::certificates and reports A014-A017.
  bool check_certificates = true;
  /// A012 fires when the lcm of the periods reachable from the root
  /// exceeds this.  A015 is its certified counterpart: it fires when the
  /// CERTIFIED root lcm exceeds the same threshold.
  std::int64_t period_blowup_threshold = 720;
  /// A010 fires for complements (NOT / FORALL) whose operand has at least
  /// this many free temporal variables.
  int complement_width_threshold = 2;
  /// A014 fires when the certified root cardinality exceeds this.
  std::int64_t certified_rows_threshold = 1'000'000;
  /// Budgets for the certificate pass (widening + lcm growth).
  FixpointBudget budget;
  /// Statistics cache for the certificate pass; null computes stats per
  /// relation on the fly.  Not owned.
  StatsCache* stats_cache = nullptr;
  /// Span destination for the "analysis" category; null falls back to the
  /// process-global tracer.  Not owned.
  obs::Tracer* tracer = nullptr;
};

struct AnalysisResult {
  /// Keeps the analyzed tree alive: `proven_empty` points into it.
  query::QueryPtr root;
  /// All findings, in pass order (source order within a pass).
  std::vector<Diagnostic> diagnostics;
  /// Valid when HasErrors() is false.
  query::SortMap sorts;
  /// Every node of `root`'s tree whose denotation is provably empty.
  std::set<const query::Query*> proven_empty;
  /// The subset whose evaluation provably yields zero tuples; the only
  /// proofs strong enough to rewrite or short-circuit on.
  std::set<const query::Query*> proven_bit_empty;
  bool root_proven_empty = false;
  bool root_proven_bit_empty = false;
  /// Pass-5 certificates for every node of `root`'s tree (empty when
  /// check_certificates was off or pass 1 found errors).
  CertificateMap certificates;
  /// The root node's certificate (top when the pass did not run).
  Certificate root_certificate;

  bool HasErrors() const { return itdb::HasErrors(diagnostics); }
  int errors() const { return CountSeverity(diagnostics, Severity::kError); }
  int warnings() const {
    return CountSeverity(diagnostics, Severity::kWarning);
  }
};

/// Runs all passes.  Never fails: problems are diagnostics, not Statuses.
AnalysisResult Analyze(const Database& db, const query::QueryPtr& q,
                       const AnalyzeOptions& options = {});

/// Applies the provably sound subset of the analysis as a rewrite: an OR
/// branch proven empty whose free variables are a subset of the surviving
/// branch's is dropped (union with zero tuples is the identity on the
/// representation, so the result is bit-identical).  Returns `q` itself
/// when nothing applies; `removed`, if non-null, receives the number of
/// branches dropped.  Feed the result to query::Optimize, exactly where
/// the optimizer pipeline would otherwise start.
query::QueryPtr ApplySoundRewrites(const query::QueryPtr& q,
                                   const AnalysisResult& analysis,
                                   int* removed = nullptr);

}  // namespace analysis
}  // namespace itdb

#endif  // ITDB_ANALYSIS_ANALYZER_H_
