// Abstract interpretation over the query AST: certified bounds.
//
// The analyzer's cost pass (cost.h) guesses: A010/A012 are heuristics with
// no soundness contract.  This module computes *certificates* -- sound
// upper bounds, per query node, in three abstract domains:
//
//   * period lattice: an lcm L such that every lrp period of the node's
//     result representation divides L.  Seeded from
//     RelationStats::period_lcm_rep (the representation-level lcm:
//     Complement picks its uniform period from every stored tuple,
//     feasible or not) and composed with saturating Lcm.  This certifies
//     the A012 blowup heuristic: normalization can never split beyond L.
//
//   * interval hull: per free temporal variable, an interval containing
//     every value that variable takes in the node's denotation (the SET,
//     not the representation).  Widening (WidenInterval) keeps iterative
//     uses -- the future Datalog fixpoint layer -- terminating.  An empty
//     hull interval refutes the node at the set level; like A009's
//     set-empty grade it must never drive a rewrite, because the evaluator
//     may still represent the empty set with infeasible tuples.
//
//   * cardinality: an upper bound on the number of generalized tuples in
//     the node's result REPRESENTATION, seeded from
//     RelationStats::tuple_count / normalized_rows and composed through
//     the algebra (join of n x m tuples yields at most n*m; a projection
//     that drops a temporal column splits each tuple at most L^(m-1)
//     ways, because the normalization factor prod(L_t/k_c) = L_t^j /
//     prod(k_c) is bounded by L_t^(j-1) when j >= 1 columns have nonzero
//     period -- the lcm divides the product).
//
// Soundness contract (machine-checked by the fuzz oracle's certificate
// axis, fuzz/query_oracle.h): for every query the evaluator completes,
// the actual result satisfies
//     tuples  <= Certificate::rows        (when rows is bounded)
//     every lrp period divides ::lcm      (when lcm is bounded)
//     feasible values of temporal var v lie in ::hull[v]
// nullopt rows/lcm mean "unbounded": the analysis could not certify a
// bound (complements put cardinality out of reach; lcm composition can
// overflow).  Unbounded certificates gate result-cache admission and
// drive the A017 diagnostic; bounded-but-huge ones drive A014/A015.
//
// FixpointBudget is the reusable knob set for iterative consumers: the
// ROADMAP Datalog/transitive-closure layer runs semi-naive iteration with
// exactly these limits (widening delay for hulls, an lcm growth budget for
// the period lattice), and IterateToFixpoint is its contract in miniature:
// it terminates within widening_delay + 3 joins for ANY monotone step
// function, which the widening-convergence tests pin.

#ifndef ITDB_ANALYSIS_ABSINT_H_
#define ITDB_ANALYSIS_ABSINT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/dbm.h"
#include "core/stats.h"
#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"

namespace itdb {
namespace analysis {

/// A closed interval over the temporal sort with +-Dbm::kInf sentinels.
/// lo > hi encodes the empty interval.
struct Interval {
  std::int64_t lo = -Dbm::kInf;
  std::int64_t hi = Dbm::kInf;

  static Interval Top() { return Interval{}; }
  static Interval Empty() { return Interval{Dbm::kInf, -Dbm::kInf}; }
  static Interval Point(std::int64_t v) { return Interval{v, v}; }
  static Interval AtMost(std::int64_t v) { return Interval{-Dbm::kInf, v}; }
  static Interval AtLeast(std::int64_t v) { return Interval{v, Dbm::kInf}; }

  bool empty() const { return lo > hi; }
  bool top() const { return lo <= -Dbm::kInf && hi >= Dbm::kInf; }

  Interval Intersect(const Interval& o) const;
  Interval Union(const Interval& o) const;
  /// The interval shifted by `delta`, exact over __int128 and clamped to
  /// the +-kInf sentinels (a bound pushed past int64 is unreachable by any
  /// int64 time point, so clamping stays sound).
  Interval Shift(std::int64_t delta) const;

  friend bool operator==(const Interval& a, const Interval& b) = default;
};

/// Formats "[lo, hi]" with inf sentinels, "empty" for empty intervals.
std::string FormatInterval(const Interval& i);

/// Budgets for iterative abstract interpretation.  The AST interpreter
/// below is structurally recursive and needs none of them to terminate;
/// they exist for fixpoint consumers (the planned Datalog layer) and bound
/// every certificate the interpreter reports.
struct FixpointBudget {
  /// Joins tolerated before WidenInterval snaps unstable bounds to
  /// infinity.  IterateToFixpoint converges within widening_delay + 3
  /// iterations for monotone steps.
  int widening_delay = 3;
  /// Hard iteration cap for fixpoint loops (diverging non-monotone steps).
  int max_iterations = 64;
  /// Period-lcm growth budget: a certified lcm above this is reported as
  /// unbounded (nullopt) rather than propagated -- the Datalog layer stops
  /// materializing beyond it.
  std::int64_t max_period_lcm = 1'000'000'000;
};

/// Interval widening: bounds of `next` that moved past `prev`'s jump to
/// infinity; stable bounds keep `next`'s value.  Standard guarantee: any
/// ascending chain stabilizes after finitely many widenings (here: one,
/// per side).
Interval WidenInterval(const Interval& prev, const Interval& next);

struct FixpointResult {
  Interval value;
  int iterations = 0;
  bool widened = false;
  /// step(value) <= value held when the loop stopped (always true for
  /// monotone steps; false only when max_iterations tripped first).
  bool converged = false;
};

/// Iterates value := value UNION step(value) with widening after
/// budget.widening_delay rounds, until the value stabilizes or
/// budget.max_iterations is hit.  This is the loop shape the Datalog layer
/// will run per IDB predicate and temporal attribute.
FixpointResult IterateToFixpoint(Interval init,
                                 const std::function<Interval(Interval)>& step,
                                 const FixpointBudget& budget);

/// A sound bound triple for one query node.  nullopt = unbounded (top).
struct Certificate {
  /// Upper bound on generalized tuples in the result representation.
  std::optional<std::int64_t> rows;
  /// Every lrp period of the result representation divides this (>= 1).
  std::optional<std::int64_t> lcm;
  /// Per free temporal variable: an interval containing every value the
  /// variable takes in the denotation.  Variables absent from the map are
  /// unconstrained.
  std::map<std::string, Interval> hull;

  bool bounded() const { return rows.has_value() && lcm.has_value(); }
  /// Some variable's hull is empty: the denotation is provably the empty
  /// SET (the representation may still hold infeasible tuples).
  bool HullRefuted() const;
};

/// Compact rendering for explain/profile annotations:
///   "cert_rows=12, cert_lcm=6"   (with "unbounded" for nullopt).
std::string FormatCertificate(const Certificate& c);

using CertificateMap = std::map<const query::Query*, Certificate>;

/// Bottom-up abstract interpreter over a query tree.  One instance is tied
/// to one Database snapshot + SortMap; Interpret() memoizes per node, and
/// the planner registers certificates for the nodes it rebuilds so the
/// planned tree is fully annotated.
class AbstractInterpreter {
 public:
  /// `sorts` must cover every variable of the queries interpreted (the
  /// analyzer's pass-1 output).  `stats_cache` may be null (statistics are
  /// then computed per relation per instance).  Active-domain sizes are
  /// seeded lazily from the first Interpret() argument unless
  /// SeedActiveDomain was called; seed with the ORIGINAL query when
  /// interpreting a rewritten tree, since the evaluator's data universes
  /// are sized from the original constants.
  AbstractInterpreter(const Database& db, query::SortMap sorts,
                      StatsCache* stats_cache = nullptr,
                      FixpointBudget budget = {});

  AbstractInterpreter(const AbstractInterpreter&) = delete;
  AbstractInterpreter& operator=(const AbstractInterpreter&) = delete;

  /// Counts the evaluator's active domain (all data values in `db` plus
  /// the constants of `q`), fixing the domain sizes for this instance.
  void SeedActiveDomain(const query::Query& q);

  /// Interprets the tree rooted at `q`, memoizing a Certificate for every
  /// node, and returns the root's.
  const Certificate& Interpret(const query::QueryPtr& q);

  /// The memoized certificate of `q`, or null if never interpreted.
  const Certificate* Find(const query::Query* q) const;

  /// Attaches a certificate to a node the planner rebuilt (same semantics
  /// as an interpreted node, new identity).
  void Register(const query::Query* q, Certificate cert);

  /// The certificate algebra for conjunction, exposed so the planner can
  /// certify the AND nodes it builds while reordering chains.
  Certificate Conjoin(const Certificate& l, const Certificate& r) const;

  const CertificateMap& certificates() const { return certs_; }
  const FixpointBudget& budget() const { return budget_; }

  /// Active-domain size for a data sort (0 before seeding).
  std::int64_t domain_size(query::Sort sort) const;

 private:
  Certificate Node(const query::Query& q);
  Certificate AtomCert(const query::Query& q);
  Certificate CmpCert(const query::Query& q);
  Certificate DisjoinCert(const query::Query& q, const Certificate& l,
                          const Certificate& r) const;
  Certificate ComplementCert(const query::Query& q,
                             const Certificate& child) const;
  Certificate ExistsCert(const query::Query& q,
                         const Certificate& child) const;
  /// nullopt when the lcm exceeds budget_.max_period_lcm (treated as top).
  std::optional<std::int64_t> CapLcm(std::optional<std::int64_t> l) const;
  RelationStats StatsFor(const std::string& name,
                         const GeneralizedRelation& rel) const;
  bool IsTemporal(const std::string& var) const;
  /// Product of active-domain sizes of the data variables in `vars` that
  /// are missing from `present`; nullopt on overflow or unknown sort.
  std::optional<std::int64_t> MissingDataFactor(
      const std::vector<std::string>& vars,
      const std::vector<std::string>& present) const;

  const Database& db_;
  query::SortMap sorts_;
  StatsCache* stats_cache_;
  FixpointBudget budget_;
  bool domain_seeded_ = false;
  std::int64_t adom_strings_ = 0;
  std::int64_t adom_ints_ = 0;
  CertificateMap certs_;
};

}  // namespace analysis
}  // namespace itdb

#endif  // ITDB_ANALYSIS_ABSINT_H_
