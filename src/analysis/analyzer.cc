#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cost.h"
#include "analysis/emptiness.h"
#include "analysis/rewrite.h"
#include "obs/metrics.h"

namespace itdb {
namespace analysis {

namespace {

using query::Query;
using query::QueryPtr;
using query::Sort;
using query::SortMap;
using query::Term;

void Report(std::vector<Diagnostic>* out, Severity severity,
            std::string_view code, const SourceSpan& span, std::string message,
            std::string fixit = "") {
  out->push_back(Diagnostic{severity, std::string(code), span,
                            std::move(message), std::move(fixit)});
}

bool IsDataSort(const SortMap& sorts, const std::string& var) {
  auto it = sorts.find(var);
  return it != sorts.end() && it->second != Sort::kTime;
}

/// Structural checks the sort pass does not cover: comparisons that the
/// evaluator would reject at run time (A004, A007) and quantifiers whose
/// variable never occurs in the body (A013).  The A004/A007 cases are
/// errors on purpose -- evaluation is guaranteed to fail on them, and
/// flagging them statically is what keeps "analysis passed" aligned with
/// "evaluation will not type-fail" (the rewriter may only remove dead
/// branches because anything that fails inside one fails here first).
void CheckStructure(const Query& q, const SortMap& sorts,
                    std::vector<Diagnostic>* out) {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      return;
    case Query::Kind::kCmp: {
      const Term& l = q.lhs();
      const Term& r = q.rhs();
      bool l_const = l.kind != Term::Kind::kVariable;
      bool r_const = r.kind != Term::Kind::kVariable;
      if (l_const && r_const && l.kind != r.kind) {
        Report(out, Severity::kError, diag::kIncompatibleConstant, q.span(),
               "comparison between a string and an integer constant");
      }
      if (!l_const && !r_const && l.var == r.var && IsDataSort(sorts, l.var)) {
        Report(out, Severity::kError, diag::kMixedSortComparison, q.span(),
               "data variable \"" + l.var + "\" compared with itself",
               "a data variable never differs from itself; drop the "
               "comparison");
      }
      return;
    }
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CheckStructure(*q.left(), sorts, out);
      CheckStructure(*q.right(), sorts, out);
      return;
    case Query::Kind::kNot:
      CheckStructure(*q.left(), sorts, out);
      return;
    case Query::Kind::kExists:
    case Query::Kind::kForall: {
      const std::vector<std::string> free = q.left()->FreeVariables();
      if (!std::binary_search(free.begin(), free.end(), q.quantified_var())) {
        Report(out, Severity::kWarning, diag::kVacuousQuantifier, q.span(),
               "quantified variable \"" + q.quantified_var() +
                   "\" does not occur in the body",
               "remove the quantifier");
      }
      CheckStructure(*q.left(), sorts, out);
      return;
    }
  }
}

/// Collects variables bound by a positively-polarized atom or a
/// positively-polarized equality with a constant.  Polarity flips at NOT
/// only: a FORALL body sits under the two complements of NOT EXISTS NOT,
/// so occurrences inside it keep their polarity.
void CollectBinders(const Query& q, bool positive,
                    std::set<std::string>* binders) {
  switch (q.kind()) {
    case Query::Kind::kAtom:
      if (positive) {
        for (const Term& t : q.args()) {
          if (t.kind == Term::Kind::kVariable) binders->insert(t.var);
        }
      }
      return;
    case Query::Kind::kCmp:
      if (positive && q.cmp() == query::QueryCmp::kEq) {
        const Term& l = q.lhs();
        const Term& r = q.rhs();
        if (l.kind == Term::Kind::kVariable &&
            r.kind != Term::Kind::kVariable) {
          binders->insert(l.var);
        }
        if (r.kind == Term::Kind::kVariable &&
            l.kind != Term::Kind::kVariable) {
          binders->insert(r.var);
        }
      }
      return;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CollectBinders(*q.left(), positive, binders);
      CollectBinders(*q.right(), positive, binders);
      return;
    case Query::Kind::kNot:
      CollectBinders(*q.left(), !positive, binders);
      return;
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      CollectBinders(*q.left(), positive, binders);
      return;
  }
}

void SafetyPass(const Query& q, const SortMap& sorts,
                const std::map<std::string, SourceSpan>& var_spans,
                std::vector<Diagnostic>* out) {
  std::set<std::string> binders;
  CollectBinders(q, /*positive=*/true, &binders);
  // sorts is a std::map, so the warnings come out in variable-name order.
  for (const auto& [var, sort] : sorts) {
    if (sort == Sort::kTime || binders.contains(var)) continue;
    SourceSpan span;
    auto it = var_spans.find(var);
    if (it != var_spans.end()) span = it->second;
    Report(out, Severity::kWarning, diag::kUnsafeDataVariable, span,
           "data variable \"" + var +
               "\" is not bound by a positive atom and ranges over the "
               "whole active domain",
           "bind \"" + var + "\" with a relation atom or an equality with "
                             "a constant");
  }
}

/// Emits A009 at each MAXIMAL proven-empty node (reporting every empty
/// descendant of an empty node would just repeat the same fact).
void ReportEmpty(const Query& q, const std::set<const Query*>& empty,
                 std::vector<Diagnostic>* out) {
  if (empty.contains(&q)) {
    Report(out, Severity::kWarning, diag::kStaticallyEmpty, q.span(),
           "subquery is statically empty: no tuple can satisfy it against "
           "the current database");
    return;
  }
  switch (q.kind()) {
    case Query::Kind::kAtom:
    case Query::Kind::kCmp:
      return;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      ReportEmpty(*q.left(), empty, out);
      ReportEmpty(*q.right(), empty, out);
      return;
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      ReportEmpty(*q.left(), empty, out);
      return;
  }
}

/// Emits A016 at each maximal hull-refuted node the emptiness prover did
/// not already cover with A009.  Like A009's set-empty grade, a hull
/// refutation proves the denotation empty but says nothing about the
/// representation, so it never drives a rewrite.
void ReportHullRefuted(const Query& q, const CertificateMap& certs,
                       const std::set<const Query*>& proven_empty,
                       std::vector<Diagnostic>* out) {
  if (proven_empty.contains(&q)) return;  // A009 reported here already.
  auto it = certs.find(&q);
  if (it != certs.end() && it->second.HullRefuted()) {
    std::string vars;
    for (const auto& [var, interval] : it->second.hull) {
      if (!interval.empty()) continue;
      if (!vars.empty()) vars += ", ";
      vars += "\"" + var + "\"";
    }
    Report(out, Severity::kWarning, diag::kHullRefuted, q.span(),
           "interval analysis refutes this subquery: the certified hull of " +
               vars + " is empty (set-level proof; the representation may "
                      "still hold infeasible tuples)");
    return;
  }
  switch (q.kind()) {
    case Query::Kind::kAtom:
    case Query::Kind::kCmp:
      return;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      ReportHullRefuted(*q.left(), certs, proven_empty, out);
      ReportHullRefuted(*q.right(), certs, proven_empty, out);
      return;
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      ReportHullRefuted(*q.left(), certs, proven_empty, out);
      return;
  }
}

}  // namespace

AnalysisResult Analyze(const Database& db, const QueryPtr& q,
                       const AnalyzeOptions& options) {
  AnalysisResult result;
  result.root = q;
  // Spans only when the caller wired a tracer explicitly: an untraced
  // evaluation must not open spans (see QueryOptions::trace), and a
  // nullptr tracer makes Span::Begin a no-op.
  obs::Span span = obs::Span::Begin(options.tracer, "analyze", "analysis");

  // Pass 1: sorts + structure.  Non-strict mode: a vacuous quantifier is
  // A013 below, not an A006 error -- the optimizer drops such quantifiers
  // before legacy sort inference ever sees them, and analysis must not be
  // stricter than the evaluation it guards.
  query::SortDiagnostics sorted =
      query::InferSortsDiagnosed(db, q, /*strict_unused_quantified=*/false);
  result.diagnostics = std::move(sorted.diagnostics);
  result.sorts = sorted.sorts;
  CheckStructure(*q, result.sorts, &result.diagnostics);

  // Passes 2-4 need a valid SortMap.
  if (!result.HasErrors()) {
    if (options.check_safety) {
      SafetyPass(*q, result.sorts, sorted.var_spans, &result.diagnostics);
    }
    if (options.check_emptiness) {
      EmptinessProof proof = ProveEmptySubplans(db, *q, result.sorts);
      result.proven_empty = std::move(proof.empty);
      result.proven_bit_empty = std::move(proof.bit_empty);
      result.root_proven_empty = result.proven_empty.contains(q.get());
      result.root_proven_bit_empty =
          result.proven_bit_empty.contains(q.get());
      ReportEmpty(*q, result.proven_empty, &result.diagnostics);
    }
    if (options.check_cost) {
      CostOptions cost;
      cost.period_blowup_threshold = options.period_blowup_threshold;
      cost.complement_width_threshold = options.complement_width_threshold;
      CostDiagnostics(db, *q, result.sorts, cost, &result.diagnostics);
    }
    if (options.check_certificates) {
      // Pass 5: abstract interpretation.  Certified counterparts of the
      // cost heuristics (A014/A015), hull refutations the emptiness prover
      // cannot see (A016), and uncertifiable queries (A017).
      AbstractInterpreter interp(db, result.sorts, options.stats_cache,
                                 options.budget);
      const Certificate& root = interp.Interpret(q);
      result.root_certificate = root;
      ReportHullRefuted(*q, interp.certificates(), result.proven_empty,
                        &result.diagnostics);
      if (root.rows.has_value() &&
          *root.rows > options.certified_rows_threshold) {
        Report(&result.diagnostics, Severity::kWarning,
               diag::kCertifiedHugeCardinality, q->span(),
               "certified result size is huge: up to " +
                   std::to_string(*root.rows) +
                   " generalized tuples (threshold " +
                   std::to_string(options.certified_rows_threshold) + ")");
      }
      if (root.lcm.has_value() &&
          *root.lcm > options.period_blowup_threshold) {
        Report(&result.diagnostics, Severity::kWarning,
               diag::kCertifiedPeriodBlowup, q->span(),
               "certified period lcm " + std::to_string(*root.lcm) +
                   " exceeds the blowup threshold " +
                   std::to_string(options.period_blowup_threshold),
               "normalization may split each tuple up to the lcm; narrow "
               "the periodic relations involved");
      }
      if (!root.bounded()) {
        Report(&result.diagnostics, Severity::kNote,
               diag::kUnboundedCertificate, q->span(),
               "no finite certificate: the result's " +
                   std::string(!root.rows.has_value() ? "cardinality"
                                                      : "period structure") +
                   " cannot be bounded statically" +
                   std::string(!root.rows.has_value() && !root.lcm.has_value()
                                   ? " (nor its period structure)"
                                   : ""));
      }
      result.certificates = interp.certificates();
      obs::AddGlobalCounter(
          "analysis.certificates",
          static_cast<std::int64_t>(result.certificates.size()));
    }
  }

  span.AddArg("diagnostics",
              static_cast<std::int64_t>(result.diagnostics.size()));
  span.AddArg("errors", result.errors());
  span.AddArg("proven_empty",
              static_cast<std::int64_t>(result.proven_empty.size()));
  obs::AddGlobalCounter("analysis.runs", 1);
  obs::AddGlobalCounter("analysis.diagnostics",
                        static_cast<std::int64_t>(result.diagnostics.size()));
  if (!result.proven_empty.empty()) {
    obs::AddGlobalCounter(
        "analysis.proven_empty",
        static_cast<std::int64_t>(result.proven_empty.size()));
  }
  return result;
}

QueryPtr ApplySoundRewrites(const QueryPtr& q, const AnalysisResult& analysis,
                            int* removed) {
  int count = 0;
  QueryPtr out = EliminateDeadBranches(q, analysis.proven_bit_empty, &count);
  if (removed != nullptr) *removed = count;
  if (count > 0) obs::AddGlobalCounter("analysis.dead_branches", count);
  return out;
}

}  // namespace analysis
}  // namespace itdb
