// Complexity and cost warnings (analysis pass 4).
//
//   A010  complement (NOT / FORALL) whose operand has >= N free temporal
//         variables: complement of a multi-column generalized relation is
//         the NP-complete regime of Theorem 3.5 (nonemptiness of
//         complements), and its normal form can be exponentially larger;
//   A011  conjunction whose operands share no attributes at all: the join
//         degenerates to a cross product (|L| * |R| tuples);
//   A012  the periods of the relations reachable from the root compose, in
//         the worst case, to their lcm (Lemma 3.1 splits tuples to the
//         common period), so a large lcm predicts normalization blowup.
//
// All findings are warnings: they never block evaluation, only explain
// where time will go (the evaluator's budget checks still backstop
// runaway cases at run time).

#ifndef ITDB_ANALYSIS_COST_H_
#define ITDB_ANALYSIS_COST_H_

#include <cstdint>
#include <vector>

#include "query/ast.h"
#include "query/sorts.h"
#include "storage/database.h"
#include "util/diagnostic.h"

namespace itdb {
namespace analysis {

struct CostOptions {
  std::int64_t period_blowup_threshold = 720;
  int complement_width_threshold = 2;
};

/// Appends A010/A011/A012 warnings for `q` to `out`.  `sorts` must be the
/// error-free result of sort inference for `q`.
void CostDiagnostics(const Database& db, const query::Query& q,
                     const query::SortMap& sorts, const CostOptions& options,
                     std::vector<Diagnostic>* out);

}  // namespace analysis
}  // namespace itdb

#endif  // ITDB_ANALYSIS_COST_H_
