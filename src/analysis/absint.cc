#include "analysis/absint.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "core/value.h"
#include "util/numeric.h"

namespace itdb {
namespace analysis {

namespace {

constexpr std::int64_t kInf = Dbm::kInf;

/// Exact int128 arithmetic clamped to the +-kInf sentinels.  Clamping is
/// sound for hull bounds: no int64 time point lies beyond the sentinels.
std::int64_t Clamp128(__int128 v) {
  if (v >= static_cast<__int128>(kInf)) return kInf;
  if (v <= static_cast<__int128>(-kInf)) return -kInf;
  return static_cast<std::int64_t>(v);
}

std::int64_t SatSub(std::int64_t a, std::int64_t b) {
  if (a >= kInf || a <= -kInf) return a;  // Sentinels absorb shifts.
  return Clamp128(static_cast<__int128>(a) - static_cast<__int128>(b));
}

using Bound = std::optional<std::int64_t>;

Bound MulBound(const Bound& a, const Bound& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  Result<std::int64_t> r = CheckedMul(*a, *b);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Bound AddBound(const Bound& a, const Bound& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  Result<std::int64_t> r = CheckedAdd(*a, *b);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Bound LcmBound(const Bound& a, const Bound& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  Result<std::int64_t> r = Lcm(*a, *b);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Bound PowBound(const Bound& base, int exp) {
  if (exp <= 0) return 1;
  if (!base.has_value()) return std::nullopt;
  Bound out = 1;
  for (int i = 0; i < exp && out.has_value(); ++i) out = MulBound(out, base);
  return out;
}

/// Collects the query's constants into the active-domain sets, mirroring
/// the evaluator's CollectQueryConstants (query/eval.cc) exactly: atom
/// string constants and data-position integer constants, plus comparison
/// string constants.
void CollectConstants(const Database& db, const query::Query& q,
                      std::set<Value>& strings, std::set<Value>& ints) {
  using query::Query;
  using query::Term;
  switch (q.kind()) {
    case Query::Kind::kAtom: {
      Result<GeneralizedRelation> rel = db.Get(q.relation());
      if (!rel.ok()) return;
      const Schema& schema = rel.value().schema();
      for (std::size_t i = 0; i < q.args().size(); ++i) {
        const Term& t = q.args()[i];
        bool data_pos = static_cast<int>(i) >= schema.temporal_arity();
        if (t.kind == Term::Kind::kString) {
          strings.insert(Value(t.text));
        } else if (t.kind == Term::Kind::kInt && data_pos) {
          ints.insert(Value(t.number));
        }
      }
      break;
    }
    case Query::Kind::kCmp:
      for (const Term* t : {&q.lhs(), &q.rhs()}) {
        if (t->kind == Term::Kind::kString) strings.insert(Value(t->text));
      }
      break;
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      CollectConstants(db, *q.left(), strings, ints);
      CollectConstants(db, *q.right(), strings, ints);
      break;
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      CollectConstants(db, *q.left(), strings, ints);
      break;
  }
}

}  // namespace

Interval Interval::Intersect(const Interval& o) const {
  return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::Union(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::Shift(std::int64_t delta) const {
  if (empty()) return Empty();
  Interval out;
  out.lo = lo <= -kInf ? -kInf
                       : Clamp128(static_cast<__int128>(lo) +
                                  static_cast<__int128>(delta));
  out.hi = hi >= kInf
               ? kInf
               : Clamp128(static_cast<__int128>(hi) +
                          static_cast<__int128>(delta));
  return out;
}

std::string FormatInterval(const Interval& i) {
  if (i.empty()) return "empty";
  std::ostringstream out;
  out << "[";
  if (i.lo <= -kInf) {
    out << "-inf";
  } else {
    out << i.lo;
  }
  out << ", ";
  if (i.hi >= kInf) {
    out << "+inf";
  } else {
    out << i.hi;
  }
  out << "]";
  return out.str();
}

Interval WidenInterval(const Interval& prev, const Interval& next) {
  if (prev.empty()) return next;
  if (next.empty()) return prev;
  Interval out = next;
  if (next.lo < prev.lo) out.lo = -kInf;
  if (next.hi > prev.hi) out.hi = kInf;
  return out;
}

FixpointResult IterateToFixpoint(Interval init,
                                 const std::function<Interval(Interval)>& step,
                                 const FixpointBudget& budget) {
  FixpointResult out;
  out.value = init;
  while (out.iterations < budget.max_iterations) {
    Interval next = out.value.Union(step(out.value));
    if (out.iterations >= budget.widening_delay && !(next == out.value)) {
      next = WidenInterval(out.value, next);
      out.widened = true;
    }
    ++out.iterations;
    if (next == out.value) {
      out.converged = true;
      return out;
    }
    out.value = next;
  }
  out.converged = out.value.Union(step(out.value)) == out.value;
  return out;
}

bool Certificate::HullRefuted() const {
  for (const auto& [var, interval] : hull) {
    if (interval.empty()) return true;
  }
  return false;
}

std::string FormatCertificate(const Certificate& c) {
  std::ostringstream out;
  out << "cert_rows=";
  if (c.rows.has_value()) {
    out << *c.rows;
  } else {
    out << "unbounded";
  }
  out << ", cert_lcm=";
  if (c.lcm.has_value()) {
    out << *c.lcm;
  } else {
    out << "unbounded";
  }
  if (c.HullRefuted()) out << ", cert_empty=set";
  return out.str();
}

AbstractInterpreter::AbstractInterpreter(const Database& db,
                                         query::SortMap sorts,
                                         StatsCache* stats_cache,
                                         FixpointBudget budget)
    : db_(db),
      sorts_(std::move(sorts)),
      stats_cache_(stats_cache),
      budget_(budget) {}

void AbstractInterpreter::SeedActiveDomain(const query::Query& q) {
  std::set<Value> strings;
  std::set<Value> ints;
  for (const std::string& name : db_.Names()) {
    Result<GeneralizedRelation> rel = db_.Get(name);
    if (!rel.ok()) continue;
    for (const GeneralizedTuple& t : rel.value().tuples()) {
      for (const Value& v : t.data()) {
        (v.IsString() ? strings : ints).insert(v);
      }
    }
  }
  CollectConstants(db_, q, strings, ints);
  adom_strings_ = static_cast<std::int64_t>(strings.size());
  adom_ints_ = static_cast<std::int64_t>(ints.size());
  domain_seeded_ = true;
}

const Certificate& AbstractInterpreter::Interpret(const query::QueryPtr& q) {
  if (!domain_seeded_) SeedActiveDomain(*q);
  Node(*q);
  return certs_.find(q.get())->second;
}

const Certificate* AbstractInterpreter::Find(const query::Query* q) const {
  auto it = certs_.find(q);
  return it == certs_.end() ? nullptr : &it->second;
}

void AbstractInterpreter::Register(const query::Query* q, Certificate cert) {
  certs_.insert_or_assign(q, std::move(cert));
}

std::int64_t AbstractInterpreter::domain_size(query::Sort sort) const {
  switch (sort) {
    case query::Sort::kDataString:
      return adom_strings_;
    case query::Sort::kDataInt:
      return adom_ints_;
    case query::Sort::kTime:
      break;
  }
  return 0;
}

std::optional<std::int64_t> AbstractInterpreter::CapLcm(
    std::optional<std::int64_t> l) const {
  if (!l.has_value() || *l > budget_.max_period_lcm) return std::nullopt;
  return l;
}

RelationStats AbstractInterpreter::StatsFor(
    const std::string& name, const GeneralizedRelation& rel) const {
  if (stats_cache_ != nullptr) {
    return stats_cache_->Get(name, db_.version(), rel);
  }
  return ComputeRelationStats(rel);
}

bool AbstractInterpreter::IsTemporal(const std::string& var) const {
  auto it = sorts_.find(var);
  return it != sorts_.end() && it->second == query::Sort::kTime;
}

std::optional<std::int64_t> AbstractInterpreter::MissingDataFactor(
    const std::vector<std::string>& vars,
    const std::vector<std::string>& present) const {
  Bound factor = 1;
  for (const std::string& v : vars) {
    if (std::binary_search(present.begin(), present.end(), v)) continue;
    auto it = sorts_.find(v);
    if (it == sorts_.end()) return std::nullopt;  // Unknown sort: give up.
    if (it->second == query::Sort::kTime) continue;  // Universe column.
    factor = MulBound(factor, domain_size(it->second));
  }
  return factor;
}

Certificate AbstractInterpreter::Node(const query::Query& q) {
  auto it = certs_.find(&q);
  if (it != certs_.end()) return it->second;
  using query::Query;
  Certificate cert;
  switch (q.kind()) {
    case Query::Kind::kAtom:
      cert = AtomCert(q);
      break;
    case Query::Kind::kCmp:
      cert = CmpCert(q);
      break;
    case Query::Kind::kAnd:
      cert = Conjoin(Node(*q.left()), Node(*q.right()));
      break;
    case Query::Kind::kOr:
      cert = DisjoinCert(q, Node(*q.left()), Node(*q.right()));
      break;
    case Query::Kind::kNot:
      cert = ComplementCert(q, Node(*q.left()));
      break;
    case Query::Kind::kExists:
      cert = ExistsCert(q, Node(*q.left()));
      break;
    case Query::Kind::kForall: {
      // NOT (EXISTS v (NOT body)): cardinality and hull are out of reach
      // (both complements run at the representation level), but every
      // complement normalizes to a uniform period dividing the body's lcm,
      // and the inner projection preserves divisibility.
      Certificate child = Node(*q.left());
      cert.lcm = CapLcm(child.lcm);
      break;
    }
  }
  certs_.emplace(&q, cert);
  return cert;
}

Certificate AbstractInterpreter::AtomCert(const query::Query& q) {
  Certificate cert;
  Result<GeneralizedRelation> rel = db_.Get(q.relation());
  if (!rel.ok()) return cert;  // Reported by the analyzer as A001.
  const Schema& schema = rel.value().schema();
  const int m = schema.temporal_arity();
  if (static_cast<int>(q.args().size()) !=
      m + schema.data_arity()) {
    return cert;  // Reported as A002.
  }
  RelationStats stats = StatsFor(q.relation(), rel.value());
  cert.lcm = CapLcm(stats.period_lcm_rep);

  // The atom pipeline (query/eval.cc EvalAtom) selects, shifts, and then
  // projects to one column per variable.  Under partial normalization (the
  // engine default; see the soundness note in absint.h) the projection
  // splits tuples only when a temporal column is dropped -- a constant or
  // a repeated variable in a temporal position.
  bool drops_temporal = false;
  std::set<std::string> seen_temporal;
  for (std::size_t i = 0; i < q.args().size() && static_cast<int>(i) < m;
       ++i) {
    const query::Term& t = q.args()[i];
    if (t.kind != query::Term::Kind::kVariable) {
      drops_temporal = true;
    } else if (!seen_temporal.insert(t.var).second) {
      drops_temporal = true;
    }
  }
  cert.rows = drops_temporal ? stats.normalized_rows
                             : Bound(stats.tuple_count);

  // Hull: the stats hull of each temporal column, shifted by the term
  // offset (column = v + c, so v = column - c), intersected over every
  // position the variable occupies.
  for (std::size_t i = 0; i < q.args().size() && static_cast<int>(i) < m;
       ++i) {
    const query::Term& t = q.args()[i];
    if (t.kind != query::Term::Kind::kVariable) continue;
    Interval col = stats.bit_empty
                       ? Interval::Empty()
                       : Interval{stats.hull_lo[i], stats.hull_hi[i]};
    Interval shifted = col.empty()
                           ? Interval::Empty()
                           : Interval{SatSub(col.lo, t.number),
                                      SatSub(col.hi, t.number)};
    auto [pos, inserted] = cert.hull.emplace(t.var, shifted);
    if (!inserted) pos->second = pos->second.Intersect(shifted);
  }
  return cert;
}

Certificate AbstractInterpreter::CmpCert(const query::Query& q) {
  using query::QueryCmp;
  using query::Term;
  Certificate cert;
  cert.lcm = 1;
  const Term& l = q.lhs();
  const Term& r = q.rhs();
  const bool l_var = l.kind == Term::Kind::kVariable;
  const bool r_var = r.kind == Term::Kind::kVariable;
  if (!l_var && !r_var) {
    cert.rows = 1;  // BooleanRelation: zero or one tuples.
    return cert;
  }
  const std::string& probe = l_var ? l.var : r.var;
  auto sort_it = sorts_.find(probe);
  if (sort_it == sorts_.end()) return Certificate{};  // Sorts failed: top.
  if (sort_it->second == query::Sort::kTime) {
    if (l_var && r_var && l.var == r.var) {
      cert.rows = 1;  // Universe({v}) or empty.
      return cert;
    }
    if (l_var && r_var) {
      cert.rows = q.cmp() == QueryCmp::kNe ? 2 : 1;
      return cert;
    }
    // Variable vs integer constant: (v + c) op K  <=>  v op K - c.
    const Term& var_term = l_var ? l : r;
    const Term& const_term = l_var ? r : l;
    if (const_term.kind != Term::Kind::kInt) return Certificate{};
    QueryCmp cmp = q.cmp();
    if (!l_var) {
      switch (cmp) {
        case QueryCmp::kLe:
          cmp = QueryCmp::kGe;
          break;
        case QueryCmp::kLt:
          cmp = QueryCmp::kGt;
          break;
        case QueryCmp::kGe:
          cmp = QueryCmp::kLe;
          break;
        case QueryCmp::kGt:
          cmp = QueryCmp::kLt;
          break;
        default:
          break;
      }
    }
    std::int64_t bound =
        Clamp128(static_cast<__int128>(const_term.number) -
                 static_cast<__int128>(var_term.number));
    cert.rows = cmp == QueryCmp::kNe ? 2 : 1;
    switch (cmp) {
      case QueryCmp::kEq:
        cert.hull[var_term.var] = Interval::Point(bound);
        break;
      case QueryCmp::kLe:
        cert.hull[var_term.var] = Interval::AtMost(bound);
        break;
      case QueryCmp::kLt:
        cert.hull[var_term.var] = Interval::AtMost(SatSub(bound, 1));
        break;
      case QueryCmp::kGe:
        cert.hull[var_term.var] = Interval::AtLeast(bound);
        break;
      case QueryCmp::kGt:
        cert.hull[var_term.var] =
            Interval::AtLeast(Clamp128(static_cast<__int128>(bound) + 1));
        break;
      case QueryCmp::kNe:
        break;
    }
    return cert;
  }
  // Data sort: tuples are drawn from the active domain of the type.
  Bound n = domain_size(sort_it->second);
  if (l_var && r_var) {
    cert.rows = q.cmp() == QueryCmp::kEq ? n : MulBound(n, n);
    return cert;
  }
  cert.rows = q.cmp() == QueryCmp::kEq ? Bound(1) : n;
  return cert;
}

Certificate AbstractInterpreter::Conjoin(const Certificate& l,
                                         const Certificate& r) const {
  Certificate out;
  // Join emits at most one tuple per operand pair; the canonicalizing
  // reorder afterwards is split-free under partial normalization.
  out.rows = MulBound(l.rows, r.rows);
  out.lcm = CapLcm(LcmBound(l.lcm, r.lcm));
  // Natural join: a shared variable satisfies both sides' bounds, a
  // one-sided variable keeps its side's.
  out.hull = l.hull;
  for (const auto& [var, interval] : r.hull) {
    auto [pos, inserted] = out.hull.emplace(var, interval);
    if (!inserted) pos->second = pos->second.Intersect(interval);
  }
  return out;
}

Certificate AbstractInterpreter::DisjoinCert(const query::Query& q,
                                             const Certificate& l,
                                             const Certificate& r) const {
  Certificate out;
  std::vector<std::string> vars_l = q.left()->FreeVariables();
  std::vector<std::string> vars_r = q.right()->FreeVariables();
  // Each side is extended to the union of variables by cross product with
  // a universe: one tuple per combination of the missing data variables'
  // active domains (missing temporal variables add columns, not tuples).
  Bound ext_l = MulBound(l.rows, MissingDataFactor(vars_r, vars_l));
  Bound ext_r = MulBound(r.rows, MissingDataFactor(vars_l, vars_r));
  out.rows = AddBound(ext_l, ext_r);
  out.lcm = CapLcm(LcmBound(l.lcm, r.lcm));
  // A variable bounded on both sides is bounded by the union; a variable
  // missing from either map is unconstrained there (extension to the
  // universe makes one-sided bounds worthless).
  for (const auto& [var, interval] : l.hull) {
    auto rit = r.hull.find(var);
    if (rit == r.hull.end()) continue;
    out.hull.emplace(var, interval.Union(rit->second));
  }
  return out;
}

Certificate AbstractInterpreter::ComplementCert(
    const query::Query& q, const Certificate& child) const {
  (void)q;
  Certificate cert;
  // Cardinality: the complement enumerates a k^m residue universe --
  // unbounded from the certificate's point of view.  Hull: the complement
  // of a bounded set is unbounded -- top.  Period: the complement
  // normalizes every tuple to the representation's common period k (the
  // lcm of all stored periods, infeasible tuples included), and k divides
  // the child's certified lcm; coalescing only merges residue classes into
  // divisors of k.
  cert.lcm = CapLcm(child.lcm);
  return cert;
}

Certificate AbstractInterpreter::ExistsCert(const query::Query& q,
                                            const Certificate& child) const {
  const std::string& var = q.quantified_var();
  Certificate cert = child;
  cert.hull.erase(var);
  std::vector<std::string> free_child = q.left()->FreeVariables();
  if (!std::binary_search(free_child.begin(), free_child.end(), var)) {
    return cert;  // Vacuous quantification: the relation passes through.
  }
  if (IsTemporal(var)) {
    // Projection normalizes the dropped column's constraint component to
    // its lcm L_t: each tuple splits prod(L_t/k_c) = L_t^j / prod(k_c)
    // ways over the j nonzero-period columns, and since the lcm divides
    // the product this is at most L_t^(j-1) <= L^(m-1).  Dropping a data
    // column touches no constraint component and never splits.
    int m = 0;
    for (const std::string& v : free_child) {
      if (IsTemporal(v)) ++m;
    }
    cert.rows = MulBound(child.rows, PowBound(child.lcm, std::max(m - 1, 0)));
  }
  return cert;
}

}  // namespace analysis
}  // namespace itdb
