#include "analysis/rewrite.h"

#include <algorithm>
#include <string>
#include <vector>

namespace itdb {
namespace analysis {

namespace {

using query::Query;
using query::QueryPtr;

/// free(a) subset-of free(b); FreeVariables() returns sorted vectors.
bool FreeVarsSubset(const Query& a, const Query& b) {
  const std::vector<std::string> av = a.FreeVariables();
  const std::vector<std::string> bv = b.FreeVariables();
  return std::includes(bv.begin(), bv.end(), av.begin(), av.end());
}

struct Rewriter {
  const std::set<const Query*>& empty;
  int removed = 0;

  /// `negated` mirrors the pending-negation flag of the optimizer's
  /// PushNegations: it flips at NOT, is inherited by AND / OR / FORALL
  /// operands, and resets at an EXISTS body (the optimizer keeps the
  /// negation outside the quantifier).  Elimination only fires at
  /// non-negated OR nodes -- under a pending negation the optimizer turns
  /// the OR into an AND (De Morgan), and conjoining with the complement of
  /// an empty branch is semantically a no-op but not representation-
  /// preserving, which would break the bit-identity contract.
  QueryPtr Rewrite(const QueryPtr& q, bool negated) {
    switch (q->kind()) {
      case Query::Kind::kAtom:
      case Query::Kind::kCmp:
        return q;
      case Query::Kind::kAnd: {
        QueryPtr left = Rewrite(q->left(), negated);
        QueryPtr right = Rewrite(q->right(), negated);
        if (left == q->left() && right == q->right()) return q;
        return Rebuild(Query::And(std::move(left), std::move(right)), q);
      }
      case Query::Kind::kOr: {
        // Dead-branch elimination: dropping an empty branch whose free
        // variables the sibling covers appends zero tuples fewer to the
        // union -- bit-identical (see rewrite.h).
        if (!negated && empty.contains(q->left().get()) &&
            FreeVarsSubset(*q->left(), *q->right())) {
          ++removed;
          return Rewrite(q->right(), negated);
        }
        if (!negated && empty.contains(q->right().get()) &&
            FreeVarsSubset(*q->right(), *q->left())) {
          ++removed;
          return Rewrite(q->left(), negated);
        }
        QueryPtr left = Rewrite(q->left(), negated);
        QueryPtr right = Rewrite(q->right(), negated);
        if (left == q->left() && right == q->right()) return q;
        return Rebuild(Query::Or(std::move(left), std::move(right)), q);
      }
      case Query::Kind::kNot: {
        QueryPtr body = Rewrite(q->left(), !negated);
        if (body == q->left()) return q;
        return Rebuild(Query::Not(std::move(body)), q);
      }
      case Query::Kind::kExists: {
        QueryPtr body = Rewrite(q->left(), /*negated=*/false);
        if (body == q->left()) return q;
        return Rebuild(Query::Exists(q->quantified_var(), std::move(body)), q);
      }
      case Query::Kind::kForall: {
        QueryPtr body = Rewrite(q->left(), negated);
        if (body == q->left()) return q;
        return Rebuild(Query::Forall(q->quantified_var(), std::move(body)), q);
      }
    }
    return q;
  }

  static QueryPtr Rebuild(QueryPtr node, const QueryPtr& original) {
    Query::SetSpans(node, original->span());
    return node;
  }
};

}  // namespace

QueryPtr EliminateDeadBranches(const QueryPtr& q,
                               const std::set<const Query*>& empty,
                               int* removed) {
  Rewriter rewriter{empty};
  QueryPtr out = rewriter.Rewrite(q, /*negated=*/false);
  if (removed != nullptr) *removed = rewriter.removed;
  return out;
}

}  // namespace analysis
}  // namespace itdb
