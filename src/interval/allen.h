// Allen's thirteen interval relations over generalized relations.
//
// The paper motivates interval-based temporal reasoning (Section 1, Example
// 2.4, citing [All83]) and represents an interval as a pair of temporal
// attributes.  Every Allen relation between two intervals (s1,e1), (s2,e2)
// is a conjunction of restricted atomic constraints over the four
// endpoints, so Allen reasoning composes directly with the Section 3
// algebra: this module provides the constraint encodings, ground
// evaluation, and an AllenJoin over generalized interval relations whose
// result is again a generalized relation -- Allen reasoning over
// *infinitely many* intervals in closed form.

#ifndef ITDB_INTERVAL_ALLEN_H_
#define ITDB_INTERVAL_ALLEN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/algebra.h"
#include "core/relation.h"
#include "util/status.h"

namespace itdb {

/// Allen's interval relations, strict-interval (s < e) semantics.
enum class AllenRelation {
  kBefore,        // e1 <  s2
  kAfter,         // e2 <  s1
  kMeets,         // e1 == s2
  kMetBy,         // e2 == s1
  kOverlaps,      // s1 < s2 < e1 < e2
  kOverlappedBy,  // s2 < s1 < e2 < e1
  kStarts,        // s1 == s2, e1 < e2
  kStartedBy,     // s1 == s2, e2 < e1
  kDuring,        // s2 < s1, e1 < e2
  kContains,      // s1 < s2, e2 < e1
  kFinishes,      // e1 == e2, s2 < s1
  kFinishedBy,    // e1 == e2, s1 < s2
  kEquals,        // s1 == s2, e1 == e2
};

/// All thirteen relations, for sweeps.
inline constexpr AllenRelation kAllAllenRelations[] = {
    AllenRelation::kBefore,       AllenRelation::kAfter,
    AllenRelation::kMeets,        AllenRelation::kMetBy,
    AllenRelation::kOverlaps,     AllenRelation::kOverlappedBy,
    AllenRelation::kStarts,       AllenRelation::kStartedBy,
    AllenRelation::kDuring,       AllenRelation::kContains,
    AllenRelation::kFinishes,     AllenRelation::kFinishedBy,
    AllenRelation::kEquals,
};

/// "before", "met-by", ... (stable names).
std::string_view AllenRelationName(AllenRelation rel);

/// The converse relation: r(a, b) holds iff Inverse(r)(b, a) holds.
AllenRelation AllenInverse(AllenRelation rel);

/// Ground truth on concrete strict intervals (pre: s1 < e1, s2 < e2).
bool AllenHolds(AllenRelation rel, std::int64_t s1, std::int64_t e1,
                std::int64_t s2, std::int64_t e2);

/// The relation as a conjunction of selection conditions over temporal
/// columns s1/e1/s2/e2 (column indices into some schema).
std::vector<TemporalCondition> AllenConditions(AllenRelation rel, int s1,
                                               int e1, int s2, int e2);

/// Restricts `r` to tuples-parts whose interval is strict: start < end on
/// the given columns.
Result<GeneralizedRelation> RestrictToStrictIntervals(
    const GeneralizedRelation& r, int start_col, int end_col,
    const AlgebraOptions& options = {});

/// Computes the Allen composition table entry for (r1, r2) *symbolically*:
/// the set of relations r such that there exist strict intervals a, b, c
/// with a r1 b, b r2 c and a r c.  Derived from the algebra itself -- a
/// six-column universe constrained by r1 and r2, projected onto (a, c) and
/// tested for intersection with each candidate relation -- rather than
/// from a hard-coded table.
Result<std::vector<AllenRelation>> AllenCompose(
    AllenRelation r1, AllenRelation r2, const AlgebraOptions& options = {});

/// Joins two interval relations under an Allen relation: the result pairs
/// every interval of `a` (its first two temporal columns) with every
/// interval of `b` (likewise) such that  a-interval  rel  b-interval, as a
/// generalized relation over a's columns followed by b's (b's attribute
/// names suffixed with `b_suffix` where they collide with a's).  Both
/// inputs must have temporal arity >= 2; intervals are taken strict.
Result<GeneralizedRelation> AllenJoin(const GeneralizedRelation& a,
                                      const GeneralizedRelation& b,
                                      AllenRelation rel,
                                      const AlgebraOptions& options = {},
                                      const std::string& b_suffix = "_r");

}  // namespace itdb

#endif  // ITDB_INTERVAL_ALLEN_H_
