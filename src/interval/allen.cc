#include "interval/allen.h"

#include <string>
#include <utility>

namespace itdb {

std::string_view AllenRelationName(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kAfter:
      return "after";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kEquals:
      return "equals";
  }
  return "?";
}

AllenRelation AllenInverse(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kDuring:
      return AllenRelation::kContains;
    case AllenRelation::kContains:
      return AllenRelation::kDuring;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
  }
  return rel;
}

bool AllenHolds(AllenRelation rel, std::int64_t s1, std::int64_t e1,
                std::int64_t s2, std::int64_t e2) {
  switch (rel) {
    case AllenRelation::kBefore:
      return e1 < s2;
    case AllenRelation::kAfter:
      return e2 < s1;
    case AllenRelation::kMeets:
      return e1 == s2;
    case AllenRelation::kMetBy:
      return e2 == s1;
    case AllenRelation::kOverlaps:
      return s1 < s2 && s2 < e1 && e1 < e2;
    case AllenRelation::kOverlappedBy:
      return s2 < s1 && s1 < e2 && e2 < e1;
    case AllenRelation::kStarts:
      return s1 == s2 && e1 < e2;
    case AllenRelation::kStartedBy:
      return s1 == s2 && e2 < e1;
    case AllenRelation::kDuring:
      return s2 < s1 && e1 < e2;
    case AllenRelation::kContains:
      return s1 < s2 && e2 < e1;
    case AllenRelation::kFinishes:
      return e1 == e2 && s2 < s1;
    case AllenRelation::kFinishedBy:
      return e1 == e2 && s1 < s2;
    case AllenRelation::kEquals:
      return s1 == s2 && e1 == e2;
  }
  return false;
}

std::vector<TemporalCondition> AllenConditions(AllenRelation rel, int s1,
                                               int e1, int s2, int e2) {
  auto lt = [](int a, int b) {
    return TemporalCondition{a, b, CmpOp::kLt, 0};
  };
  auto eq = [](int a, int b) {
    return TemporalCondition{a, b, CmpOp::kEq, 0};
  };
  switch (rel) {
    case AllenRelation::kBefore:
      return {lt(e1, s2)};
    case AllenRelation::kAfter:
      return {lt(e2, s1)};
    case AllenRelation::kMeets:
      return {eq(e1, s2)};
    case AllenRelation::kMetBy:
      return {eq(e2, s1)};
    case AllenRelation::kOverlaps:
      return {lt(s1, s2), lt(s2, e1), lt(e1, e2)};
    case AllenRelation::kOverlappedBy:
      return {lt(s2, s1), lt(s1, e2), lt(e2, e1)};
    case AllenRelation::kStarts:
      return {eq(s1, s2), lt(e1, e2)};
    case AllenRelation::kStartedBy:
      return {eq(s1, s2), lt(e2, e1)};
    case AllenRelation::kDuring:
      return {lt(s2, s1), lt(e1, e2)};
    case AllenRelation::kContains:
      return {lt(s1, s2), lt(e2, e1)};
    case AllenRelation::kFinishes:
      return {eq(e1, e2), lt(s2, s1)};
    case AllenRelation::kFinishedBy:
      return {eq(e1, e2), lt(s1, s2)};
    case AllenRelation::kEquals:
      return {eq(s1, s2), eq(e1, e2)};
  }
  return {};
}

Result<GeneralizedRelation> RestrictToStrictIntervals(
    const GeneralizedRelation& r, int start_col, int end_col,
    const AlgebraOptions& options) {
  return SelectTemporal(r, TemporalCondition{start_col, end_col, CmpOp::kLt, 0},
                        options);
}

Result<std::vector<AllenRelation>> AllenCompose(
    AllenRelation r1, AllenRelation r2, const AlgebraOptions& options) {
  // Universe of interval triples (s1,e1,s2,e2,s3,e3), strict intervals.
  GeneralizedRelation triples(
      Schema({"S1", "E1", "S2", "E2", "S3", "E3"}, {}, {}));
  ITDB_RETURN_IF_ERROR(triples.AddTuple(GeneralizedTuple(
      std::vector<Lrp>(6, Lrp::Make(0, 1)))));
  for (int i = 0; i < 3; ++i) {
    ITDB_ASSIGN_OR_RETURN(
        triples,
        SelectTemporal(triples,
                       TemporalCondition{2 * i, 2 * i + 1, CmpOp::kLt, 0},
                       options));
  }
  for (const TemporalCondition& cond : AllenConditions(r1, 0, 1, 2, 3)) {
    ITDB_ASSIGN_OR_RETURN(triples, SelectTemporal(triples, cond, options));
  }
  for (const TemporalCondition& cond : AllenConditions(r2, 2, 3, 4, 5)) {
    ITDB_ASSIGN_OR_RETURN(triples, SelectTemporal(triples, cond, options));
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation pairs,
                        Project(triples, {"S1", "E1", "S3", "E3"}, options));
  std::vector<AllenRelation> out;
  for (AllenRelation candidate : kAllAllenRelations) {
    GeneralizedRelation restricted = pairs;
    for (const TemporalCondition& cond :
         AllenConditions(candidate, 0, 1, 2, 3)) {
      ITDB_ASSIGN_OR_RETURN(restricted,
                            SelectTemporal(restricted, cond, options));
    }
    ITDB_ASSIGN_OR_RETURN(bool empty, IsEmpty(restricted, options));
    if (!empty) out.push_back(candidate);
  }
  return out;
}

Result<GeneralizedRelation> AllenJoin(const GeneralizedRelation& a,
                                      const GeneralizedRelation& b,
                                      AllenRelation rel,
                                      const AlgebraOptions& options,
                                      const std::string& b_suffix) {
  if (a.schema().temporal_arity() < 2 || b.schema().temporal_arity() < 2) {
    return Status::InvalidArgument(
        "AllenJoin: both relations need temporal arity >= 2 (interval "
        "endpoints)");
  }
  // Rename b's attributes that collide with a's.
  std::vector<std::pair<std::string, std::string>> renames;
  for (const std::string& n : b.schema().temporal_names()) {
    if (a.schema().FindTemporal(n).has_value()) {
      renames.emplace_back(n, n + b_suffix);
    }
  }
  for (const std::string& n : b.schema().data_names()) {
    if (a.schema().FindData(n).has_value()) {
      renames.emplace_back(n, n + b_suffix);
    }
  }
  GeneralizedRelation b_renamed = b;
  if (!renames.empty()) {
    ITDB_ASSIGN_OR_RETURN(b_renamed, Rename(b, renames));
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation a_strict,
                        RestrictToStrictIntervals(a, 0, 1, options));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation b_strict,
                        RestrictToStrictIntervals(b_renamed, 0, 1, options));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation crossed,
                        CrossProduct(a_strict, b_strict, options));
  const int ma = a.schema().temporal_arity();
  GeneralizedRelation out = std::move(crossed);
  for (const TemporalCondition& cond :
       AllenConditions(rel, /*s1=*/0, /*e1=*/1, /*s2=*/ma, /*e2=*/ma + 1)) {
    ITDB_ASSIGN_OR_RETURN(out, SelectTemporal(out, cond, options));
  }
  return out;
}

}  // namespace itdb
