// Parser for textual temporal-logic formulas.
//
// Grammar (precedence low to high):
//   impl   := or ("->" impl)?                (right associative)
//   or     := and ("|" and)*
//   and    := until ("&" until)*
//   until  := unary (OP2 unary)?             (right associative)
//   OP2    := "U" (until) | "S" (since) | "W" (weak until) | "R" (release)
//   unary  := "!" unary | modal
//   modal  := OP ("[" INT "," INT "]")? unary
//           | "(" impl ")"
//           | IDENT                          (a proposition name)
//   OP     := "X" (next) | "Y" (previously) | "F" (eventually)
//           | "G" (always) | "O" (once) | "H" (historically)
//
// The single letters X Y F G O H act as operators only when followed by
// '(' , '[' or '!'; otherwise they parse as proposition names, so relations
// named "F" remain usable.  Bounds "[l,h]" are only meaningful on F and G
// (giving EventuallyWithin / AlwaysWithin).
//
// Examples:
//   G(alert -> F[0,4] service)
//   !(p U q) | X p
//   H (poll) -> O (service)

#ifndef ITDB_TL_PARSER_H_
#define ITDB_TL_PARSER_H_

#include <string_view>

#include "tl/ltl.h"
#include "util/status.h"

namespace itdb {
namespace tl {

/// Parses one formula; fails with kParseError on malformed input.
Result<TlPtr> ParseTlFormula(std::string_view text);

}  // namespace tl
}  // namespace itdb

#endif  // ITDB_TL_PARSER_H_
