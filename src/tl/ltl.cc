#include "tl/ltl.h"

#include <limits>
#include <utility>
#include <vector>

#include "util/numeric.h"

namespace itdb {
namespace tl {

struct TlBuilder : TlFormula {
  using TlFormula::TlFormula;
  Kind& kind() { return kind_; }
  std::string& prop() { return prop_; }
  TlPtr& left() { return left_; }
  TlPtr& right() { return right_; }
  std::int64_t& lo() { return lo_; }
  std::int64_t& hi() { return hi_; }
};

namespace {

std::shared_ptr<TlBuilder> NewNode(TlFormula::Kind kind) {
  auto node = std::make_shared<TlBuilder>();
  node->kind() = kind;
  return node;
}

std::shared_ptr<TlBuilder> Unary(TlFormula::Kind kind, TlPtr a) {
  auto node = NewNode(kind);
  node->left() = std::move(a);
  return node;
}

std::shared_ptr<TlBuilder> Binary(TlFormula::Kind kind, TlPtr a, TlPtr b) {
  auto node = NewNode(kind);
  node->left() = std::move(a);
  node->right() = std::move(b);
  return node;
}

}  // namespace

TlPtr TlFormula::Prop(std::string relation_name) {
  auto node = NewNode(Kind::kProp);
  node->prop() = std::move(relation_name);
  return node;
}
TlPtr TlFormula::Not(TlPtr a) { return Unary(Kind::kNot, std::move(a)); }
TlPtr TlFormula::And(TlPtr a, TlPtr b) {
  return Binary(Kind::kAnd, std::move(a), std::move(b));
}
TlPtr TlFormula::Or(TlPtr a, TlPtr b) {
  return Binary(Kind::kOr, std::move(a), std::move(b));
}
TlPtr TlFormula::Implies(TlPtr a, TlPtr b) {
  return Or(Not(std::move(a)), std::move(b));
}
TlPtr TlFormula::Next(TlPtr a) { return Unary(Kind::kNext, std::move(a)); }
TlPtr TlFormula::Prev(TlPtr a) { return Unary(Kind::kPrev, std::move(a)); }
TlPtr TlFormula::Eventually(TlPtr a) {
  return Unary(Kind::kEventually, std::move(a));
}
TlPtr TlFormula::Always(TlPtr a) { return Unary(Kind::kAlways, std::move(a)); }
TlPtr TlFormula::Once(TlPtr a) { return Unary(Kind::kOnce, std::move(a)); }
TlPtr TlFormula::Historically(TlPtr a) {
  return Unary(Kind::kHistorically, std::move(a));
}
TlPtr TlFormula::Until(TlPtr a, TlPtr b) {
  return Binary(Kind::kUntil, std::move(a), std::move(b));
}
TlPtr TlFormula::Since(TlPtr a, TlPtr b) {
  return Binary(Kind::kSince, std::move(a), std::move(b));
}
TlPtr TlFormula::EventuallyWithin(TlPtr a, std::int64_t lo, std::int64_t hi) {
  auto node = Unary(Kind::kEventuallyWithin, std::move(a));
  node->lo() = lo;
  node->hi() = hi;
  return node;
}
TlPtr TlFormula::AlwaysWithin(TlPtr a, std::int64_t lo, std::int64_t hi) {
  auto node = Unary(Kind::kAlwaysWithin, std::move(a));
  node->lo() = lo;
  node->hi() = hi;
  return node;
}
TlPtr TlFormula::WeakUntil(TlPtr a, TlPtr b) {
  TlPtr always_a = Always(a);
  return Or(std::move(always_a), Until(std::move(a), std::move(b)));
}
TlPtr TlFormula::Release(TlPtr a, TlPtr b) {
  return Not(Until(Not(std::move(a)), Not(std::move(b))));
}

std::string TlFormula::ToString() const {
  switch (kind_) {
    case Kind::kProp:
      return prop_;
    case Kind::kNot:
      return "!(" + left_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case Kind::kNext:
      return "X(" + left_->ToString() + ")";
    case Kind::kPrev:
      return "Y(" + left_->ToString() + ")";
    case Kind::kEventually:
      return "F(" + left_->ToString() + ")";
    case Kind::kAlways:
      return "G(" + left_->ToString() + ")";
    case Kind::kOnce:
      return "P(" + left_->ToString() + ")";
    case Kind::kHistorically:
      return "H(" + left_->ToString() + ")";
    case Kind::kUntil:
      return "(" + left_->ToString() + " U " + right_->ToString() + ")";
    case Kind::kSince:
      return "(" + left_->ToString() + " S " + right_->ToString() + ")";
    case Kind::kEventuallyWithin:
      return "F[" + std::to_string(lo_) + "," + std::to_string(hi_) + "](" +
             left_->ToString() + ")";
    case Kind::kAlwaysWithin:
      return "G[" + std::to_string(lo_) + "," + std::to_string(hi_) + "](" +
             left_->ToString() + ")";
  }
  return "?";
}

namespace {

constexpr std::int64_t kNoBound = std::numeric_limits<std::int64_t>::min();

Schema UnarySchema() { return Schema({"T"}, {}, {}); }

GeneralizedRelation UniverseT() {
  GeneralizedRelation out(UnarySchema());
  Status s = out.AddTuple(GeneralizedTuple({Lrp::Make(0, 1)}));
  (void)s;
  return out;
}

/// {t | exists u in S: lo <= u - t <= hi}, where either bound may be
/// kNoBound (absent).  This one combinator yields F, P, and the bounded
/// variants.
Result<GeneralizedRelation> ExistsAtOffset(const GeneralizedRelation& s,
                                           std::int64_t lo, std::int64_t hi,
                                           const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation u_named,
                        Rename(s, {{"T", "U"}}));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation pairs,
                        CrossProduct(u_named, UniverseT(), options));
  // Columns: U = 0, T = 1.
  if (lo != kNoBound) {
    // u - t >= lo  <=>  T <= U - lo.
    ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedSub(0, lo));
    ITDB_ASSIGN_OR_RETURN(
        pairs,
        SelectTemporal(pairs, TemporalCondition{1, 0, CmpOp::kLe, b},
                       options));
  }
  if (hi != kNoBound) {
    // u - t <= hi  <=>  U <= T + hi.
    ITDB_ASSIGN_OR_RETURN(
        pairs,
        SelectTemporal(pairs, TemporalCondition{0, 1, CmpOp::kLe, hi},
                       options));
  }
  return Project(pairs, {"T"}, options);
}

Result<GeneralizedRelation> Sat(const Database& db, const TlFormula& f,
                                const AlgebraOptions& options);

Result<GeneralizedRelation> SatNegated(const Database& db, const TlPtr& f,
                                       const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation inner, Sat(db, *f, options));
  return Complement(inner, options);
}

/// Until / Since.  For Until (past = false):
///   t |= a U b  iff  exists u >= t: b(u) and for all v in [t, u): a(v).
/// Computed as Project_T( GOOD - BAD ) where
///   GOOD = {(t,u) | u in Sat(b), t <= u}
///   BAD  = {(t,u) | exists v: t <= v <= u-1, v not in Sat(a)}.
Result<GeneralizedRelation> SatUntil(const Database& db, const TlFormula& f,
                                     bool past,
                                     const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation sat_a, Sat(db, *f.left(), options));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation sat_b,
                        Sat(db, *f.right(), options));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation not_a, Complement(sat_a, options));
  // GOOD pairs.
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation b_named,
                        Rename(sat_b, {{"T", "U"}}));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation good,
                        CrossProduct(b_named, UniverseT(), options));
  {  // Columns: U = 0, T = 1.
    TemporalCondition order = past ? TemporalCondition{0, 1, CmpOp::kLe, 0}
                                   : TemporalCondition{1, 0, CmpOp::kLe, 0};
    ITDB_ASSIGN_OR_RETURN(good, SelectTemporal(good, order, options));
    ITDB_ASSIGN_OR_RETURN(good, Project(good, {"T", "U"}, options));
  }
  // BAD pairs: a violation strictly between t and u (exclusive of u for
  // Until, exclusive of u for Since mirrored: v in (u, t]).
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation v_named,
                        Rename(not_a, {{"T", "V"}}));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation tu,
                        CrossProduct(UniverseT(), v_named, options));
  // Columns now: T = 0, V = 1.  Add U via another cross product.
  GeneralizedRelation u_universe(Schema({"U"}, {}, {}));
  ITDB_RETURN_IF_ERROR(
      u_universe.AddTuple(GeneralizedTuple({Lrp::Make(0, 1)})));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation triples,
                        CrossProduct(tu, u_universe, options));
  // Columns: T = 0, V = 1, U = 2.
  if (!past) {
    // t <= v <= u - 1.
    ITDB_ASSIGN_OR_RETURN(
        triples,
        SelectTemporal(triples, TemporalCondition{0, 1, CmpOp::kLe, 0},
                       options));
    ITDB_ASSIGN_OR_RETURN(
        triples,
        SelectTemporal(triples, TemporalCondition{1, 2, CmpOp::kLe, -1},
                       options));
  } else {
    // u + 1 <= v <= t.
    ITDB_ASSIGN_OR_RETURN(
        triples,
        SelectTemporal(triples, TemporalCondition{2, 1, CmpOp::kLe, -1},
                       options));
    ITDB_ASSIGN_OR_RETURN(
        triples,
        SelectTemporal(triples, TemporalCondition{1, 0, CmpOp::kLe, 0},
                       options));
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation bad,
                        Project(triples, {"T", "U"}, options));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation witnesses,
                        Subtract(good, bad, options));
  return Project(witnesses, {"T"}, options);
}

Result<GeneralizedRelation> Sat(const Database& db, const TlFormula& f,
                                const AlgebraOptions& options) {
  switch (f.kind()) {
    case TlFormula::Kind::kProp: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(f.prop()));
      if (rel.schema().temporal_arity() != 1 ||
          rel.schema().data_arity() != 0) {
        return Status::InvalidArgument(
            "proposition \"" + f.prop() +
            "\" must be a purely temporal unary relation");
      }
      return Rename(rel, {{rel.schema().temporal_name(0), "T"}});
    }
    case TlFormula::Kind::kNot:
      return SatNegated(db, f.left(), options);
    case TlFormula::Kind::kAnd: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation l, Sat(db, *f.left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r,
                            Sat(db, *f.right(), options));
      return Intersect(l, r, options);
    }
    case TlFormula::Kind::kOr: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation l, Sat(db, *f.left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation r,
                            Sat(db, *f.right(), options));
      return Union(l, r, options);
    }
    case TlFormula::Kind::kNext: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, Sat(db, *f.left(), options));
      return ShiftTemporalColumn(s, 0, -1);
    }
    case TlFormula::Kind::kPrev: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, Sat(db, *f.left(), options));
      return ShiftTemporalColumn(s, 0, 1);
    }
    case TlFormula::Kind::kEventually: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, Sat(db, *f.left(), options));
      return ExistsAtOffset(s, 0, kNoBound, options);
    }
    case TlFormula::Kind::kOnce: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, Sat(db, *f.left(), options));
      return ExistsAtOffset(s, kNoBound, 0, options);
    }
    case TlFormula::Kind::kAlways: {
      // G a == !F !a.
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation not_a,
                            SatNegated(db, f.left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation f_not_a,
                            ExistsAtOffset(not_a, 0, kNoBound, options));
      return Complement(f_not_a, options);
    }
    case TlFormula::Kind::kHistorically: {
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation not_a,
                            SatNegated(db, f.left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation p_not_a,
                            ExistsAtOffset(not_a, kNoBound, 0, options));
      return Complement(p_not_a, options);
    }
    case TlFormula::Kind::kEventuallyWithin: {
      if (f.lo() > f.hi()) {
        return Status::InvalidArgument("EventuallyWithin: lo > hi");
      }
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, Sat(db, *f.left(), options));
      return ExistsAtOffset(s, f.lo(), f.hi(), options);
    }
    case TlFormula::Kind::kAlwaysWithin: {
      if (f.lo() > f.hi()) {
        return Status::InvalidArgument("AlwaysWithin: lo > hi");
      }
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation not_a,
                            SatNegated(db, f.left(), options));
      ITDB_ASSIGN_OR_RETURN(GeneralizedRelation violated,
                            ExistsAtOffset(not_a, f.lo(), f.hi(), options));
      return Complement(violated, options);
    }
    case TlFormula::Kind::kUntil:
      return SatUntil(db, f, /*past=*/false, options);
    case TlFormula::Kind::kSince:
      return SatUntil(db, f, /*past=*/true, options);
  }
  return Status::InvalidArgument("unreachable formula kind");
}

}  // namespace

Result<GeneralizedRelation> SatisfactionSet(const Database& db, const TlPtr& f,
                                            const AlgebraOptions& options) {
  return Sat(db, *f, options);
}

Result<bool> HoldsAt(const Database& db, const TlPtr& f, std::int64_t t,
                     const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, SatisfactionSet(db, f, options));
  return s.Contains({{t}, {}});
}

Result<bool> HoldsEverywhere(const Database& db, const TlPtr& f,
                             const AlgebraOptions& options) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation s, SatisfactionSet(db, f, options));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation gaps, Complement(s, options));
  ITDB_ASSIGN_OR_RETURN(bool empty, IsEmpty(gaps, options));
  return empty;
}

}  // namespace tl
}  // namespace itdb
