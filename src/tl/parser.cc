#include "tl/parser.h"

#include <string>
#include <vector>

#include "storage/lexer.h"

namespace itdb {
namespace tl {

namespace {

using F = TlFormula;

Result<TlPtr> ParseImpl(TokenStream& ts);

bool IsModalLetter(const std::string& s) {
  return s == "X" || s == "Y" || s == "F" || s == "G" || s == "O" || s == "H";
}

// A modal letter acts as an operator only when what follows can start a
// modal operand: '(', '[', '!' or another modal application.
bool NextStartsOperand(const TokenStream& ts) {
  const Token& t = ts.Peek(1);
  if (t.kind == TokenKind::kSymbol) {
    return t.text == "(" || t.text == "[" || t.text == "!";
  }
  return false;
}

Result<TlPtr> ParseUnary(TokenStream& ts);

Result<TlPtr> ParseModal(TokenStream& ts) {
  if (ts.Peek().kind == TokenKind::kIdent && IsModalLetter(ts.Peek().text) &&
      NextStartsOperand(ts)) {
    std::string op = ts.Next().text;
    bool bounded = false;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (ts.TrySymbol("[")) {
      bounded = true;
      ITDB_ASSIGN_OR_RETURN(lo, ts.ExpectInt());
      ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
      ITDB_ASSIGN_OR_RETURN(hi, ts.ExpectInt());
      ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("]"));
    }
    ITDB_ASSIGN_OR_RETURN(TlPtr body, ParseUnary(ts));
    if (bounded) {
      if (op == "F") return F::EventuallyWithin(std::move(body), lo, hi);
      if (op == "G") return F::AlwaysWithin(std::move(body), lo, hi);
      return ts.ErrorHere("bounds are only supported on F and G");
    }
    if (op == "X") return F::Next(std::move(body));
    if (op == "Y") return F::Prev(std::move(body));
    if (op == "F") return F::Eventually(std::move(body));
    if (op == "G") return F::Always(std::move(body));
    if (op == "O") return F::Once(std::move(body));
    return F::Historically(std::move(body));  // "H".
  }
  if (ts.TrySymbol("(")) {
    ITDB_ASSIGN_OR_RETURN(TlPtr inner, ParseImpl(ts));
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(")"));
    return inner;
  }
  if (ts.Peek().kind == TokenKind::kIdent) {
    return F::Prop(ts.Next().text);
  }
  return ts.ErrorHere("expected a temporal formula");
}

Result<TlPtr> ParseUnary(TokenStream& ts) {
  if (ts.TrySymbol("!")) {
    ITDB_ASSIGN_OR_RETURN(TlPtr inner, ParseUnary(ts));
    return F::Not(std::move(inner));
  }
  return ParseModal(ts);
}

Result<TlPtr> ParseUntil(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(TlPtr lhs, ParseUnary(ts));
  if (ts.Peek().kind == TokenKind::kIdent &&
      (ts.Peek().text == "U" || ts.Peek().text == "S" ||
       ts.Peek().text == "W" || ts.Peek().text == "R")) {
    std::string op = ts.Next().text;
    ITDB_ASSIGN_OR_RETURN(TlPtr rhs, ParseUntil(ts));
    if (op == "U") return F::Until(std::move(lhs), std::move(rhs));
    if (op == "S") return F::Since(std::move(lhs), std::move(rhs));
    if (op == "W") return F::WeakUntil(std::move(lhs), std::move(rhs));
    return F::Release(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<TlPtr> ParseAnd(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(TlPtr out, ParseUntil(ts));
  while (ts.TrySymbol("&") || ts.TrySymbol("&&")) {
    ITDB_ASSIGN_OR_RETURN(TlPtr rhs, ParseUntil(ts));
    out = F::And(std::move(out), std::move(rhs));
  }
  return out;
}

Result<TlPtr> ParseOr(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(TlPtr out, ParseAnd(ts));
  while (true) {
    // '|' but not '||' (the lexer emits '||' as one token; accept both).
    if (ts.TrySymbol("|") || ts.TrySymbol("||")) {
      ITDB_ASSIGN_OR_RETURN(TlPtr rhs, ParseAnd(ts));
      out = F::Or(std::move(out), std::move(rhs));
      continue;
    }
    return out;
  }
}

Result<TlPtr> ParseImpl(TokenStream& ts) {
  ITDB_ASSIGN_OR_RETURN(TlPtr lhs, ParseOr(ts));
  if (ts.TrySymbol("->")) {
    ITDB_ASSIGN_OR_RETURN(TlPtr rhs, ParseImpl(ts));
    return F::Implies(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

}  // namespace

Result<TlPtr> ParseTlFormula(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  ITDB_ASSIGN_OR_RETURN(TlPtr out, ParseImpl(ts));
  if (!ts.AtEnd()) {
    return ts.ErrorHere("trailing input after formula");
  }
  return out;
}

}  // namespace tl
}  // namespace itdb
