// Point-based linear temporal logic over the infinite integer timeline,
// evaluated by compilation to the Section 3 relational algebra.
//
// The paper's introduction observes that "model-checking is essentially a
// form of query evaluation on a special type of database".  This module
// makes that concrete: atomic propositions are unary temporal relations of
// a Database, and each temporal operator is a fixed first-order definition
// over them, so the satisfaction set of any formula is itself a unary
// generalized relation -- computed exactly, over all of Z, with no horizon.
//
// Operators (discrete time, both temporal directions):
//   Prop(p)                   instants where relation p holds
//   Not / And / Or            boolean structure
//   Next / Prev               one step forward / backward
//   Eventually / Always       unbounded future   (F / G)
//   Once / Historically       unbounded past     (P / H)
//   Until(a, b)               exists u >= t with b(u) and a on [t, u)
//   Since(a, b)               past mirror of Until
//   EventuallyWithin(a,l,h)   exists u in [t+l, t+h] with a(u)
//   AlwaysWithin(a,l,h)       for all  u in [t+l, t+h], a(u)

#ifndef ITDB_TL_LTL_H_
#define ITDB_TL_LTL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/algebra.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {
namespace tl {

class TlFormula;
using TlPtr = std::shared_ptr<const TlFormula>;

/// An immutable temporal-logic formula.
class TlFormula {
 public:
  enum class Kind {
    kProp,
    kNot,
    kAnd,
    kOr,
    kNext,
    kPrev,
    kEventually,
    kAlways,
    kOnce,
    kHistorically,
    kUntil,
    kSince,
    kEventuallyWithin,
    kAlwaysWithin,
  };

  static TlPtr Prop(std::string relation_name);
  static TlPtr Not(TlPtr a);
  static TlPtr And(TlPtr a, TlPtr b);
  static TlPtr Or(TlPtr a, TlPtr b);
  /// a -> b, sugar for (NOT a) OR b.
  static TlPtr Implies(TlPtr a, TlPtr b);
  static TlPtr Next(TlPtr a);
  static TlPtr Prev(TlPtr a);
  static TlPtr Eventually(TlPtr a);
  static TlPtr Always(TlPtr a);
  static TlPtr Once(TlPtr a);
  static TlPtr Historically(TlPtr a);
  static TlPtr Until(TlPtr a, TlPtr b);
  static TlPtr Since(TlPtr a, TlPtr b);
  /// Pre: lo <= hi.
  static TlPtr EventuallyWithin(TlPtr a, std::int64_t lo, std::int64_t hi);
  static TlPtr AlwaysWithin(TlPtr a, std::int64_t lo, std::int64_t hi);
  /// Derived: a W b == G a | (a U b)  (until with no obligation that b
  /// ever happens).
  static TlPtr WeakUntil(TlPtr a, TlPtr b);
  /// Derived: a R b == !( !a U !b )  (b holds up to and including the
  /// first a, or forever).
  static TlPtr Release(TlPtr a, TlPtr b);

  Kind kind() const { return kind_; }
  const std::string& prop() const { return prop_; }
  const TlPtr& left() const { return left_; }
  const TlPtr& right() const { return right_; }
  std::int64_t lo() const { return lo_; }
  std::int64_t hi() const { return hi_; }

  std::string ToString() const;

 protected:
  TlFormula() = default;

 private:
  friend struct TlBuilder;

  Kind kind_ = Kind::kProp;
  std::string prop_;
  TlPtr left_;
  TlPtr right_;
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
};

/// The satisfaction set {t in Z | t |= f} as a unary generalized relation
/// (column "T").  Every proposition must name a relation in `db` of
/// temporal arity 1 and data arity 0.
Result<GeneralizedRelation> SatisfactionSet(const Database& db, const TlPtr& f,
                                            const AlgebraOptions& options = {});

/// Whether the formula holds at the single instant t.
Result<bool> HoldsAt(const Database& db, const TlPtr& f, std::int64_t t,
                     const AlgebraOptions& options = {});

/// Whether the formula holds at every instant (its satisfaction set is Z).
Result<bool> HoldsEverywhere(const Database& db, const TlPtr& f,
                             const AlgebraOptions& options = {});

}  // namespace tl
}  // namespace itdb

#endif  // ITDB_TL_LTL_H_
