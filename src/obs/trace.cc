#include "obs/trace.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace itdb {
namespace obs {

namespace {

/// Thread CPU clock; 0 where unavailable.
std::int64_t ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

/// The stack of active spans of the current thread, one entry per open
/// span: which tracer it belongs to and its id.  Pushed by Span::Begin,
/// popped by Span::End; parents are resolved against the nearest enclosing
/// entry of the same tracer, so independent tracers nest independently.
thread_local std::vector<std::pair<const Tracer*, std::uint64_t>>
    t_active_spans;

std::atomic<Tracer*> g_global_tracer{nullptr};

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// ns -> microseconds with 3 decimal places (chrome://tracing's unit).
std::string MicrosString(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

Tracer::Tracer(std::size_t max_spans)
    : max_spans_(max_spans), epoch_(std::chrono::steady_clock::now()) {}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::size_t Tracer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::Commit(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(std::move(record));
}

int Tracer::ThreadNumber(std::thread::id id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      thread_numbers_.emplace(id, static_cast<int>(thread_numbers_.size()));
  return it->second;
}

std::int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = records();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, s.name);
    out += ",\"cat\":";
    AppendJsonString(out, s.category);
    out += ",\"ph\":\"X\",\"ts\":" + MicrosString(s.start_ns);
    out += ",\"dur\":" + MicrosString(s.wall_ns);
    out += ",\"pid\":1,\"tid\":" + std::to_string(s.thread_id);
    out += ",\"args\":{\"cpu_us\":" + MicrosString(s.cpu_ns);
    for (const auto& [name, value] : s.args) {
      out += ',';
      AppendJsonString(out, name);
      out += ':';
      out += std::to_string(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Span Span::Begin(Tracer* tracer, std::string name, std::string category) {
  Span span;
  if (tracer == nullptr) return span;
  span.tracer_ = tracer;
  span.record_.id = tracer->NextId();
  span.record_.name = std::move(name);
  span.record_.category = std::move(category);
  for (auto it = t_active_spans.rbegin(); it != t_active_spans.rend(); ++it) {
    if (it->first == tracer) {
      span.record_.parent = it->second;
      break;
    }
  }
  t_active_spans.emplace_back(tracer, span.record_.id);
  span.record_.thread_id =
      tracer->ThreadNumber(std::this_thread::get_id());
  span.record_.start_ns = tracer->NowNs();
  span.wall_start_ = std::chrono::steady_clock::now();
  span.cpu_start_ns_ = ThreadCpuNs();
  return span;
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      record_(std::move(other.record_)),
      wall_start_(other.wall_start_),
      cpu_start_ns_(other.cpu_start_ns_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    wall_start_ = other.wall_start_;
    cpu_start_ns_ = other.cpu_start_ns_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::AddArg(std::string name, std::int64_t value) {
  if (tracer_ == nullptr) return;
  record_.args.emplace_back(std::move(name), value);
}

void Span::End() {
  if (tracer_ == nullptr) return;
  record_.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start_)
                        .count();
  record_.cpu_ns = ThreadCpuNs() - cpu_start_ns_;
  // Pop this span from the thread's active stack.  Spans are scoped, so it
  // is the top entry for this tracer; scan from the back to stay correct
  // even under unusual destruction orders.
  for (auto it = t_active_spans.rbegin(); it != t_active_spans.rend(); ++it) {
    if (it->first == tracer_ && it->second == record_.id) {
      t_active_spans.erase(std::next(it).base());
      break;
    }
  }
  tracer_->Commit(std::move(record_));
  tracer_ = nullptr;
}

void InstallGlobalTracer(Tracer* tracer) {
  g_global_tracer.store(tracer, std::memory_order_release);
}

Tracer* GlobalTracer() {
  return g_global_tracer.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Chrome-trace schema validation.
//
// A minimal JSON reader (objects, arrays, strings, numbers, true/false/
// null; no \u surrogate handling beyond skipping) feeding structural
// checks.  Deliberately dependency-free: the repo has no JSON library and
// the schema is small.

namespace {

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Peek(char* c) {
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    *c = text[pos];
    return true;
  }

  bool Consume(char expected) {
    char c = 0;
    if (!Peek(&c)) return false;
    if (c != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    std::string value;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        if (out != nullptr) *out = std::move(value);
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) return Fail("unterminated escape");
        char esc = text[pos++];
        switch (esc) {
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          case '/':
            value += '/';
            break;
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'b':
          case 'f':
          case 'r':
            value += ' ';
            break;
          case 'u':
            if (pos + 4 > text.size()) return Fail("short \\u escape");
            pos += 4;
            value += '?';
            break;
          default:
            return Fail("bad escape");
        }
        continue;
      }
      value += c;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    SkipWs();
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text[pos]))) digits = true;
      ++pos;
    }
    if (!digits) return Fail("expected number");
    if (out != nullptr) {
      *out = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                         nullptr);
    }
    return true;
  }

  bool SkipLiteral(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) {
      return Fail("bad literal");
    }
    pos += literal.size();
    return true;
  }

  /// Skips any JSON value.
  bool SkipValue() {
    char c = 0;
    if (!Peek(&c)) return false;
    switch (c) {
      case '{': {
        ++pos;
        char n = 0;
        if (!Peek(&n)) return false;
        if (n == '}') {
          ++pos;
          return true;
        }
        while (true) {
          if (!ParseString(nullptr)) return false;
          if (!Consume(':')) return false;
          if (!SkipValue()) return false;
          char sep = 0;
          if (!Peek(&sep)) return false;
          ++pos;
          if (sep == '}') return true;
          if (sep != ',') return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        char n = 0;
        if (!Peek(&n)) return false;
        if (n == ']') {
          ++pos;
          return true;
        }
        while (true) {
          if (!SkipValue()) return false;
          char sep = 0;
          if (!Peek(&sep)) return false;
          ++pos;
          if (sep == ']') return true;
          if (sep != ',') return Fail("expected ',' or ']'");
        }
      }
      case '"':
        return ParseString(nullptr);
      case 't':
        return SkipLiteral("true");
      case 'f':
        return SkipLiteral("false");
      case 'n':
        return SkipLiteral("null");
      default:
        return ParseNumber(nullptr);
    }
  }
};

/// Validates one event object; the parser is positioned at its '{'.
bool ValidateEvent(JsonParser& p, std::size_t index) {
  auto fail = [&](const std::string& message) {
    return p.Fail("traceEvents[" + std::to_string(index) + "]: " + message);
  };
  if (!p.Consume('{')) return false;
  bool have_name = false;
  bool have_cat = false;
  bool have_ph = false;
  bool have_ts = false;
  bool have_dur = false;
  bool have_pid = false;
  bool have_tid = false;
  char c = 0;
  if (!p.Peek(&c)) return false;
  if (c == '}') return fail("empty event");
  while (true) {
    std::string key;
    if (!p.ParseString(&key)) return false;
    if (!p.Consume(':')) return false;
    if (key == "name" || key == "cat") {
      std::string value;
      if (!p.ParseString(&value)) return fail("\"" + key + "\" not a string");
      (key == "name" ? have_name : have_cat) = true;
    } else if (key == "ph") {
      std::string value;
      if (!p.ParseString(&value)) return fail("\"ph\" not a string");
      if (value != "X") return fail("\"ph\" is not \"X\"");
      have_ph = true;
    } else if (key == "ts" || key == "dur") {
      double value = 0;
      if (!p.ParseNumber(&value)) return fail("\"" + key + "\" not a number");
      if (value < 0) return fail("\"" + key + "\" is negative");
      (key == "ts" ? have_ts : have_dur) = true;
    } else if (key == "pid" || key == "tid") {
      double value = 0;
      if (!p.ParseNumber(&value)) return fail("\"" + key + "\" not a number");
      if (value != static_cast<double>(static_cast<std::int64_t>(value))) {
        return fail("\"" + key + "\" is not an integer");
      }
      (key == "pid" ? have_pid : have_tid) = true;
    } else if (key == "args") {
      // An object mapping strings to numbers.
      if (!p.Consume('{')) return fail("\"args\" not an object");
      char n = 0;
      if (!p.Peek(&n)) return false;
      if (n == '}') {
        ++p.pos;
      } else {
        while (true) {
          if (!p.ParseString(nullptr)) return fail("bad args key");
          if (!p.Consume(':')) return false;
          if (!p.ParseNumber(nullptr)) return fail("args value not a number");
          char sep = 0;
          if (!p.Peek(&sep)) return false;
          ++p.pos;
          if (sep == '}') break;
          if (sep != ',') return fail("bad args separator");
        }
      }
    } else {
      if (!p.SkipValue()) return false;
    }
    char sep = 0;
    if (!p.Peek(&sep)) return false;
    ++p.pos;
    if (sep == '}') break;
    if (sep != ',') return fail("expected ',' or '}'");
  }
  if (!have_name) return fail("missing \"name\"");
  if (!have_cat) return fail("missing \"cat\"");
  if (!have_ph) return fail("missing \"ph\"");
  if (!have_ts) return fail("missing \"ts\"");
  if (!have_dur) return fail("missing \"dur\"");
  if (!have_pid) return fail("missing \"pid\"");
  if (!have_tid) return fail("missing \"tid\"");
  return true;
}

}  // namespace

Status ValidateChromeTrace(std::string_view json) {
  JsonParser p;
  p.text = json;
  bool ok = [&]() {
    if (!p.Consume('{')) return false;
    bool saw_events = false;
    char c = 0;
    if (!p.Peek(&c)) return false;
    if (c == '}') return p.Fail("missing \"traceEvents\"");
    while (true) {
      std::string key;
      if (!p.ParseString(&key)) return false;
      if (!p.Consume(':')) return false;
      if (key == "traceEvents") {
        saw_events = true;
        if (!p.Consume('[')) return p.Fail("\"traceEvents\" not an array");
        char n = 0;
        if (!p.Peek(&n)) return false;
        if (n == ']') {
          ++p.pos;
        } else {
          std::size_t index = 0;
          while (true) {
            if (!ValidateEvent(p, index++)) return false;
            char sep = 0;
            if (!p.Peek(&sep)) return false;
            ++p.pos;
            if (sep == ']') break;
            if (sep != ',') return p.Fail("bad traceEvents separator");
          }
        }
      } else {
        if (!p.SkipValue()) return false;
      }
      char sep = 0;
      if (!p.Peek(&sep)) return false;
      ++p.pos;
      if (sep == '}') break;
      if (sep != ',') return p.Fail("expected ',' or '}'");
    }
    if (!saw_events) return p.Fail("missing \"traceEvents\"");
    p.SkipWs();
    if (p.pos != json.size()) return p.Fail("trailing content");
    return true;
  }();
  if (ok) return Status::Ok();
  return Status::InvalidArgument("chrome trace: " + p.error);
}

}  // namespace obs
}  // namespace itdb
