// Span-based tracing for query evaluation.
//
// A Span is a scoped (RAII) measurement: wall time from a steady clock,
// per-thread CPU time, the opening thread, and a small bag of integer
// arguments (tuple counts, pairs pruned, cache hits).  Spans nest: each
// thread keeps a stack of its active spans per tracer, so a span opened
// while another is active records it as its parent, giving a tree per
// query / per fuzz case with zero coordination between threads.
//
// The Tracer collects finished spans under a mutex (one short append per
// span -- spans are opened at operation granularity, never per tuple).  A
// disabled tracer costs one null check: Span::Begin(nullptr, ...) returns
// an inactive span and every member is a no-op.
//
// Exports:
//   * ToChromeTraceJson() emits the Chrome trace-event format (a JSON
//     object whose "traceEvents" array holds one complete "X" event per
//     span, timestamps/durations in fractional microseconds), loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//   * ValidateChromeTrace() checks a JSON document against exactly that
//     schema; the unit tests and the --trace-json consumers share it.
//
// Tracers cap their span count (default 2^20).  Spans beyond the cap are
// counted in dropped() but not stored, so runaway benchmark loops degrade
// to a truncated trace instead of unbounded memory.

#ifndef ITDB_OBS_TRACE_H_
#define ITDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace itdb {
namespace obs {

/// One finished span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = no enclosing span on this thread.
  std::string name;
  std::string category;
  std::int64_t start_ns = 0;  // Relative to the tracer's epoch.
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;  // Thread CPU time consumed while open.
  int thread_id = 0;        // Dense per-tracer thread number, 0-based.
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class Span;

/// Collects spans.  Thread-safe; create one per query / run, or install a
/// process-global one (see InstallGlobalTracer) for tools.
class Tracer {
 public:
  explicit Tracer(std::size_t max_spans = std::size_t{1} << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Finished spans, in completion order.  Copies under the lock.
  std::vector<SpanRecord> records() const;

  std::size_t size() const;
  /// Spans discarded because max_spans was reached.
  std::size_t dropped() const;
  void Clear();

  /// Chrome trace-event JSON (see file comment).
  std::string ToChromeTraceJson() const;

 private:
  friend class Span;

  std::uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void Commit(SpanRecord&& record);
  int ThreadNumber(std::thread::id id);
  std::int64_t NowNs() const;

  const std::size_t max_spans_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::map<std::thread::id, int> thread_numbers_;
};

/// A scoped measurement; see the file comment.  Move-only.  Ends (and
/// commits to its tracer) on destruction or an explicit End().
class Span {
 public:
  /// Opens a span on `tracer`; a null tracer yields an inactive span whose
  /// operations all no-op.
  static Span Begin(Tracer* tracer, std::string name, std::string category);

  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }

  /// Attaches an integer argument, exported under "args" in the trace.
  void AddArg(std::string name, std::int64_t value);

  /// Closes the span and commits it.  Idempotent.
  void End();

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  std::chrono::steady_clock::time_point wall_start_{};
  std::int64_t cpu_start_ns_ = 0;
};

/// Installs (or clears, with nullptr) the process-global tracer that
/// ResolveTracer falls back to.  Not owned.  Intended for tools (itdb_fuzz
/// --trace-json, bench harnesses); the tracer must outlive every traced
/// operation.
void InstallGlobalTracer(Tracer* tracer);
Tracer* GlobalTracer();

/// `explicit_tracer` when non-null, else the installed global tracer (which
/// may itself be null: tracing disabled).
inline Tracer* ResolveTracer(Tracer* explicit_tracer) {
  return explicit_tracer != nullptr ? explicit_tracer : GlobalTracer();
}

/// Validates a Chrome trace-event JSON document against the schema
/// ToChromeTraceJson emits: a top-level object with a "traceEvents" array;
/// every event an object with string "name" and "cat", "ph" == "X",
/// non-negative numbers "ts" and "dur", integer "pid" and "tid", and an
/// optional "args" object mapping strings to numbers.  Returns
/// kInvalidArgument naming the first violation.
Status ValidateChromeTrace(std::string_view json);

}  // namespace obs
}  // namespace itdb

#endif  // ITDB_OBS_TRACE_H_
