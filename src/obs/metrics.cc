#include "obs/metrics.h"

#include <bit>
#include <sstream>

#include "util/arena.h"
#include "util/thread_pool.h"

namespace itdb {
namespace obs {

void Histogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  const int bucket =
      static_cast<int>(std::bit_width(static_cast<std::uint64_t>(value)));
  buckets_[static_cast<std::size_t>(bucket >= kBuckets ? kBuckets - 1 : bucket)]
      .fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kBuckets; ++i) {
    out.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return std::int64_t{1} << (i - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::Snapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out << name << " count=" << hist.count << " sum=" << hist.sum
        << " min=" << hist.min << " max=" << hist.max << "\n";
  }
  return out.str();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    out.histograms.emplace(name, hist->snapshot());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: outlives every static destructor that might
  // still record a counter during shutdown.
  static MetricsRegistry* registry = new MetricsRegistry;  // lint:allow
  return *registry;
}

void AddGlobalCounter(std::string_view name, std::int64_t delta) {
  MetricsRegistry::Global().GetCounter(name)->Add(delta);
}

void PublishThreadPoolMetrics(MetricsRegistry& registry) {
  const ThreadPool::PoolStats stats = ThreadPool::Global().stats();
  registry.GetCounter("thread_pool.workers")->RecordMax(stats.workers);
  registry.GetCounter("thread_pool.queue_depth_max")
      ->RecordMax(stats.queue_depth_max);
  registry.GetCounter("thread_pool.tasks_submitted")
      ->RecordMax(stats.tasks_submitted);
}

void PublishArenaMetrics(MetricsRegistry& registry) {
  const Arena::GlobalStats stats = Arena::TotalStats();
  registry.GetCounter("arena.bytes_allocated")->RecordMax(stats.bytes_allocated);
  registry.GetCounter("arena.allocations")->RecordMax(stats.allocations);
  registry.GetCounter("arena.bytes_reserved")->RecordMax(stats.bytes_reserved);
  registry.GetCounter("arena.resets")->RecordMax(stats.resets);
}

}  // namespace obs
}  // namespace itdb
