// Central metrics registry: named counters and histograms with a lock-free
// fast path.
//
// Before this subsystem every layer kept its own ad-hoc instrumentation --
// KernelCounters in core/index.h, NormalizeCache::Stats, thread-pool queue
// depths nobody could read.  The registry unifies the *read* side: any layer
// registers a counter or histogram once (mutex-protected, name -> stable
// handle) and then updates it with a single relaxed atomic operation, safe
// from any thread.  ParallelFor workers all update the same atomics, so
// "merging" across workers is the trivial no-op -- a snapshot taken after
// the parallel region observes the sum of every worker's contributions.
//
// Updates deliberately use std::memory_order_relaxed: metrics never guard
// data, and torn *cross-counter* consistency (a snapshot taken mid-query
// sees counter A bumped but not B) is acceptable by design.  Per-query
// deltas are computed by snapshotting before and after on the query thread,
// which joins every worker first (ParallelFor blocks), so deltas are exact.

#ifndef ITDB_OBS_METRICS_H_
#define ITDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace itdb {
namespace obs {

/// A monotonically updated 64-bit metric.  All operations are lock-free.
class Counter {
 public:
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Raises the stored value to at least `v` (for high-water marks such as
  /// queue depths).
  void RecordMax(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative 64-bit values: bucket i counts
/// values v with bit_width(v) == i (bucket 0 holds v == 0), so bucket i
/// covers [2^(i-1), 2^i).  Recording is lock-free; negative values clamp
/// to 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::int64_t value);

  struct Snapshot {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;  // 0 when count == 0.
    std::int64_t max = 0;
    std::array<std::int64_t, kBuckets> buckets{};
  };
  Snapshot snapshot() const;

  /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  static std::int64_t BucketLowerBound(int i);

  void Reset();

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// A name -> metric directory.  Registration (first use of a name) takes a
/// mutex; the returned handles are stable for the registry's lifetime, so
/// hot paths cache them in a function-local static and update lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter / histogram registered under `name`, creating it on first
  /// use.  Never returns null; the handle outlives every caller (handles
  /// are never deleted, Reset only zeroes them).
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  struct Snapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, Histogram::Snapshot> histograms;

    /// Human-readable dump, one metric per line, sorted by name.
    std::string ToText() const;
  };
  Snapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered).
  void Reset();

  /// The process-wide registry that the engine's built-in instrumentation
  /// (dbm closures, normalization, cache, thread pool, query counters)
  /// reports into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for MetricsRegistry::Global().GetCounter(name)->Add(delta),
/// for call sites that do not want to cache the handle themselves.
void AddGlobalCounter(std::string_view name, std::int64_t delta);

/// Publishes the shared thread pool's gauges into `registry` as
/// "thread_pool.workers", "thread_pool.queue_depth_max", and
/// "thread_pool.tasks_submitted".  The pool's numbers are monotone, so the
/// update uses RecordMax and calling at any frequency is safe.  (The pool
/// lives below obs and cannot push; readers pull through this bridge.)
void PublishThreadPoolMetrics(MetricsRegistry& registry);

/// Publishes the process-wide arena totals (util/arena.h) into `registry` as
/// "arena.bytes_allocated", "arena.allocations", "arena.bytes_reserved", and
/// "arena.resets".  Same pull-bridge pattern as the thread pool: util sits
/// below obs, so the arena cannot push.  The totals are monotone; RecordMax
/// makes re-publishing at any frequency safe.
void PublishArenaMetrics(MetricsRegistry& registry);

}  // namespace obs
}  // namespace itdb

#endif  // ITDB_OBS_METRICS_H_
