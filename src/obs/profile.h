// Structured evaluation profiles: the span tree of one traced run folded
// into a printable tree of labeled nodes with wall/CPU time and integer
// metrics.
//
// The query evaluator opens one span per query-plan node (category "plan");
// BuildProfile reconstructs the plan tree from those spans -- a plan span's
// profile parent is its nearest *plan* ancestor, so the algebra-operation
// spans nested between plan levels do not distort the tree.  Times are
// inclusive (a node covers its whole subtree), which is what "where does
// evaluation time go" asks for; subtracting children gives self time.

#ifndef ITDB_OBS_PROFILE_H_
#define ITDB_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace itdb {
namespace obs {

/// One plan node of a profile.
struct ProfileNode {
  std::string label;
  std::int64_t wall_ns = 0;  // Inclusive.
  std::int64_t cpu_ns = 0;   // Inclusive, opening thread only.
  /// Span args in insertion order: tuples_out, pairs_candidate, ...
  std::vector<std::pair<std::string, std::int64_t>> metrics;
  std::vector<ProfileNode> children;

  /// The named metric, or `fallback` when absent.
  std::int64_t Metric(std::string_view name, std::int64_t fallback = 0) const;
};

/// A profile tree.  `root` is meaningful only when !empty().
struct Profile {
  ProfileNode root;
  std::int64_t total_wall_ns = 0;  // The root span's wall time.
  bool has_root = false;

  bool empty() const { return !has_root; }

  /// Indented tree, one node per line:
  ///   <label>  [wall=1.234ms cpu=1.001ms tuples_out=42 ...]
  std::string ToText() const;
};

/// Folds `spans` (any order) into a Profile over the spans of `category`.
/// With several category roots, a synthetic "(multiple roots)" node adopts
/// them.  Returns an empty profile when no span matches.
Profile BuildProfile(const std::vector<SpanRecord>& spans,
                     std::string_view category);

}  // namespace obs
}  // namespace itdb

#endif  // ITDB_OBS_PROFILE_H_
