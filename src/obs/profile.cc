#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace itdb {
namespace obs {

namespace {

std::string MillisString(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendNode(const ProfileNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.label;
  out += "  [wall=" + MillisString(node.wall_ns) +
         " cpu=" + MillisString(node.cpu_ns);
  for (const auto& [name, value] : node.metrics) {
    out += " " + name + "=" + std::to_string(value);
  }
  out += "]\n";
  for (const ProfileNode& child : node.children) {
    AppendNode(child, depth + 1, out);
  }
}

}  // namespace

std::int64_t ProfileNode::Metric(std::string_view name,
                                 std::int64_t fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

std::string Profile::ToText() const {
  if (empty()) return "(no profile)\n";
  std::string out;
  AppendNode(root, 0, out);
  return out;
}

Profile BuildProfile(const std::vector<SpanRecord>& spans,
                     std::string_view category) {
  Profile profile;
  // Parent chains may pass through spans of other categories; index every
  // span, then resolve each category span's nearest category ancestor.
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) by_id.emplace(s.id, &s);

  struct Item {
    const SpanRecord* span;
    std::uint64_t profile_parent;  // 0 = root of the profile.
  };
  std::vector<Item> items;
  for (const SpanRecord& s : spans) {
    if (s.category != category) continue;
    std::uint64_t parent = s.parent;
    while (parent != 0) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      if (it->second->category == category) break;
      parent = it->second->parent;
    }
    if (parent != 0 && by_id.find(parent) == by_id.end()) parent = 0;
    items.push_back({&s, parent});
  }
  if (items.empty()) return profile;

  // Children in start order, so the printed tree follows evaluation order.
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.span->start_ns < b.span->start_ns;
                   });

  std::map<std::uint64_t, ProfileNode> nodes;
  for (const Item& item : items) {
    ProfileNode node;
    node.label = item.span->name;
    node.wall_ns = item.span->wall_ns;
    node.cpu_ns = item.span->cpu_ns;
    node.metrics = item.span->args;
    nodes.emplace(item.span->id, std::move(node));
  }
  // Attach children to parents, deepest spans last in `items` is not
  // guaranteed, so attach bottom-up: process in reverse start order, moving
  // each node into its parent.  Reverse start order puts every child after
  // its parent (a child starts no earlier than its parent), so moving from
  // the back never moves a node that still expects children.
  std::vector<ProfileNode> roots;
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    auto node_it = nodes.find(it->span->id);
    if (it->profile_parent == 0) continue;
    auto parent_it = nodes.find(it->profile_parent);
    if (parent_it == nodes.end()) continue;
    // Children were appended in reverse; fix order below.
    parent_it->second.children.insert(parent_it->second.children.begin(),
                                      std::move(node_it->second));
    nodes.erase(node_it);
  }
  for (const Item& item : items) {
    auto node_it = nodes.find(item.span->id);
    if (node_it == nodes.end()) continue;  // Moved into its parent.
    roots.push_back(std::move(node_it->second));
    nodes.erase(node_it);
  }
  if (roots.empty()) return profile;
  if (roots.size() == 1) {
    profile.root = std::move(roots.front());
  } else {
    profile.root.label = "(multiple roots)";
    for (ProfileNode& r : roots) {
      profile.root.wall_ns += r.wall_ns;
      profile.root.cpu_ns += r.cpu_ns;
    }
    profile.root.children = std::move(roots);
  }
  profile.total_wall_ns = profile.root.wall_ns;
  profile.has_root = true;
  return profile;
}

}  // namespace obs
}  // namespace itdb
