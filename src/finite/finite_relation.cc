#include "finite/finite_relation.h"

#include <algorithm>
#include <string>
#include <utility>

namespace itdb {

namespace {

bool EvalCmp(std::int64_t lhs, CmpOp op, std::int64_t rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

bool EvalValueCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace

void FiniteRelation::Normalize() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

FiniteRelation FiniteRelation::Materialize(const GeneralizedRelation& r,
                                           std::int64_t lo, std::int64_t hi) {
  FiniteRelation out(r.schema());
  out.rows_ = r.Enumerate(lo, hi);
  return out;
}

Status FiniteRelation::AddRow(ConcreteRow row) {
  if (static_cast<int>(row.temporal.size()) != schema_.temporal_arity() ||
      static_cast<int>(row.data.size()) != schema_.data_arity()) {
    return Status::InvalidArgument("AddRow: arity mismatch with schema " +
                                   schema_.ToString());
  }
  auto it = std::lower_bound(rows_.begin(), rows_.end(), row);
  if (it == rows_.end() || *it != row) rows_.insert(it, std::move(row));
  return Status::Ok();
}

bool FiniteRelation::Contains(const ConcreteRow& row) const {
  return std::binary_search(rows_.begin(), rows_.end(), row);
}

std::int64_t FiniteRelation::ApproxBytes() const {
  std::int64_t bytes = 0;
  for (const ConcreteRow& row : rows_) {
    bytes += static_cast<std::int64_t>(sizeof(ConcreteRow));
    bytes += static_cast<std::int64_t>(row.temporal.size() * sizeof(std::int64_t));
    for (const Value& v : row.data) {
      bytes += static_cast<std::int64_t>(sizeof(Value));
      if (v.IsString()) bytes += static_cast<std::int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

Result<FiniteRelation> FiniteRelation::Union(const FiniteRelation& a,
                                             const FiniteRelation& b) {
  if (a.schema_ != b.schema_) {
    return Status::InvalidArgument("finite Union: schema mismatch");
  }
  FiniteRelation out(a.schema_);
  std::set_union(a.rows_.begin(), a.rows_.end(), b.rows_.begin(),
                 b.rows_.end(), std::back_inserter(out.rows_));
  return out;
}

Result<FiniteRelation> FiniteRelation::Intersect(const FiniteRelation& a,
                                                 const FiniteRelation& b) {
  if (a.schema_ != b.schema_) {
    return Status::InvalidArgument("finite Intersect: schema mismatch");
  }
  FiniteRelation out(a.schema_);
  std::set_intersection(a.rows_.begin(), a.rows_.end(), b.rows_.begin(),
                        b.rows_.end(), std::back_inserter(out.rows_));
  return out;
}

Result<FiniteRelation> FiniteRelation::Subtract(const FiniteRelation& a,
                                                const FiniteRelation& b) {
  if (a.schema_ != b.schema_) {
    return Status::InvalidArgument("finite Subtract: schema mismatch");
  }
  FiniteRelation out(a.schema_);
  std::set_difference(a.rows_.begin(), a.rows_.end(), b.rows_.begin(),
                      b.rows_.end(), std::back_inserter(out.rows_));
  return out;
}

Result<FiniteRelation> FiniteRelation::Complement(
    std::int64_t lo, std::int64_t hi,
    const std::vector<std::vector<Value>>& domains) const {
  const int m = schema_.temporal_arity();
  const int l = schema_.data_arity();
  if (static_cast<int>(domains.size()) != l) {
    return Status::InvalidArgument(
        "finite Complement: need one domain per data column");
  }
  FiniteRelation out(schema_);
  // Odometer over [lo, hi]^m x domains.
  if (hi < lo) return out;
  for (const std::vector<Value>& d : domains) {
    if (d.empty()) return out;
  }
  std::vector<std::int64_t> temporal(static_cast<std::size_t>(m), lo);
  std::vector<std::size_t> didx(static_cast<std::size_t>(l), 0);
  while (true) {
    std::vector<Value> data;
    data.reserve(static_cast<std::size_t>(l));
    for (int i = 0; i < l; ++i) {
      data.push_back(
          domains[static_cast<std::size_t>(i)][didx[static_cast<std::size_t>(i)]]);
    }
    ConcreteRow row{temporal, std::move(data)};
    if (!Contains(row)) out.rows_.push_back(std::move(row));
    // Advance data odometer first, then temporal.
    int d = l - 1;
    while (d >= 0) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++didx[ud] < domains[ud].size()) break;
      didx[ud] = 0;
      --d;
    }
    if (d >= 0) continue;
    int tpos = m - 1;
    while (tpos >= 0) {
      std::size_t ut = static_cast<std::size_t>(tpos);
      if (++temporal[ut] <= hi) break;
      temporal[ut] = lo;
      --tpos;
    }
    if (tpos < 0) break;
  }
  out.Normalize();
  return out;
}

Result<FiniteRelation> FiniteRelation::Project(
    const std::vector<std::string>& attrs) const {
  std::vector<int> keep_temporal;
  std::vector<int> keep_data;
  std::vector<std::string> temporal_names;
  std::vector<std::string> data_names;
  std::vector<DataType> data_types;
  for (const std::string& name : attrs) {
    if (std::optional<int> t = schema_.FindTemporal(name)) {
      keep_temporal.push_back(*t);
      temporal_names.push_back(name);
    } else if (std::optional<int> d = schema_.FindData(name)) {
      keep_data.push_back(*d);
      data_names.push_back(name);
      data_types.push_back(schema_.data_type(*d));
    } else {
      return Status::NotFound("finite Project: unknown attribute \"" + name +
                              "\"");
    }
  }
  FiniteRelation out(Schema(temporal_names, data_names, data_types));
  for (const ConcreteRow& row : rows_) {
    ConcreteRow projected;
    projected.temporal.reserve(keep_temporal.size());
    for (int c : keep_temporal) {
      projected.temporal.push_back(row.temporal[static_cast<std::size_t>(c)]);
    }
    projected.data.reserve(keep_data.size());
    for (int c : keep_data) {
      projected.data.push_back(row.data[static_cast<std::size_t>(c)]);
    }
    out.rows_.push_back(std::move(projected));
  }
  out.Normalize();
  return out;
}

Result<FiniteRelation> FiniteRelation::SelectTemporal(
    const TemporalCondition& cond) const {
  const int m = schema_.temporal_arity();
  if (cond.lhs < 0 || cond.lhs >= m ||
      (cond.rhs != kZeroVar && (cond.rhs < 0 || cond.rhs >= m))) {
    return Status::InvalidArgument("finite SelectTemporal: bad columns");
  }
  FiniteRelation out(schema_);
  for (const ConcreteRow& row : rows_) {
    std::int64_t lhs = row.temporal[static_cast<std::size_t>(cond.lhs)];
    std::int64_t rhs =
        cond.rhs == kZeroVar
            ? cond.c
            : row.temporal[static_cast<std::size_t>(cond.rhs)] + cond.c;
    if (EvalCmp(lhs, cond.op, rhs)) out.rows_.push_back(row);
  }
  return out;
}

Result<FiniteRelation> FiniteRelation::ShiftTemporalColumn(
    int col, std::int64_t delta) const {
  if (col < 0 || col >= schema_.temporal_arity()) {
    return Status::InvalidArgument("finite ShiftTemporalColumn: bad column");
  }
  FiniteRelation out(schema_);
  out.rows_ = rows_;
  for (ConcreteRow& row : out.rows_) {
    row.temporal[static_cast<std::size_t>(col)] += delta;
  }
  out.Normalize();
  return out;
}

Result<FiniteRelation> FiniteRelation::SelectData(int data_col, CmpOp op,
                                                  const Value& value) const {
  if (data_col < 0 || data_col >= schema_.data_arity()) {
    return Status::InvalidArgument("finite SelectData: bad column");
  }
  FiniteRelation out(schema_);
  for (const ConcreteRow& row : rows_) {
    if (EvalValueCmp(row.data[static_cast<std::size_t>(data_col)], op, value)) {
      out.rows_.push_back(row);
    }
  }
  return out;
}

Result<FiniteRelation> FiniteRelation::CrossProduct(const FiniteRelation& a,
                                                    const FiniteRelation& b) {
  std::vector<std::string> temporal_names = a.schema_.temporal_names();
  for (const std::string& n : b.schema_.temporal_names()) {
    if (a.schema_.FindTemporal(n).has_value()) {
      return Status::InvalidArgument(
          "finite CrossProduct: duplicate temporal attribute \"" + n + "\"");
    }
    temporal_names.push_back(n);
  }
  std::vector<std::string> data_names = a.schema_.data_names();
  std::vector<DataType> data_types = a.schema_.data_types();
  for (int j = 0; j < b.schema_.data_arity(); ++j) {
    if (a.schema_.FindData(b.schema_.data_name(j)).has_value()) {
      return Status::InvalidArgument(
          "finite CrossProduct: duplicate data attribute \"" +
          b.schema_.data_name(j) + "\"");
    }
    data_names.push_back(b.schema_.data_name(j));
    data_types.push_back(b.schema_.data_type(j));
  }
  FiniteRelation out(Schema(temporal_names, data_names, data_types));
  for (const ConcreteRow& ra : a.rows_) {
    for (const ConcreteRow& rb : b.rows_) {
      ConcreteRow row = ra;
      row.temporal.insert(row.temporal.end(), rb.temporal.begin(),
                          rb.temporal.end());
      row.data.insert(row.data.end(), rb.data.begin(), rb.data.end());
      out.rows_.push_back(std::move(row));
    }
  }
  out.Normalize();
  return out;
}

Result<FiniteRelation> FiniteRelation::Join(const FiniteRelation& a,
                                            const FiniteRelation& b) {
  const Schema& sa = a.schema_;
  const Schema& sb = b.schema_;
  const int mb = sb.temporal_arity();
  std::vector<int> b_temporal_match(static_cast<std::size_t>(mb), -1);
  std::vector<std::string> temporal_names = sa.temporal_names();
  std::vector<int> b_new_temporal;
  for (int j = 0; j < mb; ++j) {
    if (std::optional<int> i = sa.FindTemporal(sb.temporal_name(j))) {
      b_temporal_match[static_cast<std::size_t>(j)] = *i;
    } else {
      b_new_temporal.push_back(j);
      temporal_names.push_back(sb.temporal_name(j));
    }
  }
  std::vector<int> b_data_match(static_cast<std::size_t>(sb.data_arity()), -1);
  std::vector<std::string> data_names = sa.data_names();
  std::vector<DataType> data_types = sa.data_types();
  std::vector<int> b_new_data;
  for (int j = 0; j < sb.data_arity(); ++j) {
    if (std::optional<int> i = sa.FindData(sb.data_name(j))) {
      b_data_match[static_cast<std::size_t>(j)] = *i;
      if (sa.data_type(*i) != sb.data_type(j)) {
        return Status::InvalidArgument("finite Join: type mismatch on \"" +
                                       sb.data_name(j) + "\"");
      }
    } else {
      b_new_data.push_back(j);
      data_names.push_back(sb.data_name(j));
      data_types.push_back(sb.data_type(j));
    }
  }
  FiniteRelation out(Schema(temporal_names, data_names, data_types));
  for (const ConcreteRow& ra : a.rows_) {
    for (const ConcreteRow& rb : b.rows_) {
      bool match = true;
      for (int j = 0; j < mb && match; ++j) {
        int i = b_temporal_match[static_cast<std::size_t>(j)];
        if (i >= 0 && ra.temporal[static_cast<std::size_t>(i)] !=
                          rb.temporal[static_cast<std::size_t>(j)]) {
          match = false;
        }
      }
      for (int j = 0; j < sb.data_arity() && match; ++j) {
        int i = b_data_match[static_cast<std::size_t>(j)];
        if (i >= 0 && ra.data[static_cast<std::size_t>(i)] !=
                          rb.data[static_cast<std::size_t>(j)]) {
          match = false;
        }
      }
      if (!match) continue;
      ConcreteRow row = ra;
      for (int j : b_new_temporal) {
        row.temporal.push_back(rb.temporal[static_cast<std::size_t>(j)]);
      }
      for (int j : b_new_data) {
        row.data.push_back(rb.data[static_cast<std::size_t>(j)]);
      }
      out.rows_.push_back(std::move(row));
    }
  }
  out.Normalize();
  return out;
}

}  // namespace itdb
