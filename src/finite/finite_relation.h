// Explicitly materialized temporal relations over a bounded horizon.
//
// This is the representation the paper's introduction argues against
// ("it is preferable to state that something happens every year forever
// than to state that it happens in 1989, 1990, ..., 2090"): every concrete
// row is stored.  It serves two purposes here:
//   * the semantics oracle for property tests -- all generalized-algebra
//     operations must agree with plain set operations on a window;
//   * the baseline for bench_vs_finite, quantifying the compactness and
//     speed claims of Section 1.

#ifndef ITDB_FINITE_FINITE_RELATION_H_
#define ITDB_FINITE_FINITE_RELATION_H_

#include <cstdint>
#include <vector>

#include "core/algebra.h"
#include "core/relation.h"
#include "core/schema.h"
#include "util/status.h"

namespace itdb {

/// A finite temporal relation: an explicit, sorted, duplicate-free set of
/// concrete rows under a schema.
class FiniteRelation {
 public:
  FiniteRelation() = default;
  explicit FiniteRelation(Schema schema) : schema_(std::move(schema)) {}

  /// Materializes the extension of a generalized relation restricted to the
  /// window [lo, hi] on every temporal coordinate.
  static FiniteRelation Materialize(const GeneralizedRelation& r,
                                    std::int64_t lo, std::int64_t hi);

  const Schema& schema() const { return schema_; }
  const std::vector<ConcreteRow>& rows() const { return rows_; }
  std::int64_t size() const { return static_cast<std::int64_t>(rows_.size()); }

  /// Inserts a row (kept sorted and unique).  Fails on arity mismatch.
  Status AddRow(ConcreteRow row);

  bool Contains(const ConcreteRow& row) const;

  /// Approximate heap footprint in bytes (for the compactness benchmark).
  std::int64_t ApproxBytes() const;

  // ---- Set algebra (schemas must match where applicable). ----

  static Result<FiniteRelation> Union(const FiniteRelation& a,
                                      const FiniteRelation& b);
  static Result<FiniteRelation> Intersect(const FiniteRelation& a,
                                          const FiniteRelation& b);
  static Result<FiniteRelation> Subtract(const FiniteRelation& a,
                                         const FiniteRelation& b);

  /// Complement within the universe [lo, hi]^m x (data domains product).
  /// For purely temporal relations pass empty `domains`.
  Result<FiniteRelation> Complement(
      std::int64_t lo, std::int64_t hi,
      const std::vector<std::vector<Value>>& domains) const;

  /// Projection onto named attributes, same conventions as the generalized
  /// Project (temporal kept columns first, requested order per kind).
  Result<FiniteRelation> Project(const std::vector<std::string>& attrs) const;

  Result<FiniteRelation> SelectTemporal(const TemporalCondition& cond) const;
  Result<FiniteRelation> SelectData(int data_col, CmpOp op,
                                    const Value& value) const;

  /// Replaces temporal column `col` by its image under x -> x + delta
  /// (mirrors the generalized ShiftTemporalColumn).  Shifted rows may leave
  /// the window they were materialized on; callers comparing against a
  /// window-restricted oracle must account for the drift.
  Result<FiniteRelation> ShiftTemporalColumn(int col,
                                             std::int64_t delta) const;

  static Result<FiniteRelation> CrossProduct(const FiniteRelation& a,
                                             const FiniteRelation& b);
  /// Natural join on shared attribute names (same convention as the
  /// generalized Join: output = a's attributes, then b's new ones).
  static Result<FiniteRelation> Join(const FiniteRelation& a,
                                     const FiniteRelation& b);

  friend bool operator==(const FiniteRelation& a,
                         const FiniteRelation& b) = default;

 private:
  void Normalize();  // sort + dedupe

  Schema schema_;
  std::vector<ConcreteRow> rows_;
};

}  // namespace itdb

#endif  // ITDB_FINITE_FINITE_RELATION_H_
