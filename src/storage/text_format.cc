#include "storage/text_format.h"

#include <cctype>
#include <optional>
#include <utility>
#include <vector>

#include "storage/lexer.h"
#include "util/numeric.h"

namespace itdb {

namespace {

bool IsLrpVariable(const Token& t) {
  // Any identifier starting with 'n' whose remainder is digits: n, n1, n2...
  if (t.kind != TokenKind::kIdent || t.text.empty() || t.text[0] != 'n') {
    return false;
  }
  for (std::size_t i = 1; i < t.text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t.text[i]))) return false;
  }
  return true;
}

Result<Lrp> ParseLrp(TokenStream& ts) {
  if (IsLrpVariable(ts.Peek())) {  // "n" == 0 + 1n.
    ts.Next();
    return Lrp::Make(0, 1);
  }
  ITDB_ASSIGN_OR_RETURN(std::int64_t first, ts.ExpectInt());
  if (IsLrpVariable(ts.Peek())) {  // "10n" == 0 + 10n.
    ts.Next();
    return Lrp::Make(0, first);
  }
  // "c + kn" / "c - kn", but '+'/'-' may instead belong to the next token
  // stream element only inside constraint context; inside an lrp list the
  // only continuation is the period term.
  if ((ts.Peek().kind == TokenKind::kSymbol &&
       (ts.Peek().text == "+" || ts.Peek().text == "-")) &&
      ts.Peek(1).kind == TokenKind::kInt && IsLrpVariable(ts.Peek(2))) {
    bool negative = ts.Next().text == "-";
    std::int64_t k = ts.Next().int_value;
    ts.Next();  // The variable.
    return Lrp::Make(first, negative ? -k : k);
  }
  return Lrp::Singleton(first);
}

Result<Value> ParseValue(TokenStream& ts, DataType expected) {
  if (ts.Peek().kind == TokenKind::kString) {
    if (expected != DataType::kString) {
      return ts.ErrorHere("expected an integer value");
    }
    return Value(ts.Next().text);
  }
  if (expected != DataType::kInt) {
    return ts.ErrorHere("expected a string value");
  }
  ITDB_ASSIGN_OR_RETURN(std::int64_t v, ts.ExpectInt());
  return Value(v);
}

/// One side of a constraint: either a plain integer or column + offset.
struct Operand {
  std::optional<int> column;
  std::int64_t offset = 0;
};

Result<int> ResolveColumn(TokenStream& ts, const std::string& name,
                          const Schema& schema) {
  if (std::optional<int> c = schema.FindTemporal(name)) return *c;
  // Paper-style X1/X2 or T1/T2, 1-based.
  if (name.size() >= 2 && (name[0] == 'X' || name[0] == 'T')) {
    bool digits = true;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) digits = false;
    }
    if (digits) {
      int idx = std::stoi(name.substr(1)) - 1;
      if (idx >= 0 && idx < schema.temporal_arity()) return idx;
    }
  }
  return ts.ErrorHere("unknown temporal attribute \"" + name + "\"");
}

Result<Operand> ParseOperand(TokenStream& ts, const Schema& schema) {
  Operand out;
  if (ts.Peek().kind == TokenKind::kIdent) {
    ITDB_ASSIGN_OR_RETURN(std::string name, ts.ExpectIdent());
    ITDB_ASSIGN_OR_RETURN(int col, ResolveColumn(ts, name, schema));
    out.column = col;
    if (ts.Peek().kind == TokenKind::kSymbol &&
        (ts.Peek().text == "+" || ts.Peek().text == "-")) {
      // Offset term.
      bool negative = ts.Next().text == "-";
      if (ts.Peek().kind != TokenKind::kInt) {
        return ts.ErrorHere("expected integer offset");
      }
      std::int64_t v = ts.Next().int_value;
      out.offset = negative ? -v : v;
    }
    return out;
  }
  ITDB_ASSIGN_OR_RETURN(out.offset, ts.ExpectInt());
  return out;
}

enum class ConstraintOp { kLe, kGe, kEq, kLt, kGt };

Result<ConstraintOp> ParseConstraintOp(TokenStream& ts) {
  if (ts.TrySymbol("<=")) return ConstraintOp::kLe;
  if (ts.TrySymbol(">=")) return ConstraintOp::kGe;
  if (ts.TrySymbol("=")) return ConstraintOp::kEq;
  if (ts.TrySymbol("<")) return ConstraintOp::kLt;
  if (ts.TrySymbol(">")) return ConstraintOp::kGt;
  return ts.ErrorHere("expected comparison operator");
}

ConstraintOp Flip(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kLe:
      return ConstraintOp::kGe;
    case ConstraintOp::kGe:
      return ConstraintOp::kLe;
    case ConstraintOp::kLt:
      return ConstraintOp::kGt;
    case ConstraintOp::kGt:
      return ConstraintOp::kLt;
    case ConstraintOp::kEq:
      return ConstraintOp::kEq;
  }
  return op;
}

Status ApplyConstraint(TokenStream& ts, Dbm& dbm, Operand lhs, ConstraintOp op,
                       Operand rhs) {
  if (!lhs.column.has_value() && !rhs.column.has_value()) {
    return ts.ErrorHere("constraint mentions no temporal attribute");
  }
  if (!lhs.column.has_value()) {
    std::swap(lhs, rhs);
    op = Flip(op);
  }
  const int l = *lhs.column;
  if (rhs.column.has_value()) {
    const int r = *rhs.column;
    if (l == r) return ts.ErrorHere("constraint relates an attribute to itself");
    // X_l + lo  op  X_r + ro   <=>   X_l op X_r + (ro - lo).
    ITDB_ASSIGN_OR_RETURN(std::int64_t delta,
                          CheckedSub(rhs.offset, lhs.offset));
    switch (op) {
      case ConstraintOp::kLe:
        dbm.AddDifferenceUpperBound(l, r, delta);
        break;
      case ConstraintOp::kGe:
        dbm.AddDifferenceUpperBound(r, l, -delta);
        break;
      case ConstraintOp::kEq:
        dbm.AddDifferenceEquality(l, r, delta);
        break;
      case ConstraintOp::kLt: {
        ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedSub(delta, 1));
        dbm.AddDifferenceUpperBound(l, r, b);
        break;
      }
      case ConstraintOp::kGt: {
        ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedAdd(-delta, 1));
        dbm.AddDifferenceUpperBound(r, l, -b);
        break;
      }
    }
    return Status::Ok();
  }
  // X_l + lo  op  c   <=>   X_l op (c - lo).
  ITDB_ASSIGN_OR_RETURN(std::int64_t bound, CheckedSub(rhs.offset, lhs.offset));
  switch (op) {
    case ConstraintOp::kLe:
      dbm.AddUpperBound(l, bound);
      break;
    case ConstraintOp::kGe:
      dbm.AddLowerBound(l, bound);
      break;
    case ConstraintOp::kEq:
      dbm.AddEquality(l, bound);
      break;
    case ConstraintOp::kLt: {
      ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedSub(bound, 1));
      dbm.AddUpperBound(l, b);
      break;
    }
    case ConstraintOp::kGt: {
      ITDB_ASSIGN_OR_RETURN(std::int64_t b, CheckedAdd(bound, 1));
      dbm.AddLowerBound(l, b);
      break;
    }
  }
  return Status::Ok();
}

Result<GeneralizedTuple> ParseTuple(TokenStream& ts, const Schema& schema) {
  ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("["));
  std::vector<Lrp> lrps;
  for (int i = 0; i < schema.temporal_arity(); ++i) {
    if (i > 0) ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    ITDB_ASSIGN_OR_RETURN(Lrp l, ParseLrp(ts));
    lrps.push_back(l);
  }
  std::vector<Value> values;
  if (schema.data_arity() > 0) {
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("|"));
    for (int i = 0; i < schema.data_arity(); ++i) {
      if (i > 0) ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
      ITDB_ASSIGN_OR_RETURN(Value v, ParseValue(ts, schema.data_type(i)));
      values.push_back(std::move(v));
    }
  }
  ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("]"));
  GeneralizedTuple tuple(std::move(lrps), std::move(values));
  if (ts.TrySymbol(":")) {
    do {
      ITDB_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(ts, schema));
      ITDB_ASSIGN_OR_RETURN(ConstraintOp op, ParseConstraintOp(ts));
      ITDB_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(ts, schema));
      ITDB_RETURN_IF_ERROR(
          ApplyConstraint(ts, tuple.mutable_constraints(), lhs, op, rhs));
    } while (ts.TrySymbol("&&"));
  }
  ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(";"));
  return tuple;
}

}  // namespace

Result<NamedRelation> ParseRelation(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  ITDB_ASSIGN_OR_RETURN(NamedRelation out, internal_text_format::ParseRelationBlock(ts));
  if (!ts.AtEnd()) {
    return ts.ErrorHere("trailing input after relation block");
  }
  return out;
}

namespace internal_text_format {

Result<NamedRelation> ParseRelationBlock(TokenStream& ts) {
  if (!ts.TryIdent("relation")) {
    return ts.ErrorHere("expected 'relation'");
  }
  ITDB_ASSIGN_OR_RETURN(std::string name, ts.ExpectIdent());
  ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("("));
  std::vector<std::string> temporal_names;
  std::vector<std::string> data_names;
  std::vector<DataType> data_types;
  bool first = true;
  while (!ts.TrySymbol(")")) {
    if (!first) ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(","));
    first = false;
    ITDB_ASSIGN_OR_RETURN(std::string attr, ts.ExpectIdent());
    for (const std::string& existing : temporal_names) {
      if (existing == attr) {
        return ts.ErrorHere("duplicate attribute \"" + attr + "\"");
      }
    }
    for (const std::string& existing : data_names) {
      if (existing == attr) {
        return ts.ErrorHere("duplicate attribute \"" + attr + "\"");
      }
    }
    ITDB_RETURN_IF_ERROR(ts.ExpectSymbol(":"));
    ITDB_ASSIGN_OR_RETURN(std::string kind, ts.ExpectIdent());
    if (kind == "time") {
      if (!data_names.empty()) {
        return ts.ErrorHere("temporal attributes must precede data attributes");
      }
      temporal_names.push_back(std::move(attr));
    } else if (kind == "int") {
      data_names.push_back(std::move(attr));
      data_types.push_back(DataType::kInt);
    } else if (kind == "string") {
      data_names.push_back(std::move(attr));
      data_types.push_back(DataType::kString);
    } else {
      return ts.ErrorHere("unknown attribute type \"" + kind + "\"");
    }
  }
  Schema schema(std::move(temporal_names), std::move(data_names),
                std::move(data_types));
  GeneralizedRelation relation(schema);
  ITDB_RETURN_IF_ERROR(ts.ExpectSymbol("{"));
  while (!ts.TrySymbol("}")) {
    ITDB_ASSIGN_OR_RETURN(GeneralizedTuple tuple, ParseTuple(ts, schema));
    ITDB_RETURN_IF_ERROR(relation.AddTuple(std::move(tuple)));
  }
  return NamedRelation{std::move(name), std::move(relation)};
}

}  // namespace internal_text_format

namespace {

/// Value::ToString does not escape; the lexer unescapes '\x' inside string
/// literals, so quotes and backslashes must be escaped here for the printed
/// form to parse back to the same value.
std::string PrintValue(const Value& v) {
  if (v.IsInt()) return std::to_string(v.AsInt());
  std::string out = "\"";
  for (char c : v.AsString()) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string PrintRelation(const std::string& name,
                          const GeneralizedRelation& relation) {
  const Schema& schema = relation.schema();
  std::string out = "relation " + name + "(";
  bool first = true;
  for (const std::string& n : schema.temporal_names()) {
    if (!first) out += ", ";
    out += n + ": time";
    first = false;
  }
  for (int i = 0; i < schema.data_arity(); ++i) {
    if (!first) out += ", ";
    out += schema.data_name(i);
    out += schema.data_type(i) == DataType::kInt ? ": int" : ": string";
    first = false;
  }
  out += ") {\n";
  for (const GeneralizedTuple& t : relation.tuples()) {
    Dbm closed = t.constraints();
    if (!closed.Close().ok() || !closed.feasible()) {
      // A tuple with contradictory constraints has an empty extension;
      // omitting it preserves the represented set.
      continue;
    }
    out += "  [";
    for (int i = 0; i < t.temporal_arity(); ++i) {
      if (i > 0) out += ", ";
      out += t.lrp(i).ToString();
    }
    if (t.data_arity() > 0) {
      out += " | ";
      for (int i = 0; i < t.data_arity(); ++i) {
        if (i > 0) out += ", ";
        out += PrintValue(t.value(i));
      }
    }
    out += "]";
    std::vector<AtomicConstraint> atomics = closed.MinimalAtomics();
    for (std::size_t i = 0; i < atomics.size(); ++i) {
      out += i == 0 ? " : " : " && ";
      const AtomicConstraint& a = atomics[i];
      if (a.lhs != kZeroVar && a.rhs != kZeroVar) {
        out += schema.temporal_name(a.lhs) + " <= " +
               schema.temporal_name(a.rhs);
        if (a.bound > 0) out += " + " + std::to_string(a.bound);
        if (a.bound < 0) out += " - " + std::to_string(-a.bound);
      } else if (a.rhs == kZeroVar) {
        out += schema.temporal_name(a.lhs) + " <= " + std::to_string(a.bound);
      } else {
        out += schema.temporal_name(a.rhs) + " >= " + std::to_string(-a.bound);
      }
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace itdb
