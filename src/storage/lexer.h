// A small lexer shared by the relation text format and the query parser.

#ifndef ITDB_STORAGE_LEXER_H_
#define ITDB_STORAGE_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/source_span.h"
#include "util/status.h"

namespace itdb {

enum class TokenKind {
  kIdent,   // [A-Za-z_][A-Za-z0-9_]*
  kInt,     // decimal integer (no sign; '-' is a symbol)
  kString,  // "..." with \" and \\ escapes
  kSymbol,  // one of the fixed operator/punctuation spellings
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;              // Ident name, symbol spelling, string body.
  std::int64_t int_value = 0;    // For kInt.
  std::size_t offset = 0;        // Byte offset in the input, for errors.
  std::size_t length = 0;        // Raw source length (incl. string quotes).
  int line = 1;                  // 1-based source line of `offset`.
  int col = 1;                   // 1-based column of `offset` on `line`.

  /// The source span this token covers.
  SourceSpan span() const { return {offset, offset + length, line, col}; }
};

/// Tokenizes the whole input.  Recognized symbols:
///   ( ) { } [ ] , : ; . & | && || ! != <= >= = < > + - ->
/// Line comments start with '#'.
Result<std::vector<Token>> Tokenize(std::string_view text);

/// Cursor over a token vector with convenience accessors.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(int lookahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// True (and consumes) when the next token is the given symbol.
  bool TrySymbol(std::string_view symbol);
  /// True (and consumes) when the next token is the given identifier.
  bool TryIdent(std::string_view ident);

  Status ExpectSymbol(std::string_view symbol);
  /// Consumes an identifier and returns its name.
  Result<std::string> ExpectIdent();
  /// Consumes an (optionally '-'-prefixed) integer.
  Result<std::int64_t> ExpectInt();

  /// The most recently consumed token; the kEnd sentinel before any Next().
  const Token& LastConsumed() const;

  /// A parse error pointing at the current token, with its line:col.
  Status ErrorHere(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Token end_token_;
};

}  // namespace itdb

#endif  // ITDB_STORAGE_LEXER_H_
