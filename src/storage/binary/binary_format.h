// Compact binary on-disk format for generalized relations.
//
// The text format (storage/text_format.h) re-tokenizes and re-parses the
// whole catalog on every start; this module is the mmap-able binary
// counterpart that the WAL and snapshot machinery (storage/wal) builds on.
// A file is a sequence of per-relation SEGMENTS between a fixed header and
// a trailing CRC32:
//
//   FileHeader   magic "ITDB", format version, commit version,
//                segment count, header-comment count + comments
//   Segment*     one per relation epoch (see below)
//   Footer       CRC32 of every preceding byte
//
// Each segment stores its rows column-major ("struct of arrays"):
//
//   name, [epoch_from, epoch_to)          epoch = contiguous system-time
//                                         interval with one fixed schema
//   schema                                temporal names, data names+types
//   sys_from[n], sys_to[n]                system-period columns: row t was
//                                         asserted at version sys_from[t]
//                                         and retracted at sys_to[t]
//                                         (kOpenVersion = still current)
//   lrp columns                           per temporal attribute: n offsets
//                                         then n periods
//   data columns                          per data attribute: n int64s, or
//                                         a string dictionary + n ids
//   dbm flags[n], dbm slab                closure/feasibility flags plus
//                                         the (k+1)^2 x n bound matrices in
//                                         the ENTRY-MAJOR layout of
//                                         core/dbm_batch.h's DbmSlab:
//                                         slab[(p*(k+1)+q)*n + t]
//
// The encoding is EXACT: every tuple round-trips bit-identically, including
// the closure state of its constraint matrix (Dbm::FromEntries), so a
// database decoded from a snapshot or WAL record compares equal -- tuple by
// tuple, matrix bit by matrix bit -- to the one that was encoded.  That
// exactness is what lets the crash-recovery CI gate demand byte-identical
// query output from a recovered server.  In practice rows arrive here
// canonicalized (the parser and the algebra hand over closed systems), so
// the on-disk slab is the canonical closure, but the format never forces a
// re-closure that could perturb bits.
//
// All integers are little-endian and alignment-free (arrays are memcpy'd
// out of the mapped file, never dereferenced in place), so a file written
// on any supported host loads on any other.

#ifndef ITDB_STORAGE_BINARY_BINARY_FORMAT_H_
#define ITDB_STORAGE_BINARY_BINARY_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {
namespace storage {

/// System-time sentinel: the row (or epoch) has not been retracted.
inline constexpr std::uint64_t kOpenVersion =
    std::numeric_limits<std::uint64_t>::max();

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`.  Used to frame
/// WAL records and to seal snapshot files.
std::uint32_t Crc32(std::string_view bytes);

/// Little-endian wire primitives shared with the WAL framing
/// (storage/wal/wal.h).  The Read* forms advance `*pos` and fail with a
/// parse error on truncation.
namespace wire {
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
void PutString(std::string* out, std::string_view s);
Result<std::uint32_t> ReadU32(std::string_view bytes, std::size_t* pos);
Result<std::uint64_t> ReadU64(std::string_view bytes, std::size_t* pos);
Result<std::string> ReadString(std::string_view bytes, std::size_t* pos);
}  // namespace wire

/// One stored row: a generalized tuple plus its system period.  A row is
/// CURRENT when sys_to == kOpenVersion, historical otherwise.
struct SegmentRow {
  GeneralizedTuple tuple{std::vector<Lrp>{}};
  std::uint64_t sys_from = 0;
  std::uint64_t sys_to = kOpenVersion;
};

/// One relation epoch: a maximal system-time interval over which the
/// relation existed under one schema.  A plain database save has exactly
/// one epoch per relation ([0, open)); the storage engine's bitemporal
/// history may carry several (drop + redefine opens a new epoch).
struct RelationSegment {
  std::string name;
  Schema schema;
  std::uint64_t epoch_from = 0;
  std::uint64_t epoch_to = kOpenVersion;
  std::vector<SegmentRow> rows;
};

/// Serializes one segment onto `out`.  Fails when a data value's type
/// contradicts the schema (the dictionary encoder must know each column's
/// type up front).
Status AppendSegment(const RelationSegment& segment, std::string* out);

/// Decodes one segment starting at `*offset`, advancing it past the
/// segment.  Fails on truncation or malformed contents.
Result<RelationSegment> ReadSegment(std::string_view bytes,
                                    std::size_t* offset);

/// A whole decoded file.
struct SnapshotFile {
  /// The storage-engine commit version the segments are consistent with
  /// (0 for plain database saves).
  std::uint64_t commit_version = 0;
  /// File-level `# `-comment lines (Database::header_comments).
  std::vector<std::string> header_comments;
  std::vector<RelationSegment> segments;
};

/// Encodes header + segments + trailing CRC.
Result<std::string> EncodeSnapshot(const SnapshotFile& file);

/// Validates magic, version, and the trailing CRC, then decodes every
/// segment.  A torn or bit-flipped file fails cleanly.
Result<SnapshotFile> DecodeSnapshot(std::string_view bytes);

/// Encodes the catalog's CURRENT state: one single-epoch segment per
/// relation, every row [0, open), comments preserved.
Result<std::string> EncodeDatabase(const Database& db);

/// Inverse of EncodeDatabase: rebuilds a Database whose relations (and
/// ToText rendering) are bit-identical to the encoded one.
Result<Database> DecodeDatabase(std::string_view bytes);

/// Reads a whole file through mmap (falling back to read() for empty or
/// unmappable files).
Result<std::string> ReadFileBytes(const std::string& path);

/// Writes `bytes` atomically: temp file in the same directory, optional
/// fsync, rename over `path`.  Readers never observe a torn file.
Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       bool fsync);

/// EncodeDatabase + WriteFileAtomic.
Status SaveDatabaseFile(const Database& db, const std::string& path);

/// ReadFileBytes + DecodeDatabase.
Result<Database> LoadDatabaseFile(const std::string& path);

}  // namespace storage
}  // namespace itdb

#endif  // ITDB_STORAGE_BINARY_BINARY_FORMAT_H_
